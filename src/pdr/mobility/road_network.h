// Synthetic metropolitan road network.
//
// The paper generates workloads with the network-based generator of
// Forlizzi et al. [3] on the Chicago metropolitan road network. That data
// is not redistributable, so this module builds a deterministic synthetic
// stand-in with the properties the experiments actually depend on
// (documented in DESIGN.md, "Substitutions"):
//
//  * network-constrained movement (objects travel along edges),
//  * a hierarchy of road speeds (surface streets vs arterial highways),
//  * strong, stable spatial skew (hotspot districts where trips start and
//    end disproportionately often), which is what makes dense regions
//    appear and what stresses the DH/PA approximations.
//
// Topology: an nxn grid of intersections covering the square domain, with
// every k-th row/column upgraded to a highway, plus weighted hotspot
// districts used by the trip generator to bias endpoints.

#ifndef PDR_MOBILITY_ROAD_NETWORK_H_
#define PDR_MOBILITY_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/common/random.h"

namespace pdr {

/// Road class; determines the speed range of edges.
enum class RoadClass : uint8_t {
  kStreet = 0,   ///< surface street
  kArterial = 1, ///< major artery
  kHighway = 2,  ///< limited-access highway
};

/// One directed road segment between two intersections.
struct RoadEdge {
  int to = 0;                          ///< destination node index
  RoadClass road_class = RoadClass::kStreet;
  double length = 0.0;                 ///< miles
};

/// A hotspot district: a disc-ish area that attracts trips.
struct Hotspot {
  Vec2 center;
  double radius = 0.0;  ///< scatter radius (miles)
  double weight = 0.0;  ///< relative popularity
};

struct RoadNetworkConfig {
  double extent = 1000.0;     ///< domain edge (miles)
  int grid_nodes = 33;        ///< intersections per side
  int highway_stride = 8;     ///< every k-th row/col is a highway
  int arterial_stride = 4;    ///< every k-th row/col (non-highway) is arterial
  int num_hotspots = 12;      ///< hotspot districts
  double hotspot_zipf = 0.8;  ///< skew of hotspot popularity
  uint64_t seed = 7;          ///< node jitter + hotspot placement
};

/// Immutable road graph over the simulation domain.
class RoadNetwork {
 public:
  /// Builds the deterministic synthetic metro network described above.
  static RoadNetwork SyntheticMetro(const RoadNetworkConfig& config);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Vec2 node(int i) const { return nodes_[i]; }
  const std::vector<RoadEdge>& edges_from(int i) const { return adj_[i]; }
  const std::vector<Hotspot>& hotspots() const { return hotspots_; }
  double extent() const { return extent_; }

  /// Index of the node nearest to `p` (grid lookup, O(1) amortized).
  int NearestNode(Vec2 p) const;

  /// Speed range (miles per tick, i.e. per minute) for a road class.
  /// Streets 25-45 mph, arterials 40-65 mph, highways 65-100 mph; these
  /// jointly span the paper's 25..100 mph range.
  static std::pair<double, double> SpeedRangeMilesPerTick(RoadClass rc);

  /// Samples a node index for a trip endpoint: with probability
  /// `hotspot_bias` near a Zipf-popular hotspot, otherwise uniform.
  int SampleEndpoint(Rng& rng, double hotspot_bias) const;

  /// True if an edge (i -> j) exists.
  bool HasEdge(int i, int j) const;

 private:
  double extent_ = 0.0;
  int grid_side_ = 0;
  std::vector<Vec2> nodes_;
  std::vector<std::vector<RoadEdge>> adj_;
  std::vector<Hotspot> hotspots_;
  ZipfSampler hotspot_sampler_{1, 1.0};
};

}  // namespace pdr

#endif  // PDR_MOBILITY_ROAD_NETWORK_H_
