// Dataset persistence: save/load the generated update streams so
// experiments are re-runnable bit-for-bit without regenerating, and so
// datasets can be shared between the bench binaries and the CLI tool.
//
// Format: a little-endian binary container ("PDRD", version 1) holding
// the workload configuration followed by the per-tick update batches.
// Loading validates the magic, version, structural counts, the workload
// configuration, and every motion state's coordinates (NaN/Inf are
// rejected — on write too, so a poisoned simulation cannot produce a
// file that parses) and throws std::runtime_error naming the problem.

#ifndef PDR_MOBILITY_DATASET_IO_H_
#define PDR_MOBILITY_DATASET_IO_H_

#include <iosfwd>
#include <string>

#include "pdr/mobility/generator.h"

namespace pdr {

/// Serializes `dataset` to `path` (overwrites). Throws on I/O failure.
void SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by SaveDataset. Throws
/// std::runtime_error on missing file, bad magic/version, or truncation.
Dataset LoadDataset(const std::string& path);

/// Stream variants (used by the file functions; exposed for tests and
/// in-memory round trips).
void WriteDataset(const Dataset& dataset, std::ostream& os);
Dataset ReadDataset(std::istream& is);

}  // namespace pdr

#endif  // PDR_MOBILITY_DATASET_IO_H_
