// Workload generation: network-constrained trip simulation and the
// CH10K/CH100K/CH500K-style datasets of Section 7.
//
// The trip simulator moves every object along road-network edges toward a
// hotspot-biased destination, re-reporting (position, velocity) whenever it
// turns onto a new edge and at least once every U ticks (the paper's
// maximum update interval). The emitted UpdateEvent stream is the single
// source of truth: every engine (density histogram, TPR-tree, Chebyshev
// grid) and the ground-truth oracle consume exactly these reported linear
// motions, so exactness comparisons are well defined even though the
// "real" continuous movement turns between updates.
//
// Domain convention: only predicted positions inside the closed domain
// [0, extent]^2 count toward density (objects that drift out of the service
// area between updates are invisible until they re-report). All engines and
// the oracle share this rule.

#ifndef PDR_MOBILITY_GENERATOR_H_
#define PDR_MOBILITY_GENERATOR_H_

#include <memory>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/mobility/object.h"
#include "pdr/mobility/road_network.h"

namespace pdr {

struct WorkloadConfig {
  double extent = 1000.0;        ///< domain edge, miles
  int num_objects = 10000;
  Tick max_update_interval = 60; ///< U: forced re-report period
  double hotspot_trip_bias = 0.8;  ///< P(destination near a hotspot)
  double hotspot_start_bias = 0.5; ///< P(initial position near a hotspot)
  /// Per-tick probability that an object leaves the system for good (a
  /// deletion update) while a brand-new object (fresh id) appears
  /// elsewhere, keeping the population constant. Exercises the engines'
  /// true insert/delete paths; 0 = the paper's modify-only steady state.
  double churn_rate = 0.0;
  uint64_t seed = 42;
  RoadNetworkConfig network{};

  /// Keeps the network config's extent in sync with the workload extent.
  WorkloadConfig& WithExtent(double e) {
    extent = e;
    network.extent = e;
    return *this;
  }
};

/// Simulates trips on a road network and emits the resulting update stream.
class TripSimulator {
 public:
  explicit TripSimulator(const WorkloadConfig& config);

  const RoadNetwork& network() const { return *network_; }
  const WorkloadConfig& config() const { return config_; }

  /// Initial insertion updates for every object, at tick 0. Must be called
  /// once, before Advance().
  std::vector<UpdateEvent> Bootstrap();

  /// Updates issued at tick `t`; call with consecutive t = 1, 2, ...
  std::vector<UpdateEvent> Advance(Tick t);

 private:
  struct TripState {
    MotionState reported;    // last state sent to the server
    Vec2 leg_origin;         // position where the current edge was entered
    double leg_entry_time;   // fractional tick of entry
    double leg_arrival_time; // fractional tick of arrival at `target`
    double speed;            // miles per tick along the current edge
    int target;              // node being driven toward
    int destination;         // trip destination node
    Tick last_report;        // tick of last update sent
    bool alive = true;       // false once churned out
  };

  /// Creates trip state for a fresh object starting at fractional `time`;
  /// the first leg is partially consumed so update load stays smooth.
  TripState SpawnTrip(double time);

  /// Picks the next edge greedily toward the trip destination, re-rolling
  /// the destination on arrival. Updates leg fields starting at
  /// (`pos`, `time`).
  void StartNextLeg(TripState& trip, Vec2 pos, double time);

  /// True position (on the network) at fractional time `t`.
  Vec2 TruePositionAt(const TripState& trip, double t) const;

  WorkloadConfig config_;
  std::unique_ptr<RoadNetwork> network_;
  Rng rng_;
  std::vector<TripState> trips_;
  bool bootstrapped_ = false;
};

/// A fully materialized dataset: `ticks[t]` holds the updates the server
/// receives at tick t; `ticks[0]` is the bootstrap insert batch.
struct Dataset {
  WorkloadConfig config;
  std::vector<std::vector<UpdateEvent>> ticks;

  Tick duration() const { return static_cast<Tick>(ticks.size()) - 1; }
  size_t TotalUpdates() const;
};

/// Generates `duration + 1` ticks of updates (bootstrap plus `duration`
/// simulation ticks).
Dataset GenerateDataset(const WorkloadConfig& config, Tick duration);

/// Test helper: `n` stationary objects in `k` Gaussian clusters (plus a
/// uniform background fraction). Deterministic for a given seed.
std::vector<UpdateEvent> MakeClusteredInserts(int n, int k, double extent,
                                              double cluster_sigma,
                                              double background_fraction,
                                              uint64_t seed);

/// Test helper: `n` objects uniform in the domain with uniform velocities
/// in [-max_speed, max_speed] per axis, inserted at tick 0.
std::vector<UpdateEvent> MakeUniformInserts(int n, double extent,
                                            double max_speed, uint64_t seed);

}  // namespace pdr

#endif  // PDR_MOBILITY_GENERATOR_H_
