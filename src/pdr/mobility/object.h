// Moving-object model (Section 4 of the paper).
//
// Each object is a point moving linearly: an update at reference tick t_ref
// reports position (x, y) and velocity (vx, vy), and the predicted position
// at t >= t_ref is (x + (t - t_ref) * vx, y + (t - t_ref) * vy). Objects
// re-report within the maximum update interval U, so any server-side
// structure only needs predictions over the horizon H = U + W.
//
// Units: the paper's domain is 1000 x 1000 miles and one tick is one
// minute, so speeds of 25..100 mph are 0.4167..1.667 miles/tick.

#ifndef PDR_MOBILITY_OBJECT_H_
#define PDR_MOBILITY_OBJECT_H_

#include <optional>
#include <string>
#include <vector>

#include "pdr/common/geometry.h"

namespace pdr {

/// Linear motion reported by one update: position `pos` at tick `t_ref`,
/// constant velocity `vel` afterwards.
struct MotionState {
  Vec2 pos;
  Vec2 vel;
  Tick t_ref = 0;

  /// Predicted position at tick `t` (valid for t >= t_ref).
  Vec2 PositionAt(Tick t) const {
    const double dt = static_cast<double>(t - t_ref);
    return {pos.x + vel.x * dt, pos.y + vel.y * dt};
  }

  /// Predicted position at fractional time `t`.
  Vec2 PositionAt(double t) const {
    const double dt = t - static_cast<double>(t_ref);
    return {pos.x + vel.x * dt, pos.y + vel.y * dt};
  }

  /// The state re-expressed with reference tick `t` (same trajectory).
  MotionState RebasedTo(Tick t) const { return {PositionAt(t), vel, t}; }

  bool operator==(const MotionState&) const = default;

  std::string ToString() const;
};

/// One location-report event in the update stream. An update carries the
/// object's previous movement (so index structures can erase it — the
/// paper's "deletion update") and/or its new movement (the "insertion
/// update"):
///   * initial appearance:  old_state empty, new_state set
///   * re-report / turn:    both set
///   * disappearance:       old_state set, new_state empty
struct UpdateEvent {
  Tick tick = 0;  ///< server receipt time t_now
  ObjectId id = 0;
  std::optional<MotionState> old_state;
  std::optional<MotionState> new_state;

  bool IsInsert() const { return !old_state && new_state; }
  bool IsDelete() const { return old_state && !new_state; }
  bool IsModify() const { return old_state && new_state; }
};

/// In-memory table of current object states. Engines that receive full
/// UpdateEvents do not need it; it backs the brute-force oracle, dataset
/// bookkeeping, and example applications.
class ObjectTable {
 public:
  /// Applies one update; checks stream consistency in debug builds.
  void Apply(const UpdateEvent& update);

  /// Number of live objects.
  size_t size() const { return live_count_; }

  /// Current state of `id`, or nullptr when the object is not live.
  const MotionState* Find(ObjectId id) const;

  /// Snapshot of every live object's position at tick `t`.
  std::vector<Vec2> PositionsAt(Tick t) const;

  /// Snapshot of (id, state) pairs for every live object.
  std::vector<std::pair<ObjectId, MotionState>> LiveObjects() const;

 private:
  // Dense by object id; flag tracks liveness.
  std::vector<std::optional<MotionState>> states_;
  size_t live_count_ = 0;
};

}  // namespace pdr

#endif  // PDR_MOBILITY_OBJECT_H_
