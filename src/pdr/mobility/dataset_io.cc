#include "pdr/mobility/dataset_io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pdr {
namespace {

constexpr char kMagic[4] = {'P', 'D', 'R', 'D'};
constexpr uint32_t kVersion = 1;

template <typename T>
void Put(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T Get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("dataset stream truncated");
  return value;
}

// Every coordinate that enters or leaves a file must be finite: a NaN
// position poisons the histogram counts and every Rect comparison, and an
// Inf velocity explodes the TPR bounding rectangles — far from where the
// bad value entered. Reject at the I/O boundary with a message naming the
// field instead.
void CheckFinite(double v, const char* field, const char* verb) {
  if (std::isfinite(v)) return;
  throw std::runtime_error(std::string(verb) + ": non-finite " + field +
                           " (NaN or Inf) in motion state");
}

void ValidateState(const MotionState& s, const char* verb) {
  CheckFinite(s.pos.x, "position x", verb);
  CheckFinite(s.pos.y, "position y", verb);
  CheckFinite(s.vel.x, "velocity x", verb);
  CheckFinite(s.vel.y, "velocity y", verb);
}

void PutState(std::ostream& os, const MotionState& s) {
  ValidateState(s, "dataset write rejected");
  Put(os, s.pos.x);
  Put(os, s.pos.y);
  Put(os, s.vel.x);
  Put(os, s.vel.y);
  Put(os, s.t_ref);
}

MotionState GetState(std::istream& is) {
  MotionState s;
  s.pos.x = Get<double>(is);
  s.pos.y = Get<double>(is);
  s.vel.x = Get<double>(is);
  s.vel.y = Get<double>(is);
  s.t_ref = Get<Tick>(is);
  ValidateState(s, "corrupt dataset");
  return s;
}

}  // namespace

void WriteDataset(const Dataset& dataset, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  Put(os, kVersion);

  const WorkloadConfig& c = dataset.config;
  Put(os, c.extent);
  Put(os, static_cast<int32_t>(c.num_objects));
  Put(os, c.max_update_interval);
  Put(os, c.hotspot_trip_bias);
  Put(os, c.hotspot_start_bias);
  Put(os, c.seed);
  Put(os, c.network.extent);
  Put(os, static_cast<int32_t>(c.network.grid_nodes));
  Put(os, static_cast<int32_t>(c.network.highway_stride));
  Put(os, static_cast<int32_t>(c.network.arterial_stride));
  Put(os, static_cast<int32_t>(c.network.num_hotspots));
  Put(os, c.network.hotspot_zipf);
  Put(os, c.network.seed);

  Put(os, static_cast<uint32_t>(dataset.ticks.size()));
  for (const auto& batch : dataset.ticks) {
    Put(os, static_cast<uint32_t>(batch.size()));
    for (const UpdateEvent& e : batch) {
      Put(os, e.tick);
      Put(os, e.id);
      const uint8_t flags = static_cast<uint8_t>(
          (e.old_state ? 1 : 0) | (e.new_state ? 2 : 0));
      Put(os, flags);
      if (e.old_state) PutState(os, *e.old_state);
      if (e.new_state) PutState(os, *e.new_state);
    }
  }
  if (!os) throw std::runtime_error("dataset write failed");
}

Dataset ReadDataset(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a PDR dataset (bad magic)");
  }
  const uint32_t version = Get<uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("unsupported dataset version " +
                             std::to_string(version));
  }

  Dataset dataset;
  WorkloadConfig& c = dataset.config;
  c.extent = Get<double>(is);
  c.num_objects = Get<int32_t>(is);
  c.max_update_interval = Get<Tick>(is);
  c.hotspot_trip_bias = Get<double>(is);
  c.hotspot_start_bias = Get<double>(is);
  c.seed = Get<uint64_t>(is);
  c.network.extent = Get<double>(is);
  c.network.grid_nodes = Get<int32_t>(is);
  c.network.highway_stride = Get<int32_t>(is);
  c.network.arterial_stride = Get<int32_t>(is);
  c.network.num_hotspots = Get<int32_t>(is);
  c.network.hotspot_zipf = Get<double>(is);
  c.network.seed = Get<uint64_t>(is);
  if (!std::isfinite(c.extent) || c.extent <= 0.0) {
    throw std::runtime_error(
        "corrupt dataset: extent must be finite and positive");
  }
  if (c.num_objects < 0 || c.max_update_interval <= 0) {
    throw std::runtime_error(
        "corrupt dataset: negative object count or non-positive U");
  }

  const uint32_t num_ticks = Get<uint32_t>(is);
  if (num_ticks > (1u << 24)) {
    throw std::runtime_error("implausible tick count (corrupt file)");
  }
  dataset.ticks.resize(num_ticks);
  for (auto& batch : dataset.ticks) {
    const uint32_t count = Get<uint32_t>(is);
    if (count > (1u << 28)) {
      throw std::runtime_error("implausible batch size (corrupt file)");
    }
    batch.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      UpdateEvent e;
      e.tick = Get<Tick>(is);
      e.id = Get<ObjectId>(is);
      const uint8_t flags = Get<uint8_t>(is);
      if (flags & 1) e.old_state = GetState(is);
      if (flags & 2) e.new_state = GetState(is);
      if (flags == 0 || flags > 3) {
        throw std::runtime_error("corrupt update flags");
      }
      batch.push_back(e);
    }
  }
  return dataset;
}

void SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  WriteDataset(dataset, os);
}

Dataset LoadDataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open dataset: " + path);
  return ReadDataset(is);
}

}  // namespace pdr
