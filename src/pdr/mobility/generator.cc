#include "pdr/mobility/generator.h"

#include <cassert>
#include <cmath>

namespace pdr {

TripSimulator::TripSimulator(const WorkloadConfig& config)
    : config_(config),
      network_(std::make_unique<RoadNetwork>(
          RoadNetwork::SyntheticMetro(config.network))),
      rng_(config.seed) {
  assert(config_.extent == config_.network.extent &&
         "use WorkloadConfig::WithExtent to keep extents in sync");
}

void TripSimulator::StartNextLeg(TripState& trip, Vec2 pos, double time) {
  const RoadNetwork& net = *network_;
  int here = trip.target;
  if (here == trip.destination) {
    // Trip finished: choose a fresh (hotspot-biased) destination.
    do {
      trip.destination = net.SampleEndpoint(rng_, config_.hotspot_trip_bias);
    } while (trip.destination == here);
  }
  // Greedy routing: the neighbor closest to the destination. On the grid
  // topology this always makes progress; ties are broken by edge order.
  const Vec2 dest_pos = net.node(trip.destination);
  const auto& edges = net.edges_from(here);
  assert(!edges.empty());
  const RoadEdge* best = &edges.front();
  double best_d2 = (net.node(best->to) - dest_pos).Norm2();
  for (const RoadEdge& e : edges) {
    const double d2 = (net.node(e.to) - dest_pos).Norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = &e;
    }
  }
  const auto [lo, hi] = RoadNetwork::SpeedRangeMilesPerTick(best->road_class);
  trip.speed = rng_.Uniform(lo, hi);
  trip.target = best->to;
  trip.leg_origin = pos;
  trip.leg_entry_time = time;
  const double distance = pos.DistanceTo(net.node(best->to));
  trip.leg_arrival_time = time + std::max(distance / trip.speed, 1e-6);
}

Vec2 TripSimulator::TruePositionAt(const TripState& trip, double t) const {
  const Vec2 target = network_->node(trip.target);
  const double span = trip.leg_arrival_time - trip.leg_entry_time;
  const double f = Clamp((t - trip.leg_entry_time) / span, 0.0, 1.0);
  return trip.leg_origin + (target - trip.leg_origin) * f;
}

TripSimulator::TripState TripSimulator::SpawnTrip(double time) {
  TripState trip;
  const int start =
      network_->SampleEndpoint(rng_, config_.hotspot_start_bias);
  trip.target = start;
  trip.destination = start;  // StartNextLeg re-rolls it
  StartNextLeg(trip, network_->node(start), time);
  // Desynchronize waypoint arrivals so the update load is steady: the
  // object starts partway into its first leg.
  const double skip =
      rng_.NextDouble() * (trip.leg_arrival_time - trip.leg_entry_time);
  trip.leg_entry_time -= skip;
  trip.leg_arrival_time -= skip;
  const Vec2 pos = TruePositionAt(trip, time);
  const Vec2 dir = network_->node(trip.target) - trip.leg_origin;
  const double norm = dir.Norm();
  const Vec2 vel = norm > 0 ? dir * (trip.speed / norm) : Vec2{0, 0};
  const Tick tick = static_cast<Tick>(time);
  trip.reported = MotionState{pos, vel, tick};
  trip.last_report = tick;
  return trip;
}

std::vector<UpdateEvent> TripSimulator::Bootstrap() {
  assert(!bootstrapped_);
  bootstrapped_ = true;
  trips_.reserve(config_.num_objects);
  std::vector<UpdateEvent> events;
  events.reserve(config_.num_objects);
  for (ObjectId id = 0; id < static_cast<ObjectId>(config_.num_objects);
       ++id) {
    trips_.push_back(SpawnTrip(0.0));
    events.push_back(UpdateEvent{0, id, std::nullopt, trips_[id].reported});
  }
  return events;
}

std::vector<UpdateEvent> TripSimulator::Advance(Tick t) {
  assert(bootstrapped_);
  std::vector<UpdateEvent> events;
  const size_t live_before = trips_.size();
  for (ObjectId id = 0; id < live_before; ++id) {
    TripState& trip = trips_[id];
    if (!trip.alive) continue;
    // Churn: the object leaves the system; a fresh one appears elsewhere
    // under a new id (appended below, processed from the next tick on).
    if (config_.churn_rate > 0 && rng_.Bernoulli(config_.churn_rate)) {
      trip.alive = false;
      events.push_back(UpdateEvent{t, id, trip.reported, std::nullopt});
      const ObjectId fresh_id = static_cast<ObjectId>(trips_.size());
      trips_.push_back(SpawnTrip(static_cast<double>(t)));
      events.push_back(
          UpdateEvent{t, fresh_id, std::nullopt, trips_.back().reported});
      continue;
    }
    bool turned = false;
    // Consume any waypoints reached during (t-1, t].
    while (trip.leg_arrival_time <= static_cast<double>(t)) {
      const double arrival = trip.leg_arrival_time;
      StartNextLeg(trip, network_->node(trip.target), arrival);
      turned = true;
    }
    const bool stale = (t - trip.last_report) >= config_.max_update_interval;
    if (!turned && !stale) continue;

    const Vec2 pos = TruePositionAt(trip, static_cast<double>(t));
    const Vec2 dir = network_->node(trip.target) - trip.leg_origin;
    const double norm = dir.Norm();
    const Vec2 vel = norm > 0 ? dir * (trip.speed / norm) : Vec2{0, 0};
    const MotionState next{pos, vel, t};
    events.push_back(UpdateEvent{t, id, trip.reported, next});
    trip.reported = next;
    trip.last_report = t;
  }
  return events;
}

size_t Dataset::TotalUpdates() const {
  size_t total = 0;
  for (const auto& batch : ticks) total += batch.size();
  return total;
}

Dataset GenerateDataset(const WorkloadConfig& config, Tick duration) {
  TripSimulator sim(config);
  Dataset ds;
  ds.config = config;
  ds.ticks.reserve(duration + 1);
  ds.ticks.push_back(sim.Bootstrap());
  for (Tick t = 1; t <= duration; ++t) ds.ticks.push_back(sim.Advance(t));
  return ds;
}

std::vector<UpdateEvent> MakeClusteredInserts(int n, int k, double extent,
                                              double cluster_sigma,
                                              double background_fraction,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> centers;
  centers.reserve(k);
  for (int i = 0; i < k; ++i) {
    centers.push_back({rng.Uniform(0.15, 0.85) * extent,
                       rng.Uniform(0.15, 0.85) * extent});
  }
  std::vector<UpdateEvent> events;
  events.reserve(n);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    Vec2 p;
    if (k == 0 || rng.Bernoulli(background_fraction)) {
      p = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
    } else {
      const Vec2 c = centers[rng.UniformInt(0, k - 1)];
      p = {Clamp(c.x + rng.Normal(0, cluster_sigma), 0.0, extent),
           Clamp(c.y + rng.Normal(0, cluster_sigma), 0.0, extent)};
    }
    events.push_back(UpdateEvent{0, id, std::nullopt,
                                 MotionState{p, {0, 0}, 0}});
  }
  return events;
}

std::vector<UpdateEvent> MakeUniformInserts(int n, double extent,
                                            double max_speed, uint64_t seed) {
  Rng rng(seed);
  std::vector<UpdateEvent> events;
  events.reserve(n);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    const Vec2 p = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
    const Vec2 v = {rng.Uniform(-max_speed, max_speed),
                    rng.Uniform(-max_speed, max_speed)};
    events.push_back(
        UpdateEvent{0, id, std::nullopt, MotionState{p, v, 0}});
  }
  return events;
}

}  // namespace pdr
