#include "pdr/mobility/road_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdr {
namespace {

RoadClass LineClass(int index, const RoadNetworkConfig& config) {
  if (index % config.highway_stride == config.highway_stride / 2) {
    return RoadClass::kHighway;
  }
  if (index % config.arterial_stride == 0) return RoadClass::kArterial;
  return RoadClass::kStreet;
}

}  // namespace

RoadNetwork RoadNetwork::SyntheticMetro(const RoadNetworkConfig& config) {
  assert(config.grid_nodes >= 2);
  RoadNetwork net;
  net.extent_ = config.extent;
  net.grid_side_ = config.grid_nodes;

  Rng rng(config.seed);
  const int n = config.grid_nodes;
  const double spacing = config.extent / n;
  const double jitter = 0.15 * spacing;

  net.nodes_.reserve(static_cast<size_t>(n) * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double x =
          Clamp((c + 0.5) * spacing + rng.Uniform(-jitter, jitter), 0.0,
                config.extent);
      const double y =
          Clamp((r + 0.5) * spacing + rng.Uniform(-jitter, jitter), 0.0,
                config.extent);
      net.nodes_.push_back({x, y});
    }
  }

  net.adj_.resize(net.nodes_.size());
  auto add_bidirectional = [&](int a, int b, RoadClass rc) {
    const double len = net.nodes_[a].DistanceTo(net.nodes_[b]);
    net.adj_[a].push_back({b, rc, len});
    net.adj_[b].push_back({a, rc, len});
  };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const int id = r * n + c;
      if (c + 1 < n) add_bidirectional(id, id + 1, LineClass(r, config));
      if (r + 1 < n) add_bidirectional(id, id + n, LineClass(c, config));
    }
  }

  // Hotspot districts: placed in the inner 80% of the domain so their
  // scatter stays inside, with Zipf-skewed popularity.
  net.hotspots_.reserve(config.num_hotspots);
  for (int i = 0; i < config.num_hotspots; ++i) {
    Hotspot h;
    h.center = {rng.Uniform(0.1, 0.9) * config.extent,
                rng.Uniform(0.1, 0.9) * config.extent};
    h.radius = rng.Uniform(0.01, 0.04) * config.extent;
    h.weight = 1.0 / std::pow(i + 1.0, config.hotspot_zipf);
    net.hotspots_.push_back(h);
  }
  net.hotspot_sampler_ =
      ZipfSampler(std::max(1, config.num_hotspots), config.hotspot_zipf);
  return net;
}

int RoadNetwork::NearestNode(Vec2 p) const {
  const int n = grid_side_;
  const double spacing = extent_ / n;
  const int c0 = std::clamp(static_cast<int>(p.x / spacing), 0, n - 1);
  const int r0 = std::clamp(static_cast<int>(p.y / spacing), 0, n - 1);
  int best = r0 * n + c0;
  double best_d2 = (nodes_[best] - p).Norm2();
  // Jitter is < spacing/2, so scanning the 3x3 neighborhood is sufficient.
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      const int r = r0 + dr, c = c0 + dc;
      if (r < 0 || r >= n || c < 0 || c >= n) continue;
      const int id = r * n + c;
      const double d2 = (nodes_[id] - p).Norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best = id;
      }
    }
  }
  return best;
}

std::pair<double, double> RoadNetwork::SpeedRangeMilesPerTick(RoadClass rc) {
  // One tick is one minute: mph / 60 = miles per tick.
  switch (rc) {
    case RoadClass::kStreet:
      return {25.0 / 60.0, 45.0 / 60.0};
    case RoadClass::kArterial:
      return {40.0 / 60.0, 65.0 / 60.0};
    case RoadClass::kHighway:
      return {65.0 / 60.0, 100.0 / 60.0};
  }
  return {25.0 / 60.0, 45.0 / 60.0};
}

int RoadNetwork::SampleEndpoint(Rng& rng, double hotspot_bias) const {
  if (!hotspots_.empty() && rng.Bernoulli(hotspot_bias)) {
    const Hotspot& h = hotspots_[hotspot_sampler_.Sample(rng)];
    const Vec2 p = {Clamp(h.center.x + rng.Normal(0.0, h.radius), 0.0, extent_),
                    Clamp(h.center.y + rng.Normal(0.0, h.radius), 0.0, extent_)};
    return NearestNode(p);
  }
  return static_cast<int>(rng.UniformInt(0, node_count() - 1));
}

bool RoadNetwork::HasEdge(int i, int j) const {
  for (const RoadEdge& e : adj_[i]) {
    if (e.to == j) return true;
  }
  return false;
}

}  // namespace pdr
