#include "pdr/mobility/object.h"

#include <cassert>
#include <sstream>

namespace pdr {

std::string MotionState::ToString() const {
  std::ostringstream os;
  os << "pos=" << pos << " vel=" << vel << " t_ref=" << t_ref;
  return os.str();
}

void ObjectTable::Apply(const UpdateEvent& update) {
  if (update.id >= states_.size()) states_.resize(update.id + 1);
  std::optional<MotionState>& slot = states_[update.id];
  if (update.old_state) {
    assert(slot.has_value() && "delete of object that is not live");
  } else {
    assert(!slot.has_value() && "insert of object that is already live");
  }
  if (slot.has_value() && !update.new_state) --live_count_;
  if (!slot.has_value() && update.new_state) ++live_count_;
  slot = update.new_state;
}

const MotionState* ObjectTable::Find(ObjectId id) const {
  if (id >= states_.size() || !states_[id].has_value()) return nullptr;
  return &*states_[id];
}

std::vector<Vec2> ObjectTable::PositionsAt(Tick t) const {
  std::vector<Vec2> out;
  out.reserve(live_count_);
  for (const auto& s : states_) {
    if (s.has_value()) out.push_back(s->PositionAt(t));
  }
  return out;
}

std::vector<std::pair<ObjectId, MotionState>> ObjectTable::LiveObjects()
    const {
  std::vector<std::pair<ObjectId, MotionState>> out;
  out.reserve(live_count_);
  for (ObjectId id = 0; id < states_.size(); ++id) {
    if (states_[id].has_value()) out.emplace_back(id, *states_[id]);
  }
  return out;
}

}  // namespace pdr
