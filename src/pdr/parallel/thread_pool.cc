#include "pdr/parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>

#include "pdr/obs/flight_recorder.h"

namespace pdr {
namespace {

// Process-wide task sequence for flight-recorder kTaskRun events.
std::atomic<int64_t> g_task_seq{0};

}  // namespace

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  assert(queue_.empty() && "graceful shutdown drains the queue");
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  Task task;
  task.fn = std::packaged_task<void()>(std::move(fn));
  task.trace = TraceContext::Current();
  task.query_id = FlightRecorder::CurrentQueryId();
  std::future<void> f = task.fn.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_ && "Submit on a pool that is shutting down");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return f;
}

bool ThreadPool::PopTask(Task* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool ThreadPool::RunOnePending() {
  Task task;
  if (!PopTask(&task)) return false;
  TraceContextScope scope(task.trace);
  FlightRecorder::QueryScope query_scope(task.query_id);
  if (FlightRecorder::Enabled()) {
    FlightRecorder::Record(
        FrEvent::kTaskRun, g_task_seq.fetch_add(1, std::memory_order_relaxed));
  }
  task.fn();  // packaged_task captures exceptions into the future
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    TraceContextScope scope(task.trace);
    FlightRecorder::QueryScope query_scope(task.query_id);
    if (FlightRecorder::Enabled()) {
      FlightRecorder::Record(FrEvent::kTaskRun,
                             g_task_seq.fetch_add(1, std::memory_order_relaxed));
    }
    task.fn();
  }
}

void ThreadPool::Wait(std::future<void>& f) {
  using namespace std::chrono_literals;
  while (f.wait_for(0s) != std::future_status::ready) {
    if (!RunOnePending()) {
      // Nothing to steal: the task is running elsewhere; block briefly so
      // tasks enqueued meanwhile are still picked up by this thread.
      f.wait_for(100us);
    }
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body,
                             const QueryControl* ctl) {
  if (n <= 0) return;
  // Runner tasks (plus the calling thread) pull indices from one shared
  // counter: every index in [0, n) is claimed exactly once. The caller
  // always participates, so progress never depends on worker availability
  // — the nested-use guarantee.
  const int64_t runners =
      std::min<int64_t>(static_cast<int64_t>(thread_count()), n - 1);
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::once_flag error_once;

  const auto run = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        // Cancellation point: a cancelled query stops claiming indices on
        // every runner; started bodies finish, the rest never run.
        if (ctl != nullptr) ctl->Check();
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      } catch (...) {
        std::call_once(error_once,
                       [&] { first_error = std::current_exception(); });
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> fs;
  fs.reserve(static_cast<size_t>(runners));
  for (int64_t r = 0; r < runners; ++r) fs.push_back(Submit(run));
  run();
  // Stealing in Wait may execute unstarted runner tasks inline; they see
  // the exhausted counter and return immediately.
  for (std::future<void>& f : fs) Wait(f);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pdr
