// Small fork/join thread pool for the query engines.
//
// Design goals, in order: correctness under ThreadSanitizer, deadlock
// freedom under nested use, and deterministic fan-out for the engines'
// per-cell query stages. A fixed set of workers pulls tasks from one
// mutex-guarded deque; blocked waiters *steal* pending tasks and run them
// inline instead of sleeping (help-first scheduling), which is what makes
// nested Submit/ParallelFor safe even on a single-worker pool: the thread
// that waits drains the queue itself, so no task can wait on work that has
// no thread left to run it.
//
// Trace propagation: Submit and ParallelFor capture the calling thread's
// TraceContext and adopt it on whichever thread executes the task, so
// spans opened inside pool tasks attach into the submitting query's span
// tree (tagged with the worker's thread id) instead of forming orphan
// trees per worker. The submitter's flight-recorder query id rides along
// the same way, so one query's fan-out carries one id across threads.
//
// Shutdown is graceful: the destructor lets the workers drain every task
// already queued, then joins them. Tasks submitted after shutdown begins
// are rejected by assertion.

#ifndef PDR_PARALLEL_THREAD_POOL_H_
#define PDR_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "pdr/obs/trace.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1;
  /// 0 means "hardware concurrency", matching ExecPolicy).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. The future carries any exception the task throws.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs body(i) for every i in [0, n) exactly once, fanning out over the
  /// workers with the calling thread participating. Returns when every
  /// started index has finished. If a body throws, remaining unstarted
  /// indices are abandoned and the first exception is rethrown here.
  ///
  /// With a non-null active `ctl`, every runner polls the control before
  /// claiming its next index: a cancelled or deadline-expired query stops
  /// claiming work, the loop drains (started indices finish, unstarted
  /// ones are never run), and CancelledError is rethrown on the calling
  /// thread. Bodies may additionally check the control themselves at
  /// finer granularity.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                   const QueryControl* ctl = nullptr);

  /// Steals one queued task and runs it on the calling thread; false when
  /// the queue is empty. Public so blocked code can lend a hand.
  bool RunOnePending();

  /// Blocks until `f` is ready, stealing queued tasks meanwhile (the
  /// deadlock-free way to wait on pool work from inside pool work).
  void Wait(std::future<void>& f);

  /// max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

 private:
  struct Task {
    std::packaged_task<void()> fn;
    TraceContext trace;
    uint32_t query_id = 0;  ///< submitter's flight-recorder attribution
  };

  void WorkerLoop();
  bool PopTask(Task* out);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pdr

#endif  // PDR_PARALLEL_THREAD_POOL_H_
