// Execution policy threaded through the query engines.
//
// Every engine runs serial by default (thread count 1, no pool, behavior
// identical to the pre-parallel code paths). ExecPolicy::Parallel(n) asks
// a query's embarrassingly parallel stage — FR candidate-cell refinement,
// PA per-macro-cell branch-and-bound, the monitor's shadow audit — to fan
// out over n threads (n = 0 picks the hardware concurrency). Results are
// merged deterministically, so the answer is bit-identical to serial
// execution at any thread count; only wall-clock changes.

#ifndef PDR_PARALLEL_EXEC_POLICY_H_
#define PDR_PARALLEL_EXEC_POLICY_H_

namespace pdr {

struct ExecPolicy {
  /// Worker threads a parallel stage may use. 1 = serial (never touches a
  /// pool); 0 = resolve to the hardware concurrency at pool creation.
  int threads = 1;

  static ExecPolicy Serial() { return ExecPolicy{1}; }

  /// Parallel over `n` threads; `n` = 0 (the default) resolves to the
  /// hardware thread count.
  static ExecPolicy Parallel(int n = 0) { return ExecPolicy{n}; }

  bool IsParallel() const { return threads != 1; }
};

}  // namespace pdr

#endif  // PDR_PARALLEL_EXEC_POLICY_H_
