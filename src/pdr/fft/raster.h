// Object rasterization with the paper's l-square edge semantics.
//
// The FFT engine's error story rests on a binning convention that matches
// Definition 1 exactly. The l-square S_l(p) is *closed on its top and
// right edges and open on its left and bottom edges*, so the raster cell
// must be too: cell (col, row) of an m x m RasterGrid covers
//
//   (col * g, (col + 1) * g]  x  (row * g, (row + 1) * g],   g = extent/m
//
// — the mirror image of the histogram Grid's half-open [lo, hi) cells.
// With this convention the block-sum neighborhoods close exactly
// (DESIGN.md §15): for any point p inside cell j,
//
//   conservative half-width  a = floor(l / (2g)) - 1   cells
//     (every cell of the (2a+1)-block lies inside S_l(p); a < 0 means no
//      certain accept is possible at this resolution),
//   expansive half-width     b = ceil(l / (2g))        cells
//     (the (2b+1)-block covers S_l(p)),
//
// with *no* extra "+1" slack cell: the closed-top/right binning absorbs
// the closed edge that histogram/filter.h's ExpansiveHalfWidth has to pay
// one full extra cell for. The accept region derived from `a` is a subset
// of the exact answer and the accept+candidate region derived from `b` a
// superset — the sandwich tests/fft_test.cc asserts against exact FR.
//
// Domain edges: positions follow the oracle's closed-domain convention
// (InDomainPositions: 0 <= x <= extent counted, everything else dropped).
// x = 0 has no cell under the open-left convention, so it is clamped into
// cell 0 (symmetrically, x = extent lands in cell m-1 naturally). The
// clamp can disturb the sandwich only on the measure-zero locus of points
// whose l-square edge passes exactly through the domain origin, so every
// containment claim here and in DESIGN.md §15 is up to area zero.

#ifndef PDR_FFT_RASTER_H_
#define PDR_FFT_RASTER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "pdr/common/geometry.h"

namespace pdr {

/// Uniform m x m grid over [0, extent]^2 with closed-top/right cells.
class RasterGrid {
 public:
  RasterGrid(double extent, int m)
      : extent_(extent), m_(m), edge_(extent / m) {}

  double extent() const { return extent_; }
  int cells_per_side() const { return m_; }
  double cell_edge() const { return edge_; }

  /// Column of coordinate x under (lo, hi] cell semantics: the cell whose
  /// closed top edge is the smallest multiple of g that is >= x. Clamped
  /// into [0, m-1] (x = 0 joins cell 0, x = extent cell m-1).
  int ColOf(double x) const {
    return std::clamp(static_cast<int>(std::ceil(x / edge_)) - 1, 0, m_ - 1);
  }
  int RowOf(double y) const { return ColOf(y); }

  /// Conservative block half-width for neighborhood edge l (may be < 0:
  /// no accept possible at this resolution).
  int ConservativeHalfWidth(double l) const {
    return static_cast<int>(std::floor(l / (2.0 * edge_))) - 1;
  }

  /// Expansive block half-width for neighborhood edge l.
  int ExpansiveHalfWidth(double l) const {
    return static_cast<int>(std::ceil(l / (2.0 * edge_)));
  }

 private:
  double extent_;
  int m_;
  double edge_;
};

/// Rasterizes predicted positions onto the grid: one count per object
/// whose position lies in the closed domain [0, extent]^2 (out-of-domain
/// objects are dropped, matching Oracle::InDomainPositions). Returns the
/// m x m row-major count image as doubles (FFT input); every entry is a
/// non-negative integer and their sum is the in-domain object count.
std::vector<double> RasterizeCounts(const RasterGrid& grid,
                                    const std::vector<Vec2>& positions);

}  // namespace pdr

#endif  // PDR_FFT_RASTER_H_
