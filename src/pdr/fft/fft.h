// Radix-2 FFT and spectral box-filter convolution for the whole-plane
// density engine.
//
// Point density (Definition 2) is the object point-mass field convolved
// with the l-square box kernel, so one rasterize -> FFT -> multiply ->
// inverse pass yields block sums for *every* grid cell at once in
// O(M^2 log M), independent of how many queries share the tick. This
// module provides the numeric plumbing: an iterative radix-2 complex FFT
// (no external dependencies), a real-to-complex forward 2-D transform
// that packs row pairs into one complex transform each, an analytic-image
// box-kernel spectrum, and the multiply + inverse + round step that
// recovers integer block sums.
//
// Exactness contract: raster counts and the box kernel are integers, so
// the exact (cyclic-wraparound-free) convolution is integer-valued. The
// FFT computes it with roundoff bounded by O(log2 M) * machine-eps *
// total mass — around 1e-10 for any realistic configuration — so rounding
// the inverse transform to the nearest integer reproduces the direct
// O(n * m^2) integer convolution *bit for bit* as long as the residual
// stays below 0.5. SpectralBlockSums reports the largest residual it saw;
// tests/fft_test.cc compares against DirectBlockSums and asserts the
// bound on every grid it touches, and FftDensityEngine re-checks it on
// every field (FftRoundoffError past 0.5, which no supported geometry
// reaches).

#ifndef PDR_FFT_FFT_H_
#define PDR_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace pdr {

/// Smallest power of two >= n (n >= 1).
int NextPow2(int n);

/// In-place iterative radix-2 FFT over `a` (size must be a power of two).
/// `inverse` applies the conjugate transform and the 1/N scale.
void Fft(std::vector<std::complex<double>>& a, bool inverse);

/// In-place 2-D FFT over a row-major M x M complex grid: M row transforms
/// followed by M column transforms (separability).
void Fft2D(std::vector<std::complex<double>>& a, int M, bool inverse);

/// Forward 2-D transform of a real m x m image zero-padded into M x M
/// (M a power of two, M >= m). The row pass exploits realness: two real
/// rows are packed into one complex vector, transformed once, and
/// unpacked by Hermitian symmetry — half the row transforms of the
/// complex path. Returns the full M x M spectrum.
std::vector<std::complex<double>> ForwardReal2D(const std::vector<double>& real,
                                                int m, int M);

/// Spectrum of the centered (2h+1) x (2h+1) box kernel on the M x M torus
/// (h >= 0). Multiplying a field spectrum by this and inverting yields,
/// at cell (i, j), the sum of the field over the block of cells within
/// Chebyshev distance h — the conservative/expansive neighborhood sums of
/// Algorithm 1, for every cell at once.
std::vector<std::complex<double>> BoxKernelSpectrum(int half_width, int M);

/// Multiplies the two M x M spectra, inverts, rounds the top-left m x m
/// window to integers, and returns it row-major. `max_residual` (optional)
/// receives the largest |raw - round(raw)| observed — the roundoff
/// witness for the bit-for-bit claim above. The caller must have padded
/// so the cyclic convolution never wraps (M >= m + half_width).
std::vector<int64_t> SpectralBlockSums(
    const std::vector<std::complex<double>>& field_spectrum,
    const std::vector<std::complex<double>>& kernel_spectrum, int M, int m,
    double* max_residual = nullptr);

/// Reference direct O(m^2 * h^2) block summation (prefix-sum based, so
/// actually O(m^2)); the oracle SpectralBlockSums is compared against.
/// counts is m x m row-major; blocks are clipped at the grid edge (cells
/// outside the grid contribute zero, matching the zero-padded FFT).
std::vector<int64_t> DirectBlockSums(const std::vector<double>& counts, int m,
                                     int half_width);

/// FFT roundoff exceeded the integer-rounding safety margin — the
/// configuration is outside the bit-for-bit envelope (never expected for
/// supported grids; a hard error rather than a silently wrong answer).
class FftRoundoffError : public std::runtime_error {
 public:
  explicit FftRoundoffError(double residual)
      : std::runtime_error("FFT block-sum residual " +
                           std::to_string(residual) +
                           " >= 0.5: integer rounding is no longer exact"),
        residual_(residual) {}
  double residual() const { return residual_; }

 private:
  double residual_;
};

}  // namespace pdr

#endif  // PDR_FFT_FFT_H_
