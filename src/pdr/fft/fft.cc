#include "pdr/fft/fft.h"

#include <cmath>
#include <utility>

namespace pdr {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Bit-reversal permutation for a power-of-two length n.
void BitReverse(std::vector<std::complex<double>>& a) {
  const size_t n = a.size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

}  // namespace

int NextPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n <= 1) return;
  BitReverse(a);
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::complex<double>& x : a) x *= scale;
  }
}

void Fft2D(std::vector<std::complex<double>>& a, int M, bool inverse) {
  std::vector<std::complex<double>> line(static_cast<size_t>(M));
  // Rows.
  for (int r = 0; r < M; ++r) {
    std::complex<double>* row = a.data() + static_cast<size_t>(r) * M;
    line.assign(row, row + M);
    Fft(line, inverse);
    std::copy(line.begin(), line.end(), row);
  }
  // Columns.
  for (int c = 0; c < M; ++c) {
    for (int r = 0; r < M; ++r) line[r] = a[static_cast<size_t>(r) * M + c];
    Fft(line, inverse);
    for (int r = 0; r < M; ++r) a[static_cast<size_t>(r) * M + c] = line[r];
  }
}

std::vector<std::complex<double>> ForwardReal2D(const std::vector<double>& real,
                                                int m, int M) {
  std::vector<std::complex<double>> out(static_cast<size_t>(M) * M);
  // Row pass, two real rows per complex transform: z = row_a + i*row_b has
  // Z[k] = A[k] + i*B[k], and realness gives A[k] = (Z[k] + conj(Z[-k]))/2,
  // B[k] = (Z[k] - conj(Z[-k])) / (2i).
  std::vector<std::complex<double>> z(static_cast<size_t>(M));
  for (int r = 0; r < m; r += 2) {
    const double* row_a = real.data() + static_cast<size_t>(r) * m;
    const bool has_b = r + 1 < m;
    const double* row_b =
        has_b ? real.data() + static_cast<size_t>(r + 1) * m : nullptr;
    for (int c = 0; c < M; ++c) {
      const double re = c < m ? row_a[c] : 0.0;
      const double im = has_b && c < m ? row_b[c] : 0.0;
      z[c] = {re, im};
    }
    Fft(z, /*inverse=*/false);
    for (int k = 0; k < M; ++k) {
      const std::complex<double> zk = z[k];
      const std::complex<double> zmk = std::conj(z[(M - k) % M]);
      out[static_cast<size_t>(r) * M + k] = 0.5 * (zk + zmk);
      if (has_b) {
        const std::complex<double> diff = zk - zmk;
        out[static_cast<size_t>(r + 1) * M + k] =
            std::complex<double>(0.5 * diff.imag(), -0.5 * diff.real());
      }
    }
  }
  // Rows m..M-1 are zero padding: their transforms are zero (already so).
  // Column pass (full complex).
  std::vector<std::complex<double>> line(static_cast<size_t>(M));
  for (int c = 0; c < M; ++c) {
    for (int r = 0; r < M; ++r) line[r] = out[static_cast<size_t>(r) * M + c];
    Fft(line, /*inverse=*/false);
    for (int r = 0; r < M; ++r) out[static_cast<size_t>(r) * M + c] = line[r];
  }
  return out;
}

std::vector<std::complex<double>> BoxKernelSpectrum(int half_width, int M) {
  // The centered box is separable, so its DFT is the product of two
  // Dirichlet sums D[u] = 1 + 2 * sum_{d=1..h} cos(2*pi*u*d / M) — the
  // transform of the wrapped 1-D box image, computed in closed form (and
  // exactly real, as the even symmetry demands).
  std::vector<double> d(static_cast<size_t>(M));
  for (int u = 0; u < M; ++u) {
    double s = 1.0;
    for (int k = 1; k <= half_width; ++k) {
      s += 2.0 * std::cos(2.0 * kPi * static_cast<double>(u) *
                          static_cast<double>(k) / static_cast<double>(M));
    }
    d[u] = s;
  }
  std::vector<std::complex<double>> out(static_cast<size_t>(M) * M);
  for (int v = 0; v < M; ++v) {
    for (int u = 0; u < M; ++u) {
      out[static_cast<size_t>(v) * M + u] = d[v] * d[u];
    }
  }
  return out;
}

std::vector<int64_t> SpectralBlockSums(
    const std::vector<std::complex<double>>& field_spectrum,
    const std::vector<std::complex<double>>& kernel_spectrum, int M, int m,
    double* max_residual) {
  std::vector<std::complex<double>> prod(static_cast<size_t>(M) * M);
  for (size_t i = 0; i < prod.size(); ++i) {
    prod[i] = field_spectrum[i] * kernel_spectrum[i];
  }
  Fft2D(prod, M, /*inverse=*/true);
  std::vector<int64_t> out(static_cast<size_t>(m) * m);
  double worst = 0.0;
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      const std::complex<double> v = prod[static_cast<size_t>(r) * M + c];
      const double rounded = std::nearbyint(v.real());
      worst = std::max(worst, std::fabs(v.real() - rounded));
      worst = std::max(worst, std::fabs(v.imag()));
      out[static_cast<size_t>(r) * m + c] = static_cast<int64_t>(rounded);
    }
  }
  if (max_residual != nullptr) *max_residual = worst;
  return out;
}

std::vector<int64_t> DirectBlockSums(const std::vector<double>& counts, int m,
                                     int half_width) {
  // 2-D prefix sums over the integer counts, then one clipped block lookup
  // per cell (cells beyond the grid contribute zero, like the FFT's
  // zero padding).
  std::vector<int64_t> prefix(static_cast<size_t>(m + 1) * (m + 1), 0);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      prefix[static_cast<size_t>(r + 1) * (m + 1) + (c + 1)] =
          prefix[static_cast<size_t>(r) * (m + 1) + (c + 1)] +
          prefix[static_cast<size_t>(r + 1) * (m + 1) + c] -
          prefix[static_cast<size_t>(r) * (m + 1) + c] +
          static_cast<int64_t>(
              std::llround(counts[static_cast<size_t>(r) * m + c]));
    }
  }
  const auto at = [&](int r, int c) {
    return prefix[static_cast<size_t>(r) * (m + 1) + c];
  };
  std::vector<int64_t> out(static_cast<size_t>(m) * m);
  for (int r = 0; r < m; ++r) {
    const int r_lo = std::max(0, r - half_width);
    const int r_hi = std::min(m - 1, r + half_width);
    for (int c = 0; c < m; ++c) {
      const int c_lo = std::max(0, c - half_width);
      const int c_hi = std::min(m - 1, c + half_width);
      out[static_cast<size_t>(r) * m + c] = at(r_hi + 1, c_hi + 1) -
                                            at(r_lo, c_hi + 1) -
                                            at(r_hi + 1, c_lo) +
                                            at(r_lo, c_lo);
    }
  }
  return out;
}

}  // namespace pdr
