// FFT whole-plane density engine.
//
// Answers PDR queries from the *entire* density field at once: rasterize
// every live object's predicted position at q_t onto an m x m
// closed-top/right grid (raster.h), run one forward FFT, and then each
// (rho, l) pair costs only two spectral multiplies + inverse transforms —
// O(M^2 log M) once per (tick, q_t), O(M^2 log M) per *distinct* block
// half-width after that, and O(1) per additional query sharing both. That
// is the batch amortization a tick with many standing queries needs: the
// per-query marginal cost is independent of the object count and of how
// many queries share the field.
//
// Answer semantics (the documented error bound, DESIGN.md §15): with
// T = MinObjectsForDensity(rho, l) and the conservative / expansive block
// sums C and E of raster.h,
//
//   C(cell) >= T  ->  accept   (every point of the cell is dense)
//   E(cell) <  T  ->  reject   (no point of the cell is dense)
//   otherwise     ->  candidate
//
// so `region` (accepts) is a subset of the exact FR answer and
// `maybe_region` (accepts + candidates) a superset, both up to the
// measure-zero domain-edge locus raster.h documents; the per-cell count
// uncertainty is at most E - C, which shrinks as m grows. tests/fft_test.cc
// asserts the sandwich against exact FR across 200 seeded scenarios and
// the block sums bit-for-bit against direct convolution.
//
// Cancellation: an active QueryControl is checked at the engine's work
// boundaries — query entry, after rasterization / before the forward
// transform, and before each kernel multiply + inverse — so the
// degradation ladder can abandon a field build within one transform
// quantum. Field and kernel spectra are cached (fields per q_t until the
// next update, kernels per half-width for the engine's lifetime); a
// cancelled build leaves no partial cache entry.

#ifndef PDR_FFT_FFT_ENGINE_H_
#define PDR_FFT_FFT_ENGINE_H_

#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "pdr/common/errors.h"
#include "pdr/common/region.h"
#include "pdr/fft/raster.h"
#include "pdr/histogram/filter.h"
#include "pdr/mobility/object.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

class FftDensityEngine {
 public:
  struct Options {
    double extent = 1000.0;
    /// Raster resolution m (cells per side). The spectral grid is the
    /// next power of two >= 2m, so wraparound never reaches the answer
    /// window for any l.
    int grid = 128;
    Tick horizon = 120;  ///< H = U + W, same contract as the other engines
  };

  struct QueryResult {
    Region region;        ///< certainly dense: accepted cells
    Region maybe_region;  ///< accepts + candidates: every dense point is here
    int64_t accepted_cells = 0;
    int64_t rejected_cells = 0;
    int64_t candidate_cells = 0;
    double field_ms = 0.0;     ///< rasterize + forward FFT (0 on cache hit)
    double classify_ms = 0.0;  ///< kernel passes + classification
    bool field_cached = false; ///< the field spectrum was already built
    int grid = 0;              ///< m this answer was computed at
  };

  struct BatchQuery {
    double rho = 0.0;
    double l = 0.0;
  };

  explicit FftDensityEngine(const Options& options);

  const Options& options() const { return options_; }
  const RasterGrid& raster() const { return raster_; }

  void AdvanceTo(Tick now);
  Tick now() const { return now_; }

  /// Applies one update (same stream as the FR engine); invalidates every
  /// cached field spectrum.
  void Apply(const UpdateEvent& update);

  size_t live_objects() const { return table_.size(); }

  /// One snapshot query. Throws HorizonError outside [now, now + H],
  /// CancelledError at a work boundary when `ctl` fired, and
  /// FftRoundoffError if the integer-rounding margin is ever exceeded
  /// (no supported geometry reaches it).
  QueryResult Query(Tick q_t, double rho, double l,
                    const QueryControl& ctl = {});

  /// Many (rho, l) pairs against one tick's field: the field is built (or
  /// reused) once and every distinct half-width's block sums once; each
  /// additional query is a classification pass only.
  std::vector<QueryResult> QueryBatch(Tick q_t,
                                      const std::vector<BatchQuery>& queries,
                                      const QueryControl& ctl = {});

  /// Block sums over the (2h+1)^2 neighborhood for every cell at q_t,
  /// computed spectrally (exposed for the metamorphic/differential
  /// tests). h is clamped to m - 1, past which blocks cover the grid.
  std::vector<int64_t> BlockSums(Tick q_t, int half_width,
                                 const QueryControl& ctl = {});

  /// Total raster mass at q_t == number of live in-domain objects
  /// (mass-conservation witness).
  int64_t FieldMass(Tick q_t);

 private:
  struct Field {
    std::vector<std::complex<double>> spectrum;  ///< M x M forward transform
    int64_t mass = 0;
    /// Block sums already inverted for this field, keyed by half-width.
    std::map<int, std::vector<int64_t>> sums;
  };

  Field& FieldFor(Tick q_t, const QueryControl& ctl, double* build_ms);
  const std::vector<int64_t>& SumsFor(Field& field, int half_width,
                                      const QueryControl& ctl);
  const std::vector<std::complex<double>>& KernelFor(int half_width);

  Options options_;
  RasterGrid raster_;
  Grid report_grid_;  ///< half-open cells for Region output (area-identical)
  int M_;             ///< spectral side: NextPow2(2 * grid)
  Tick now_ = 0;
  ObjectTable table_;
  std::map<Tick, Field> fields_;
  std::map<int, std::vector<std::complex<double>>> kernels_;
};

}  // namespace pdr

#endif  // PDR_FFT_FFT_ENGINE_H_
