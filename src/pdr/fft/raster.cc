#include "pdr/fft/raster.h"

namespace pdr {

std::vector<double> RasterizeCounts(const RasterGrid& grid,
                                    const std::vector<Vec2>& positions) {
  const int m = grid.cells_per_side();
  const double extent = grid.extent();
  std::vector<double> counts(static_cast<size_t>(m) * m, 0.0);
  for (const Vec2& p : positions) {
    if (p.x < 0.0 || p.x > extent || p.y < 0.0 || p.y > extent) continue;
    const int col = grid.ColOf(p.x);
    const int row = grid.RowOf(p.y);
    counts[static_cast<size_t>(row) * m + col] += 1.0;
  }
  return counts;
}

}  // namespace pdr
