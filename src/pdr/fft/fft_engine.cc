#include "pdr/fft/fft_engine.h"

#include <algorithm>
#include <utility>

#include "pdr/common/stats.h"
#include "pdr/fft/fft.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"

namespace pdr {
namespace {

struct FftMetrics {
  Counter& queries;
  Counter& fields_built;
  Counter& field_cache_hits;
  Counter& kernel_builds;
  Counter& kernel_cache_hits;
  Histogram& field_build_ms;
  Histogram& classify_ms;

  static FftMetrics& Get() {
    static FftMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.fft.queries"),
        MetricsRegistry::Global().GetCounter("pdr.fft.fields_built"),
        MetricsRegistry::Global().GetCounter("pdr.fft.field_cache_hits"),
        MetricsRegistry::Global().GetCounter("pdr.fft.kernel_builds"),
        MetricsRegistry::Global().GetCounter("pdr.fft.kernel_cache_hits"),
        MetricsRegistry::Global().GetHistogram("pdr.fft.field_build_ms"),
        MetricsRegistry::Global().GetHistogram("pdr.fft.classify_ms"),
    };
    return m;
  }
};

}  // namespace

FftDensityEngine::FftDensityEngine(const Options& options)
    : options_(options),
      raster_(options.extent, options.grid),
      report_grid_(options.extent, options.grid),
      M_(NextPow2(2 * options.grid)) {}

void FftDensityEngine::AdvanceTo(Tick now) {
  now_ = now;
  // Fields behind the clock can never be queried again (horizon starts at
  // now); their spectra only hold memory.
  fields_.erase(fields_.begin(), fields_.lower_bound(now));
}

void FftDensityEngine::Apply(const UpdateEvent& update) {
  table_.Apply(update);
  fields_.clear();  // every cached field predicts from stale states now
}

FftDensityEngine::Field& FftDensityEngine::FieldFor(Tick q_t,
                                                    const QueryControl& ctl,
                                                    double* build_ms) {
  const auto it = fields_.find(q_t);
  if (it != fields_.end()) {
    FftMetrics::Get().field_cache_hits.Increment();
    if (build_ms != nullptr) *build_ms = 0.0;
    return it->second;
  }
  Timer timer;
  ctl.Check();  // boundary: about to rasterize
  const std::vector<double> counts =
      RasterizeCounts(raster_, table_.PositionsAt(q_t));
  int64_t mass = 0;
  for (const double c : counts) mass += static_cast<int64_t>(c);
  ctl.Check();  // boundary: rasterized, about to run the forward transform
  Field field;
  field.spectrum = ForwardReal2D(counts, options_.grid, M_);
  field.mass = mass;
  const double elapsed = timer.ElapsedMillis();
  if (build_ms != nullptr) *build_ms = elapsed;
  FftMetrics& m = FftMetrics::Get();
  m.fields_built.Increment();
  m.field_build_ms.Observe(elapsed);
  FlightRecorder::Record(FrEvent::kFftField, static_cast<int64_t>(q_t),
                         static_cast<int64_t>(options_.grid));
  return fields_.emplace(q_t, std::move(field)).first->second;
}

const std::vector<std::complex<double>>& FftDensityEngine::KernelFor(
    int half_width) {
  const auto it = kernels_.find(half_width);
  if (it != kernels_.end()) {
    FftMetrics::Get().kernel_cache_hits.Increment();
    return it->second;
  }
  FftMetrics::Get().kernel_builds.Increment();
  return kernels_.emplace(half_width, BoxKernelSpectrum(half_width, M_))
      .first->second;
}

const std::vector<int64_t>& FftDensityEngine::SumsFor(Field& field,
                                                      int half_width,
                                                      const QueryControl& ctl) {
  const auto it = field.sums.find(half_width);
  if (it != field.sums.end()) return it->second;
  ctl.Check();  // boundary: about to run a kernel multiply + inverse
  double residual = 0.0;
  std::vector<int64_t> sums =
      SpectralBlockSums(field.spectrum, KernelFor(half_width), M_,
                        options_.grid, &residual);
  if (residual >= 0.5) throw FftRoundoffError(residual);
  return field.sums.emplace(half_width, std::move(sums)).first->second;
}

FftDensityEngine::QueryResult FftDensityEngine::Query(Tick q_t, double rho,
                                                      double l,
                                                      const QueryControl& ctl) {
  ValidateHorizon("fft", q_t, now_, options_.horizon);
  ctl.Check();  // boundary: query entry
  FftMetrics::Get().queries.Increment();

  QueryResult out;
  out.grid = options_.grid;
  const bool had_field = fields_.find(q_t) != fields_.end();
  Field& field = FieldFor(q_t, ctl, &out.field_ms);
  out.field_cached = had_field;

  Timer classify_timer;
  const int m = options_.grid;
  const int64_t threshold = MinObjectsForDensity(rho, l);
  const int a = raster_.ConservativeHalfWidth(l);
  const int b = std::min(raster_.ExpansiveHalfWidth(l), m - 1);
  const std::vector<int64_t>* cons =
      a >= 0 ? &SumsFor(field, std::min(a, m - 1), ctl) : nullptr;
  const std::vector<int64_t>& expansive = SumsFor(field, b, ctl);

  FilterResult filter;
  filter.cells_per_side = m;
  filter.classes.resize(static_cast<size_t>(m) * m);
  for (size_t i = 0; i < filter.classes.size(); ++i) {
    const int64_t cons_count = cons != nullptr ? (*cons)[i] : 0;
    if (cons_count >= threshold) {
      filter.classes[i] = CellClass::kAccept;
      ++filter.accepted;
    } else if (expansive[i] < threshold) {
      filter.classes[i] = CellClass::kReject;
      ++filter.rejected;
    } else {
      filter.classes[i] = CellClass::kCandidate;
      ++filter.candidates;
    }
  }
  out.region = CellsAsRegion(filter, report_grid_, /*include_candidates=*/false);
  out.maybe_region =
      CellsAsRegion(filter, report_grid_, /*include_candidates=*/true);
  out.accepted_cells = filter.accepted;
  out.rejected_cells = filter.rejected;
  out.candidate_cells = filter.candidates;
  out.classify_ms = classify_timer.ElapsedMillis();
  FftMetrics::Get().classify_ms.Observe(out.classify_ms);
  return out;
}

std::vector<FftDensityEngine::QueryResult> FftDensityEngine::QueryBatch(
    Tick q_t, const std::vector<BatchQuery>& queries,
    const QueryControl& ctl) {
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (const BatchQuery& q : queries) {
    out.push_back(Query(q_t, q.rho, q.l, ctl));
  }
  return out;
}

std::vector<int64_t> FftDensityEngine::BlockSums(Tick q_t, int half_width,
                                                 const QueryControl& ctl) {
  ValidateHorizon("fft", q_t, now_, options_.horizon);
  Field& field = FieldFor(q_t, ctl, nullptr);
  return SumsFor(field, std::clamp(half_width, 0, options_.grid - 1), ctl);
}

int64_t FftDensityEngine::FieldMass(Tick q_t) {
  ValidateHorizon("fft", q_t, now_, options_.horizon);
  return FieldFor(q_t, QueryControl{}, nullptr).mass;
}

}  // namespace pdr
