// Multi-version block store: the copy-on-write substrate under MVCC
// snapshot reads (DESIGN.md §14).
//
// A VersionStore<Block> maps a dense integer key space (page ids,
// histogram rows, Chebyshev cells) to per-key chains of immutable block
// versions, each tagged with the epoch that committed it. The write side
// is single-threaded (the update stream): at commit the writer copies
// every block it dirtied out of the live structure and Publishes the copy
// at the epoch being committed. Readers never touch live state — a query
// pinned at epoch E Resolves each key to the newest version with
// epoch <= E and sees a frozen, consistent image no matter how far the
// writer has advanced since.
//
// Memory is reclaimed by epoch, not by refcount. Chain links are plain
// raw atomic pointers — deliberately not std::atomic<std::shared_ptr>,
// whose libstdc++ implementation serializes every reader through a
// lock-bit CAS (and whose relaxed reader-side unlock TSan rightly flags
// as a data race against the writer's swap). The pin protocol makes
// refcounts redundant: a node is only dereferenced by readers whose pin
// can still reach it, so the writer frees nodes in two tiers —
//
//   * Chain tails cut below the reclaim point are deleted immediately:
//     a reader pinned at E >= min_pin stops its walk at the surviving
//     `keep` node (keep->epoch <= min_pin <= E) and never loads beyond
//     it, so nothing past the cut is reachable by any live or future
//     walk (the safety argument is spelled out in DESIGN.md §14,
//     "Reclamation safety").
//   * Nodes a concurrent reader may still *hold* — a head replaced by a
//     same-epoch republish, or a tombstone head dropped with its chain —
//     go to a writer-local graveyard stamped with the newest epoch
//     published so far. Every reader that could have loaded such a node
//     holds a pin <= that stamp, so the node is freed at the first
//     ReclaimBelow whose min_pin exceeds it.
//
// Concurrency contract:
//   Publish / ReclaimBelow — writer thread only.
//   Resolve / Has / counters — any thread, wait-free (acquire loads of
//   raw atomic pointers; chunk directory entries are written once and
//   only grow).
//
// The key directory is chunked so it can grow under concurrent readers
// without relocating anything a reader might hold: a fixed-size array of
// atomic chunk pointers, chunks allocated on demand by the writer.

#ifndef PDR_MVCC_VERSION_STORE_H_
#define PDR_MVCC_VERSION_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pdr {
namespace mvcc {

/// Commit epoch. Epoch 0 is "never committed"; the first committed epoch
/// is 1 (the genesis snapshot published when concurrent mode starts).
using Epoch = uint64_t;

/// What the SnapshotManager needs from every versioned store at commit:
/// cut chains below the reclaim floor and report version-count gauges.
class ReclaimableStore {
 public:
  virtual ~ReclaimableStore() = default;

  /// Drops every version made unreachable once all pins are >= min_pin.
  /// Writer thread only.
  virtual void ReclaimBelow(Epoch min_pin) = 0;

  /// Versions currently reachable from some chain head.
  virtual int64_t live_versions() const = 0;

  /// Versions dropped by reclamation over the store's lifetime.
  virtual int64_t retired_versions() const = 0;
};

template <typename Block>
class VersionStore : public ReclaimableStore {
 public:
  /// `max_keys` bounds the key space (publishing past it throws). The
  /// directory itself costs 8 bytes per kChunkSize keys up front; chunks
  /// materialize only for key ranges actually published.
  explicit VersionStore(size_t max_keys)
      : max_keys_(max_keys),
        chunks_((max_keys + kChunkSize - 1) / kChunkSize) {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }

  ~VersionStore() override {
    for (auto& c : chunks_) {
      Chunk* chunk = c.load(std::memory_order_relaxed);
      if (chunk == nullptr) continue;
      for (auto& head : chunk->heads) {
        DeleteChain(head.load(std::memory_order_relaxed));
      }
      delete chunk;
    }
    for (const auto& entry : graveyard_) delete entry.second;
  }

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Publishes `block` as the version of `key` at `epoch` (writer only).
  /// Epochs must be published in non-decreasing order per key; publishing
  /// the same (key, epoch) twice replaces the earlier block (the commit
  /// path dedups dirty keys, so this is a belt-and-braces path, but it
  /// keeps "last write wins within an epoch" true). A null `block` is a
  /// tombstone: readers at or above `epoch` see the key as absent.
  void Publish(size_t key, Epoch epoch, std::shared_ptr<const Block> block) {
    auto& head = HeadFor(key, /*create=*/true);
    if (epoch > max_published_) max_published_ = epoch;
    const Version* old = head.load(std::memory_order_relaxed);
    Version* node = new Version();
    node->epoch = epoch;
    node->block = std::move(block);
    if (old != nullptr && old->epoch == epoch) {
      // Same-epoch republish: replace, keep the older tail. A reader
      // racing this store may already hold `old`, so it outlives every
      // pin that could have seen it via the graveyard.
      node->prev.store(old->prev.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      head.store(node, std::memory_order_release);
      Retire(old);
    } else {
      node->prev.store(old, std::memory_order_relaxed);
      head.store(node, std::memory_order_release);
      live_ += 1;
    }
  }

  /// True when `key` has any version chain (writer only; used to avoid
  /// publishing tombstones for keys no reader could ever have seen).
  bool Has(size_t key) const {
    const Chunk* chunk = ChunkFor(key);
    if (chunk == nullptr) return false;
    return chunk->heads[key % kChunkSize].load(std::memory_order_acquire) !=
           nullptr;
  }

  /// The version of `key` visible at `epoch`: the newest version with
  /// version.epoch <= epoch. Null when the key has no such version (never
  /// published that early, or tombstoned). Any thread.
  std::shared_ptr<const Block> Resolve(size_t key, Epoch epoch) const {
    const Chunk* chunk = ChunkFor(key);
    if (chunk == nullptr) return nullptr;
    const Version* v =
        chunk->heads[key % kChunkSize].load(std::memory_order_acquire);
    while (v != nullptr && v->epoch > epoch) {
      v = v->prev.load(std::memory_order_acquire);
    }
    return v == nullptr ? nullptr : v->block;
  }

  /// Cuts every chain below its newest version with epoch <= min_pin,
  /// drops chains whose surviving head is a tombstone at or below
  /// min_pin, and frees graveyard nodes no surviving pin can still hold.
  /// Writer thread only; safe against concurrent Resolve at pins >=
  /// min_pin (they stop at or above the cut point and never load beyond).
  void ReclaimBelow(Epoch min_pin) override {
    // Graveyard first: a node stamped `s` was last reachable by readers
    // pinned at or below `s`; min_pin > s means every such pin is gone.
    size_t kept = 0;
    for (auto& entry : graveyard_) {
      if (entry.first < min_pin) {
        delete entry.second;
      } else {
        graveyard_[kept++] = entry;
      }
    }
    graveyard_.resize(kept);

    const size_t limit = key_limit_;
    for (size_t key = 0; key < limit; ++key) {
      Chunk* chunk = MutableChunkFor(key);
      if (chunk == nullptr) {
        // Whole chunk never allocated: skip to its end.
        key += kChunkSize - 1 - key % kChunkSize;
        continue;
      }
      auto& head = chunk->heads[key % kChunkSize];
      const Version* h = head.load(std::memory_order_relaxed);
      if (h == nullptr) continue;
      // Walk to the newest version a reader pinned at min_pin resolves.
      const Version* keep = h;
      while (keep != nullptr && keep->epoch > min_pin) {
        keep = keep->prev.load(std::memory_order_relaxed);
      }
      if (keep == nullptr) continue;  // whole chain still pinned-reachable
      if (keep == h && keep->block == nullptr) {
        // The surviving version is a tombstone every reader agrees on:
        // the key is simply absent; drop the entire chain. A racing
        // reader may have loaded `h` just before the null store (it stops
        // there — h->epoch <= min_pin <= its pin — and reads h->block),
        // so `h` itself is graveyarded; its tail is unreachable from any
        // walk and freed now.
        head.store(nullptr, std::memory_order_release);
        const int64_t n = ChainLength(h);
        retired_ += n;
        live_ -= n;
        const Version* tail = h->prev.load(std::memory_order_relaxed);
        const_cast<Version*>(h)->prev.store(nullptr,
                                            std::memory_order_release);
        DeleteChain(tail);
        Retire(h);
        continue;
      }
      const Version* tail = keep->prev.load(std::memory_order_relaxed);
      if (tail != nullptr) {
        const int64_t cut = ChainLength(tail);
        // Readers at pins >= min_pin stop at `keep` (or earlier); nothing
        // can load keep->prev after this store, so the tail is freed
        // immediately.
        const_cast<Version*>(keep)->prev.store(nullptr,
                                               std::memory_order_release);
        DeleteChain(tail);
        retired_ += cut;
        live_ -= cut;
      }
    }
  }

  int64_t live_versions() const override {
    return live_.load(std::memory_order_relaxed);
  }
  int64_t retired_versions() const override {
    return retired_.load(std::memory_order_relaxed);
  }

  size_t max_keys() const { return max_keys_; }

 private:
  struct Version {
    Epoch epoch = 0;
    std::shared_ptr<const Block> block;  // null = tombstone
    // Atomic so reclamation's cut races cleanly with reader walks.
    std::atomic<const Version*> prev{nullptr};
  };

  static constexpr size_t kChunkSize = 1024;

  struct Chunk {
    std::atomic<const Version*> heads[kChunkSize];

    Chunk() {
      for (auto& h : heads) h.store(nullptr, std::memory_order_relaxed);
    }
  };

  static int64_t ChainLength(const Version* v) {
    int64_t n = 0;
    while (v != nullptr) {
      ++n;
      v = v->prev.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Frees a detached chain (writer or destructor only).
  static void DeleteChain(const Version* v) {
    while (v != nullptr) {
      const Version* prev = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = prev;
    }
  }

  /// Defers freeing a node a concurrent reader may still hold. Any such
  /// reader's pin is <= max_published_ right now (pins are granted at the
  /// committed epoch, which never exceeds the newest published epoch), so
  /// the node is safe to free once min_pin passes that stamp.
  void Retire(const Version* node) {
    graveyard_.emplace_back(max_published_, node);
  }

  const Chunk* ChunkFor(size_t key) const {
    if (key >= max_keys_) return nullptr;
    return chunks_[key / kChunkSize].load(std::memory_order_acquire);
  }

  Chunk* MutableChunkFor(size_t key) {
    return chunks_[key / kChunkSize].load(std::memory_order_acquire);
  }

  std::atomic<const Version*>& HeadFor(size_t key, bool create) {
    if (key >= max_keys_) {
      throw std::out_of_range("VersionStore: key beyond max_keys");
    }
    auto& slot = chunks_[key / kChunkSize];
    Chunk* chunk = slot.load(std::memory_order_acquire);
    if (chunk == nullptr && create) {
      chunk = new Chunk();
      slot.store(chunk, std::memory_order_release);
    }
    if (key >= key_limit_) key_limit_ = key + 1;
    return chunk->heads[key % kChunkSize];
  }

  const size_t max_keys_;
  std::vector<std::atomic<Chunk*>> chunks_;
  size_t key_limit_ = 0;   // writer-only watermark for reclamation scans
  Epoch max_published_ = 0;  // writer-only; stamps graveyard entries
  // Nodes replaced or dropped while possibly still held by a racing
  // reader, stamped with max_published_ at retirement (writer-only).
  std::vector<std::pair<Epoch, const Version*>> graveyard_;
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> retired_{0};
};

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_VERSION_STORE_H_
