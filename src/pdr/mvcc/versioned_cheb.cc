#include "pdr/mvcc/versioned_cheb.h"

#include <memory>

namespace pdr {
namespace mvcc {

VersionedChebModel::VersionedChebModel(ChebGrid* live,
                                       SnapshotManager* manager)
    : live_(live),
      manager_(manager),
      cells_(live->macro_grid().cell_count()),
      slots_(live->slots()),
      versions_(static_cast<size_t>(slots_) * static_cast<size_t>(cells_)) {
  manager_->RegisterStore(this);
}

VersionedChebModel::~VersionedChebModel() {
  manager_->UnregisterStore(this);
}

void VersionedChebModel::PublishDirty() {
  const Epoch epoch = manager_->open_epoch();
  live_->TakeDirtyCells(&scratch_keys_);
  for (const uint32_t key : scratch_keys_) {
    const int slot = static_cast<int>(key) / cells_;
    const int cell = static_cast<int>(key) % cells_;
    versions_.Publish(key, epoch,
                      std::make_shared<Cell>(live_->slot_tick(slot),
                                             live_->SlotSlice(slot)[cell]));
    ++published_;
  }
  scratch_keys_.clear();
}

std::vector<Cheb2D> VersionedChebModel::MaterializeSlice(Epoch epoch,
                                                         Tick q_t) const {
  std::vector<Cheb2D> slice(static_cast<size_t>(cells_),
                            Cheb2D(live_->options().degree));
  const int slot = static_cast<int>(q_t % static_cast<Tick>(slots_));
  for (int cell = 0; cell < cells_; ++cell) {
    const auto block =
        versions_.Resolve(static_cast<size_t>(slot) * cells_ + cell, epoch);
    if (block == nullptr || block->tick != q_t) continue;  // zero expansion
    slice[static_cast<size_t>(cell)] = block->poly;
  }
  return slice;
}

}  // namespace mvcc
}  // namespace pdr
