#include "pdr/mvcc/versioned_histogram.h"

#include <memory>

namespace pdr {
namespace mvcc {

VersionedHistogram::VersionedHistogram(DensityHistogram* live,
                                       SnapshotManager* manager)
    : live_(live),
      manager_(manager),
      m_(live->grid().cells_per_side()),
      slots_(live->slots()),
      versions_(static_cast<size_t>(slots_) * static_cast<size_t>(m_)) {
  manager_->RegisterStore(this);
}

VersionedHistogram::~VersionedHistogram() {
  manager_->UnregisterStore(this);
}

void VersionedHistogram::PublishDirty() {
  const Epoch epoch = manager_->open_epoch();
  live_->TakeDirtyRows(&scratch_keys_);
  for (const uint32_t key : scratch_keys_) {
    const int slot = static_cast<int>(key) / m_;
    const int row = static_cast<int>(key) % m_;
    const std::vector<DensityHistogram::Counter>& slice =
        live_->SlotSlice(slot);
    auto block = std::make_shared<Row>();
    block->tick = live_->slot_tick(slot);
    block->counts.assign(slice.begin() + static_cast<size_t>(row) * m_,
                         slice.begin() + static_cast<size_t>(row + 1) * m_);
    versions_.Publish(key, epoch, std::move(block));
    ++published_;
  }
  scratch_keys_.clear();
}

std::vector<DensityHistogram::Counter> VersionedHistogram::MaterializeSlice(
    Epoch epoch, Tick q_t) const {
  std::vector<DensityHistogram::Counter> slice(
      static_cast<size_t>(m_) * static_cast<size_t>(m_), 0);
  const int slot = static_cast<int>(q_t % static_cast<Tick>(slots_));
  for (int row = 0; row < m_; ++row) {
    const auto block =
        versions_.Resolve(static_cast<size_t>(slot) * m_ + row, epoch);
    if (block == nullptr || block->tick != q_t) continue;  // zeros
    std::copy(block->counts.begin(), block->counts.end(),
              slice.begin() + static_cast<size_t>(row) * m_);
  }
  return slice;
}

}  // namespace mvcc
}  // namespace pdr
