#include "pdr/mvcc/snapshot_manager.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "pdr/obs/registry.h"

namespace pdr {
namespace mvcc {
namespace {

struct MvccMetrics {
  Counter* commits;
  Counter* pins;
  Gauge* committed_epoch;
  Gauge* active_pins;
  Gauge* reclaim_floor;
  Gauge* live_versions;
  Gauge* retired_versions;

  static MvccMetrics& Get() {
    static MvccMetrics m{
        &MetricsRegistry::Global().GetCounter("pdr.mvcc.commits"),
        &MetricsRegistry::Global().GetCounter("pdr.mvcc.pins"),
        &MetricsRegistry::Global().GetGauge("pdr.mvcc.committed_epoch"),
        &MetricsRegistry::Global().GetGauge("pdr.mvcc.active_pins"),
        &MetricsRegistry::Global().GetGauge("pdr.mvcc.reclaim_floor"),
        &MetricsRegistry::Global().GetGauge("pdr.mvcc.live_versions"),
        &MetricsRegistry::Global().GetGauge("pdr.mvcc.retired_versions"),
    };
    return m;
  }
};

}  // namespace

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    epoch_ = other.epoch_;
    states_ = std::move(other.states_);
    other.manager_ = nullptr;
    other.epoch_ = 0;
    other.states_ = {};
  }
  return *this;
}

void Snapshot::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(epoch_);
    manager_ = nullptr;
    states_ = {};
  }
}

SnapshotManager::SnapshotManager() = default;

void SnapshotManager::RegisterStore(ReclaimableStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  stores_.push_back(store);
}

void SnapshotManager::UnregisterStore(ReclaimableStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  stores_.erase(std::remove(stores_.begin(), stores_.end(), store),
                stores_.end());
}

Epoch SnapshotManager::Commit(EpochStates states) {
  Epoch committed = 0;
  Epoch min_pin = 0;
  std::vector<ReclaimableStore*> stores;
  {
    std::lock_guard<std::mutex> lock(mu_);
    committed = committed_.load(std::memory_order_relaxed) + 1;
    states_[committed] = std::move(states);
    committed_.store(committed, std::memory_order_release);
    min_pin = pins_.empty() ? committed
                            : std::min(pins_.begin()->first, committed);
    floor_.store(min_pin, std::memory_order_release);
    states_.erase(states_.begin(), states_.lower_bound(min_pin));
    stores = stores_;
  }
  // Reclaim outside the mutex: chain cuts race only with reader Resolve
  // walks, which the cut-point argument (DESIGN.md §14.3) makes safe. Any
  // pin taken meanwhile holds an epoch >= committed >= min_pin.
  for (ReclaimableStore* s : stores) s->ReclaimBelow(min_pin);

  auto& m = MvccMetrics::Get();
  m.commits->Increment();
  m.committed_epoch->Set(static_cast<double>(committed));
  m.reclaim_floor->Set(static_cast<double>(min_pin));
  m.live_versions->Set(static_cast<double>(live_versions()));
  m.retired_versions->Set(static_cast<double>(retired_versions()));
  return committed;
}

Snapshot SnapshotManager::Pin() {
  std::unique_lock<std::mutex> lock(mu_);
  const Epoch epoch = committed_.load(std::memory_order_relaxed);
  if (epoch == 0) {
    throw std::logic_error(
        "SnapshotManager::Pin: no committed epoch (call Commit first)");
  }
  ++pins_[epoch];
  EpochStates states = states_.at(epoch);
  const auto active = static_cast<double>(pins_.size());
  lock.unlock();

  auto& m = MvccMetrics::Get();
  m.pins->Increment();
  m.active_pins->Set(active);
  return Snapshot(this, epoch, std::move(states));
}

void SnapshotManager::Unpin(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(epoch);
  if (it != pins_.end() && --it->second == 0) pins_.erase(it);
  MvccMetrics::Get().active_pins->Set(static_cast<double>(pins_.size()));
}

int64_t SnapshotManager::active_pins() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [epoch, count] : pins_) n += count;
  return n;
}

int64_t SnapshotManager::live_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const ReclaimableStore* s : stores_) n += s->live_versions();
  return n;
}

int64_t SnapshotManager::retired_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const ReclaimableStore* s : stores_) n += s->retired_versions();
  return n;
}

}  // namespace mvcc
}  // namespace pdr
