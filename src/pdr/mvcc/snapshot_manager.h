// Epoch pinning and commit sequencing for MVCC snapshot reads.
//
// The SnapshotManager owns the epoch clock shared by every versioned
// store (pages, histogram rows, Chebyshev cells). The protocol
// (DESIGN.md §14):
//
//   writer (one thread)              readers (any thread)
//   ----------------------------     -----------------------------
//   mutate live structures           snap = manager.Pin()
//   publish dirty copies at E+1        -> epoch E, frozen EpochStates
//   manager.Commit(states)  // E+1   read version chains at epoch E
//     bump committed epoch           snap destructor releases the pin
//     reclaim below min pin
//
// Pinning takes a mutex for bookkeeping only (a map increment, a state
// handle copy — microseconds); the data plane — every page, histogram
// row and polynomial a query reads — goes through lock-free atomic
// version-chain loads. Writers therefore never wait on readers: commits
// proceed at full rate while arbitrarily slow queries hold arbitrarily
// old epochs, paying only the memory to keep those versions alive.
//
// EpochStates carries the per-engine scalar state frozen at each commit
// (clock, index root, read-path parameters) as opaque shared_ptrs, so
// this layer stays free of core/index dependencies.

#ifndef PDR_MVCC_SNAPSHOT_MANAGER_H_
#define PDR_MVCC_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pdr/mvcc/version_store.h"

namespace pdr {
namespace mvcc {

class SnapshotManager;

/// The frozen per-engine scalar state published with a commit. The
/// pointers are opaque here; FrEngine/PaEngine cast back to their own
/// snapshot-state structs (core/fr_snapshot_state.h).
struct EpochStates {
  std::shared_ptr<const void> fr;
  std::shared_ptr<const void> pa;
};

/// A pinned epoch: movable RAII handle. While alive, every version
/// visible at its epoch stays resolvable; the destructor releases the
/// pin (unblocking reclamation of the epoch once it is the oldest).
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot() { Release(); }

  bool valid() const { return manager_ != nullptr; }
  Epoch epoch() const { return epoch_; }
  const EpochStates& states() const { return states_; }

  /// Releases the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotManager;
  Snapshot(SnapshotManager* manager, Epoch epoch, EpochStates states)
      : manager_(manager), epoch_(epoch), states_(std::move(states)) {}

  SnapshotManager* manager_ = nullptr;
  Epoch epoch_ = 0;
  EpochStates states_;
};

class SnapshotManager {
 public:
  SnapshotManager();
  ~SnapshotManager() = default;
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Registers a versioned store for commit-time reclamation (setup /
  /// writer thread; typically called from engine constructors).
  void RegisterStore(ReclaimableStore* store);
  void UnregisterStore(ReclaimableStore* store);

  /// Last committed epoch (0 = nothing committed yet, pinning throws).
  Epoch committed_epoch() const {
    return committed_.load(std::memory_order_acquire);
  }

  /// The epoch the writer's in-flight mutations will commit as.
  Epoch open_epoch() const { return committed_epoch() + 1; }

  /// Oldest epoch any current pin may hold; versions below it are being
  /// (or have been) reclaimed.
  Epoch reclaim_floor() const {
    return floor_.load(std::memory_order_acquire);
  }

  /// Publishes `states` as epoch committed+1, bumps the committed epoch,
  /// then reclaims every version no surviving pin can reach. Single
  /// writer thread. Returns the epoch just committed.
  Epoch Commit(EpochStates states);

  /// Pins the latest committed epoch. Any thread. Throws std::logic_error
  /// before the first Commit.
  Snapshot Pin();

  int64_t active_pins() const;

  /// Sum of live / retired version counts over all registered stores.
  int64_t live_versions() const;
  int64_t retired_versions() const;

 private:
  friend class Snapshot;
  void Unpin(Epoch epoch);

  // Guards pins_, states_, stores_ membership, and floor updates. Never
  // held while reading version chains.
  mutable std::mutex mu_;
  std::atomic<Epoch> committed_{0};
  std::atomic<Epoch> floor_{1};
  std::map<Epoch, int> pins_;
  std::map<Epoch, EpochStates> states_;  // epochs >= floor keep theirs
  std::vector<ReclaimableStore*> stores_;
};

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_SNAPSHOT_MANAGER_H_
