// Copy-on-write versioned Chebyshev cell expansions — the PA-engine
// analogue of VersionedHistogram. Key = slot * g^2 + cell; each published
// block is one frozen Cheb2D tagged with the tick its slot held at
// commit. MaterializeSlice rebuilds the full g^2 slice for a query tick
// at a pinned epoch; missing or tick-mismatched cells materialize as the
// zero expansion, exactly what the live grid holds for an untouched or
// freshly recycled cell (same argument as the histogram's, DESIGN.md
// §14.2).

#ifndef PDR_MVCC_VERSIONED_CHEB_H_
#define PDR_MVCC_VERSIONED_CHEB_H_

#include <vector>

#include "pdr/cheb/cheb_grid.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/version_store.h"

namespace pdr {
namespace mvcc {

class VersionedChebModel : public ReclaimableStore {
 public:
  /// `live` must outlive this wrapper and have dirty tracking enabled
  /// before its first Apply. Registers with `manager` (not owned).
  VersionedChebModel(ChebGrid* live, SnapshotManager* manager);
  ~VersionedChebModel() override;

  /// Copies every dirty live cell expansion into the version store at
  /// the open epoch. Writer thread only, immediately before Commit.
  void PublishDirty();

  /// The full g^2 expansion slice for `q_t` as frozen at `epoch`. Any
  /// thread; q_t must be pre-validated against the snapshot's horizon.
  std::vector<Cheb2D> MaterializeSlice(Epoch epoch, Tick q_t) const;

  // ReclaimableStore.
  void ReclaimBelow(Epoch min_pin) override {
    versions_.ReclaimBelow(min_pin);
  }
  int64_t live_versions() const override { return versions_.live_versions(); }
  int64_t retired_versions() const override {
    return versions_.retired_versions();
  }

  int64_t published_cells() const { return published_; }

 private:
  struct Cell {
    Tick tick = 0;
    Cheb2D poly;
    Cell(Tick t, const Cheb2D& p) : tick(t), poly(p) {}
  };

  ChebGrid* live_;
  SnapshotManager* manager_;
  const int cells_;  // g^2
  const int slots_;  // horizon + 1
  VersionStore<Cell> versions_;
  std::vector<uint32_t> scratch_keys_;
  int64_t published_ = 0;
};

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_VERSIONED_CHEB_H_
