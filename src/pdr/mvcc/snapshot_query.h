// Snapshot reads: run the engines' exact query cores against a pinned
// epoch while the writer keeps committing.
//
// A snapshot FR query builds a private read stack — SnapshotPager over
// the frozen page versions, its own BufferPool, a SnapshotIndexView
// dispatching to the trees' static traversals with the frozen root/read
// view, and the m*m counter slice materialized from frozen histogram
// rows — then calls the same FrQueryCore the live engine calls. Nothing
// mutable is shared with the writer or with other readers, so any number
// of snapshot queries run concurrently with updates, and each answer is
// bit-identical to serialized execution at the snapshot's epoch
// (tests/mvcc_interleave_test.cc proves this per interleaving).
//
// Snapshot queries always run their refinement serially (no thread
// pool): determinism does not need it — live parallel execution is
// already bit-identical to serial — and the concurrency story here is
// many queries in flight at once, not fan-out inside one.

#ifndef PDR_MVCC_SNAPSHOT_QUERY_H_
#define PDR_MVCC_SNAPSHOT_QUERY_H_

#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/resilience/deadline.h"

namespace pdr {
namespace mvcc {

/// The engine clock frozen in `snap` (what "now" was at its commit).
/// Throws std::logic_error when the snapshot is invalid or carries no FR
/// state.
Tick SnapshotFrNow(const Snapshot& snap);

/// Exact snapshot PDR query against the pinned epoch. `engine` must be
/// the engine whose commits produced `snap` (its SnapshotManager); only
/// its immutable version stores and construction-time options are read,
/// so the writer may mutate and commit concurrently. Validates q_t
/// against [snap now, snap now + H] (HorizonError). `ctl` works exactly
/// as in FrEngine::Query (cancellation mid-snapshot releases cleanly).
FrEngine::QueryResult SnapshotFrQuery(const FrEngine& engine,
                                      const Snapshot& snap, Tick q_t,
                                      double rho, double l,
                                      const QueryControl& ctl = {});

/// Approximate (PA) snapshot query at the pinned epoch; the PA analogue
/// of SnapshotFrQuery.
PaEngine::QueryResult SnapshotPaQuery(const PaEngine& engine,
                                      const Snapshot& snap, Tick q_t,
                                      double rho,
                                      const QueryControl& ctl = {});

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_SNAPSHOT_QUERY_H_
