// Copy-on-write versioned density histogram rows.
//
// The live DensityHistogram stays the writer's structure; with dirty
// tracking enabled it records which (slot, row) counter rows each update
// touches. At commit, PublishDirty() copies just those rows — tagged with
// the tick their slot currently holds — into a VersionStore keyed by
// slot * m + row. A snapshot query materializes the full m*m slice for
// its q_t by resolving the m row keys of q_t's slot at the pinned epoch:
//
//   version found, tick == q_t  ->  the row's frozen counters
//   missing or tick mismatch    ->  zeros
//
// The tick tag is what makes ring-slot recycling safe without eagerly
// publishing zeroed slices: after AdvanceTo recycles a slot to a new
// tick, stale versions still carry the old tick and materialize as the
// zeros the live histogram would report — bit-identical by construction
// (the full interleaving argument is in DESIGN.md §14.2).

#ifndef PDR_MVCC_VERSIONED_HISTOGRAM_H_
#define PDR_MVCC_VERSIONED_HISTOGRAM_H_

#include <vector>

#include "pdr/histogram/density_histogram.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/version_store.h"

namespace pdr {
namespace mvcc {

class VersionedHistogram : public ReclaimableStore {
 public:
  /// `live` must outlive this wrapper and have dirty tracking enabled
  /// before its first Apply. Registers with `manager` (not owned).
  VersionedHistogram(DensityHistogram* live, SnapshotManager* manager);
  ~VersionedHistogram() override;

  /// Copies every dirty live row into the version store at the open
  /// epoch. Writer thread only, immediately before Commit.
  void PublishDirty();

  /// The full m*m counter slice for `q_t` as frozen at `epoch`. Any
  /// thread. The caller must have validated q_t against the snapshot's
  /// horizon window; out-of-window ticks would alias a recycled slot.
  std::vector<DensityHistogram::Counter> MaterializeSlice(Epoch epoch,
                                                          Tick q_t) const;

  // ReclaimableStore.
  void ReclaimBelow(Epoch min_pin) override {
    versions_.ReclaimBelow(min_pin);
  }
  int64_t live_versions() const override { return versions_.live_versions(); }
  int64_t retired_versions() const override {
    return versions_.retired_versions();
  }

  int64_t published_rows() const { return published_; }

 private:
  struct Row {
    Tick tick = 0;  // the tick the slot held when this copy was taken
    std::vector<DensityHistogram::Counter> counts;
  };

  DensityHistogram* live_;
  SnapshotManager* manager_;
  const int m_;      // cells per side == rows per slot == counters per row
  const int slots_;  // horizon + 1
  VersionStore<Row> versions_;
  std::vector<uint32_t> scratch_keys_;
  int64_t published_ = 0;
};

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_VERSIONED_HISTOGRAM_H_
