#include "pdr/mvcc/snapshot_query.h"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "pdr/bx/bx_tree.h"
#include "pdr/common/errors.h"
#include "pdr/common/stats.h"
#include "pdr/core/fr_snapshot_state.h"
#include "pdr/mvcc/versioned_cheb.h"
#include "pdr/mvcc/versioned_histogram.h"
#include "pdr/mvcc/versioned_pager.h"
#include "pdr/tpr/tpr_tree.h"

namespace pdr {
namespace mvcc {
namespace {

/// Read-only ObjectIndex over one pinned epoch: the frozen scalar state
/// plus a private SnapshotPager + BufferPool, dispatching RangeQuery to
/// the trees' static traversal cores. One instance per query; shares
/// nothing mutable with any other thread.
class SnapshotIndexView : public ObjectIndex {
 public:
  SnapshotIndexView(const FrSnapshotState& state, const VersionedPager* pages,
                    Epoch epoch, size_t buffer_pages)
      : state_(state), pager_(pages, epoch), pool_(&pager_, buffer_pages) {}

  std::vector<std::pair<ObjectId, MotionState>> RangeQuery(
      const Rect& window, Tick t) const override {
    if (state_.index == IndexKind::kTprTree) {
      return TprTree::RangeQueryFrom(pool_, state_.tpr_root, window, t);
    }
    return BxTree::RangeQueryFrom(state_.bx, pool_, window, t);
  }

  size_t size() const override { return state_.size; }
  size_t node_count() const override { return 0; }
  IoStats io_stats() const override { return pool_.stats(); }
  void ResetIoStats() override { pool_.ResetStats(); }
  void DropCaches() override { pool_.Clear(); }

  // A snapshot is immutable; the query core never calls these.
  void Insert(ObjectId, const MotionState&) override { MutationError(); }
  bool Delete(ObjectId) override { MutationError(); }
  void Apply(const UpdateEvent&) override { MutationError(); }
  void AdvanceTo(Tick) override { MutationError(); }

 private:
  [[noreturn]] static void MutationError() {
    throw std::logic_error("SnapshotIndexView: snapshots are read-only");
  }

  const FrSnapshotState& state_;
  SnapshotPager pager_;
  mutable BufferPool pool_;
};

const FrSnapshotState& FrStateOf(const Snapshot& snap) {
  if (!snap.valid()) {
    throw std::logic_error("SnapshotFrQuery: invalid (released?) snapshot");
  }
  const auto* state = static_cast<const FrSnapshotState*>(snap.states().fr.get());
  if (state == nullptr) {
    throw std::logic_error(
        "SnapshotFrQuery: snapshot carries no FR state (was the FR engine "
        "registered before this epoch's commit?)");
  }
  return *state;
}

}  // namespace

Tick SnapshotFrNow(const Snapshot& snap) { return FrStateOf(snap).now; }

FrEngine::QueryResult SnapshotFrQuery(const FrEngine& engine,
                                      const Snapshot& snap, Tick q_t,
                                      double rho, double l,
                                      const QueryControl& ctl) {
  const FrSnapshotState& state = FrStateOf(snap);
  if (engine.versioned_pager() == nullptr) {
    throw std::logic_error("SnapshotFrQuery: engine has snapshots disabled");
  }
  ValidateHorizon("fr", q_t, state.now, engine.options().horizon);
  const std::vector<DensityHistogram::Counter> slice =
      engine.versioned_histogram()->MaterializeSlice(snap.epoch(), q_t);
  SnapshotIndexView index(state, engine.versioned_pager(), snap.epoch(),
                          engine.options().buffer_pages);
  return FrQueryCore(engine.histogram().grid(), slice, index,
                     /*pool=*/nullptr, engine.options().io_ms, q_t, rho, l,
                     /*cold_cache=*/false, ctl);
}

PaEngine::QueryResult SnapshotPaQuery(const PaEngine& engine,
                                      const Snapshot& snap, Tick q_t,
                                      double rho, const QueryControl& ctl) {
  if (!snap.valid()) {
    throw std::logic_error("SnapshotPaQuery: invalid (released?) snapshot");
  }
  const auto* state = static_cast<const PaSnapshotState*>(snap.states().pa.get());
  if (state == nullptr) {
    throw std::logic_error("SnapshotPaQuery: snapshot carries no PA state");
  }
  if (engine.versioned_cheb() == nullptr) {
    throw std::logic_error("SnapshotPaQuery: engine has snapshots disabled");
  }
  ValidateHorizon("pa", q_t, state->now, engine.options().horizon);
  if (ctl.active()) ctl.Check();
  Timer timer;
  PaEngine::QueryResult result;
  const std::vector<Cheb2D> slice =
      engine.versioned_cheb()->MaterializeSlice(snap.epoch(), q_t);
  result.region = ChebGrid::QueryDenseOverSlice(
      engine.model().options(), engine.model().macro_grid(), slice, rho,
      engine.options().eval_grid, &result.bnb, /*pool=*/nullptr,
      ctl.active() ? &ctl : nullptr);
  result.cost.cpu_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace mvcc
}  // namespace pdr
