// Copy-on-write versioned pager: the MVCC seam under the index trees.
//
// VersionedPager is the writer's live pager — a plain MemPager with dirty
// tracking bolted onto WritePage/Free. The index trees mutate it freely
// mid-epoch (splits, merges, in-place entry updates); nothing is copied
// on the write path. At commit, PublishDirty() copies each page dirtied
// this epoch out of the live store into an immutable version tagged with
// the epoch being committed, and publishes tombstones for pages freed
// this epoch. Readers never see the live MemPager at all.
//
// SnapshotPager is the matching read view: a Pager whose ReadPage
// resolves the version chain at a pinned epoch. A snapshot query wraps
// one in a private BufferPool and runs the regular tree traversal code
// against it — the trees stay MVCC-oblivious; only the pager under them
// changes.

#ifndef PDR_MVCC_VERSIONED_PAGER_H_
#define PDR_MVCC_VERSIONED_PAGER_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/version_store.h"
#include "pdr/storage/pager.h"

namespace pdr {
namespace mvcc {

/// An immutable published page version plus the integrity checksum
/// computed when it was published (page bytes bound to page id and the
/// publishing epoch — same binding as the on-disk trailer, with the
/// epoch standing in for the LSN). Snapshot reads re-verify it, so a
/// version damaged while parked in the chain (RAM rot under long-lived
/// snapshots) is detected instead of served.
struct VersionedPage {
  Page page;
  Epoch epoch = 0;        ///< epoch the version was published at
  uint64_t checksum = 0;  ///< ComputePageChecksum(page, id, epoch)
};

class VersionedPager : public Pager, public ReclaimableStore {
 public:
  /// Registers with `manager` (not owned) for commit-time reclamation.
  explicit VersionedPager(SnapshotManager* manager);
  ~VersionedPager() override;

  // Pager — the writer's live view. Writer thread only.
  PageId Allocate() override { return mem_.Allocate(); }
  void Free(PageId id) override;
  void ReadPage(PageId id, Page* out) const override {
    mem_.ReadPage(id, out);
  }
  void WritePage(PageId id, const Page& page) override;
  size_t allocated_pages() const override { return mem_.allocated_pages(); }
  size_t live_pages() const override { return mem_.live_pages(); }

  /// Copies every page dirtied since the last publish into the version
  /// store at the open epoch, and tombstones pages freed since then.
  /// Writer thread only; call (after flushing the tree's buffer pool)
  /// immediately before SnapshotManager::Commit.
  void PublishDirty();

  /// The version of `id` visible at `epoch` (any thread; null when the
  /// page has no version at or below the epoch).
  std::shared_ptr<const VersionedPage> ResolvePage(PageId id,
                                                   Epoch epoch) const {
    return versions_.Resolve(id, epoch);
  }

  // ReclaimableStore.
  void ReclaimBelow(Epoch min_pin) override {
    versions_.ReclaimBelow(min_pin);
  }
  int64_t live_versions() const override { return versions_.live_versions(); }
  int64_t retired_versions() const override {
    return versions_.retired_versions();
  }

  /// Pages copied into versions over the pager's lifetime.
  int64_t published_pages() const { return published_; }

 private:
  SnapshotManager* manager_;
  MemPager mem_;
  VersionStore<VersionedPage> versions_;
  std::vector<PageId> dirty_;       // insertion order, deduped via dirty_set_
  std::vector<uint8_t> dirty_set_;  // indexed by PageId
  std::unordered_set<PageId> freed_;
  int64_t published_ = 0;
};

/// Read-only Pager over the versions visible at one pinned epoch. Each
/// snapshot query constructs its own (plus a private BufferPool), so
/// concurrent readers share nothing mutable but the version chains.
class SnapshotPager : public Pager {
 public:
  SnapshotPager(const VersionedPager* source, Epoch epoch)
      : source_(source), epoch_(epoch) {}

  void ReadPage(PageId id, Page* out) const override;

  // A snapshot is immutable: the tree read paths never call these.
  PageId Allocate() override;
  void Free(PageId id) override;
  void WritePage(PageId id, const Page& page) override;
  size_t allocated_pages() const override { return 0; }
  size_t live_pages() const override { return 0; }

 private:
  const VersionedPager* source_;
  Epoch epoch_;
};

}  // namespace mvcc
}  // namespace pdr

#endif  // PDR_MVCC_VERSIONED_PAGER_H_
