#include "pdr/mvcc/versioned_pager.h"

#include <stdexcept>

#include "pdr/storage/page_format.h"

namespace pdr {
namespace mvcc {
namespace {

// Generous page-id ceiling for version chains: 4M pages = 16 GiB of
// 4 KiB pages, far past any in-memory index this engine hosts. The
// directory for it costs 32 KiB; chunks materialize on demand.
constexpr size_t kMaxVersionedPages = size_t{1} << 22;

}  // namespace

VersionedPager::VersionedPager(SnapshotManager* manager)
    : manager_(manager), versions_(kMaxVersionedPages) {
  if (manager_ != nullptr) manager_->RegisterStore(this);
}

VersionedPager::~VersionedPager() {
  if (manager_ != nullptr) manager_->UnregisterStore(this);
}

void VersionedPager::Free(PageId id) {
  mem_.Free(id);
  freed_.insert(id);
}

void VersionedPager::WritePage(PageId id, const Page& page) {
  mem_.WritePage(id, page);
  // A freed id that gets re-allocated and re-written within the same
  // epoch is live again: its content, not a tombstone, must publish.
  freed_.erase(id);
  if (dirty_set_.size() <= id) dirty_set_.resize(id + 1, 0);
  if (!dirty_set_[id]) {
    dirty_set_[id] = 1;
    dirty_.push_back(id);
  }
}

void VersionedPager::PublishDirty() {
  const Epoch epoch = manager_->open_epoch();
  for (const PageId id : dirty_) {
    dirty_set_[id] = 0;
    if (freed_.count(id) != 0) continue;  // freed after the write: tombstone
    auto version = std::make_shared<VersionedPage>();
    version->page = mem_.PageAt(id);
    version->epoch = epoch;
    version->checksum = ComputePageChecksum(version->page, id, epoch);
    versions_.Publish(id, epoch, std::move(version));
    ++published_;
  }
  dirty_.clear();
  for (const PageId id : freed_) {
    // Tombstone only pages some earlier epoch published; a page born and
    // freed between commits was never visible to any reader.
    if (versions_.Has(id)) versions_.Publish(id, epoch, nullptr);
  }
  freed_.clear();
}

void SnapshotPager::ReadPage(PageId id, Page* out) const {
  const std::shared_ptr<const VersionedPage> version =
      source_->ResolvePage(id, epoch_);
  if (version == nullptr) {
    throw std::logic_error(
        "SnapshotPager: page has no version at the pinned epoch");
  }
  // Re-verify the checksum stamped at publish: a version damaged while
  // parked in the chain has no redundant copy (the live store has moved
  // on), so detection — not self-healing — is the contract here.
  const uint64_t actual = ComputePageChecksum(version->page, id,
                                              version->epoch);
  if (actual != version->checksum) {
    ThrowCorruption("mvcc:version-chain", id, version->epoch,
                    version->checksum, actual);
  }
  *out = version->page;
}

PageId SnapshotPager::Allocate() {
  throw std::logic_error("SnapshotPager is read-only: Allocate");
}

void SnapshotPager::Free(PageId) {
  throw std::logic_error("SnapshotPager is read-only: Free");
}

void SnapshotPager::WritePage(PageId, const Page&) {
  throw std::logic_error("SnapshotPager is read-only: WritePage");
}

}  // namespace mvcc
}  // namespace pdr
