// Umbrella header: the full public API of the PDR library.
//
// Quick start:
//
//   #include "pdr/pdr.h"
//
//   pdr::WorkloadConfig wl;
//   wl.num_objects = 10000;
//   pdr::Dataset ds = pdr::GenerateDataset(wl.WithExtent(1000.0), 60);
//
//   pdr::FrEngine fr({.extent = 1000.0, .histogram_side = 100,
//                     .horizon = 120, .buffer_pages = 128});
//   pdr::ReplayInto(ds, /*upto=*/-1, &fr);
//
//   auto answer = fr.Query(/*q_t=*/70, /*rho=*/0.01, /*l=*/30.0);
//   for (const pdr::Rect& r : answer.region.rects()) { ... }
//
// See README.md for the architecture overview and examples/ for complete
// programs.

#ifndef PDR_PDR_H_
#define PDR_PDR_H_

#include "pdr/baseline/dense_cell.h"
#include "pdr/baseline/edq.h"
#include "pdr/bx/bplus_tree.h"
#include "pdr/bx/bx_tree.h"
#include "pdr/bx/zcurve.h"
#include "pdr/cheb/cheb2d.h"
#include "pdr/cheb/cheb_grid.h"
#include "pdr/cheb/chebyshev.h"
#include "pdr/cheb/contour.h"
#include "pdr/common/errors.h"
#include "pdr/common/geometry.h"
#include "pdr/common/random.h"
#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/core/explorer.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/metrics.h"
#include "pdr/core/monitor.h"
#include "pdr/core/oracle.h"
#include "pdr/core/pa_engine.h"
#include "pdr/core/paper_config.h"
#include "pdr/core/simulation.h"
#include "pdr/fft/fft.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/fft/raster.h"
#include "pdr/histogram/density_histogram.h"
#include "pdr/histogram/filter.h"
#include "pdr/index/object_index.h"
#include "pdr/mobility/generator.h"
#include "pdr/mobility/object.h"
#include "pdr/mobility/road_network.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/snapshot_query.h"
#include "pdr/mvcc/version_store.h"
#include "pdr/obs/audit.h"
#include "pdr/obs/clock.h"
#include "pdr/obs/explain.h"
#include "pdr/obs/export.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/obs/report.h"
#include "pdr/obs/slo.h"
#include "pdr/obs/workload_log.h"
#include "pdr/replay/replayer.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/deadline.h"
#include "pdr/resilience/executor.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/fsck.h"
#include "pdr/storage/page_format.h"
#include "pdr/storage/wal.h"
#include "pdr/sweep/plane_sweep.h"
#include "pdr/tpr/tpr_tree.h"

#endif  // PDR_PDR_H_
