#include "pdr/replay/replayer.h"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <memory>
#include <utility>

#include <map>

#include "pdr/common/stats.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/monitor.h"
#include "pdr/core/pa_engine.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/parallel/exec_policy.h"

namespace pdr {
namespace {

ExecPolicy ExecForThreads(int threads) {
  return threads == 1 ? ExecPolicy::Serial() : ExecPolicy::Parallel(threads);
}

FrEngine::Options FrOptionsFromHeader(const WorkloadLogHeader& h,
                                      const ExecPolicy& exec) {
  return {.extent = h.extent,
          .histogram_side = h.histogram_side,
          .horizon = h.horizon,
          .buffer_pages = static_cast<size_t>(h.buffer_pages),
          .io_ms = h.io_ms,
          .index = static_cast<IndexKind>(h.index),
          .max_update_interval = h.max_update_interval,
          .exec = exec};
}

PaEngine::Options PaOptionsFromHeader(const WorkloadLogHeader& h,
                                      const ExecPolicy& exec) {
  return {.extent = h.extent,
          .poly_side = h.poly_side,
          .degree = h.degree,
          .horizon = h.horizon,
          .l = h.l,
          .eval_grid = h.eval_grid,
          .exec = exec};
}

FftDensityEngine::Options FftOptionsFromHeader(const WorkloadLogHeader& h) {
  return {.extent = h.extent, .grid = h.fft_grid, .horizon = h.horizon};
}

PdrMonitor::Options MonitorOptionsFromHeader(const WorkloadLogHeader& h) {
  PdrMonitor::Options opts{.rho = h.rho, .l = h.l, .lookahead = h.lookahead};
  opts.resilience.deadline_ms = h.deadline_ms;
  opts.resilience.max_inflight = h.max_inflight;
  opts.resilience.degrade = h.degrade != 0;
  opts.resilience.enable_exact = h.enable_exact != 0;
  opts.resilience.enable_approx = h.enable_approx != 0;
  return opts;
}

// Process CPU time in milliseconds (std::clock is CPU time on POSIX).
// Aggregates all pool threads, so a parallel replay's per-tick CPU cost
// reads as total work, not elapsed time — exactly what a throttling-proof
// regression gate wants.
double CpuNowMs() {
  return 1000.0 * static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

// Nearest-rank percentile over an already sorted sample vector.
double Percentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

// Concurrent-capture verify/bench: re-drive the update stream serialized
// in commit-epoch (= file) order; after each epoch's batch, one serialized
// evaluation of the standing query is the reference answer for every
// recorded snapshot pinned to that epoch.
ReplayResult RunConcurrent(const WorkloadLog& log,
                           const ReplayOptions& options) {
  const WorkloadLogHeader& h = log.header;
  const int threads = options.threads < 0 ? h.threads : options.threads;
  const ExecPolicy exec = ExecForThreads(threads);
  FrEngine fr(FrOptionsFromHeader(h, exec));

  // Recorded snapshot answers, grouped by pinned epoch. Readers record in
  // scheduling order, so tick records interleave arbitrarily with updates
  // records; the grouping restores per-epoch order.
  std::map<uint64_t, std::vector<const WorkloadTickRecord*>> by_epoch;
  for (const WorkloadLogRecord& rec : log.records) {
    if (rec.kind == WorkloadLogRecord::Kind::kTick) {
      by_epoch[rec.query.epoch].push_back(&rec.query);
    }
  }

  ReplayResult result;
  result.threads = threads;
  std::vector<double> samples;
  std::vector<double> cpu_samples;
  Timer total;
  const double cpu_start = CpuNowMs();

  auto report = [&](const WorkloadTickRecord& want,
                    const WorkloadTickRecord& got) {
    result.tier_counts[std::min<uint8_t>(got.tier, 4)] += 1;
    result.replayed.push_back(got);
    ++result.ticks;
    if (options.mode == ReplayOptions::Mode::kVerify &&
        (got.digest != want.digest || got.sig_hash != want.sig_hash ||
         got.tier != want.tier)) {
      ++result.mismatch_count;
      if (static_cast<int>(result.mismatches.size()) <
          options.max_reported_mismatches) {
        result.mismatches.push_back({want.now, want.digest, got.digest,
                                     want.sig_hash, got.sig_hash, want.tier,
                                     got.tier});
      }
    }
  };

  for (const WorkloadLogRecord& rec : log.records) {
    if (rec.kind != WorkloadLogRecord::Kind::kUpdates) continue;
    fr.AdvanceTo(rec.tick);
    for (const UpdateEvent& e : rec.updates) fr.Apply(e);
    result.updates += static_cast<int64_t>(rec.updates.size());

    auto group = by_epoch.find(rec.epoch);
    if (group == by_epoch.end()) continue;  // epoch nobody queried

    const Tick q_t = rec.tick + h.lookahead;
    Timer tick_timer;
    const double tick_cpu = CpuNowMs();
    const FrEngine::QueryResult qr = fr.Query(q_t, h.rho, h.l);
    cpu_samples.push_back(CpuNowMs() - tick_cpu);
    samples.push_back(tick_timer.ElapsedMillis());

    const PdrMonitor::Delta delta = PdrMonitor::MakeSnapshotDelta(
        rec.tick, q_t, h.rho, h.l, rec.epoch, qr, 0.0);
    WorkloadTickRecord got;
    got.now = delta.now;
    got.q_t = delta.q_t;
    got.tier = static_cast<uint8_t>(delta.tier);
    got.downgrade_reason = static_cast<uint8_t>(delta.downgrade_reason);
    got.shed = 0;
    got.digest = TickDigest(delta);
    got.sig_hash = ExplainSignatureHash(delta.explain);
    got.epoch = rec.epoch;
    for (const WorkloadTickRecord* want : group->second) report(*want, got);
    by_epoch.erase(group);
  }

  // Answers pinned to an epoch with no updates record cannot be
  // re-derived; an incomplete capture fails verification rather than
  // passing vacuously.
  for (const auto& [epoch, group] : by_epoch) {
    for (const WorkloadTickRecord* want : group) {
      WorkloadTickRecord got;  // zero digests: nothing re-derivable
      got.now = want->now;
      got.q_t = want->q_t;
      got.epoch = epoch;
      report(*want, got);
    }
  }

  result.total_ms = total.ElapsedMillis();
  result.total_cpu_ms = CpuNowMs() - cpu_start;
  std::sort(samples.begin(), samples.end());
  result.p50_ms = Percentile(samples, 50.0);
  result.p95_ms = Percentile(samples, 95.0);
  result.p99_ms = Percentile(samples, 99.0);
  std::sort(cpu_samples.begin(), cpu_samples.end());
  result.p50_cpu_ms = Percentile(cpu_samples, 50.0);
  result.p95_cpu_ms = Percentile(cpu_samples, 95.0);
  result.p99_cpu_ms = Percentile(cpu_samples, 99.0);
  return result;
}

}  // namespace

Replayer Replayer::FromFile(const std::string& path) {
  return Replayer(WorkloadLog::Load(path));
}

Replayer Replayer::FromBundle(const std::string& bundle_dir) {
  return FromFile(BundleWorkloadLog(bundle_dir));
}

bool Replayer::concurrent() const {
  for (const WorkloadLogRecord& rec : log_.records) {
    if (rec.kind == WorkloadLogRecord::Kind::kUpdates && rec.epoch > 0) {
      return true;
    }
  }
  return false;
}

ReplayResult Replayer::Run(const ReplayOptions& options) const {
  if (concurrent()) return RunConcurrent(log_, options);
  const WorkloadLogHeader& h = log_.header;
  const int threads = options.threads < 0 ? h.threads : options.threads;
  const ExecPolicy exec = ExecForThreads(threads);

  FrEngine fr(FrOptionsFromHeader(h, exec));
  std::unique_ptr<PaEngine> pa;
  if (h.has_fallback != 0) {
    pa = std::make_unique<PaEngine>(PaOptionsFromHeader(h, exec));
  }
  std::unique_ptr<FftDensityEngine> fft;
  if (h.has_fft != 0) {
    fft = std::make_unique<FftDensityEngine>(FftOptionsFromHeader(h));
  }
  PdrMonitor monitor(&fr, MonitorOptionsFromHeader(h));
  if (pa != nullptr) monitor.SetFallback(pa.get());
  if (fft != nullptr) monitor.SetFftRung(fft.get());
  monitor.SetExecPolicy(exec);

  ReplayResult result;
  result.threads = threads;
  std::vector<double> samples;
  std::vector<double> cpu_samples;
  Timer total;
  const double cpu_start = CpuNowMs();

  for (const WorkloadLogRecord& rec : log_.records) {
    fr.AdvanceTo(rec.tick);
    if (pa != nullptr) pa->AdvanceTo(rec.tick);
    if (fft != nullptr) fft->AdvanceTo(rec.tick);
    if (rec.kind == WorkloadLogRecord::Kind::kUpdates) {
      for (const UpdateEvent& e : rec.updates) {
        fr.Apply(e);
        if (pa != nullptr) pa->Apply(e);
        if (fft != nullptr) fft->Apply(e);
      }
      result.updates += static_cast<int64_t>(rec.updates.size());
      continue;
    }

    Timer tick_timer;
    const double tick_cpu = CpuNowMs();
    const PdrMonitor::Delta delta = monitor.OnTick(rec.query.now);
    cpu_samples.push_back(CpuNowMs() - tick_cpu);
    samples.push_back(tick_timer.ElapsedMillis());
    ++result.ticks;

    WorkloadTickRecord got;
    got.now = delta.now;
    got.q_t = delta.q_t;
    got.tier = static_cast<uint8_t>(delta.tier);
    got.downgrade_reason = static_cast<uint8_t>(delta.downgrade_reason);
    got.shed = delta.shed ? 1 : 0;
    got.elapsed_ms = delta.elapsed_ms;
    got.digest = TickDigest(delta);
    got.sig_hash = ExplainSignatureHash(delta.explain);
    result.tier_counts[std::min<uint8_t>(got.tier, 4)] += 1;
    result.replayed.push_back(got);

    if (options.mode == ReplayOptions::Mode::kVerify &&
        (got.digest != rec.query.digest || got.sig_hash != rec.query.sig_hash ||
         got.tier != rec.query.tier)) {
      ++result.mismatch_count;
      if (static_cast<int>(result.mismatches.size()) <
          options.max_reported_mismatches) {
        result.mismatches.push_back({rec.query.now, rec.query.digest,
                                     got.digest, rec.query.sig_hash,
                                     got.sig_hash, rec.query.tier, got.tier});
      }
    }
  }

  result.total_ms = total.ElapsedMillis();
  result.total_cpu_ms = CpuNowMs() - cpu_start;
  std::sort(samples.begin(), samples.end());
  result.p50_ms = Percentile(samples, 50.0);
  result.p95_ms = Percentile(samples, 95.0);
  result.p99_ms = Percentile(samples, 99.0);
  std::sort(cpu_samples.begin(), cpu_samples.end());
  result.p50_cpu_ms = Percentile(cpu_samples, 50.0);
  result.p95_cpu_ms = Percentile(cpu_samples, 95.0);
  result.p99_cpu_ms = Percentile(cpu_samples, 99.0);
  return result;
}

WorkloadRecorder::Stats RecordDataset(const Dataset& dataset,
                                      const std::string& log_path,
                                      WorkloadLogHeader header,
                                      const std::string& bundle_dir) {
  header.extent = dataset.config.extent;
  header.num_objects = dataset.config.num_objects;
  header.max_update_interval = dataset.config.max_update_interval;
  header.seed = dataset.config.seed;
  header.duration = dataset.duration();

  const ExecPolicy exec = ExecForThreads(header.threads);
  FrEngine fr(FrOptionsFromHeader(header, exec));
  std::unique_ptr<PaEngine> pa;
  if (header.has_fallback != 0) {
    pa = std::make_unique<PaEngine>(PaOptionsFromHeader(header, exec));
  }
  std::unique_ptr<FftDensityEngine> fft;
  if (header.has_fft != 0) {
    fft = std::make_unique<FftDensityEngine>(FftOptionsFromHeader(header));
  }
  PdrMonitor monitor(&fr, MonitorOptionsFromHeader(header));
  if (pa != nullptr) monitor.SetFallback(pa.get());
  if (fft != nullptr) monitor.SetFftRung(fft.get());
  monitor.SetExecPolicy(exec);

  WorkloadRecorder recorder(log_path, header);
  monitor.SetRecorder(&recorder);
  if (!bundle_dir.empty()) recorder.ArmBundles(bundle_dir);

  const Tick every = std::max<Tick>(1, header.every);
  for (Tick now = 0; now <= dataset.duration(); ++now) {
    fr.AdvanceTo(now);
    if (pa != nullptr) pa->AdvanceTo(now);
    if (fft != nullptr) fft->AdvanceTo(now);
    for (const UpdateEvent& e : dataset.ticks[now]) {
      fr.Apply(e);
      if (pa != nullptr) pa->Apply(e);
      if (fft != nullptr) fft->Apply(e);
    }
    recorder.OnUpdates(now, dataset.ticks[now]);
    if (now % every == 0) monitor.OnTick(now);
  }
  recorder.Flush();
  return recorder.stats();
}

WorkloadRecorder::Stats RecordConcurrentDataset(const Dataset& dataset,
                                                const std::string& log_path,
                                                WorkloadLogHeader header,
                                                int queries_per_tick) {
  header.extent = dataset.config.extent;
  header.num_objects = dataset.config.num_objects;
  header.max_update_interval = dataset.config.max_update_interval;
  header.seed = dataset.config.seed;
  header.duration = dataset.duration();
  header.has_fallback = 0;  // the concurrent path is FR-only
  header.has_fft = 0;

  const ExecPolicy exec = ExecForThreads(header.threads);
  mvcc::SnapshotManager snapshots;
  FrEngine::Options fr_opts = FrOptionsFromHeader(header, exec);
  fr_opts.snapshots = &snapshots;
  FrEngine fr(fr_opts);
  PdrMonitor monitor(&fr, MonitorOptionsFromHeader(header));
  monitor.SetExecPolicy(exec);

  WorkloadRecorder recorder(log_path, header);
  monitor.SetRecorder(&recorder);
  monitor.StartConcurrent();

  const Tick every = std::max<Tick>(1, header.every);
  for (Tick now = 0; now <= dataset.duration(); ++now) {
    monitor.ApplyUpdates(now, dataset.ticks[now]);
    if (now % every == 0) {
      for (int q = 0; q < queries_per_tick; ++q) monitor.RunSnapshotQuery();
    }
  }
  recorder.Flush();
  return recorder.stats();
}

}  // namespace pdr
