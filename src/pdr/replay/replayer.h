// Deterministic replay of captured workload logs.
//
// A workload log (pdr/obs/workload_log.h) holds everything a serving run
// consumed — configuration header, per-tick update batches — plus what it
// produced: per-tick result digests. The Replayer rebuilds the engines
// from the header alone and re-drives PdrMonitor through the recorded
// stream, in one of two modes:
//
//   kVerify  recompute every tick's digests and compare against the
//            recorded ones. A clean pass proves the replay is bit-identical
//            to the capture, at *any* thread count (the row-major merge
//            guarantee makes the logical answer thread-invariant) — any
//            captured run becomes a differential test. Caveat: captures
//            taken under a wall-clock deadline (header.deadline_ms > 0)
//            verify best-effort only, since which rung answered depended
//            on machine speed; rung toggles (enable_exact/enable_approx)
//            and unbounded captures verify exactly.
//   kBench   re-drive as fast as possible and report per-tick latency
//            percentiles (p50/p95/p99, nearest-rank) and the achieved
//            answer-tier mix — the replay-based perf-regression probe CI
//            compares against BENCH_baseline.json.
//
// The engines are rebuilt in memory (no durable storage): the digests
// exclude I/O counts precisely so a capture taken against a DiskPager
// store replays identically against the in-memory engine.

#ifndef PDR_REPLAY_REPLAYER_H_
#define PDR_REPLAY_REPLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdr/mobility/generator.h"
#include "pdr/obs/workload_log.h"

namespace pdr {

struct ReplayOptions {
  enum class Mode { kVerify, kBench };
  Mode mode = Mode::kVerify;
  /// Thread count for the replayed engines: -1 replays at the capture's
  /// recorded width, 1 forces serial, 0 hardware concurrency, N fixed.
  int threads = -1;
  /// Verify mode: mismatches beyond this many are counted but not stored.
  int max_reported_mismatches = 8;
};

/// One verify-mode divergence: the recorded tick vs what the replay got.
struct ReplayMismatch {
  Tick now = 0;
  uint64_t want_digest = 0;
  uint64_t got_digest = 0;
  uint64_t want_sig = 0;
  uint64_t got_sig = 0;
  uint8_t want_tier = 0;
  uint8_t got_tier = 0;
};

struct ReplayResult {
  int64_t ticks = 0;    ///< monitor evaluations replayed
  int64_t updates = 0;  ///< update events re-applied
  int threads = 1;      ///< width the replay ran at

  /// Verify mode: total divergent ticks (0 = bit-identical) and the first
  /// max_reported_mismatches of them in stream order.
  int64_t mismatch_count = 0;
  std::vector<ReplayMismatch> mismatches;

  /// Bench mode (also filled in verify mode; timings are informational
  /// there): wall time over the whole replay and nearest-rank percentiles
  /// of the per-tick OnTick latency. The *_cpu_ms twins measure process
  /// CPU time per tick — on shared machines wall time swings severalfold
  /// with cgroup throttling while CPU time stays put, so regression gates
  /// compare the CPU percentiles (scripts/check_replay.sh) and humans
  /// read the wall ones.
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double total_cpu_ms = 0.0;
  double p50_cpu_ms = 0.0;
  double p95_cpu_ms = 0.0;
  double p99_cpu_ms = 0.0;

  /// Achieved answer-tier mix, indexed by AnswerTier (kExact, kApprox,
  /// kHistogram, kShed, kFft).
  int64_t tier_counts[5] = {0, 0, 0, 0, 0};

  /// The re-derived per-tick records, parallel to the log's tick records.
  std::vector<WorkloadTickRecord> replayed;

  bool ok() const { return mismatch_count == 0; }
};

class Replayer {
 public:
  explicit Replayer(WorkloadLog log) : log_(std::move(log)) {}

  /// Loads a workload log file (WorkloadLog::Load error contract).
  static Replayer FromFile(const std::string& path);

  /// Loads the workload log inside a repro bundle directory written by
  /// WorkloadRecorder::WriteBundle.
  static Replayer FromBundle(const std::string& bundle_dir);

  const WorkloadLog& log() const { return log_; }

  /// True when the log was captured by a concurrent (MVCC) run: some
  /// updates record carries a commit epoch.
  bool concurrent() const;

  /// Rebuilds the engines from the log header and re-drives the monitor
  /// through every record.
  ///
  /// Concurrent captures (see concurrent()) replay differently: the
  /// update stream is re-driven serialized, in commit-epoch order, and
  /// after each epoch's batch the standing query is evaluated once —
  /// that serialized answer is the reference every recorded snapshot
  /// answer pinned to the epoch must match bit-exactly. A clean pass
  /// proves the concurrent run's every answer equals serialized
  /// execution at its pinned epoch, which is the MVCC correctness
  /// claim. Recorded answers whose epoch has no updates record count as
  /// mismatches (the capture is incomplete).
  ReplayResult Run(const ReplayOptions& options = {}) const;

 private:
  WorkloadLog log_;
};

/// Capture helper shared by `pdr_tool record`, the CI fixture generator,
/// and tests: drives `dataset` through freshly built engines (FR primary,
/// plus a PA fallback when header.has_fallback and an FFT whole-plane
/// rung when header.has_fft) with a WorkloadRecorder attached to the
/// monitor. Dataset-shape header fields (extent,
/// num_objects, max_update_interval, seed, duration) are overwritten from
/// `dataset`; all other knobs (query, resilience, engine geometry,
/// threads) are taken from `header` as passed. A non-empty `bundle_dir`
/// arms incident repro bundles for the duration of the run.
WorkloadRecorder::Stats RecordDataset(const Dataset& dataset,
                                      const std::string& log_path,
                                      WorkloadLogHeader header,
                                      const std::string& bundle_dir = "");

/// Concurrent-capture twin of RecordDataset: drives `dataset` through an
/// MVCC-enabled FR engine via the monitor's concurrent API — per tick one
/// ApplyUpdates commit, then `queries_per_tick` RunSnapshotQuery calls on
/// monitor cadence (header.every) — all on the calling thread, so the
/// schedule (and the log bytes) are machine-independent: the canned
/// concurrent fixture and its goldens are generated through here. The
/// same log format verifies captures from genuinely multi-threaded runs;
/// only the record order differs.
WorkloadRecorder::Stats RecordConcurrentDataset(const Dataset& dataset,
                                                const std::string& log_path,
                                                WorkloadLogHeader header,
                                                int queries_per_tick = 1);

}  // namespace pdr

#endif  // PDR_REPLAY_REPLAYER_H_
