// Abstraction over moving-object indexes.
//
// The paper's refinement step needs one operation from its index:
// "retrieve all the objects located within S at timestamp q_t" (Section
// 5.3) — plus maintenance under the update stream. Section 4 notes that
// any of the predictive indexes for linear movement can be adopted; this
// library ships two:
//
//   * TprTree (pdr/tpr)   — time-parameterized R-tree (the paper's choice)
//   * BxTree  (pdr/bx)    — B+-tree over Z-order keys with query
//                           enlargement (Jensen et al., VLDB 2004)
//
// Both live on the same paged storage / LRU buffer pool, so their
// simulated I/O costs are directly comparable (bench_ablation_index).

#ifndef PDR_INDEX_OBJECT_INDEX_H_
#define PDR_INDEX_OBJECT_INDEX_H_

#include <string>
#include <utility>
#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/mobility/object.h"
#include "pdr/storage/buffer_pool.h"

namespace pdr {

class DiskPager;

class ObjectIndex {
 public:
  virtual ~ObjectIndex() = default;

  /// Indexes a new object with its reported motion.
  virtual void Insert(ObjectId id, const MotionState& state) = 0;

  /// Removes an object; returns false when it is not present.
  virtual bool Delete(ObjectId id) = 0;

  /// Applies a full update event (delete old motion and/or insert new).
  virtual void Apply(const UpdateEvent& update) = 0;

  /// Moves the index's logical clock (heuristics / partition rotation).
  virtual void AdvanceTo(Tick now) = 0;

  /// All objects whose predicted position at tick `t` lies inside the
  /// closed rectangle `window`. Const and data-race-free: many threads may
  /// range-query concurrently between BeginConcurrentReads and
  /// EndConcurrentReads (and a single thread may always do so).
  virtual std::vector<std::pair<ObjectId, MotionState>> RangeQuery(
      const Rect& window, Tick t) const = 0;

  /// Number of indexed objects.
  virtual size_t size() const = 0;

  /// Pages currently allocated to index nodes.
  virtual size_t node_count() const = 0;

  /// Buffer-pool statistics (drive the simulated I/O charge).
  virtual IoStats io_stats() const = 0;
  virtual void ResetIoStats() = 0;

  /// Brackets a fork/join stage of concurrent RangeQuery calls. Between
  /// the two, no mutating call (Insert/Delete/Apply/AdvanceTo) is allowed.
  /// Defaults are no-ops for indexes without shared mutable read state.
  virtual void BeginConcurrentReads() {}
  virtual void EndConcurrentReads() {}

  /// I/O performed by the calling thread since its last call, inside a
  /// concurrent-reads bracket (zero outside one). Lets parallel per-cell
  /// refinement attribute I/O per cell without cross-thread pollution.
  virtual IoStats TakeThreadIoDelta() { return IoStats{}; }

  /// Drops the buffer cache (cold-start measurements).
  virtual void DropCaches() = 0;

  /// Writes every dirty buffered page back to the underlying pager, so
  /// the pager holds the complete current tree image. The MVCC commit
  /// path calls this before publishing copy-on-write page versions
  /// (src/pdr/mvcc/versioned_pager.h). Default: nothing buffered.
  virtual void FlushBufferPool() {}

  // Durability hooks — implemented by indexes sitting on a DiskPager
  // (storage_dir set in their options); the defaults describe a
  // memory-only index.

  /// True when the index is backed by a durable (file-backed) store.
  virtual bool durable() const { return false; }

  /// Flushes the buffer pool and checkpoints the underlying store; the
  /// index's own metadata (root, clocks, object maps) and the caller's
  /// `app_meta` blob become durable atomically with the page images.
  /// No-op when not durable.
  virtual void Checkpoint(const std::string& app_meta) { (void)app_meta; }

  /// True when construction recovered pre-existing durable state.
  virtual bool recovered() const { return false; }

  /// The `app_meta` blob from the recovered checkpoint ("" when none).
  virtual const std::string& recovered_app_meta() const {
    static const std::string kEmpty;
    return kEmpty;
  }

  /// The durable store behind the index (stats inspection); null when the
  /// index is memory-only.
  virtual DiskPager* disk() const { return nullptr; }
};

}  // namespace pdr

#endif  // PDR_INDEX_OBJECT_INDEX_H_
