// Density contour extraction (Section 6: the Chebyshev model "can also
// compute contour lines for the approximated distribution in explicit
// form, which provide a clear overview of the distribution of moving
// objects").
//
// Implemented as marching squares over a sampled lattice of the smooth
// approximated field, with linear interpolation along cell edges and
// greedy stitching of segments into polylines.

#ifndef PDR_CHEB_CONTOUR_H_
#define PDR_CHEB_CONTOUR_H_

#include <functional>
#include <vector>

#include "pdr/cheb/cheb_grid.h"
#include "pdr/common/geometry.h"

namespace pdr {

/// One iso-density polyline; `closed` when the line forms a loop.
struct Contour {
  std::vector<Vec2> points;
  bool closed = false;
};

/// Extracts the iso-lines of `field` == `level` over `domain`, sampling a
/// (resolution+1)^2 lattice.
std::vector<Contour> ExtractContours(
    const std::function<double(Vec2)>& field, const Rect& domain,
    double level, int resolution);

/// Convenience overload: iso-lines of the PA density model at tick `t`.
std::vector<Contour> ExtractDensityContours(const ChebGrid& grid, Tick t,
                                            double level, int resolution);

}  // namespace pdr

#endif  // PDR_CHEB_CONTOUR_H_
