#include "pdr/cheb/cheb2d.h"

#include <cassert>
#include <cmath>

namespace pdr {

Cheb2D::Cheb2D(int degree) : degree_(degree) {
  assert(degree >= 0);
  row_offset_.resize(degree_ + 1);
  size_t offset = 0;
  for (int i = 0; i <= degree_; ++i) {
    row_offset_[i] = offset;
    offset += static_cast<size_t>(degree_ - i + 1);
  }
  coeffs_.assign(offset, 0.0);
}

size_t Cheb2D::IndexOf(int i, int j) const {
  assert(i >= 0 && j >= 0 && i + j <= degree_);
  return row_offset_[i] + static_cast<size_t>(j);
}

double Cheb2D::Eval(double x, double y) const {
  // T tables via the recurrence; degree is small (<= 8 in practice).
  double tx[16], ty[16];
  assert(degree_ < 16);
  ChebTAll(degree_, x, tx);
  ChebTAll(degree_, y, ty);
  double sum = 0.0;
  for (int i = 0; i <= degree_; ++i) {
    double row = 0.0;
    const size_t base = row_offset_[i];
    for (int j = 0; j <= degree_ - i; ++j) {
      row += coeffs_[base + j] * ty[j];
    }
    sum += row * tx[i];
  }
  return sum;
}

Interval Cheb2D::Bound(double x1, double x2, double y1, double y2) const {
  Interval ranges_x[16], ranges_y[16];
  assert(degree_ < 16);
  for (int i = 0; i <= degree_; ++i) {
    ranges_x[i] = ChebTRange(i, x1, x2);
    ranges_y[i] = ChebTRange(i, y1, y2);
  }
  Interval total{0.0, 0.0};
  for (int i = 0; i <= degree_; ++i) {
    const size_t base = row_offset_[i];
    for (int j = 0; j <= degree_ - i; ++j) {
      const double a = coeffs_[base + j];
      if (a == 0.0) continue;
      total += (ranges_x[i] * ranges_y[j]) * a;
    }
  }
  return total;
}

void Cheb2D::AddIndicator(double x1, double x2, double y1, double y2,
                          double height) {
  assert(x1 <= x2 && y1 <= y2);
  double ax[16], ay[16];
  assert(degree_ < 16);
  ChebWeightedIntegralAll(degree_, x1, x2, ax);
  ChebWeightedIntegralAll(degree_, y1, y2, ay);
  const double scale = height / (M_PI * M_PI);
  for (int i = 0; i <= degree_; ++i) {
    const double ci = (i == 0) ? 1.0 : 2.0;
    const size_t base = row_offset_[i];
    for (int j = 0; j <= degree_ - i; ++j) {
      const double cj = (j == 0) ? 1.0 : 2.0;
      coeffs_[base + j] += ci * cj * scale * ax[i] * ay[j];
    }
  }
}

void Cheb2D::Reset() { coeffs_.assign(coeffs_.size(), 0.0); }

bool Cheb2D::IsZero() const {
  for (double c : coeffs_) {
    if (c != 0.0) return false;
  }
  return true;
}

}  // namespace pdr
