// Truncated 2-D Chebyshev expansion over [-1, 1]^2 (Section 6.1-6.2).
//
//   f^(x, y) = sum_{0 <= i + j <= k} a_ij T_i(x) T_j(y)
//
// with the triangular truncation i + j <= k the paper uses, giving
// (k+1)(k+2)/2 coefficients. Coefficient updates are *incremental*
// (Lemma 3): adding an indicator-function bump to the approximated field
// adds its closed-form coefficients (Lemma 4) to a_ij, so object inserts
// and deletes are O(k^2) each with no re-fitting.

#ifndef PDR_CHEB_CHEB2D_H_
#define PDR_CHEB_CHEB2D_H_

#include <cstddef>
#include <vector>

#include "pdr/cheb/chebyshev.h"

namespace pdr {

class Cheb2D {
 public:
  /// Expansion of degree `degree` (terms with i + j <= degree).
  explicit Cheb2D(int degree);

  int degree() const { return degree_; }

  /// Number of stored coefficients: (k+1)(k+2)/2.
  size_t coefficient_count() const { return coeffs_.size(); }

  /// Coefficient a_ij (i + j <= degree).
  double coeff(int i, int j) const { return coeffs_[IndexOf(i, j)]; }
  double& coeff(int i, int j) { return coeffs_[IndexOf(i, j)]; }

  /// Evaluates the expansion at (x, y) in [-1, 1]^2.
  double Eval(double x, double y) const;

  /// Tight-ish range bound of the expansion over the box
  /// [x1, x2] x [y1, y2] (subset of [-1, 1]^2): the sum of per-term
  /// interval products using exact T_k ranges.
  Interval Bound(double x1, double x2, double y1, double y2) const;

  /// Adds `height * indicator([x1,x2] x [y1,y2])` to the approximated
  /// function, in closed form:
  ///   a_ij += c_ij/pi^2 * height * A_i(x1, x2) * A_j(y1, y2)
  /// with c_ij = (2 - [i==0]) * (2 - [j==0]) (Theorem 1 / Lemma 4).
  void AddIndicator(double x1, double x2, double y1, double y2,
                    double height);

  /// Sets every coefficient to zero.
  void Reset();

  /// True when all coefficients are exactly zero.
  bool IsZero() const;

  /// Raw coefficient storage (triangular, row i then j).
  const std::vector<double>& raw() const { return coeffs_; }

 private:
  size_t IndexOf(int i, int j) const;

  int degree_;
  // Row-major triangular layout: row i holds j = 0..degree-i, with offset
  // row_offset_[i].
  std::vector<size_t> row_offset_;
  std::vector<double> coeffs_;
};

}  // namespace pdr

#endif  // PDR_CHEB_CHEB2D_H_
