// The PA method's density model (Sections 6.2-6.4): for every tick of the
// horizon, a g x g grid of local Chebyshev expansions approximates the
// point-density field d_t(x, y) in world units (objects per square mile).
//
// Updates: an object whose reported motion predicts position p_t raises
// the density by 1/l^2 over the l-square centered at p_t (it belongs to
// the l-neighborhood of exactly those points). The square is clipped to
// the domain, intersected with each overlapping macro-cell, mapped to the
// cell's local [-1,1]^2 frame, and added to that cell's expansion in
// closed form. Deletes subtract the same quantity, so the model is exactly
// the sum of the live objects' bumps (plus truncation error only).
//
// Queries: per macro-cell branch-and-bound (Section 6.3). A subregion
// whose expansion lower bound is >= rho is wholly dense; one whose upper
// bound is < rho is pruned; otherwise it is quartered until its edge is
// below the evaluation resolution, then decided by its center point.
// QueryDenseGridScan implements the paper's "trivial approach" (evaluate a
// fixed m_d x m_d grid) for the ablation bench.
//
// Unlike the FR structures, the PA model fixes the neighborhood edge l at
// construction (Section 6: "the approximated method assumes that l is
// predetermined").

#ifndef PDR_CHEB_CHEB_GRID_H_
#define PDR_CHEB_CHEB_GRID_H_

#include <cstdint>
#include <vector>

#include "pdr/cheb/cheb2d.h"
#include "pdr/common/geometry.h"
#include "pdr/common/region.h"
#include "pdr/mobility/object.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

class ThreadPool;

/// Work counters for the branch-and-bound search.
struct BnbStats {
  int64_t nodes_visited = 0;
  int64_t accepted_boxes = 0;
  int64_t pruned_boxes = 0;
  int64_t point_evals = 0;

  BnbStats& operator+=(const BnbStats& o) {
    nodes_visited += o.nodes_visited;
    accepted_boxes += o.accepted_boxes;
    pruned_boxes += o.pruned_boxes;
    point_evals += o.point_evals;
    return *this;
  }
};

class ChebGrid {
 public:
  struct Options {
    double extent = 1000.0;  ///< domain edge (miles)
    int grid_side = 10;      ///< g: number of macro-cells per side
    int degree = 5;          ///< k: polynomial degree
    Tick horizon = 120;      ///< H = U + W
    double l = 30.0;         ///< fixed l-square edge
  };

  explicit ChebGrid(const Options& options);

  const Options& options() const { return options_; }
  const Grid& macro_grid() const { return grid_; }

  /// Moves the logical clock, recycling expired slices.
  void AdvanceTo(Tick now);
  Tick now() const { return now_; }

  /// Applies one update event received at `update.tick` (== now()).
  void Apply(const UpdateEvent& update);

  /// Approximated density at point `p`, tick `t` in [now, now + H].
  double Density(Tick t, Vec2 p) const;

  /// All regions with approximated density >= rho at tick t, found by
  /// branch-and-bound with leaf resolution extent/eval_grid. With a
  /// non-null `pool`, the per-macro-cell searches fan out over its
  /// threads; per-cell regions are merged in cell order, so the result is
  /// bit-identical to the serial search. `ctl` (optional) is polled at
  /// every branch-and-bound node, so a deadline-bounded query abandons the
  /// search within one node expansion of expiry (CancelledError).
  Region QueryDense(Tick t, double rho, int eval_grid,
                    BnbStats* stats = nullptr, ThreadPool* pool = nullptr,
                    const QueryControl* ctl = nullptr) const;

  /// The branch-and-bound search over an explicit slice of g^2 cell
  /// expansions — the body of QueryDense, exposed so an MVCC snapshot
  /// query can run it against a materialized frozen slice
  /// (src/pdr/mvcc/versioned_cheb.h) with the exact same code path.
  static Region QueryDenseOverSlice(const Options& options, const Grid& grid,
                                    const std::vector<Cheb2D>& slice,
                                    double rho, int eval_grid,
                                    BnbStats* stats = nullptr,
                                    ThreadPool* pool = nullptr,
                                    const QueryControl* ctl = nullptr);

  /// The paper's "trivial approach": evaluate the density at the centers
  /// of an eval_grid x eval_grid lattice and report dense lattice cells.
  Region QueryDenseGridScan(Tick t, double rho, int eval_grid,
                            BnbStats* stats = nullptr) const;

  /// Number of coefficients in one tick slice (g^2 * (k+1)(k+2)/2).
  size_t CoefficientsPerSlice() const;

  /// Coefficient storage for the whole horizon, in the paper's deployment
  /// representation (float32 per coefficient); Fig. 8(c,d) x-axis.
  size_t ModelBytes() const {
    return (options_.horizon + 1) * CoefficientsPerSlice() * sizeof(float);
  }

  /// Direct slice access for tests (cell index = row * g + col).
  const Cheb2D& CellPoly(Tick t, int cell) const;

  // --- MVCC hooks (src/pdr/mvcc/versioned_cheb.h) -----------------------
  // Versioning is per (slot, cell) expansion: key = slot * g^2 + cell.

  /// Starts recording which cell expansions Apply touches.
  void EnableDirtyTracking() {
    dirty_mark_.assign(slices_.size() * grid_.cell_count(), 0);
  }
  bool dirty_tracking() const { return !dirty_mark_.empty(); }

  /// Drains the dirty (slot, cell) keys accumulated since the last call.
  void TakeDirtyCells(std::vector<uint32_t>* out) {
    for (const uint32_t key : dirty_keys_) dirty_mark_[key] = 0;
    out->swap(dirty_keys_);
    dirty_keys_.clear();
  }

  int slots() const { return static_cast<int>(slices_.size()); }
  Tick slot_tick(int slot) const { return slot_tick_[slot]; }
  const std::vector<Cheb2D>& SlotSlice(int slot) const {
    return slices_[slot];
  }

 private:
  int SlotOf(Tick t) const {
    return static_cast<int>(t % static_cast<Tick>(slices_.size()));
  }
  void AddSquare(Tick t, Vec2 center, double height);
  const std::vector<Cheb2D>& Slice(Tick t) const;

  Options options_;
  Grid grid_;
  Tick now_ = 0;
  std::vector<std::vector<Cheb2D>> slices_;  // (H+1) x g^2 expansions
  std::vector<Tick> slot_tick_;
  std::vector<uint8_t> dirty_mark_;  // empty until EnableDirtyTracking
  std::vector<uint32_t> dirty_keys_;
};

}  // namespace pdr

#endif  // PDR_CHEB_CHEB_GRID_H_
