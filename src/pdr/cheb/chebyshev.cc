#include "pdr/cheb/chebyshev.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdr {

Interval Interval::operator*(const Interval& o) const {
  const double a = lo * o.lo, b = lo * o.hi, c = hi * o.lo, d = hi * o.hi;
  return {std::min(std::min(a, b), std::min(c, d)),
          std::max(std::max(a, b), std::max(c, d))};
}

Interval Interval::operator*(double s) const {
  return s >= 0 ? Interval{lo * s, hi * s} : Interval{hi * s, lo * s};
}

double ChebT(int k, double x) {
  const double xc = std::clamp(x, -1.0, 1.0);
  return std::cos(k * std::acos(xc));
}

void ChebTAll(int degree, double x, double* out) {
  out[0] = 1.0;
  if (degree == 0) return;
  out[1] = x;
  for (int k = 2; k <= degree; ++k) {
    out[k] = 2.0 * x * out[k - 1] - out[k - 2];
  }
}

Interval ChebTRange(int k, double z1, double z2) {
  assert(z1 <= z2);
  if (k == 0) return {1.0, 1.0};
  const double a = ChebT(k, z1);
  const double b = ChebT(k, z2);
  Interval range{std::min(a, b), std::max(a, b)};
  // Interior extrema of T_k are at cos(j*pi/k), value (-1)^j, j = 1..k-1.
  for (int j = 1; j < k; ++j) {
    const double xj = std::cos(j * M_PI / k);
    if (xj >= z1 && xj <= z2) {
      if (j % 2 == 1) {
        range.lo = -1.0;
      } else {
        range.hi = 1.0;
      }
    }
    if (range.lo == -1.0 && range.hi == 1.0) break;
  }
  return range;
}

double ChebWeightedIntegral(int i, double z1, double z2) {
  const double t1 = std::acos(std::clamp(z1, -1.0, 1.0));
  const double t2 = std::acos(std::clamp(z2, -1.0, 1.0));
  if (i == 0) return t1 - t2;
  return (std::sin(i * t1) - std::sin(i * t2)) / i;
}

void ChebWeightedIntegralAll(int degree, double z1, double z2, double* out) {
  const double t1 = std::acos(std::clamp(z1, -1.0, 1.0));
  const double t2 = std::acos(std::clamp(z2, -1.0, 1.0));
  out[0] = t1 - t2;
  if (degree == 0) return;
  // sin(i*t) via the multiple-angle recurrence seeded with sin/cos once.
  const double c1 = 2.0 * std::cos(t1), c2 = 2.0 * std::cos(t2);
  double s1_prev = 0.0, s1 = std::sin(t1);
  double s2_prev = 0.0, s2 = std::sin(t2);
  out[1] = s1 - s2;
  for (int i = 2; i <= degree; ++i) {
    const double s1_next = c1 * s1 - s1_prev;
    const double s2_next = c2 * s2 - s2_prev;
    s1_prev = s1;
    s1 = s1_next;
    s2_prev = s2;
    s2 = s2_next;
    out[i] = (s1 - s2) / i;
  }
}

}  // namespace pdr
