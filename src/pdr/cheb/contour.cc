#include "pdr/cheb/contour.h"

#include <cassert>
#include <cmath>
#include <map>
#include <utility>

namespace pdr {
namespace {

// A segment endpoint snapped to an integer key so that endpoints produced
// by neighboring cells match exactly during stitching.
struct PointKey {
  int64_t x;
  int64_t y;
  bool operator<(const PointKey& o) const {
    return x != o.x ? x < o.x : y < o.y;
  }
};

PointKey KeyOf(Vec2 p, double quantum) {
  return {static_cast<int64_t>(std::llround(p.x / quantum)),
          static_cast<int64_t>(std::llround(p.y / quantum))};
}

struct Segment {
  Vec2 a;
  Vec2 b;
};

// Interpolated crossing of the level set along the edge (p, q).
Vec2 Crossing(Vec2 p, double vp, Vec2 q, double vq, double level) {
  const double denom = vq - vp;
  const double t = std::fabs(denom) < 1e-300 ? 0.5 : (level - vp) / denom;
  const double tc = Clamp(t, 0.0, 1.0);
  return {p.x + (q.x - p.x) * tc, p.y + (q.y - p.y) * tc};
}

}  // namespace

std::vector<Contour> ExtractContours(
    const std::function<double(Vec2)>& field, const Rect& domain,
    double level, int resolution) {
  assert(resolution >= 1);
  const int n = resolution;
  const double dx = domain.Width() / n;
  const double dy = domain.Height() / n;

  // Sample the lattice once.
  std::vector<double> values(static_cast<size_t>(n + 1) * (n + 1));
  std::vector<Vec2> coords(values.size());
  for (int r = 0; r <= n; ++r) {
    for (int c = 0; c <= n; ++c) {
      const Vec2 p{domain.x_lo + c * dx, domain.y_lo + r * dy};
      coords[static_cast<size_t>(r) * (n + 1) + c] = p;
      values[static_cast<size_t>(r) * (n + 1) + c] = field(p);
    }
  }
  const auto at = [&](int r, int c) -> std::pair<Vec2, double> {
    const size_t idx = static_cast<size_t>(r) * (n + 1) + c;
    return {coords[idx], values[idx]};
  };

  // Marching squares: emit one or two segments per lattice cell.
  std::vector<Segment> segments;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const auto [p00, v00] = at(r, c);          // bottom-left
      const auto [p10, v10] = at(r, c + 1);      // bottom-right
      const auto [p01, v01] = at(r + 1, c);      // top-left
      const auto [p11, v11] = at(r + 1, c + 1);  // top-right
      int mask = 0;
      if (v00 >= level) mask |= 1;
      if (v10 >= level) mask |= 2;
      if (v11 >= level) mask |= 4;
      if (v01 >= level) mask |= 8;
      if (mask == 0 || mask == 15) continue;

      const Vec2 bottom = Crossing(p00, v00, p10, v10, level);
      const Vec2 right = Crossing(p10, v10, p11, v11, level);
      const Vec2 top = Crossing(p01, v01, p11, v11, level);
      const Vec2 left = Crossing(p00, v00, p01, v01, level);

      switch (mask) {
        case 1:
        case 14:
          segments.push_back({left, bottom});
          break;
        case 2:
        case 13:
          segments.push_back({bottom, right});
          break;
        case 3:
        case 12:
          segments.push_back({left, right});
          break;
        case 4:
        case 11:
          segments.push_back({right, top});
          break;
        case 6:
        case 9:
          segments.push_back({bottom, top});
          break;
        case 7:
        case 8:
          segments.push_back({left, top});
          break;
        case 5:  // saddle: resolve with the cell-center sample
        case 10: {
          const Vec2 center = {(p00.x + p11.x) / 2, (p00.y + p11.y) / 2};
          const bool center_in = field(center) >= level;
          if ((mask == 5) == center_in) {
            segments.push_back({left, top});
            segments.push_back({bottom, right});
          } else {
            segments.push_back({left, bottom});
            segments.push_back({right, top});
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Stitch segments into polylines by matching quantized endpoints.
  const double quantum = std::min(dx, dy) * 1e-6;
  // Drop zero-length segments (the level set passing exactly through a
  // lattice corner produces them); they would otherwise appear as
  // spurious two-point loops.
  std::erase_if(segments, [&](const Segment& s) {
    const PointKey a = KeyOf(s.a, quantum), b = KeyOf(s.b, quantum);
    return !(a < b) && !(b < a);
  });
  std::multimap<PointKey, size_t> by_endpoint;
  for (size_t i = 0; i < segments.size(); ++i) {
    by_endpoint.emplace(KeyOf(segments[i].a, quantum), i);
    by_endpoint.emplace(KeyOf(segments[i].b, quantum), i);
  }
  std::vector<bool> used(segments.size(), false);
  const auto take_neighbor = [&](Vec2 p, size_t self) -> int {
    auto [lo, hi] = by_endpoint.equal_range(KeyOf(p, quantum));
    for (auto it = lo; it != hi; ++it) {
      if (!used[it->second] && it->second != self) {
        return static_cast<int>(it->second);
      }
    }
    return -1;
  };

  const auto same_point = [&](Vec2 p, Vec2 q) {
    const PointKey a = KeyOf(p, quantum), b = KeyOf(q, quantum);
    return !(a < b) && !(b < a);
  };

  std::vector<Contour> contours;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    Contour contour;
    contour.points = {segments[i].a, segments[i].b};
    // Extend forward from the tail.
    while (true) {
      const Vec2 tail = contour.points.back();
      const int next = take_neighbor(tail, static_cast<size_t>(-1));
      if (next < 0) break;
      used[next] = true;
      const Segment& s = segments[next];
      contour.points.push_back(same_point(s.a, tail) ? s.b : s.a);
    }
    // Extend backward from the head.
    while (true) {
      const Vec2 head = contour.points.front();
      const int next = take_neighbor(head, static_cast<size_t>(-1));
      if (next < 0) break;
      used[next] = true;
      const Segment& s = segments[next];
      contour.points.insert(contour.points.begin(),
                            same_point(s.a, head) ? s.b : s.a);
    }
    contour.closed =
        same_point(contour.points.front(), contour.points.back());
    contours.push_back(std::move(contour));
  }
  return contours;
}

std::vector<Contour> ExtractDensityContours(const ChebGrid& grid, Tick t,
                                            double level, int resolution) {
  return ExtractContours(
      [&](Vec2 p) { return grid.Density(t, p); },
      Rect(0, 0, grid.options().extent, grid.options().extent), level,
      resolution);
}

}  // namespace pdr
