#include "pdr/cheb/cheb_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/parallel/thread_pool.h"

namespace pdr {

ChebGrid::ChebGrid(const Options& options)
    : options_(options), grid_(options.extent, options.grid_side) {
  assert(options.grid_side >= 1 && options.degree >= 0 &&
         options.horizon >= 0 && options.l > 0);
  slices_.assign(options.horizon + 1,
                 std::vector<Cheb2D>(grid_.cell_count(),
                                     Cheb2D(options.degree)));
  slot_tick_.resize(options.horizon + 1);
  for (Tick t = 0; t <= options.horizon; ++t) slot_tick_[SlotOf(t)] = t;
}

void ChebGrid::AdvanceTo(Tick now) {
  assert(now >= now_);
  for (Tick t = now_ + 1; t <= now; ++t) {
    const Tick incoming = t + options_.horizon;
    const int slot = SlotOf(incoming);
    for (Cheb2D& poly : slices_[slot]) poly.Reset();
    slot_tick_[slot] = incoming;
  }
  now_ = now;
}

const std::vector<Cheb2D>& ChebGrid::Slice(Tick t) const {
  assert(t >= now_ && t <= now_ + options_.horizon);
  assert(slot_tick_[SlotOf(t)] == t);
  return slices_[SlotOf(t)];
}

const Cheb2D& ChebGrid::CellPoly(Tick t, int cell) const {
  return Slice(t)[cell];
}

size_t ChebGrid::CoefficientsPerSlice() const {
  const size_t per_cell =
      static_cast<size_t>(options_.degree + 1) * (options_.degree + 2) / 2;
  return per_cell * static_cast<size_t>(grid_.cell_count());
}

void ChebGrid::AddSquare(Tick t, Vec2 center, double height) {
  if (!grid_.InDomain(center)) return;  // domain convention, see generator.h
  const Rect square =
      Rect::CenteredSquare(center, options_.l).ClippedTo(grid_.domain());
  if (square.Empty()) return;
  const int c_lo = grid_.ColOf(square.x_lo);
  const int c_hi = grid_.ColOf(std::nexttoward(square.x_hi, square.x_lo));
  const int r_lo = grid_.RowOf(square.y_lo);
  const int r_hi = grid_.RowOf(std::nexttoward(square.y_hi, square.y_lo));
  std::vector<Cheb2D>& slice = slices_[SlotOf(t)];
  assert(slot_tick_[SlotOf(t)] == t);
  for (int row = r_lo; row <= r_hi; ++row) {
    for (int col = c_lo; col <= c_hi; ++col) {
      const Rect cell = grid_.CellRect(col, row);
      const Rect overlap = square.Intersection(cell);
      if (overlap.Empty()) continue;
      // Map the overlap into the cell-local [-1, 1]^2 frame.
      const double sx = 2.0 / cell.Width();
      const double sy = 2.0 / cell.Height();
      const int flat = grid_.FlatIndex(col, row);
      slice[flat].AddIndicator((overlap.x_lo - cell.x_lo) * sx - 1.0,
                               (overlap.x_hi - cell.x_lo) * sx - 1.0,
                               (overlap.y_lo - cell.y_lo) * sy - 1.0,
                               (overlap.y_hi - cell.y_lo) * sy - 1.0, height);
      if (!dirty_mark_.empty()) {
        const uint32_t key =
            static_cast<uint32_t>(SlotOf(t) * grid_.cell_count() + flat);
        if (!dirty_mark_[key]) {
          dirty_mark_[key] = 1;
          dirty_keys_.push_back(key);
        }
      }
    }
  }
}

void ChebGrid::Apply(const UpdateEvent& update) {
  assert(update.tick == now_ && "updates must be applied at their tick");
  const double inv_l2 = 1.0 / (options_.l * options_.l);
  if (update.old_state) {
    const Tick last = std::min(update.old_state->t_ref + options_.horizon,
                               now_ + options_.horizon);
    for (Tick t = now_; t <= last; ++t) {
      AddSquare(t, update.old_state->PositionAt(t), -inv_l2);
    }
  }
  if (update.new_state) {
    // Usually t_ref == now_; rebuilds may re-insert an older state, which
    // only covers ticks up to t_ref + H — mirror the removal clamp above so
    // that a later delete cancels exactly what was added.
    assert(update.new_state->t_ref <= now_);
    const Tick last = std::min(update.new_state->t_ref + options_.horizon,
                               now_ + options_.horizon);
    for (Tick t = now_; t <= last; ++t) {
      AddSquare(t, update.new_state->PositionAt(t), inv_l2);
    }
  }
}

double ChebGrid::Density(Tick t, Vec2 p) const {
  const int col = grid_.ColOf(p.x);
  const int row = grid_.RowOf(p.y);
  const Rect cell = grid_.CellRect(col, row);
  const double nx = (p.x - cell.x_lo) * 2.0 / cell.Width() - 1.0;
  const double ny = (p.y - cell.y_lo) * 2.0 / cell.Height() - 1.0;
  return Slice(t)[grid_.FlatIndex(col, row)].Eval(
      std::clamp(nx, -1.0, 1.0), std::clamp(ny, -1.0, 1.0));
}

namespace {

/// Recursive branch-and-bound over one macro-cell's normalized frame.
void BnbRecurse(const Cheb2D& poly, const Rect& cell_world, double x1,
                double x2, double y1, double y2, double rho,
                double min_edge_norm, Region* out, BnbStats* stats,
                const QueryControl* ctl) {
  if (ctl != nullptr) ctl->Check();  // cancellation point per node
  if (stats != nullptr) ++stats->nodes_visited;
  const Interval bound = poly.Bound(x1, x2, y1, y2);
  const auto to_world = [&](double nx1, double nx2, double ny1, double ny2) {
    const double wx = cell_world.Width() / 2.0;
    const double wy = cell_world.Height() / 2.0;
    return Rect(cell_world.x_lo + (nx1 + 1.0) * wx,
                cell_world.y_lo + (ny1 + 1.0) * wy,
                cell_world.x_lo + (nx2 + 1.0) * wx,
                cell_world.y_lo + (ny2 + 1.0) * wy);
  };
  if (bound.lo >= rho) {
    out->Add(to_world(x1, x2, y1, y2));
    if (stats != nullptr) ++stats->accepted_boxes;
    return;
  }
  if (bound.hi < rho) {
    if (stats != nullptr) ++stats->pruned_boxes;
    return;
  }
  if (x2 - x1 <= min_edge_norm && y2 - y1 <= min_edge_norm) {
    if (stats != nullptr) ++stats->point_evals;
    const double cx = (x1 + x2) / 2.0;
    const double cy = (y1 + y2) / 2.0;
    if (poly.Eval(cx, cy) >= rho) {
      out->Add(to_world(x1, x2, y1, y2));
    }
    return;
  }
  const double mx = (x1 + x2) / 2.0;
  const double my = (y1 + y2) / 2.0;
  BnbRecurse(poly, cell_world, x1, mx, y1, my, rho, min_edge_norm, out, stats,
             ctl);
  BnbRecurse(poly, cell_world, mx, x2, y1, my, rho, min_edge_norm, out, stats,
             ctl);
  BnbRecurse(poly, cell_world, x1, mx, my, y2, rho, min_edge_norm, out, stats,
             ctl);
  BnbRecurse(poly, cell_world, mx, x2, my, y2, rho, min_edge_norm, out, stats,
             ctl);
}

}  // namespace

Region ChebGrid::QueryDense(Tick t, double rho, int eval_grid,
                            BnbStats* stats, ThreadPool* pool,
                            const QueryControl* ctl) const {
  return QueryDenseOverSlice(options_, grid_, Slice(t), rho, eval_grid, stats,
                             pool, ctl);
}

Region ChebGrid::QueryDenseOverSlice(const Options& options, const Grid& grid,
                                     const std::vector<Cheb2D>& slice,
                                     double rho, int eval_grid,
                                     BnbStats* stats, ThreadPool* pool,
                                     const QueryControl* ctl) {
  assert(eval_grid >= options.grid_side);
  // Leaf resolution: eval_grid cells across the whole domain => normalized
  // edge 2 * g / eval_grid inside one macro-cell.
  const double min_edge_norm =
      2.0 * static_cast<double>(options.grid_side) / eval_grid;
  static Counter& bnb_nodes =
      MetricsRegistry::Global().GetCounter("pdr.pa.bnb_nodes");
  static Counter& bnb_pruned =
      MetricsRegistry::Global().GetCounter("pdr.pa.bnb_pruned");
  static Counter& bnb_accepted =
      MetricsRegistry::Global().GetCounter("pdr.pa.bnb_accepted");
  static Counter& bnb_point_evals =
      MetricsRegistry::Global().GetCounter("pdr.pa.bnb_point_evals");

  // Each macro-cell's search writes its own region and counters; cell
  // regions are concatenated in cell order below, so serial and parallel
  // execution build the identical rectangle sequence before Coalesced().
  const int cell_count = grid.cell_count();
  std::vector<Region> cell_out(static_cast<size_t>(cell_count));
  std::vector<BnbStats> cell_stats(static_cast<size_t>(cell_count));

  const auto search_cell = [&](int64_t cell) {
    const Cheb2D& poly = slice[static_cast<size_t>(cell)];
    // Per-macro-cell branch-and-bound: one span (and one stats scope) per
    // cell, so traces show where the search effort concentrates.
    TraceSpan cell_span("pa.cell");
    BnbStats& cs = cell_stats[static_cast<size_t>(cell)];
    if (poly.IsZero() && rho > 0) {
      ++cs.pruned_boxes;
    } else {
      BnbRecurse(poly, grid.CellRect(static_cast<int>(cell)), -1.0, 1.0,
                 -1.0, 1.0, rho, min_edge_norm,
                 &cell_out[static_cast<size_t>(cell)], &cs, ctl);
    }
    bnb_nodes.Add(cs.nodes_visited);
    bnb_pruned.Add(cs.pruned_boxes);
    bnb_accepted.Add(cs.accepted_boxes);
    bnb_point_evals.Add(cs.point_evals);
    // One summary event per macro cell (per-box events would swamp the
    // ring on deep searches; the counters carry totals).
    if (cs.pruned_boxes > 0) {
      FlightRecorder::Record(FrEvent::kBnbPrune, cell, cs.pruned_boxes);
    }
    if (cell_span.active()) {
      cell_span.SetAttr("cell", static_cast<int64_t>(cell));
      cell_span.SetAttr("nodes_visited", cs.nodes_visited);
      cell_span.SetAttr("accepted_boxes", cs.accepted_boxes);
      cell_span.SetAttr("pruned_boxes", cs.pruned_boxes);
      cell_span.SetAttr("point_evals", cs.point_evals);
    }
  };

  if (pool != nullptr && cell_count > 1) {
    pool->ParallelFor(cell_count, search_cell,
                      ctl != nullptr && ctl->active() ? ctl : nullptr);
  } else {
    for (int64_t cell = 0; cell < cell_count; ++cell) search_cell(cell);
  }

  Region out;
  for (int cell = 0; cell < cell_count; ++cell) {
    out.Add(cell_out[static_cast<size_t>(cell)]);
    if (stats != nullptr) *stats += cell_stats[static_cast<size_t>(cell)];
  }
  return out.Coalesced();
}

Region ChebGrid::QueryDenseGridScan(Tick t, double rho, int eval_grid,
                                    BnbStats* stats) const {
  Grid eval(options_.extent, eval_grid);
  Region out;
  for (int row = 0; row < eval_grid; ++row) {
    for (int col = 0; col < eval_grid; ++col) {
      const Rect cell = eval.CellRect(col, row);
      if (stats != nullptr) ++stats->point_evals;
      if (Density(t, cell.Center()) >= rho) out.Add(cell);
    }
  }
  return out.Coalesced();
}

}  // namespace pdr
