// Chebyshev polynomial primitives (Section 6.1 of the paper).
//
// T_k(x) = cos(k * arccos(x)) on [-1, 1]. The PA method needs three
// operations beyond plain evaluation:
//
//  * the weighted integral A_i(z1, z2) = Int_{z1}^{z2} T_i(x)/sqrt(1-x^2) dx
//    in closed form (Lemma 4), which turns an object's l-square indicator
//    into coefficient deltas in O(1) per coefficient;
//  * tight lower/upper bounds of T_k over a subinterval (Section 6.3),
//    which drive the branch-and-bound dense-region search: the extrema of
//    T_k are +-1 at cos(j*pi/k), so the bound over [z1, z2] is the min/max
//    of the endpoint values and of the interior extrema that fall inside.

#ifndef PDR_CHEB_CHEBYSHEV_H_
#define PDR_CHEB_CHEBYSHEV_H_

#include <vector>

namespace pdr {

/// A closed interval [lo, hi] used for range bounds.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return lo <= v && v <= hi; }

  /// Interval product {a*b : a in this, b in o}.
  Interval operator*(const Interval& o) const;
  /// Interval scaled by a (possibly negative) constant.
  Interval operator*(double s) const;
  Interval operator+(const Interval& o) const {
    return {lo + o.lo, hi + o.hi};
  }
  Interval& operator+=(const Interval& o) {
    lo += o.lo;
    hi += o.hi;
    return *this;
  }
};

/// T_k(x) for x in [-1, 1] (input clamped for boundary-rounding safety).
double ChebT(int k, double x);

/// Fills `out[0..degree]` with T_0(x)..T_degree(x) via the three-term
/// recurrence (one pass, no trigonometry).
void ChebTAll(int degree, double x, double* out);

/// Tight range of T_k over [z1, z2] (subinterval of [-1, 1]).
Interval ChebTRange(int k, double z1, double z2);

/// Closed-form A_i(z1, z2) = Int_{z1}^{z2} T_i(x) / sqrt(1 - x^2) dx:
///   i = 0:  arccos(z1) - arccos(z2)
///   i > 0:  (sin(i*arccos(z1)) - sin(i*arccos(z2))) / i
double ChebWeightedIntegral(int i, double z1, double z2);

/// Fills out[0..degree] with A_i(z1, z2) for all orders at once, using two
/// arccos calls and the sin-multiple recurrence
/// sin((i+1)t) = 2 cos(t) sin(it) - sin((i-1)t) instead of per-order
/// trigonometry. This is the fast path for coefficient updates (the
/// object insert/delete cost of Fig. 9b).
void ChebWeightedIntegralAll(int degree, double z1, double z2, double* out);

}  // namespace pdr

#endif  // PDR_CHEB_CHEBYSHEV_H_
