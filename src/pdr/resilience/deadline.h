// Cooperative cancellation for the query engines.
//
// A query that must answer within a latency budget carries a QueryControl:
// a steady-clock Deadline plus an optional external CancelToken. The
// engines check the control at their natural work quanta — FR per
// candidate cell and per plane-sweep strip, PA per branch-and-bound node,
// ThreadPool::ParallelFor before claiming each index — and abandon the
// query by throwing CancelledError as soon as either signal fires. The
// guarantee is therefore *cooperative*: a query returns within its budget
// plus one work quantum, never mid-quantum (no partial state, no torn
// output buffers).
//
// Everything here is header-only and allocation-free so the control can be
// threaded through pdr_parallel and the engines without new link
// dependencies, and the default-constructed (inactive) control costs one
// predictable branch per check — the no-deadline path stays bit-identical
// to code that never heard of cancellation.

#ifndef PDR_RESILIENCE_DEADLINE_H_
#define PDR_RESILIENCE_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace pdr {

/// Thrown at a cancellation point when the query's control fired. The
/// degradation ladder (resilience/executor.h) catches it and retries at a
/// cheaper answer tier; callers without a ladder see it as the query's
/// failure.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Sticky external cancellation flag, safe to share across threads: any
/// thread may Cancel(), every worker observing the token sees the flag on
/// its next check. Never resets — one token per query attempt.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Steady-clock latency budget. Default-constructed deadlines are unarmed
/// (never expire); Deadline::After(ms) arms one relative to now.
class Deadline {
 public:
  Deadline() = default;

  static Deadline After(double ms) {
    Deadline d;
    d.armed_ = true;
    d.budget_ms_ = ms;
    d.end_ = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool armed() const { return armed_; }
  double budget_ms() const { return budget_ms_; }

  bool Expired() const {
    return armed_ && std::chrono::steady_clock::now() >= end_;
  }

  /// Milliseconds until expiry (0 when expired; +inf-ish when unarmed).
  double RemainingMs() const {
    if (!armed_) return 1e18;
    const double ms = std::chrono::duration<double, std::milli>(
                          end_ - std::chrono::steady_clock::now())
                          .count();
    return ms > 0.0 ? ms : 0.0;
  }

 private:
  bool armed_ = false;
  double budget_ms_ = 0.0;
  std::chrono::steady_clock::time_point end_;
};

/// The per-query cancellation control the engines thread through their hot
/// loops. Inactive (default) controls make every check a single branch.
struct QueryControl {
  const CancelToken* token = nullptr;  ///< external cancellation (optional)
  Deadline deadline;                   ///< latency budget (optional)

  bool active() const { return token != nullptr || deadline.armed(); }

  /// Non-throwing poll, for drain paths that must not unwind.
  bool ShouldCancel() const {
    if (token != nullptr && token->cancelled()) return true;
    return deadline.Expired();
  }

  /// Cancellation point: throws CancelledError when either signal fired.
  void Check() const {
    if (token != nullptr && token->cancelled()) {
      throw CancelledError("query cancelled");
    }
    if (deadline.Expired()) {
      throw CancelledError("query deadline expired (budget " +
                           std::to_string(deadline.budget_ms()) + " ms)");
    }
  }
};

}  // namespace pdr

#endif  // PDR_RESILIENCE_DEADLINE_H_
