// Admission control: a bounded in-flight query count with load shedding.
//
// A serving loop admits each query through TryAdmit() before running it.
// When the in-flight count is at the bound the query is *shed* — the
// caller gets no permit and should return its previous answer (or an
// explicit overload error) instead of queueing: under sustained overload
// an unbounded queue only converts fresh queries into stale ones. Permits
// are RAII so a query that throws still releases its slot.
//
// One controller may be shared by many executors/monitors (one per
// serving thread); all counters are atomic and TryAdmit is lock-free.
// Admitted/shed totals and the live in-flight count are exported through
// the metrics registry (pdr.admission.*).

#ifndef PDR_RESILIENCE_ADMISSION_H_
#define PDR_RESILIENCE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <utility>

namespace pdr {

class AdmissionController {
 public:
  struct Options {
    int max_inflight = 4;  ///< concurrent queries admitted (>= 1)
  };

  explicit AdmissionController(const Options& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot. ok() is false for a shed query; the slot (when
  /// held) is released on destruction or explicit Release().
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& o) noexcept : controller_(o.controller_) {
      o.controller_ = nullptr;
    }
    Permit& operator=(Permit&& o) noexcept {
      if (this != &o) {
        Release();
        controller_ = o.controller_;
        o.controller_ = nullptr;
      }
      return *this;
    }
    ~Permit() { Release(); }

    bool ok() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* c) : controller_(c) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Non-blocking: a holding permit when a slot was free, an empty one
  /// (the query is shed) when the bound is reached.
  Permit TryAdmit();

  /// Runtime bound adjustment (clamped to >= 1): the SLO monitor tightens
  /// the bound under sustained burn and restores it on recovery. Queries
  /// already in flight above a lowered bound finish normally; only new
  /// admissions see the new bound.
  void SetMaxInflight(int max_inflight) {
    max_inflight_.store(max_inflight < 1 ? 1 : max_inflight,
                        std::memory_order_relaxed);
  }
  int max_inflight() const {
    return max_inflight_.load(std::memory_order_relaxed);
  }

  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  int64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  /// shed / (admitted + shed); 0 before any offer.
  double ShedRate() const;

  const Options& options() const { return options_; }

 private:
  void ReleaseSlot();

  Options options_;
  std::atomic<int> max_inflight_{1};  ///< live bound (options_ is the initial)
  std::atomic<int> inflight_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
};

}  // namespace pdr

#endif  // PDR_RESILIENCE_ADMISSION_H_
