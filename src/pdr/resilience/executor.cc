#include "pdr/resilience/executor.h"

#include <utility>

#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/histogram/filter.h"
#include "pdr/obs/obs.h"

namespace pdr {
namespace {

struct ResilienceMetrics {
  Counter& queries;
  Counter& deadline_expired;
  Counter& tier_exact;
  Counter& tier_approx;
  Counter& tier_histogram;
  Histogram& elapsed_ms;

  static ResilienceMetrics& Get() {
    static ResilienceMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.resilience.queries"),
        MetricsRegistry::Global().GetCounter(
            "pdr.resilience.deadline_expired"),
        MetricsRegistry::Global().GetCounter("pdr.resilience.tier_exact"),
        MetricsRegistry::Global().GetCounter("pdr.resilience.tier_approx"),
        MetricsRegistry::Global().GetCounter(
            "pdr.resilience.tier_histogram"),
        MetricsRegistry::Global().GetHistogram("pdr.resilience.elapsed_ms"),
    };
    return m;
  }
};

void Publish(const TieredResult& result) {
  ResilienceMetrics& m = ResilienceMetrics::Get();
  m.queries.Increment();
  if (result.timed_out) m.deadline_expired.Increment();
  switch (result.tier) {
    case AnswerTier::kExact:
      m.tier_exact.Increment();
      break;
    case AnswerTier::kApprox:
      m.tier_approx.Increment();
      break;
    case AnswerTier::kHistogram:
      m.tier_histogram.Increment();
      break;
    case AnswerTier::kShed:
      break;  // stamped by admission-control callers, not the ladder
  }
  m.elapsed_ms.Observe(result.elapsed_ms);
}

}  // namespace

const char* AnswerTierName(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kExact:
      return "exact";
    case AnswerTier::kApprox:
      return "approx";
    case AnswerTier::kHistogram:
      return "histogram";
    case AnswerTier::kShed:
      return "shed";
  }
  return "?";
}

ResilientExecutor::ResilientExecutor(FrEngine* fr, PaEngine* fallback,
                                     const ResilienceOptions& options)
    : fr_(fr), fallback_(fallback), options_(options) {}

TieredResult ResilientExecutor::Query(Tick q_t, double rho, double l,
                                      const CancelToken* token) {
  TraceSpan span("resilience.query");
  Timer timer;
  TieredResult out;
  out.budget_ms = options_.deadline_ms > 0.0 ? options_.deadline_ms : 0.0;

  // One control for the whole ladder: every rung shares the query's
  // budget, so an exact attempt that burns it cannot be recovered by an
  // equally slow approximate attempt — only the bounded histogram floor
  // runs unconditionally.
  QueryControl ctl;
  ctl.token = token;
  if (options_.deadline_ms > 0.0) {
    ctl.deadline = Deadline::After(options_.deadline_ms);
  }

  const auto finish = [&](TieredResult* result) -> TieredResult {
    result->elapsed_ms = timer.ElapsedMillis();
    Publish(*result);
    if (span.active()) {
      span.SetAttr("tier", static_cast<int64_t>(result->tier));
      span.SetAttr("timed_out", static_cast<int64_t>(result->timed_out));
      span.SetAttr("elapsed_ms", result->elapsed_ms);
      span.SetAttr("budget_ms", result->budget_ms);
    }
    return std::move(*result);
  };

  if (options_.enable_exact) {
    try {
      FrEngine::QueryResult exact =
          fr_->Query(q_t, rho, l, /*cold_cache=*/false, ctl);
      out.region = std::move(exact.region);
      out.cost = exact.cost;
      out.tier = AnswerTier::kExact;
      return finish(&out);
    } catch (const CancelledError&) {
      out.timed_out = true;
      if (!options_.degrade) throw;
    }
  }

  // The approximate rung is sound only for the PA engine's own fixed l
  // (Section 6) and only inside its horizon; otherwise fall straight
  // through to the histogram floor.
  if (options_.enable_approx && fallback_ != nullptr &&
      fallback_->options().l == l && q_t >= fallback_->now() &&
      q_t <= fallback_->now() + fallback_->options().horizon) {
    try {
      PaEngine::QueryResult approx = fallback_->Query(q_t, rho, ctl);
      out.region = std::move(approx.region);
      out.cost = approx.cost;
      out.tier = AnswerTier::kApprox;
      return finish(&out);
    } catch (const CancelledError&) {
      out.timed_out = true;
      if (!options_.degrade) throw;
    }
  }

  // Histogram floor: the filter step alone, never cancelled — one bounded
  // O(m^2) scan is the ladder's final work quantum. Pessimistic accepts
  // are the certainly-dense answer; the optimistic superset bounds where
  // density can hide.
  FrEngine::DhResult dh = fr_->DhOnlyQuery(q_t, rho, l, /*optimistic=*/false);
  out.region = std::move(dh.region);
  out.maybe_region =
      CellsAsRegion(dh.filter, fr_->histogram().grid(), true);
  out.cost = CostBreakdown{};
  out.cost.cpu_ms = dh.cpu_ms;
  out.tier = AnswerTier::kHistogram;
  return finish(&out);
}

}  // namespace pdr
