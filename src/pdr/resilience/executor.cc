#include "pdr/resilience/executor.h"

#include <cstring>
#include <utility>

#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/histogram/filter.h"
#include "pdr/common/errors.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/storage/fault_injector.h"

namespace pdr {
namespace {

struct ResilienceMetrics {
  Counter& queries;
  Counter& deadline_expired;
  Counter& tier_exact;
  Counter& tier_fft;
  Counter& tier_approx;
  Counter& tier_histogram;
  Histogram& elapsed_ms;
  // Labeled downgrade-reason counters: the SLO monitor reads these to
  // tell overload (deadline) apart from storage trouble (transient,
  // corruption).
  Counter& reason_deadline;
  Counter& reason_transient;
  Counter& reason_disabled;
  Counter& reason_corruption;

  static ResilienceMetrics& Get() {
    static ResilienceMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.resilience.queries"),
        MetricsRegistry::Global().GetCounter(
            "pdr.resilience.deadline_expired"),
        MetricsRegistry::Global().GetCounter("pdr.resilience.tier_exact"),
        MetricsRegistry::Global().GetCounter("pdr.resilience.tier_fft"),
        MetricsRegistry::Global().GetCounter("pdr.resilience.tier_approx"),
        MetricsRegistry::Global().GetCounter(
            "pdr.resilience.tier_histogram"),
        MetricsRegistry::Global().GetHistogram("pdr.resilience.elapsed_ms"),
        MetricsRegistry::Global().GetCounter(WithLabel(
            "pdr.resilience.downgrade_reason", "reason", "deadline")),
        MetricsRegistry::Global().GetCounter(WithLabel(
            "pdr.resilience.downgrade_reason", "reason", "transient")),
        MetricsRegistry::Global().GetCounter(WithLabel(
            "pdr.resilience.downgrade_reason", "reason", "disabled")),
        MetricsRegistry::Global().GetCounter(WithLabel(
            "pdr.resilience.downgrade_reason", "reason", "corruption")),
    };
    return m;
  }
};

void Publish(const TieredResult& result) {
  ResilienceMetrics& m = ResilienceMetrics::Get();
  m.queries.Increment();
  if (result.timed_out) m.deadline_expired.Increment();
  switch (result.tier) {
    case AnswerTier::kExact:
      m.tier_exact.Increment();
      break;
    case AnswerTier::kFft:
      m.tier_fft.Increment();
      break;
    case AnswerTier::kApprox:
      m.tier_approx.Increment();
      break;
    case AnswerTier::kHistogram:
      m.tier_histogram.Increment();
      break;
    case AnswerTier::kShed:
      break;  // stamped by admission-control callers, not the ladder
  }
  switch (result.downgrade_reason) {
    case DowngradeReason::kDeadline:
      m.reason_deadline.Increment();
      break;
    case DowngradeReason::kTransient:
      m.reason_transient.Increment();
      break;
    case DowngradeReason::kDisabled:
      m.reason_disabled.Increment();
      break;
    case DowngradeReason::kCorruption:
      m.reason_corruption.Increment();
      break;
    case DowngradeReason::kNone:
    case DowngradeReason::kShed:  // counted by the shedding caller
      break;
  }
  m.elapsed_ms.Observe(result.elapsed_ms);
}

}  // namespace

const char* AnswerTierName(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kExact:
      return "exact";
    case AnswerTier::kApprox:
      return "approx";
    case AnswerTier::kHistogram:
      return "histogram";
    case AnswerTier::kShed:
      return "shed";
    case AnswerTier::kFft:
      return "fft";
  }
  return "?";
}

const char* DowngradeReasonName(DowngradeReason reason) {
  switch (reason) {
    case DowngradeReason::kNone:
      return "none";
    case DowngradeReason::kDeadline:
      return "deadline";
    case DowngradeReason::kShed:
      return "shed";
    case DowngradeReason::kTransient:
      return "transient";
    case DowngradeReason::kDisabled:
      return "disabled";
    case DowngradeReason::kCorruption:
      return "corruption";
  }
  return "?";
}

TieredResult ResilientExecutor::Query(Tick q_t, double rho, double l,
                                      const CancelToken* token) {
  TraceSpan span("resilience.query");
  Timer timer;
  TieredResult out;
  out.budget_ms = options_.deadline_ms > 0.0 ? options_.deadline_ms : 0.0;

  // One query id for the whole ladder: every rung's micro-events (and the
  // pool tasks they fan out to) carry it, so an incident dump filters to
  // this query across threads and tiers.
  const uint32_t qid =
      FlightRecorder::Enabled() ? FlightRecorder::NextQueryId() : 0;
  FlightRecorder::QueryScope fr_scope(qid);

  ExplainRecord& explain = out.explain;
  explain.query_id = qid;
  explain.q_t = q_t;
  explain.rho = rho;
  explain.l = l;
  explain.budget_ms = out.budget_ms;

  // One control for the whole ladder: every rung shares the query's
  // budget, so an exact attempt that burns it cannot be recovered by an
  // equally slow approximate attempt — only the bounded histogram floor
  // runs unconditionally.
  QueryControl ctl;
  ctl.token = token;
  if (options_.deadline_ms > 0.0) {
    ctl.deadline = Deadline::After(options_.deadline_ms);
  }

  const auto finish = [&](TieredResult* result) -> TieredResult {
    result->elapsed_ms = timer.ElapsedMillis();
    ExplainRecord& ex = result->explain;
    ex.tier = result->tier;
    ex.downgrade_reason = result->downgrade_reason;
    ex.timed_out = result->timed_out;
    ex.elapsed_ms = result->elapsed_ms;
    Publish(*result);
    if (result->timed_out) {
      FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDeadlineMiss,
                                           "deadline_miss", qid);
    }
    if (span.active()) {
      span.SetAttr("tier", static_cast<int64_t>(result->tier));
      span.SetAttr("reason",
                   static_cast<int64_t>(result->downgrade_reason));
      span.SetAttr("timed_out", static_cast<int64_t>(result->timed_out));
      span.SetAttr("elapsed_ms", result->elapsed_ms);
      span.SetAttr("budget_ms", result->budget_ms);
    }
    return std::move(*result);
  };

  if (options_.enable_exact) {
    FlightRecorder::Record(FrEvent::kTierEnter,
                           static_cast<int64_t>(AnswerTier::kExact),
                           static_cast<int64_t>(out.downgrade_reason));
    const double exact_start_ms = timer.ElapsedMillis();
    try {
      FrEngine::QueryResult exact =
          fr_->Query(q_t, rho, l, /*cold_cache=*/false, ctl);
      out.region = std::move(exact.region);
      out.cost = exact.cost;
      out.tier = AnswerTier::kExact;
      explain.stages.push_back({"filter", exact.filter_ms, true});
      explain.stages.push_back({"refine", exact.refine_ms, true});
      explain.accepted_cells = exact.accepted_cells;
      explain.rejected_cells = exact.rejected_cells;
      explain.candidate_cells = exact.candidate_cells;
      explain.objects_fetched = exact.objects_fetched;
      explain.dense_rects = exact.sweep.dense_rects;
      explain.pages_read_physical = exact.cost.io.physical_reads;
      explain.pages_read_logical = exact.cost.io.logical_reads;
      return finish(&out);
    } catch (const CancelledError&) {
      out.timed_out = true;
      out.downgrade_reason = DowngradeReason::kDeadline;
      explain.stages.push_back(
          {"exact", timer.ElapsedMillis() - exact_start_ms, false});
      FlightRecorder::Record(
          FrEvent::kCancelled, static_cast<int64_t>(AnswerTier::kExact),
          static_cast<int64_t>(timer.ElapsedMillis() * 1000.0));
      if (!options_.degrade) throw;
    } catch (const TransientExhaustedError&) {
      // Storage kept failing past the retry budget. The histogram floor
      // (and the PA rung) are in-memory, so the ladder can still answer —
      // degrade and label the cause so operators see "storage", not
      // "overload".
      out.downgrade_reason = DowngradeReason::kTransient;
      explain.stages.push_back(
          {"exact", timer.ElapsedMillis() - exact_start_ms, false});
      if (!options_.degrade) throw;
    } catch (const CorruptionError&) {
      // A page with no healthy copy surfaced mid-query. Answering exactly
      // from damaged bytes would be a silent wrong answer — the one
      // outcome this system must never produce — so fall to the
      // in-memory rungs, which never touch the damaged store, and label
      // the downgrade so operators see "corruption", not "overload".
      // (Detection already fired the kOnCorruption flight dump.)
      out.downgrade_reason = DowngradeReason::kCorruption;
      explain.stages.push_back(
          {"exact", timer.ElapsedMillis() - exact_start_ms, false});
      if (!options_.degrade) throw;
    }
  } else if (out.downgrade_reason == DowngradeReason::kNone) {
    out.downgrade_reason = DowngradeReason::kDisabled;
  }

  // The FFT rung: one whole-plane transform yields a certain/maybe cell
  // sandwich around the exact answer at the raster's resolution — far
  // tighter than the histogram floor and amortized across every query on
  // the same q_t. Any l is fine (kernel spectra are per-l), but q_t must
  // lie inside the engine's own horizon.
  if (options_.enable_fft && fft_ != nullptr && q_t >= fft_->now() &&
      q_t <= fft_->now() + fft_->options().horizon) {
    FlightRecorder::Record(FrEvent::kTierEnter,
                           static_cast<int64_t>(AnswerTier::kFft),
                           static_cast<int64_t>(out.downgrade_reason));
    const double fft_start_ms = timer.ElapsedMillis();
    try {
      FftDensityEngine::QueryResult fft =
          fft_->Query(q_t, rho, l, ctl);
      out.region = std::move(fft.region);
      out.maybe_region = std::move(fft.maybe_region);
      out.cost = CostBreakdown{};
      out.cost.cpu_ms = fft.field_ms + fft.classify_ms;
      out.tier = AnswerTier::kFft;
      explain.stages.push_back(
          {"fft", timer.ElapsedMillis() - fft_start_ms, true});
      explain.accepted_cells = fft.accepted_cells;
      explain.rejected_cells = fft.rejected_cells;
      explain.candidate_cells = fft.candidate_cells;
      return finish(&out);
    } catch (const CancelledError&) {
      out.timed_out = true;
      if (out.downgrade_reason == DowngradeReason::kNone ||
          out.downgrade_reason == DowngradeReason::kDisabled) {
        out.downgrade_reason = DowngradeReason::kDeadline;
      }
      explain.stages.push_back(
          {"fft", timer.ElapsedMillis() - fft_start_ms, false});
      FlightRecorder::Record(
          FrEvent::kCancelled, static_cast<int64_t>(AnswerTier::kFft),
          static_cast<int64_t>(timer.ElapsedMillis() * 1000.0));
      if (!options_.degrade) throw;
    }
  }

  // The approximate rung is sound only for the PA engine's own fixed l
  // (Section 6) and only inside its horizon; otherwise fall straight
  // through to the histogram floor.
  if (options_.enable_approx && fallback_ != nullptr &&
      fallback_->options().l == l && q_t >= fallback_->now() &&
      q_t <= fallback_->now() + fallback_->options().horizon) {
    FlightRecorder::Record(FrEvent::kTierEnter,
                           static_cast<int64_t>(AnswerTier::kApprox),
                           static_cast<int64_t>(out.downgrade_reason));
    const double approx_start_ms = timer.ElapsedMillis();
    try {
      PaEngine::QueryResult approx = fallback_->Query(q_t, rho, ctl);
      out.region = std::move(approx.region);
      out.cost = approx.cost;
      out.tier = AnswerTier::kApprox;
      explain.stages.push_back(
          {"approx", timer.ElapsedMillis() - approx_start_ms, true});
      explain.bnb_nodes = approx.bnb.nodes_visited;
      explain.bnb_pruned = approx.bnb.pruned_boxes;
      return finish(&out);
    } catch (const CancelledError&) {
      out.timed_out = true;
      if (out.downgrade_reason == DowngradeReason::kNone ||
          out.downgrade_reason == DowngradeReason::kDisabled) {
        out.downgrade_reason = DowngradeReason::kDeadline;
      }
      explain.stages.push_back(
          {"approx", timer.ElapsedMillis() - approx_start_ms, false});
      FlightRecorder::Record(
          FrEvent::kCancelled, static_cast<int64_t>(AnswerTier::kApprox),
          static_cast<int64_t>(timer.ElapsedMillis() * 1000.0));
      if (!options_.degrade) throw;
    }
  }

  // Histogram floor: the filter step alone, never cancelled — one bounded
  // O(m^2) scan is the ladder's final work quantum. Pessimistic accepts
  // are the certainly-dense answer; the optimistic superset bounds where
  // density can hide.
  FlightRecorder::Record(FrEvent::kTierEnter,
                         static_cast<int64_t>(AnswerTier::kHistogram),
                         static_cast<int64_t>(out.downgrade_reason));
  const double floor_start_ms = timer.ElapsedMillis();
  FrEngine::DhResult dh = fr_->DhOnlyQuery(q_t, rho, l, /*optimistic=*/false);
  out.region = std::move(dh.region);
  out.maybe_region =
      CellsAsRegion(dh.filter, fr_->histogram().grid(), true);
  out.cost = CostBreakdown{};
  out.cost.cpu_ms = dh.cpu_ms;
  out.tier = AnswerTier::kHistogram;
  explain.stages.push_back(
      {"histogram", timer.ElapsedMillis() - floor_start_ms, true});
  explain.accepted_cells = dh.filter.accepted;
  explain.rejected_cells = dh.filter.rejected;
  explain.candidate_cells = dh.filter.candidates;
  return finish(&out);
}

ResilientExecutor::ResilientExecutor(FrEngine* fr, PaEngine* fallback,
                                     const ResilienceOptions& options,
                                     FftDensityEngine* fft)
    : fr_(fr), fallback_(fallback), fft_(fft), options_(options) {}

}  // namespace pdr
