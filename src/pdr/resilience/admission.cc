#include "pdr/resilience/admission.h"

#include "pdr/obs/obs.h"

namespace pdr {
namespace {

struct AdmissionMetrics {
  Counter& admitted;
  Counter& shed;
  Gauge& inflight;

  static AdmissionMetrics& Get() {
    static AdmissionMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.admission.admitted"),
        MetricsRegistry::Global().GetCounter("pdr.admission.shed"),
        MetricsRegistry::Global().GetGauge("pdr.admission.inflight"),
    };
    return m;
  }
};

}  // namespace

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {
  if (options_.max_inflight < 1) options_.max_inflight = 1;
  max_inflight_.store(options_.max_inflight, std::memory_order_relaxed);
}

AdmissionController::Permit AdmissionController::TryAdmit() {
  const int bound = max_inflight_.load(std::memory_order_relaxed);
  int cur = inflight_.load(std::memory_order_relaxed);
  while (cur < bound) {
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      AdmissionMetrics& m = AdmissionMetrics::Get();
      m.admitted.Increment();
      m.inflight.Set(static_cast<double>(cur + 1));
      return Permit(this);
    }
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  AdmissionMetrics::Get().shed.Increment();
  return Permit();
}

void AdmissionController::ReleaseSlot() {
  const int now = inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  AdmissionMetrics::Get().inflight.Set(static_cast<double>(now));
}

void AdmissionController::Permit::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot();
  controller_ = nullptr;
}

double AdmissionController::ShedRate() const {
  const double offered =
      static_cast<double>(admitted()) + static_cast<double>(shed());
  return offered > 0.0 ? static_cast<double>(shed()) / offered : 0.0;
}

}  // namespace pdr
