// The graceful-degradation ladder: deadline-bounded PDR answers.
//
// The paper's own FR/PA split (exact filtering-refinement vs. Chebyshev
// approximation, Sections 5-6) is a ready-made quality/latency trade-off;
// this executor exploits it at runtime. A query runs down a ladder of
// answer tiers until one completes within the remaining budget:
//
//   kExact      exact FR answer (filter + plane-sweep refinement), run
//               under the query's deadline/cancel control;
//   kFft        whole-plane FFT density field (src/pdr/fft) — taken only
//               when an FftDensityEngine is attached and q_t lies inside
//               its horizon. `region` is its certainly-dense accept cells
//               and `maybe_region` the accepts+candidates superset; both
//               sandwich the exact answer (DESIGN.md §15). Much tighter
//               than the histogram floor (fine raster vs. the coarse DH
//               grid) and amortized: every query on the same q_t shares
//               one cached transform;
//   kApprox     PA branch-and-bound over the Chebyshev density model —
//               taken only when a fallback PA engine is attached, its
//               fixed l matches the query's l, and q_t lies inside its
//               horizon; also deadline-controlled;
//   kHistogram  the filter step alone. `region` is the *pessimistic*
//               answer (accepted cells only) — sound by Algorithm 1, so
//               it never contains a non-dense point (no false accepts) —
//               and `maybe_region` the optimistic accepts+candidates
//               superset that conservatively contains every dense point.
//               This floor is a bounded O(m^2) histogram scan and is never
//               cancelled: it is the ladder's final work quantum, so every
//               query returns within budget + one quantum.
//
// (kShed, the fourth tier, is stamped by callers that shed a query at
// admission control before the ladder ever ran.)
//
// Every result is stamped with its achieved tier, elapsed wall time, and
// the budget it ran under; tier counts and downgrade totals are exported
// through the metrics registry (pdr.resilience.*). With degrade = false
// the ladder does not catch expiry — CancelledError propagates to the
// caller, which is the right behavior for batch jobs that prefer failure
// over approximation.

#ifndef PDR_RESILIENCE_EXECUTOR_H_
#define PDR_RESILIENCE_EXECUTOR_H_

#include <cstdint>

#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/obs/explain.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

class FrEngine;
class PaEngine;
class FftDensityEngine;

/// The quality tier a deadline-bounded query achieved. kFft is appended
/// after kShed so the tier bytes baked into workload-log digests and
/// golden fixtures keep their values; the *ladder order* (exact -> fft ->
/// approx -> histogram) is code order in ResilientExecutor::Query, not
/// enum order.
enum class AnswerTier : uint8_t {
  kExact = 0,      ///< exact FR answer
  kApprox = 1,     ///< PA Chebyshev approximation
  kHistogram = 2,  ///< filter-only conservative bounds
  kShed = 3,       ///< rejected at admission control; no fresh answer
  kFft = 4,        ///< FFT whole-plane density sandwich (src/pdr/fft)
};

const char* AnswerTierName(AnswerTier tier);

/// Why a query ended below kExact. Distinguishes overload (deadline,
/// shed) from storage trouble (transient-retry exhaustion, unrepairable
/// page corruption) so the SLO monitor and operators can tell the
/// failure domains apart.
enum class DowngradeReason : uint8_t {
  kNone = 0,        ///< answered at kExact
  kDeadline = 1,    ///< a rung was cancelled by the budget / cancel token
  kShed = 2,        ///< rejected at admission control (stamped by callers)
  kTransient = 3,   ///< storage transient-retry exhaustion on a rung
  kDisabled = 4,    ///< the exact rung was switched off by policy
  kCorruption = 5,  ///< an unrepairable page made the exact rung unsafe
};

const char* DowngradeReasonName(DowngradeReason reason);

struct ResilienceOptions {
  /// Per-query latency budget in milliseconds; <= 0 means unbounded.
  double deadline_ms = 0.0;
  /// Bound on concurrently admitted queries; <= 0 disables admission
  /// control. (Consumed by PdrMonitor / serving loops, not the ladder.)
  int max_inflight = 0;
  /// Walk the ladder on expiry. false: CancelledError propagates instead
  /// of degrading.
  bool degrade = true;
  /// Rung toggles: a server may pin a cheaper tier under sustained
  /// overload (and tests use them to reach a rung deterministically).
  /// enable_fft only matters when an FftDensityEngine is attached.
  bool enable_exact = true;
  bool enable_fft = true;
  bool enable_approx = true;

  /// True when any resilience behavior is configured.
  bool Active() const {
    return deadline_ms > 0.0 || max_inflight > 0 || !enable_exact;
  }
};

/// A deadline-bounded answer, stamped with how it was obtained.
struct TieredResult {
  Region region;  ///< the answer at `tier` (kHistogram/kFft: certainly-dense)
  /// kHistogram and kFft only: optimistic accepts+candidates superset —
  /// every dense point lies inside it. Empty at other tiers.
  Region maybe_region;
  CostBreakdown cost;  ///< cost of the rung that produced the answer
  AnswerTier tier = AnswerTier::kExact;
  /// Why the answer is below kExact (kNone at kExact). Callers that shed a
  /// query at admission control stamp kShed alongside tier kShed.
  DowngradeReason downgrade_reason = DowngradeReason::kNone;
  bool timed_out = false;   ///< at least one rung was cancelled
  double elapsed_ms = 0.0;  ///< wall time across all rungs tried
  double budget_ms = 0.0;   ///< the deadline this query ran under (0 = none)
  /// Full provenance: stages run, filter decisions, pages touched. The
  /// flight-recorder correlation key is explain.query_id.
  ExplainRecord explain;
};

class ResilientExecutor {
 public:
  /// `fr` is required (the exact rung and the histogram floor both run
  /// through it); `fallback` may be null, which skips the kApprox rung,
  /// and `fft` may be null, which skips the kFft rung. None are owned.
  /// The fallback and fft engines must be fed the same update stream as
  /// `fr`.
  ResilientExecutor(FrEngine* fr, PaEngine* fallback,
                    const ResilienceOptions& options,
                    FftDensityEngine* fft = nullptr);

  /// Runs the ladder for snapshot query (rho, l, q_t). `token` optionally
  /// wires external cancellation into every rung. Throws HorizonError for
  /// q_t outside [now, now + H], and CancelledError only when
  /// options().degrade is false.
  TieredResult Query(Tick q_t, double rho, double l,
                     const CancelToken* token = nullptr);

  const ResilienceOptions& options() const { return options_; }

 private:
  FrEngine* fr_;
  PaEngine* fallback_;
  FftDensityEngine* fft_;
  ResilienceOptions options_;
};

}  // namespace pdr

#endif  // PDR_RESILIENCE_EXECUTOR_H_
