// POSIX file primitive for the durability layer.
//
// Thin RAII wrapper over open/pread/pwrite/fsync/ftruncate that routes
// every write and fsync through an optional FaultInjector (reads are
// never fault points: a crashed process loses writes, not reads). Ops are
// tagged with a name ("wal.write", "data.sync", ...) so sweeps can locate
// protocol boundaries in the injector's op log.
//
// After an injected crash the file object is poisoned: every later write,
// sync, or truncate silently no-ops (the process is "dead"; destructors
// of enclosing objects must not repair the simulated crash state). Reads
// keep working so a test can inspect the post-crash bytes.
//
// Injected *transient* faults (FaultInjector::Action::kTransientFail) are
// absorbed here: the operation retries in place with a deterministic
// capped-exponential backoff, up to 8 retries, counting each attempt in
// the `pdr.storage.transient_retries` metric. A transient fault that
// outlasts the budget surfaces as std::runtime_error — not CrashError, so
// it never trips crash recovery.

#ifndef PDR_STORAGE_STORAGE_FILE_H_
#define PDR_STORAGE_STORAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "pdr/storage/fault_injector.h"

namespace pdr {

class StorageFile {
 public:
  StorageFile() = default;
  ~StorageFile() { Close(); }

  StorageFile(const StorageFile&) = delete;
  StorageFile& operator=(const StorageFile&) = delete;

  /// Opens (creating if absent) `path` for read/write. Throws
  /// std::runtime_error on failure. `op_prefix` tags the fault points
  /// ("wal", "data", ...).
  void Open(const std::string& path, const char* op_prefix,
            FaultInjector* injector);
  void Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Reads up to `n` bytes at `offset`; short reads past EOF zero-fill
  /// the remainder and are reported via the return value (bytes actually
  /// read from the file).
  size_t ReadAt(uint64_t offset, void* buf, size_t n) const;

  /// Writes `n` bytes at `offset` (a "<prefix>.write" fault point). On an
  /// injected torn write a deterministic prefix is persisted before
  /// CrashError; on an injected truncated tail an appending write is
  /// persisted and then chopped mid-record.
  void WriteAt(uint64_t offset, const void* buf, size_t n);

  /// fsync (a "<prefix>.sync" fault point).
  void Sync();

  /// ftruncate (a "<prefix>.truncate" fault point).
  void Truncate(uint64_t size);

  uint64_t Size() const;

  /// True once an injected crash fired through this file; all mutating
  /// calls are no-ops from then on.
  bool poisoned() const { return poisoned_; }
  void Poison() { poisoned_ = true; }

 private:
  FaultInjector::Action CheckFault(const char* op);

  int fd_ = -1;
  std::string path_;
  std::string op_prefix_;
  FaultInjector* injector_ = nullptr;
  bool poisoned_ = false;
};

/// Atomically publishes `contents` at `path` (write tmp + fsync + rename +
/// fsync of the containing directory), with fault points
/// "<op_prefix>.write", "<op_prefix>.sync", "<op_prefix>.rename", and
/// "<op_prefix>.dirsync". Either the old file or the complete new file
/// survives a crash — the directory fsync makes the rename itself durable,
/// so a real power cut cannot reorder it after later writes. Returns false
/// when a crash was injected partway (CrashError is thrown, not returned).
void AtomicWriteFile(const std::string& path, const std::string& contents,
                     const char* op_prefix, FaultInjector* injector);

/// fsyncs the directory `dir_path` (a "<op_prefix>.dirsync" fault point),
/// making its entries — file creations and renames — durable on a real
/// disk. Throws std::runtime_error on failure.
void SyncDir(const std::string& dir_path, const char* op_prefix,
             FaultInjector* injector);

/// Whole-file read; returns false when the file does not exist. Throws on
/// read errors.
bool ReadFileIfExists(const std::string& path, std::string* out);

}  // namespace pdr

#endif  // PDR_STORAGE_STORAGE_FILE_H_
