// Tiny byte-string serialization helpers shared by the durability layer
// (WAL records, checkpoint metadata) and by the index/engine metadata
// blobs that ride inside checkpoint records.
//
// The format is raw little-endian PODs appended to a std::string — the
// same convention dataset_io uses over iostreams — plus length-prefixed
// nested blobs. Readers validate remaining length on every extraction and
// throw std::runtime_error on truncation, so corrupt metadata surfaces as
// a recovery error instead of undefined behavior.

#ifndef PDR_STORAGE_SERDE_H_
#define PDR_STORAGE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace pdr {

template <typename T>
void PutPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

inline void PutBlob(std::string* out, std::string_view blob) {
  PutPod(out, static_cast<uint64_t>(blob.size()));
  out->append(blob.data(), blob.size());
}

/// Cursor over a serialized byte string; every Get validates bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) {
      throw std::runtime_error("serialized blob truncated");
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string_view GetBlob() {
    const uint64_t n = Get<uint64_t>();
    if (data_.size() - pos_ < n) {
      throw std::runtime_error("serialized blob truncated");
    }
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit over a byte range: the checksum guarding WAL records and
/// checkpoint files against torn writes. Not cryptographic; a torn 4 KB
/// page image or chopped record header fails it with overwhelming
/// probability, which is all crash recovery needs.
inline uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 0) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace pdr

#endif  // PDR_STORAGE_SERDE_H_
