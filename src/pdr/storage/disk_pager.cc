#include "pdr/storage/disk_pager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "pdr/obs/registry.h"
#include "pdr/obs/trace.h"
#include "pdr/storage/serde.h"

namespace pdr {
namespace {

constexpr uint32_t kDataMagic = 0x50524450u;  // "PDRP"
constexpr uint32_t kDataVersion = 1;
constexpr uint32_t kCkptMagic = 0x43524450u;  // "PDRC"
constexpr uint32_t kCkptVersion = 1;

struct DataFileHeader {
  uint32_t magic = kDataMagic;
  uint32_t version = kDataVersion;
};

uint64_t PageOffset(PageId id) {
  return (static_cast<uint64_t>(id) + 1) * kPageSize;
}

/// The state a commit record / checkpoint descriptor carries: everything
/// besides the page images needed to reconstruct the pager + application.
std::string EncodeState(size_t page_count, const std::vector<PageId>& free_list,
                        const std::string& app_meta) {
  std::string out;
  PutPod(&out, static_cast<uint64_t>(page_count));
  PutPod(&out, static_cast<uint64_t>(free_list.size()));
  for (const PageId id : free_list) PutPod(&out, id);
  PutBlob(&out, app_meta);
  return out;
}

struct DecodedState {
  uint64_t page_count = 0;
  std::vector<PageId> free_list;
  std::string app_meta;
};

DecodedState DecodeState(ByteReader* reader) {
  DecodedState state;
  state.page_count = reader->Get<uint64_t>();
  const uint64_t frees = reader->Get<uint64_t>();
  state.free_list.reserve(frees);
  for (uint64_t i = 0; i < frees; ++i) {
    state.free_list.push_back(reader->Get<PageId>());
  }
  state.app_meta = std::string(reader->GetBlob());
  return state;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

DiskPager::DiskPager(const std::string& dir, FaultInjector* injector,
                     const WalOptions& wal_options)
    : dir_(dir),
      injector_(injector),
      wal_(dir + "/wal.log", wal_options, injector) {
  data_.Open(dir + "/data.pdr", "data", injector);
  const uint64_t size = data_.Size();
  if (size < sizeof(DataFileHeader)) {
    // Fresh store, or a creation-time crash tore the header before any
    // checkpoint could commit — either way (re)stamp it; it becomes
    // durable with the first data fsync.
    const DataFileHeader header;
    data_.WriteAt(0, &header, sizeof(header));
  } else {
    DataFileHeader header;
    data_.ReadAt(0, &header, sizeof(header));
    if (header.magic != kDataMagic || header.version != kDataVersion) {
      throw std::runtime_error("not a PDR data file: " + dir + "/data.pdr");
    }
  }
  try {
    // wal.log / data.pdr were possibly just created: fsync the directory
    // so their entries survive a real power cut (a "store.dirsync" fault
    // point; crashing here mutates nothing, so recovery simply reruns).
    SyncDir(dir_, "store", injector_);
    Recover();
  } catch (const CrashError&) {
    Poison();
    throw;
  }
}

PageId DiskPager::Allocate() {
  const PageId id = mirror_.Allocate();
  dirty_.insert(id);
  return id;
}

void DiskPager::Free(PageId id) {
  mirror_.Free(id);
  dirty_.erase(id);  // freed content never needs to reach the WAL
}

void DiskPager::ReadPage(PageId id, Page* out) const {
  mirror_.ReadPage(id, out);
}

void DiskPager::WritePage(PageId id, const Page& page) {
  mirror_.WritePage(id, page);
  dirty_.insert(id);
}

std::string DiskPager::EncodeCheckpoint(const std::string& app_meta) const {
  std::string out;
  PutPod(&out, kCkptMagic);
  PutPod(&out, kCkptVersion);
  PutPod(&out, epoch_);
  PutPod(&out, wal_.next_lsn());
  out += EncodeState(mirror_.allocated_pages(), mirror_.free_list(), app_meta);
  PutPod(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

void DiskPager::ConvergeFiles(const std::set<PageId>& dirty,
                              const std::string& app_meta) {
  for (const PageId id : dirty) {
    data_.WriteAt(PageOffset(id), mirror_.PageAt(id).bytes.data(), kPageSize);
  }
  data_.Sync();
  ++epoch_;
  AtomicWriteFile(dir_ + "/checkpoint.pdr", EncodeCheckpoint(app_meta), "ckpt",
                  injector_);
  wal_.Reset();
}

void DiskPager::Checkpoint(const std::string& app_meta) {
  if (poisoned_) {
    throw CrashError("checkpoint on a store that already crashed");
  }
  TraceSpan span("storage.checkpoint");
  const auto start = std::chrono::steady_clock::now();
  const int64_t pages = static_cast<int64_t>(dirty_.size());
  try {
    for (const PageId id : dirty_) wal_.AppendPage(id, mirror_.PageAt(id));
    wal_.AppendCommit(
        EncodeState(mirror_.allocated_pages(), mirror_.free_list(), app_meta));
    wal_.Sync();  // the durable point
    ConvergeFiles(dirty_, app_meta);
  } catch (const CrashError&) {
    Poison();
    throw;
  }
  meta_ = app_meta;
  dirty_.clear();
  checkpoint_stats_.checkpoints++;
  checkpoint_stats_.pages_logged += pages;
  checkpoint_stats_.last_ms = ElapsedMs(start);
  span.SetAttr("pages", pages);
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global().GetCounter("pdr.storage.checkpoints").Increment();
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.checkpoint_pages")
        .Add(pages);
    MetricsRegistry::Global()
        .GetHistogram("pdr.storage.checkpoint_ms")
        .Observe(checkpoint_stats_.last_ms);
  }
}

void DiskPager::Recover() {
  TraceSpan span("storage.recover");
  const auto start = std::chrono::steady_clock::now();

  uint64_t ckpt_next_lsn = 0;
  DecodedState state;
  std::string ckpt_raw;
  const bool have_ckpt =
      ReadFileIfExists(dir_ + "/checkpoint.pdr", &ckpt_raw);
  if (have_ckpt) {
    // checkpoint.pdr is published atomically, so a torn copy can only mean
    // external damage — surface it instead of silently starting empty.
    if (ckpt_raw.size() < sizeof(uint64_t)) {
      throw std::runtime_error("checkpoint file corrupt: " + dir_);
    }
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, ckpt_raw.data() + ckpt_raw.size() - 8, 8);
    if (Fnv1a64(ckpt_raw.data(), ckpt_raw.size() - 8) != stored_sum) {
      throw std::runtime_error("checkpoint file corrupt: " + dir_);
    }
    ByteReader reader(
        std::string_view(ckpt_raw.data(), ckpt_raw.size() - 8));
    if (reader.Get<uint32_t>() != kCkptMagic ||
        reader.Get<uint32_t>() != kCkptVersion) {
      throw std::runtime_error("checkpoint file corrupt: " + dir_);
    }
    epoch_ = reader.Get<uint64_t>();
    ckpt_next_lsn = reader.Get<uint64_t>();
    state = DecodeState(&reader);
  }

  const Wal::ScanResult scan = wal_.Scan();
  recovery_stats_.discarded_records = scan.records_discarded;
  recovery_stats_.torn_tail = scan.torn_tail;
  recovered_ = have_ckpt || !scan.batches.empty();
  if (!recovered_ && scan.records_scanned == 0 && !scan.torn_tail) {
    return;  // fresh store
  }
  recovery_stats_.ran = recovered_;

  // The last committed batch (if any) supersedes the checkpoint's state.
  if (!scan.batches.empty()) {
    ByteReader reader(scan.batches.back().commit_payload);
    state = DecodeState(&reader);
  }

  mirror_.Restore(state.page_count, state.free_list);
  for (uint64_t id = 0; id < state.page_count; ++id) {
    data_.ReadAt(PageOffset(static_cast<PageId>(id)),
                 mirror_.PageAt(static_cast<PageId>(id)).bytes.data(),
                 kPageSize);  // zero-fills past EOF
  }

  std::set<PageId> redo_dirty;
  for (const Wal::Batch& batch : scan.batches) {
    for (const auto& [id, image] : batch.pages) {
      if (id >= state.page_count) continue;  // superseded allocation state
      mirror_.PageAt(id) = image;
      redo_dirty.insert(id);
      recovery_stats_.redo_records++;
    }
    recovery_stats_.batches_applied++;
  }
  meta_ = state.app_meta;
  wal_.set_next_lsn(std::max(scan.next_lsn, ckpt_next_lsn));

  if (!scan.batches.empty()) {
    // Redo changed the picture relative to the files: converge so the next
    // crash recovers from the checkpoint alone. Idempotent — a crash in
    // here re-runs this same redo from the still-intact WAL.
    ConvergeFiles(redo_dirty, meta_);
  } else if (scan.records_scanned > 0 || scan.torn_tail ||
             wal_.next_lsn() != wal_.header_start_lsn()) {
    // Drop the uncommitted tail, and re-stamp the header whenever the
    // adopted LSN disagrees with it. The mismatch arises when a crash
    // inside a previous Reset left a short/torn WAL whose constructor
    // re-stamp says start_lsn=0 while the checkpoint is further ahead;
    // without a Reset here the next committed batch's first record
    // (lsn = checkpoint LSN != 0) would read as a torn tail and a
    // durable batch could be silently discarded.
    wal_.Reset();
  }

  recovery_stats_.recovery_ms = ElapsedMs(start);
  span.SetAttr("batches", recovery_stats_.batches_applied);
  span.SetAttr("redo_records", recovery_stats_.redo_records);
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global().GetCounter("pdr.storage.recoveries").Increment();
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.redo_records")
        .Add(recovery_stats_.redo_records);
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.discarded_records")
        .Add(recovery_stats_.discarded_records);
    MetricsRegistry::Global()
        .GetHistogram("pdr.storage.recovery_ms")
        .Observe(recovery_stats_.recovery_ms);
  }
}

void DiskPager::Poison() {
  poisoned_ = true;
  data_.Poison();
  wal_.Poison();
}

}  // namespace pdr
