#include "pdr/storage/disk_pager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/registry.h"
#include "pdr/obs/trace.h"
#include "pdr/storage/page_format.h"
#include "pdr/storage/serde.h"

namespace pdr {
namespace {

constexpr uint32_t kDataMagic = 0x50524450u;  // "PDRP"
// v2: pages live in kSlotSize slots carrying an integrity trailer
// (page_format.h). v1 (bare kPageSize pages, no trailer) is rejected —
// the formats are not distinguishable per page, so reading a v1 store as
// v2 would misreport every page as corrupt.
constexpr uint32_t kDataVersion = 2;
constexpr uint32_t kCkptMagic = 0x43524450u;  // "PDRC"
constexpr uint32_t kCkptVersion = 1;

struct DataFileHeader {
  uint32_t magic = kDataMagic;
  uint32_t version = kDataVersion;
};

/// The state a commit record / checkpoint descriptor carries: everything
/// besides the page images needed to reconstruct the pager + application.
std::string EncodeState(size_t page_count, const std::vector<PageId>& free_list,
                        const std::string& app_meta) {
  std::string out;
  PutPod(&out, static_cast<uint64_t>(page_count));
  PutPod(&out, static_cast<uint64_t>(free_list.size()));
  for (const PageId id : free_list) PutPod(&out, id);
  PutBlob(&out, app_meta);
  return out;
}

struct DecodedState {
  uint64_t page_count = 0;
  std::vector<PageId> free_list;
  std::string app_meta;
};

DecodedState DecodeState(ByteReader* reader) {
  DecodedState state;
  state.page_count = reader->Get<uint64_t>();
  const uint64_t frees = reader->Get<uint64_t>();
  state.free_list.reserve(frees);
  for (uint64_t i = 0; i < frees; ++i) {
    state.free_list.push_back(reader->Get<PageId>());
  }
  state.app_meta = std::string(reader->GetBlob());
  return state;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

DiskPager::DiskPager(const std::string& dir, FaultInjector* injector,
                     const WalOptions& wal_options)
    : dir_(dir),
      injector_(injector),
      wal_(dir + "/wal.log", wal_options, injector) {
  data_.Open(dir + "/data.pdr", "data", injector);
  const uint64_t size = data_.Size();
  if (size < sizeof(DataFileHeader)) {
    // Fresh store, or a creation-time crash tore the header before any
    // checkpoint could commit — either way (re)stamp it; it becomes
    // durable with the first data fsync.
    const DataFileHeader header;
    data_.WriteAt(0, &header, sizeof(header));
  } else {
    DataFileHeader header;
    data_.ReadAt(0, &header, sizeof(header));
    if (header.magic != kDataMagic) {
      throw std::runtime_error("not a PDR data file: " + dir + "/data.pdr");
    }
    if (header.version != kDataVersion) {
      throw std::runtime_error(
          "unsupported PDR data file version " +
          std::to_string(header.version) + " (this build reads v" +
          std::to_string(kDataVersion) + "): " + dir + "/data.pdr");
    }
  }
  try {
    // wal.log / data.pdr were possibly just created: fsync the directory
    // so their entries survive a real power cut (a "store.dirsync" fault
    // point; crashing here mutates nothing, so recovery simply reruns).
    SyncDir(dir_, "store", injector_);
    Recover();
  } catch (const CrashError&) {
    Poison();
    throw;
  }
}

PageId DiskPager::Allocate() {
  const PageId id = mirror_.Allocate();
  EnsureTables(mirror_.allocated_pages());
  page_stamped_[id] = 0;  // reused ids shed the old slot's expectation
  quarantined_.erase(id);
  dirty_.insert(id);
  return id;
}

void DiskPager::Free(PageId id) {
  mirror_.Free(id);
  dirty_.erase(id);  // freed content never needs to reach the WAL
  if (id < page_stamped_.size()) page_stamped_[id] = 0;
  quarantined_.erase(id);
}

void DiskPager::ReadPage(PageId id, Page* out) const {
  // Verification mutates repair state under const; misses are serialized
  // by the BufferPool's exclusive latch (see header comment).
  auto* self = const_cast<DiskPager*>(this);
  if (quarantined_.count(id) != 0) {
    mirror_.ReadPage(id, out);
    ThrowCorruption(dir_ + "/data.pdr", id, SlotOffset(id), page_sum_[id],
                    ComputePageChecksum(*out, id, page_lsn_[id]));
  }
  mirror_.ReadPage(id, out);
  if (id < page_stamped_.size() && page_stamped_[id] != 0 &&
      dirty_.count(id) == 0) {
    const uint64_t actual = ComputePageChecksum(*out, id, page_lsn_[id]);
    if (actual != page_sum_[id]) {
      if (self->RepairPage(id) == PageHealth::kUnrepairable) {
        ThrowCorruption(dir_ + "/data.pdr", id, SlotOffset(id),
                        page_sum_[id], actual);
      }
      mirror_.ReadPage(id, out);  // the healed bytes
    }
  }
}

void DiskPager::WritePage(PageId id, const Page& page) {
  mirror_.WritePage(id, page);
  quarantined_.erase(id);  // fully overwritten: old damage is gone
  dirty_.insert(id);
}

std::string DiskPager::EncodeCheckpoint(const std::string& app_meta) const {
  std::string out;
  PutPod(&out, kCkptMagic);
  PutPod(&out, kCkptVersion);
  PutPod(&out, epoch_);
  PutPod(&out, wal_.next_lsn());
  out += EncodeState(mirror_.allocated_pages(), mirror_.free_list(), app_meta);
  PutPod(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

void DiskPager::EnsureTables(size_t pages) {
  if (page_lsn_.size() < pages) {
    page_lsn_.resize(pages, 0);
    page_sum_.resize(pages, 0);
    page_stamped_.resize(pages, 0);
  }
}

void DiskPager::WriteSlot(PageId id) {
  const Page& page = mirror_.PageAt(id);
  const PageTrailer trailer = MakePageTrailer(page, id, page_lsn_[id]);
  // One contiguous write per slot: the image and its trailer are a single
  // fault point, exactly as the bare page write was in format v1, so the
  // crash sweep's kill-point numbering is unchanged per converged page.
  char buf[kSlotSize];
  std::memcpy(buf, page.bytes.data(), kPageSize);
  std::memcpy(buf + kPageSize, &trailer, sizeof(trailer));
  data_.WriteAt(SlotOffset(id), buf, kSlotSize);
  page_sum_[id] = trailer.checksum;
  page_stamped_[id] = 1;
  quarantined_.erase(id);
}

void DiskPager::ConvergeFiles(const std::set<PageId>& dirty,
                              const std::string& app_meta) {
  EnsureTables(mirror_.allocated_pages());
  for (const PageId id : dirty) WriteSlot(id);
  data_.Sync();
  ++epoch_;
  AtomicWriteFile(dir_ + "/checkpoint.pdr", EncodeCheckpoint(app_meta), "ckpt",
                  injector_);
  wal_.Reset();
}

void DiskPager::Checkpoint(const std::string& app_meta) {
  if (poisoned_) {
    throw CrashError("checkpoint on a store that already crashed");
  }
  TraceSpan span("storage.checkpoint");
  const auto start = std::chrono::steady_clock::now();
  const int64_t pages = static_cast<int64_t>(dirty_.size());
  try {
    EnsureTables(mirror_.allocated_pages());
    for (const PageId id : dirty_) {
      // The trailer binds the slot to this after-image's LSN; remember it
      // so ConvergeFiles can stamp and ReadPage can verify.
      page_lsn_[id] = wal_.AppendPage(id, mirror_.PageAt(id));
    }
    wal_.AppendCommit(
        EncodeState(mirror_.allocated_pages(), mirror_.free_list(), app_meta));
    wal_.Sync();  // the durable point
    ConvergeFiles(dirty_, app_meta);
  } catch (const CrashError&) {
    Poison();
    throw;
  }
  meta_ = app_meta;
  dirty_.clear();
  checkpoint_stats_.checkpoints++;
  checkpoint_stats_.pages_logged += pages;
  checkpoint_stats_.last_ms = ElapsedMs(start);
  span.SetAttr("pages", pages);
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global().GetCounter("pdr.storage.checkpoints").Increment();
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.checkpoint_pages")
        .Add(pages);
    MetricsRegistry::Global()
        .GetHistogram("pdr.storage.checkpoint_ms")
        .Observe(checkpoint_stats_.last_ms);
  }
}

void DiskPager::Recover() {
  TraceSpan span("storage.recover");
  const auto start = std::chrono::steady_clock::now();

  uint64_t ckpt_next_lsn = 0;
  DecodedState state;
  std::string ckpt_raw;
  const bool have_ckpt =
      ReadFileIfExists(dir_ + "/checkpoint.pdr", &ckpt_raw);
  const std::string ckpt_path = dir_ + "/checkpoint.pdr";
  if (have_ckpt) {
    // checkpoint.pdr is published atomically, so a torn copy can only mean
    // external damage — surface it (typed, with the flight-recorder hook)
    // instead of silently starting empty.
    if (ckpt_raw.size() < sizeof(uint64_t)) {
      ThrowCorruption(ckpt_path, kInvalidPageId, 0, sizeof(uint64_t),
                      ckpt_raw.size());
    }
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, ckpt_raw.data() + ckpt_raw.size() - 8, 8);
    const uint64_t computed_sum =
        Fnv1a64(ckpt_raw.data(), ckpt_raw.size() - 8);
    if (computed_sum != stored_sum) {
      ThrowCorruption(ckpt_path, kInvalidPageId, ckpt_raw.size() - 8,
                      stored_sum, computed_sum);
    }
    ByteReader reader(
        std::string_view(ckpt_raw.data(), ckpt_raw.size() - 8));
    const uint32_t magic = reader.Get<uint32_t>();
    const uint32_t version = reader.Get<uint32_t>();
    if (magic != kCkptMagic || version != kCkptVersion) {
      ThrowCorruption(ckpt_path, kInvalidPageId, 0,
                      (uint64_t{kCkptVersion} << 32) | kCkptMagic,
                      (uint64_t{version} << 32) | magic);
    }
    epoch_ = reader.Get<uint64_t>();
    ckpt_next_lsn = reader.Get<uint64_t>();
    state = DecodeState(&reader);
  }

  const Wal::ScanResult scan = wal_.Scan();
  recovery_stats_.discarded_records = scan.records_discarded;
  recovery_stats_.torn_tail = scan.torn_tail;
  recovery_stats_.interior_corruption = scan.interior_corruption;
  recovered_ = have_ckpt || !scan.batches.empty();
  if (!recovered_ && scan.records_scanned == 0 && !scan.torn_tail &&
      !scan.interior_corruption) {
    return;  // fresh store
  }
  recovery_stats_.ran = recovered_;

  // The last committed batch (if any) supersedes the checkpoint's state.
  if (!scan.batches.empty()) {
    ByteReader reader(scan.batches.back().commit_payload);
    state = DecodeState(&reader);
  }

  mirror_.Restore(state.page_count, state.free_list);
  EnsureTables(state.page_count);
  const std::set<PageId> free_set(state.free_list.begin(),
                                  state.free_list.end());

  // Load every slot, validating trailers as we go. Live pages whose slot
  // fails validation are repairable exactly when a WAL redo image covers
  // them (every crash-produced invalid slot — a torn converge write, a
  // never-written slot of a just-allocated page — belongs to the
  // committed batch being re-applied). Free pages carry no content worth
  // validating.
  std::map<PageId, std::pair<uint64_t, uint64_t>> invalid;  // want, got
  std::vector<char> slot(kSlotSize);
  for (uint64_t id64 = 0; id64 < state.page_count; ++id64) {
    const PageId id = static_cast<PageId>(id64);
    data_.ReadAt(SlotOffset(id), slot.data(), kSlotSize);  // 0-fill past EOF
    Page& page = mirror_.PageAt(id);
    std::memcpy(page.bytes.data(), slot.data(), kPageSize);
    if (free_set.count(id) != 0) continue;
    PageTrailer trailer;
    std::memcpy(&trailer, slot.data() + kPageSize, sizeof(trailer));
    if (PageTrailerValid(trailer, page, id)) {
      page_lsn_[id] = trailer.lsn;
      page_sum_[id] = trailer.checksum;
      page_stamped_[id] = 1;
    } else {
      invalid[id] = {trailer.checksum,
                     ComputePageChecksum(page, id, trailer.lsn)};
    }
  }

  std::set<PageId> redo_dirty;
  for (const Wal::Batch& batch : scan.batches) {
    for (const Wal::PageImage& pi : batch.pages) {
      if (pi.id >= state.page_count) continue;  // superseded alloc state
      mirror_.PageAt(pi.id) = pi.image;
      page_lsn_[pi.id] = pi.lsn;
      page_sum_[pi.id] = ComputePageChecksum(pi.image, pi.id, pi.lsn);
      page_stamped_[pi.id] = 0;  // restamped by the converge below
      redo_dirty.insert(pi.id);
      recovery_stats_.redo_records++;
    }
    recovery_stats_.batches_applied++;
  }
  for (const auto& [id, sums] : invalid) {
    if (redo_dirty.count(id) != 0) {
      // The redo image supersedes the damaged slot; the converge below
      // rewrites it. The damage is healed, not just masked.
      recovery_stats_.pages_repaired++;
      FlightRecorder::Record(FrEvent::kCorruption, id, /*repaired=*/1);
      continue;
    }
    // A live page with no valid slot and no covering redo image: nothing
    // in the store can reconstruct it. No crash leaves this shape (see
    // above), so the damage happened at rest — refuse to open rather
    // than serve a page the trailer disowns.
    ThrowCorruption(dir_ + "/data.pdr", id, SlotOffset(id), sums.first,
                    sums.second);
  }
  meta_ = state.app_meta;
  wal_.set_next_lsn(std::max(scan.next_lsn, ckpt_next_lsn));

  if (!scan.batches.empty()) {
    // Redo changed the picture relative to the files: converge so the next
    // crash recovers from the checkpoint alone. Idempotent — a crash in
    // here re-runs this same redo from the still-intact WAL.
    ConvergeFiles(redo_dirty, meta_);
  } else if (scan.records_scanned > 0 || scan.torn_tail ||
             scan.interior_corruption ||
             wal_.next_lsn() != wal_.header_start_lsn()) {
    // Drop the uncommitted tail, and re-stamp the header whenever the
    // adopted LSN disagrees with it. The mismatch arises when a crash
    // inside a previous Reset left a short/torn WAL whose constructor
    // re-stamp says start_lsn=0 while the checkpoint is further ahead;
    // without a Reset here the next committed batch's first record
    // (lsn = checkpoint LSN != 0) would read as a torn tail and a
    // durable batch could be silently discarded.
    wal_.Reset();
  }

  recovery_stats_.recovery_ms = ElapsedMs(start);
  span.SetAttr("batches", recovery_stats_.batches_applied);
  span.SetAttr("redo_records", recovery_stats_.redo_records);
  span.SetAttr("pages_repaired", recovery_stats_.pages_repaired);
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global().GetCounter("pdr.storage.recoveries").Increment();
    if (recovery_stats_.pages_repaired > 0) {
      MetricsRegistry::Global()
          .GetCounter("pdr.storage.repair.recovery_pages")
          .Add(recovery_stats_.pages_repaired);
    }
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.redo_records")
        .Add(recovery_stats_.redo_records);
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.discarded_records")
        .Add(recovery_stats_.discarded_records);
    MetricsRegistry::Global()
        .GetHistogram("pdr.storage.recovery_ms")
        .Observe(recovery_stats_.recovery_ms);
  }
}

PageHealth DiskPager::RepairPage(PageId id) {
  EnsureTables(mirror_.allocated_pages());
  if (id >= mirror_.allocated_pages() || page_stamped_[id] == 0 ||
      dirty_.count(id) != 0) {
    return PageHealth::kHealthy;  // no durable expectation to verify
  }
  const uint64_t want = page_sum_[id];
  const uint64_t lsn = page_lsn_[id];
  const bool mirror_ok =
      ComputePageChecksum(mirror_.PageAt(id), id, lsn) == want;

  std::vector<char> slot(kSlotSize);
  data_.ReadAt(SlotOffset(id), slot.data(), kSlotSize);
  Page slot_page;
  std::memcpy(slot_page.bytes.data(), slot.data(), kPageSize);
  PageTrailer trailer;
  std::memcpy(&trailer, slot.data() + kPageSize, sizeof(trailer));
  // The slot must not only self-verify but carry the EXPECTED version: a
  // stale intact slot paired with a damaged mirror must not roll the page
  // back to old contents.
  const bool slot_ok = trailer.lsn == lsn && trailer.checksum == want &&
                       PageTrailerValid(trailer, slot_page, id);

  if (mirror_ok && slot_ok) return PageHealth::kHealthy;
  if (!mirror_ok && slot_ok) {
    mirror_.PageAt(id) = slot_page;
    repair_stats_.mirror_repairs++;
    FlightRecorder::Record(FrEvent::kCorruption, id, /*repaired=*/1);
    if (PdrObs::Enabled()) {
      MetricsRegistry::Global()
          .GetCounter("pdr.storage.repair.mirror")
          .Increment();
    }
    return PageHealth::kMirrorRepaired;
  }
  if (mirror_ok) {
    // Rewrite the slot from the mirror. The page is clean, so the mirror
    // still holds the last converged image: the rewrite is idempotent and
    // crash-safe (a torn rewrite leaves the slot invalid, exactly where
    // it started, and the mirror copy survives for the next attempt).
    WriteSlot(id);
    data_.Sync();
    repair_stats_.slot_repairs++;
    FlightRecorder::Record(FrEvent::kCorruption, id, /*repaired=*/1);
    if (PdrObs::Enabled()) {
      MetricsRegistry::Global()
          .GetCounter("pdr.storage.repair.slot")
          .Increment();
    }
    return PageHealth::kSlotRepaired;
  }
  quarantined_.insert(id);
  repair_stats_.unrepairable++;
  FlightRecorder::Record(FrEvent::kCorruption, id, /*repaired=*/0);
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnCorruption,
                                       "corruption",
                                       FlightRecorder::CurrentQueryId());
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.repair.unrepairable")
        .Increment();
  }
  return PageHealth::kUnrepairable;
}

ScrubStats DiskPager::Scrub(int64_t budget_pages, const CancelToken* token) {
  ScrubStats round;
  const size_t n = mirror_.allocated_pages();
  if (poisoned_ || n == 0 || budget_pages <= 0) return round;
  EnsureTables(n);
  if (scrub_cursor_ >= n) scrub_cursor_ = 0;
  const int64_t steps =
      std::min<int64_t>(budget_pages, static_cast<int64_t>(n));
  for (int64_t i = 0; i < steps; ++i) {
    if (token != nullptr && token->cancelled()) break;
    const PageId id = scrub_cursor_;
    scrub_cursor_ = static_cast<PageId>((scrub_cursor_ + 1) % n);
    if (page_stamped_[id] == 0 || dirty_.count(id) != 0 ||
        quarantined_.count(id) != 0) {
      continue;  // skipped ids still consume budget: bounded tick cost
    }
    round.pages_scanned++;
    switch (RepairPage(id)) {
      case PageHealth::kHealthy:
        break;
      case PageHealth::kMirrorRepaired:
      case PageHealth::kSlotRepaired:
        round.pages_repaired++;
        break;
      case PageHealth::kUnrepairable:
        round.pages_unrepairable++;
        break;
    }
  }
  scrub_stats_.pages_scanned += round.pages_scanned;
  scrub_stats_.pages_repaired += round.pages_repaired;
  scrub_stats_.pages_unrepairable += round.pages_unrepairable;
  if (PdrObs::Enabled()) {
    MetricsRegistry::Global()
        .GetCounter("pdr.storage.scrub.pages_scanned")
        .Add(round.pages_scanned);
    if (round.pages_repaired > 0) {
      MetricsRegistry::Global()
          .GetCounter("pdr.storage.scrub.pages_repaired")
          .Add(round.pages_repaired);
    }
    if (round.pages_unrepairable > 0) {
      MetricsRegistry::Global()
          .GetCounter("pdr.storage.scrub.pages_unrepairable")
          .Add(round.pages_unrepairable);
    }
  }
  return round;
}

void DiskPager::CorruptMirrorPageForTest(PageId id, int bit_index) {
  Page& page = mirror_.PageAt(id);
  auto& byte = page.bytes[static_cast<size_t>(bit_index / 8) % kPageSize];
  byte = static_cast<std::byte>(static_cast<unsigned char>(byte) ^
                                (1u << (bit_index & 7)));
}

void DiskPager::Poison() {
  poisoned_ = true;
  data_.Poison();
  wal_.Poison();
}

}  // namespace pdr
