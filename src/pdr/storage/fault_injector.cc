#include "pdr/storage/fault_injector.h"

#include <cstdio>

#include "pdr/obs/flight_recorder.h"

namespace pdr {

// The crash-dump chokepoint: every injected crash flows through this
// constructor, so arming FlightRecorder::kOnCrash captures the rings as
// the store dies — before any catch handler can unwind state away. A
// no-op unless the recorder is enabled, the trigger armed, and a dump
// directory configured, so the crash-sweep lanes (thousands of injected
// crashes) stay cheap.
CrashError::CrashError(const std::string& what) : std::runtime_error(what) {
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnCrash, "crash",
                                       FlightRecorder::CurrentQueryId());
}

bool FlipBitInFile(const std::string& path, uint64_t byte_offset,
                   int bit_index) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  bool ok = false;
  unsigned char byte = 0;
  if (std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
      std::fread(&byte, 1, 1, f) == 1) {
    byte ^= static_cast<unsigned char>(1u << (bit_index & 7));
    ok = std::fseek(f, static_cast<long>(byte_offset), SEEK_SET) == 0 &&
         std::fwrite(&byte, 1, 1, f) == 1;
  }
  std::fclose(f);
  return ok;
}

}  // namespace pdr
