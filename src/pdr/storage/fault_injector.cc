#include "pdr/storage/fault_injector.h"

#include "pdr/obs/flight_recorder.h"

namespace pdr {

// The crash-dump chokepoint: every injected crash flows through this
// constructor, so arming FlightRecorder::kOnCrash captures the rings as
// the store dies — before any catch handler can unwind state away. A
// no-op unless the recorder is enabled, the trigger armed, and a dump
// directory configured, so the crash-sweep lanes (thousands of injected
// crashes) stay cheap.
CrashError::CrashError(const std::string& what) : std::runtime_error(what) {
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnCrash, "crash",
                                       FlightRecorder::CurrentQueryId());
}

}  // namespace pdr
