#include "pdr/storage/wal.h"

#include <cstring>
#include <stdexcept>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/registry.h"
#include "pdr/storage/serde.h"

namespace pdr {
namespace {

constexpr uint32_t kWalMagic = 0x57524450u;  // "PDRW"
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kRecordMagic = 0x43455257u;  // "WREC"

struct WalFileHeader {
  uint32_t magic = kWalMagic;
  uint32_t version = kWalVersion;
  uint64_t start_lsn = 0;
};
static_assert(sizeof(WalFileHeader) == 16);

struct WalRecordHeader {
  uint32_t magic = kRecordMagic;
  uint8_t type = 0;
  uint8_t pad[3] = {};
  uint64_t lsn = 0;
  uint32_t page_id = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(WalRecordHeader) == 32);

uint64_t RecordChecksum(const WalRecordHeader& h, const void* payload) {
  uint64_t c = Fnv1a64(&h.type, sizeof(h.type));
  c = Fnv1a64(&h.lsn, sizeof(h.lsn), c);
  c = Fnv1a64(&h.page_id, sizeof(h.page_id), c);
  c = Fnv1a64(&h.payload_len, sizeof(h.payload_len), c);
  return Fnv1a64(payload, h.payload_len, c);
}

Counter& RecordsCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("pdr.wal.records");
  return c;
}
Counter& BytesCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("pdr.wal.bytes");
  return c;
}
Counter& FsyncCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("pdr.wal.fsyncs");
  return c;
}
Counter& CommitCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("pdr.wal.commits");
  return c;
}
Counter& InteriorCorruptionCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.wal.interior_corruption");
  return c;
}

/// Whether a fully-valid record sits anywhere in raw[from, size). Used to
/// classify scan-stopping damage: a torn tail has nothing valid after it
/// (the crash lost everything from the damage on), while at-rest
/// corruption leaves the records appended *after* the damaged one intact.
/// Records with lsn < min_lsn are stale leftovers from before a header
/// rewrite, not evidence of a valid suffix.
bool ValidRecordBeyond(const std::string& raw, uint64_t from, Lsn min_lsn) {
  const uint64_t size = raw.size();
  for (uint64_t q = from; q + sizeof(WalRecordHeader) <= size; ++q) {
    WalRecordHeader rec;
    std::memcpy(&rec, raw.data() + q, sizeof(rec));
    if (rec.magic != kRecordMagic) continue;
    if (rec.type != Wal::kPage && rec.type != Wal::kCommit) continue;
    if (rec.lsn < min_lsn) continue;
    if (rec.type == Wal::kPage && rec.payload_len != kPageSize) continue;
    if (q + sizeof(rec) + rec.payload_len > size) continue;
    if (RecordChecksum(rec, raw.data() + q + sizeof(rec)) == rec.checksum) {
      return true;
    }
  }
  return false;
}

}  // namespace

Wal::Wal(const std::string& path, const WalOptions& options,
         FaultInjector* injector)
    : options_(options) {
  file_.Open(path, "wal", injector);
  const uint64_t size = file_.Size();
  if (size >= sizeof(WalFileHeader)) {
    WalFileHeader header;
    file_.ReadAt(0, &header, sizeof(header));
    if (header.magic == kWalMagic && header.version == kWalVersion) {
      file_end_ = size;
      next_lsn_ = header.start_lsn;
      header_start_lsn_ = header.start_lsn;
      // Record bytes (valid or torn) follow the header: appending after
      // them would be unreachable by Scan, so require a Reset first.
      needs_reset_ = size > sizeof(WalFileHeader);
      return;
    }
  }
  // Fresh (or unrecognizably short) log: start from an empty header. A
  // pre-existing torn header means no record in it was ever committed, so
  // dropping it is exactly what recovery would do anyway.
  const WalFileHeader header;
  file_.Truncate(0);
  file_.WriteAt(0, &header, sizeof(header));
  file_end_ = sizeof(header);
  header_start_lsn_ = 0;
}

Lsn Wal::AppendPage(PageId id, const Page& image) {
  AppendRecord(kPage, id, image.bytes.data(), kPageSize);
  return next_lsn_ - 1;
}

Lsn Wal::AppendCommit(const std::string& payload) {
  AppendRecord(kCommit, kInvalidPageId, payload.data(), payload.size());
  stats_.commits++;
  CommitCounter().Increment();
  return next_lsn_ - 1;
}

void Wal::AppendRecord(RecordType type, PageId page_id, const void* payload,
                       size_t payload_len) {
  if (needs_reset_) {
    throw std::logic_error(
        "Wal::Append* on a reopened non-empty log: Scan() then Reset() "
        "first, or records land beyond a region Scan cannot cross");
  }
  WalRecordHeader header;
  header.type = type;
  header.lsn = next_lsn_++;
  header.page_id = page_id;
  header.payload_len = static_cast<uint32_t>(payload_len);
  header.checksum = RecordChecksum(header, payload);
  buffer_.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buffer_.append(static_cast<const char*>(payload), payload_len);
  FlightRecorder::Record(FrEvent::kWalAppend, static_cast<int64_t>(header.lsn),
                         static_cast<int64_t>(sizeof(header) + payload_len));
  stats_.records++;
  stats_.bytes_appended +=
      static_cast<int64_t>(sizeof(header) + payload_len);
  RecordsCounter().Increment();
  BytesCounter().Add(static_cast<int64_t>(sizeof(header) + payload_len));
  if (buffer_.size() >= options_.group_commit_bytes) FlushBuffer();
}

void Wal::FlushBuffer() {
  if (buffer_.empty()) return;
  file_.WriteAt(file_end_, buffer_.data(), buffer_.size());
  file_end_ += buffer_.size();
  buffer_.clear();
}

void Wal::Sync() {
  FlushBuffer();
  file_.Sync();
  stats_.fsyncs++;
  FsyncCounter().Increment();
}

void Wal::Reset() {
  buffer_.clear();
  file_.Truncate(0);
  const WalFileHeader header{kWalMagic, kWalVersion, next_lsn_};
  file_.WriteAt(0, &header, sizeof(header));
  file_end_ = sizeof(header);
  header_start_lsn_ = next_lsn_;
  needs_reset_ = false;
  file_.Sync();
  stats_.fsyncs++;
  FsyncCounter().Increment();
}

uint64_t Wal::file_bytes() const { return file_.Size(); }

Wal::ScanResult Wal::Scan() const {
  ScanResult result;
  const uint64_t size = file_.Size();
  std::string raw(size, '\0');
  if (size > 0) file_.ReadAt(0, raw.data(), size);

  if (size < sizeof(WalFileHeader)) {
    result.torn_tail = size > 0;
    return result;
  }
  WalFileHeader header;
  std::memcpy(&header, raw.data(), sizeof(header));
  if (header.magic != kWalMagic || header.version != kWalVersion) {
    result.torn_tail = true;
    return result;
  }
  result.next_lsn = header.start_lsn;

  Batch pending;
  uint64_t pos = sizeof(WalFileHeader);
  Lsn expected_lsn = header.start_lsn;
  bool damaged = false;
  while (pos + sizeof(WalRecordHeader) <= size) {
    WalRecordHeader rec;
    std::memcpy(&rec, raw.data() + pos, sizeof(rec));
    if (rec.magic != kRecordMagic || rec.lsn != expected_lsn ||
        (rec.type == kPage && rec.payload_len != kPageSize)) {
      damaged = true;
      break;
    }
    if (pos + sizeof(rec) + rec.payload_len > size) {
      damaged = true;  // record chopped mid-payload
      break;
    }
    const char* payload = raw.data() + pos + sizeof(rec);
    if (RecordChecksum(rec, payload) != rec.checksum) {
      damaged = true;
      break;
    }
    pos += sizeof(rec) + rec.payload_len;
    ++expected_lsn;
    result.records_scanned++;
    result.next_lsn = rec.lsn + 1;
    if (rec.type == kPage) {
      PageImage pi;
      pi.id = rec.page_id;
      pi.lsn = rec.lsn;
      std::memcpy(pi.image.bytes.data(), payload, kPageSize);
      pending.pages.push_back(std::move(pi));
    } else {
      pending.commit_payload.assign(payload, rec.payload_len);
      pending.commit_lsn = rec.lsn;
      result.batches.push_back(std::move(pending));
      pending = Batch{};
    }
  }
  if (!damaged && pos < size) damaged = true;  // sub-header trailing bytes
  if (damaged) {
    // Classify: damage followed by an intact record is impossible under
    // the crash model (a killed appender loses the damaged byte AND
    // everything after it), so it must be at-rest alteration inside the
    // durable region. Recovery semantics are unchanged either way — the
    // suffix is unreachable without its damaged predecessor — but the
    // operator alert is very different.
    if (ValidRecordBeyond(raw, pos, expected_lsn)) {
      result.interior_corruption = true;
      InteriorCorruptionCounter().Increment();
    } else {
      result.torn_tail = true;
    }
  }
  result.records_discarded = static_cast<int64_t>(pending.pages.size());
  return result;
}

}  // namespace pdr
