#include "pdr/storage/pager.h"

#include <cassert>

namespace pdr {

PageId Pager::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = Page{};
    return id;
  }
  pages_.emplace_back();
  return static_cast<PageId>(pages_.size() - 1);
}

void Pager::Free(PageId id) {
  assert(id < pages_.size());
  free_list_.push_back(id);
}

Page& Pager::PageAt(PageId id) {
  assert(id < pages_.size());
  return pages_[id];
}

const Page& Pager::PageAt(PageId id) const {
  assert(id < pages_.size());
  return pages_[id];
}

}  // namespace pdr
