#include "pdr/storage/pager.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace pdr {
namespace {

[[noreturn]] void ThrowBadPage(const char* what, PageId id) {
  throw std::invalid_argument(std::string(what) + ": page " +
                              std::to_string(id));
}

}  // namespace

PageId MemPager::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = Page{};
    is_free_[id] = 0;
    return id;
  }
  pages_.emplace_back();
  is_free_.push_back(0);
  return static_cast<PageId>(pages_.size() - 1);
}

void MemPager::Free(PageId id) {
  if (id >= pages_.size()) ThrowBadPage("Free of unallocated page id", id);
  if (is_free_[id]) ThrowBadPage("double Free", id);
  is_free_[id] = 1;
  free_list_.push_back(id);
}

void MemPager::ReadPage(PageId id, Page* out) const {
  if (id >= pages_.size()) ThrowBadPage("read of unallocated page id", id);
  *out = pages_[id];
}

void MemPager::WritePage(PageId id, const Page& page) {
  if (id >= pages_.size()) ThrowBadPage("write of unallocated page id", id);
  pages_[id] = page;
}

Page& MemPager::PageAt(PageId id) {
  assert(id < pages_.size());
  return pages_[id];
}

const Page& MemPager::PageAt(PageId id) const {
  assert(id < pages_.size());
  return pages_[id];
}

void MemPager::Restore(size_t page_count,
                       const std::vector<PageId>& free_list) {
  for (const PageId id : free_list) {
    if (id >= page_count) ThrowBadPage("free list outside store", id);
  }
  pages_.assign(page_count, Page{});
  is_free_.assign(page_count, 0);
  free_list_ = free_list;
  for (const PageId id : free_list_) {
    if (is_free_[id]) ThrowBadPage("duplicate free-list entry", id);
    is_free_[id] = 1;
  }
}

}  // namespace pdr
