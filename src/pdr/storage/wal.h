// Physical-page write-ahead log.
//
// Append-only file of checksummed records:
//
//   [file header: magic "PDRW", version, start LSN]
//   [record]*
//
//   record := {u32 magic, u8 type, u8 pad[3], u64 lsn, u32 page_id,
//              u32 payload_len, u64 fnv1a64(header-sans-checksum+payload)}
//             ++ payload
//
// Two record types: kPage carries the 4 KB after-image of one page;
// kCommit carries the checkpoint metadata blob (page count, free list,
// index/engine state) and marks every record since the previous commit as
// durable-atomic. Recovery scans forward, validates each checksum, groups
// records into committed batches, and discards the torn tail after the
// last commit — so a crash mid-append can never surface a half-written
// page image.
//
// Writes are buffered in memory and flushed to the file in batches
// (group commit): Append* never touches the disk; Sync() flushes the
// buffer with one write and one fsync, so a checkpoint of N pages costs
// one fsync, not N. The WAL never needs per-record durability because the
// data file is only written from already-committed batches (see
// disk_pager.h for the full protocol).

#ifndef PDR_STORAGE_WAL_H_
#define PDR_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdr/storage/fault_injector.h"
#include "pdr/storage/pager.h"
#include "pdr/storage/storage_file.h"

namespace pdr {

using Lsn = uint64_t;

struct WalOptions {
  /// Buffered bytes that trigger an intermediate (non-fsync) flush to the
  /// file. Larger values = fewer write syscalls per checkpoint.
  size_t group_commit_bytes = 256 * 1024;
};

/// Cumulative writer-side statistics (exported to the metrics registry as
/// pdr.wal.* as well).
struct WalStats {
  int64_t records = 0;
  int64_t commits = 0;
  int64_t bytes_appended = 0;
  int64_t fsyncs = 0;
};

class Wal {
 public:
  enum RecordType : uint8_t { kPage = 1, kCommit = 2 };

  /// One recovered page after-image with the LSN it was logged under —
  /// the LSN the page trailer binds on converge (see page_format.h).
  struct PageImage {
    PageId id = kInvalidPageId;
    Lsn lsn = 0;
    Page image;
  };

  /// One committed batch recovered from the log: the page after-images
  /// appended since the previous commit, plus the commit's metadata.
  struct Batch {
    std::vector<PageImage> pages;
    std::string commit_payload;
    Lsn commit_lsn = 0;
  };

  struct ScanResult {
    std::vector<Batch> batches;
    int64_t records_scanned = 0;
    int64_t records_discarded = 0;  ///< torn/uncommitted tail records
    /// The scan stopped at damage consistent with a crash: the file ends
    /// at (or shortly after) the last valid record, with no intact record
    /// beyond the damage. Expected after a kill; recovery absorbs it.
    bool torn_tail = false;
    /// The scan stopped at damage with a fully-valid record *beyond* it —
    /// a crash cannot produce that shape (appends are strictly ordered
    /// before the tail), so bytes inside the durable region were altered
    /// at rest. Counted in pdr.wal.interior_corruption; recovery still
    /// stops at the damage (the suffix is unreachable without its
    /// predecessor), but the caller should not treat the log as merely
    /// torn. Mutually exclusive with torn_tail.
    bool interior_corruption = false;
    Lsn next_lsn = 0;
  };

  /// Opens (creating if absent) the log at `path`. A fresh file gets a
  /// header; an existing file is left untouched — call Scan() to read it.
  /// A reopened log that still holds record bytes refuses Append* (throws
  /// std::logic_error) until Reset() repositions it: appending after a
  /// possibly-torn region would leave records Scan can never reach.
  Wal(const std::string& path, const WalOptions& options,
      FaultInjector* injector);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers a page after-image record. Returns its LSN.
  Lsn AppendPage(PageId id, const Page& image);

  /// Buffers a commit record carrying `payload`. Returns its LSN. The
  /// batch becomes durable at the next Sync().
  Lsn AppendCommit(const std::string& payload);

  /// Flushes buffered records and fsyncs: everything appended so far is
  /// durable afterwards. One fsync regardless of the batch size.
  void Sync();

  /// Empties the log (truncate + fresh header + fsync). Called after a
  /// checkpoint has been fully applied to the data file; the next LSN
  /// continues monotonically.
  void Reset();

  /// Reads the log from the start: checksum-validates every record,
  /// groups them into committed batches, and stops at the first damaged
  /// byte. Never throws on corruption — damage only shortens the usable
  /// prefix. The *classification* of the damage is reported: a tail that
  /// simply ends (torn_tail, the normal crash shape) versus damage with
  /// intact records beyond it (interior_corruption, which no crash can
  /// produce — see ScanResult).
  ScanResult Scan() const;

  Lsn next_lsn() const { return next_lsn_; }
  void set_next_lsn(Lsn lsn) { next_lsn_ = lsn; }

  /// Start LSN stamped in the on-disk file header — what Scan() will
  /// expect the first record's LSN to be. Diverges from next_lsn() when
  /// recovery adopts a checkpoint LSN without rewriting the header (the
  /// caller must Reset() then, or the next batch looks like a torn tail).
  Lsn header_start_lsn() const { return header_start_lsn_; }
  uint64_t file_bytes() const;
  const WalStats& stats() const { return stats_; }
  bool poisoned() const { return file_.poisoned(); }
  void Poison() { file_.Poison(); }

 private:
  void AppendRecord(RecordType type, PageId page_id, const void* payload,
                    size_t payload_len);
  void FlushBuffer();

  StorageFile file_;
  WalOptions options_;
  std::string buffer_;      // appended records not yet written to the file
  uint64_t file_end_ = 0;   // bytes of the file already written
  Lsn next_lsn_ = 0;
  Lsn header_start_lsn_ = 0;  // start LSN in the on-disk file header
  bool needs_reset_ = false;  // reopened with record bytes: Reset before Append
  WalStats stats_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_WAL_H_
