// LRU buffer pool with simulated I/O accounting.
//
// Every page access from the TPR-tree goes through Fetch(); a miss copies
// the page in from the Pager, evicting the least recently used unpinned
// frame (writing it back if dirty), and increments the physical-read
// counter that the query engines convert into the paper's 10 ms/IO charge.

#ifndef PDR_STORAGE_BUFFER_POOL_H_
#define PDR_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "pdr/common/stats.h"  // IoStats
#include "pdr/storage/pager.h"

namespace pdr {

class BufferPool {
 public:
  /// `capacity_pages` frames; at least the maximum number of concurrently
  /// pinned pages (tree root-to-leaf path) are required.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin on a buffered page. While alive the frame cannot be evicted.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(BufferPool* pool, size_t frame);
    PageRef(PageRef&& o) noexcept;
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef();

    Page& operator*() const;
    Page* operator->() const;
    Page* get() const;
    PageId id() const;
    explicit operator bool() const { return pool_ != nullptr; }

    /// Marks the page dirty so eviction writes it back.
    void MarkDirty() const;

    /// Releases the pin early.
    void Reset();

   private:
    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
  };

  /// Pins the page in the pool, reading it from the pager on a miss.
  PageRef Fetch(PageId id);

  /// Pins a page for writing (Fetch + MarkDirty).
  PageRef FetchMut(PageId id);

  /// Allocates a new page (via the pager) already pinned and dirty.
  /// Creation misses are not charged as reads.
  PageRef Create(PageId* id_out);

  /// Drops the page from the pool (e.g. after Pager::Free). Must be
  /// unpinned.
  void Discard(PageId id);

  /// Writes all dirty frames back to the pager.
  void FlushAll();

  /// Empties the pool (flushing dirty pages); next fetches are all misses.
  /// Used by benches to measure cold-cache query cost.
  void Clear();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }
  size_t capacity() const { return capacity_; }
  size_t resident_pages() const { return frame_of_.size(); }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    int pins = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid only when pins == 0
    bool in_lru = false;
  };

  size_t AcquireFrame();  // free or evicted frame index
  void Pin(size_t frame);
  void Unpin(size_t frame);
  void FlushFrame(Frame& frame);

  Pager* pager_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recent, back = eviction victim
  std::unordered_map<PageId, size_t> frame_of_;
  IoStats stats_;

  friend class PageRef;
};

}  // namespace pdr

#endif  // PDR_STORAGE_BUFFER_POOL_H_
