// LRU buffer pool with simulated I/O accounting.
//
// Every page access from the TPR-tree goes through Fetch(); a miss copies
// the page in from the Pager, evicting the least recently used unpinned
// frame (writing it back if dirty), and increments the physical-read
// counter that the query engines convert into the paper's 10 ms/IO charge.
//
// Concurrency model (two modes, switched by the query engines):
//
//   * Default: every operation takes the pool's latch exclusively. Behavior
//     (LRU order, eviction choice, counters) is exactly the classic
//     single-threaded pool; the latch only makes interleaved use from
//     multiple threads safe.
//   * Read-mostly phase (BeginReadPhase/EndReadPhase): used while a query
//     stage fans read-only lookups out across a thread pool. Hits on
//     resident pages take the latch *shared* — they pin via an atomic
//     count and skip the LRU-recency update (recency is unspecified within
//     a phase) — so concurrent readers proceed without serializing. Misses
//     upgrade to the exclusive latch; eviction skips pinned frames. Frames
//     unpinned during the phase are re-linked into the LRU when the phase
//     ends. Because the LRU list goes stale while hits bypass it, every
//     access also stamps its frame with a relaxed logical clock, and
//     in-phase eviction picks the unpinned frame with the oldest stamp —
//     approximate LRU without a shared list. Mutating calls
//     (FetchMut/Create/Discard/Clear) are forbidden inside a phase. Every
//     ref pinned during a phase must be released before EndReadPhase
//     (fork/join stages guarantee this).
//
// I/O accounting during a read-mostly phase is kept per thread: each
// thread accumulates its reads into a thread-local delta
// (TakeThreadIoDelta) so parallel per-cell work can attribute I/O without
// contending on shared counters; the pool-wide totals fold the phase's
// counts back in, so stats() is consistent in both modes.

#ifndef PDR_STORAGE_BUFFER_POOL_H_
#define PDR_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "pdr/common/stats.h"  // IoStats
#include "pdr/storage/pager.h"

namespace pdr {

class BufferPool {
 public:
  /// `capacity_pages` frames; at least the maximum number of concurrently
  /// pinned pages (tree root-to-leaf path times concurrent readers) are
  /// required.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin on a buffered page. While alive the frame cannot be evicted.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(BufferPool* pool, size_t frame);
    PageRef(PageRef&& o) noexcept;
    PageRef& operator=(PageRef&& o) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef();

    Page& operator*() const;
    Page* operator->() const;
    Page* get() const;
    PageId id() const;
    explicit operator bool() const { return pool_ != nullptr; }

    /// Marks the page dirty so eviction writes it back.
    void MarkDirty() const;

    /// Releases the pin early.
    void Reset();

   private:
    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
  };

  /// Pins the page in the pool, reading it from the pager on a miss.
  PageRef Fetch(PageId id);

  /// Pins a page for writing (Fetch + MarkDirty).
  PageRef FetchMut(PageId id);

  /// Allocates a new page (via the pager) already pinned and dirty.
  /// Creation misses are not charged as reads.
  PageRef Create(PageId* id_out);

  /// Drops the page from the pool (e.g. after Pager::Free). Must be
  /// unpinned.
  void Discard(PageId id);

  /// Writes all dirty frames back to the pager.
  void FlushAll();

  /// Empties the pool (flushing dirty pages); next fetches are all misses.
  /// Used by benches to measure cold-cache query cost.
  void Clear();

  /// Enters/leaves the read-mostly concurrent phase (see file comment).
  void BeginReadPhase();
  void EndReadPhase();
  bool in_read_phase() const {
    return read_phase_.load(std::memory_order_acquire);
  }

  /// The calling thread's I/O accumulated during the current read-mostly
  /// phase since the last call (zeroed on return). Zero outside a phase.
  IoStats TakeThreadIoDelta();

  /// Same as TakeThreadIoDelta but without zeroing — for nested
  /// instrumentation (per-range-query spans) that must not consume the
  /// delta the enclosing per-cell span will take.
  IoStats PeekThreadIoDelta() const;

  IoStats stats() const;
  void ResetStats();
  size_t capacity() const { return capacity_; }
  size_t resident_pages() const;

  /// Number of dirty resident frames — the dirty-page table a checkpoint
  /// drains with FlushAll().
  size_t dirty_pages() const;

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    std::atomic<int> pins{0};
    // Logical access clock, bumped on every pin. The in-phase evictor
    // selects its victim by oldest stamp (the LRU list is stale during a
    // phase: shared-lock hits cannot reorder it).
    std::atomic<uint64_t> last_access{0};
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid only when in_lru
    bool in_lru = false;
  };

  // All *Locked helpers require the exclusive latch.
  size_t AcquireFrameLocked();  // free or evicted frame index
  void PinLocked(size_t frame);
  void FlushFrameLocked(Frame& frame);
  PageRef FetchMissLocked(PageId id);
  void CountRead(bool physical);  // phase accounting (slot + pool atomics)

  void Unpin(size_t frame);

  Pager* pager_;
  size_t capacity_;
  // Frames hold an atomic pin count, so they live in a fixed array rather
  // than a vector (atomics are not movable).
  std::unique_ptr<Frame[]> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recent, back = eviction victim
  std::unordered_map<PageId, size_t> frame_of_;
  IoStats stats_;

  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> access_clock_{0};
  std::atomic<bool> read_phase_{false};
  std::atomic<uint64_t> phase_epoch_{0};  // globally unique per phase
  std::atomic<int64_t> phase_logical_{0};
  std::atomic<int64_t> phase_physical_{0};
  std::atomic<int64_t> phase_writebacks_{0};

  friend class PageRef;
};

}  // namespace pdr

#endif  // PDR_STORAGE_BUFFER_POOL_H_
