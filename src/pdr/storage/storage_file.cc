#include "pdr/storage/storage_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdr/obs/obs.h"

namespace pdr {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// Transient faults are retried in place with capped exponential backoff
/// (1, 2, 4, ... 64 us — deterministic, so sweeps reproduce). A fault that
/// outlives the retry budget stops being "transient": it surfaces as a
/// plain I/O error, which durability callers treat like any failed write.
constexpr int kMaxTransientRetries = 8;

/// Asks the injector about `op`, absorbing kTransientFail by bounded
/// retry; every retried attempt consumes a fresh fault-point index.
FaultInjector::Action CheckOpRetrying(FaultInjector* injector,
                                      const std::string& op) {
  if (injector == nullptr) return FaultInjector::Action::kProceed;
  for (int attempt = 0;; ++attempt) {
    const FaultInjector::Action action = injector->OnOp(op.c_str());
    if (action != FaultInjector::Action::kTransientFail) return action;
    static Counter& retries =
        MetricsRegistry::Global().GetCounter("pdr.storage.transient_retries");
    retries.Increment();
    if (attempt >= kMaxTransientRetries) {
      throw TransientExhaustedError("transient I/O error persisted after " +
                                    std::to_string(kMaxTransientRetries) +
                                    " retries: " + op);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(int64_t{1} << std::min(attempt, 6)));
  }
}

}  // namespace

void StorageFile::Open(const std::string& path, const char* op_prefix,
                       FaultInjector* injector) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) ThrowErrno("cannot open", path);
  path_ = path;
  op_prefix_ = op_prefix;
  injector_ = injector;
  poisoned_ = false;
}

void StorageFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FaultInjector::Action StorageFile::CheckFault(const char* op) {
  if (injector_ == nullptr) return FaultInjector::Action::kProceed;
  return CheckOpRetrying(injector_, op_prefix_ + "." + op);
}

size_t StorageFile::ReadAt(uint64_t offset, void* buf, size_t n) const {
  size_t got = 0;
  auto* p = static_cast<char*>(buf);
  while (got < n) {
    const ssize_t r = ::pread(fd_, p + got, n - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("read failed", path_);
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  if (got < n) std::memset(p + got, 0, n - got);
  return got;
}

void StorageFile::WriteAt(uint64_t offset, const void* buf, size_t n) {
  if (poisoned_) return;
  const FaultInjector::Action action = CheckFault("write");
  if (action == FaultInjector::Action::kCrash) {
    poisoned_ = true;
    throw CrashError("injected crash before " + op_prefix_ + ".write");
  }
  // Silent corruption: the write "succeeds" but a damaged copy of the
  // buffer reaches the file. No throw, no poisoning — the caller cannot
  // tell anything went wrong, which is the whole point of the model.
  std::vector<char> corrupted;
  if (action == FaultInjector::Action::kCorruptWrite) {
    corrupted.assign(static_cast<const char*>(buf),
                     static_cast<const char*>(buf) + n);
    injector_->ApplyCorruption(corrupted.data(), corrupted.size());
    buf = corrupted.data();
  }
  size_t to_write = n;
  bool chop_tail = false;
  if (action == FaultInjector::Action::kTornThenCrash) {
    if (injector_->mode() == CrashMode::kTruncatedTail &&
        offset + n >= Size()) {
      chop_tail = true;  // append: persist fully, then lose the tail
    } else {
      to_write = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(n) *
                                 injector_->TornFraction()));
    }
  }
  size_t put = 0;
  const auto* p = static_cast<const char*>(buf);
  while (put < to_write) {
    const ssize_t w = ::pwrite(fd_, p + put, to_write - put,
                               static_cast<off_t>(offset + put));
    if (w < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("write failed", path_);
    }
    put += static_cast<size_t>(w);
  }
  if (action == FaultInjector::Action::kTornThenCrash) {
    if (chop_tail) {
      // Lose the not-yet-durable tail mid-record: keep a deterministic
      // prefix of the bytes just appended.
      const auto keep = static_cast<uint64_t>(
          static_cast<double>(n) * injector_->TornFraction());
      if (::ftruncate(fd_, static_cast<off_t>(offset + keep)) != 0) {
        ThrowErrno("truncate failed", path_);
      }
    }
    poisoned_ = true;
    throw CrashError("injected torn " + op_prefix_ + ".write");
  }
}

void StorageFile::Sync() {
  if (poisoned_) return;
  const FaultInjector::Action action = CheckFault("sync");
  if (action != FaultInjector::Action::kProceed &&
      action != FaultInjector::Action::kCorruptWrite) {
    // All crash modes are equivalent for fsync: it simply never happened.
    // A corrupt point landing here is a no-op — there are no bytes to
    // damage — but it must not crash, or corrupt-sweep numbering breaks.
    poisoned_ = true;
    throw CrashError("injected crash at " + op_prefix_ + ".sync");
  }
  if (::fsync(fd_) != 0) ThrowErrno("fsync failed", path_);
}

void StorageFile::Truncate(uint64_t size) {
  if (poisoned_) return;
  const FaultInjector::Action action = CheckFault("truncate");
  if (action != FaultInjector::Action::kProceed &&
      action != FaultInjector::Action::kCorruptWrite) {
    poisoned_ = true;
    throw CrashError("injected crash at " + op_prefix_ + ".truncate");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    ThrowErrno("truncate failed", path_);
  }
}

uint64_t StorageFile::Size() const {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) ThrowErrno("lseek failed", path_);
  return static_cast<uint64_t>(end);
}

void AtomicWriteFile(const std::string& path, const std::string& contents,
                     const char* op_prefix, FaultInjector* injector) {
  const std::string tmp = path + ".tmp";
  {
    StorageFile file;
    file.Open(tmp, op_prefix, injector);
    file.Truncate(0);
    file.WriteAt(0, contents.data(), contents.size());
    file.Sync();
  }
  if (injector != nullptr) {
    const std::string op = std::string(op_prefix) + ".rename";
    const FaultInjector::Action action = CheckOpRetrying(injector, op);
    if (action != FaultInjector::Action::kProceed &&
        action != FaultInjector::Action::kCorruptWrite) {
      throw CrashError("injected crash before " + op);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ThrowErrno("rename failed", tmp + " -> " + path);
  }
  const size_t slash = path.rfind('/');
  SyncDir(slash == std::string::npos ? "." : path.substr(0, slash), op_prefix,
          injector);
}

void SyncDir(const std::string& dir_path, const char* op_prefix,
             FaultInjector* injector) {
  if (injector != nullptr) {
    const std::string op = std::string(op_prefix) + ".dirsync";
    const FaultInjector::Action action = CheckOpRetrying(injector, op);
    if (action != FaultInjector::Action::kProceed &&
        action != FaultInjector::Action::kCorruptWrite) {
      // Like a file fsync, all crash modes are equivalent: it never ran.
      throw CrashError("injected crash at " + op);
    }
  }
  const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) ThrowErrno("cannot open directory", dir_path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("directory fsync failed", dir_path);
  }
  ::close(fd);
}

bool ReadFileIfExists(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return false;
    ThrowErrno("cannot open", path);
  }
  out->clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ThrowErrno("read failed", path);
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return true;
}

}  // namespace pdr
