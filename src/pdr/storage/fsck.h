// Offline store verifier and repairer (`pdr_tool fsck`).
//
// RunFsck walks a durable store directory (data.pdr / wal.log /
// checkpoint.pdr) with the raw file formats — NOT through DiskPager —
// so it can examine damage the pager's constructor would refuse to open:
// a page slot whose trailer fails with no covering WAL redo image makes
// DiskPager throw CorruptionError, while fsck reports every such page and
// keeps going. The verdict per live page:
//
//   ok            the slot's trailer verifies (possibly stale relative to
//                 a committed WAL image — recovery's redo supersedes it,
//                 so the store is still openable)
//   repairable    the trailer fails but a committed WAL after-image covers
//                 the page: recovery heals it; `repair: true` rewrites the
//                 slot from that image immediately
//   unrepairable  the trailer fails and nothing in the store can
//                 reconstruct the page — at-rest damage past the
//                 redundancy; the store will refuse to open
//
// Exit-code contract (FsckReport::exit_code): 0 for a clean or fully
// repairable/repaired store, 3 when anything is unrepairable or the store
// metadata itself (checkpoint descriptor with no committed WAL batch to
// supersede it, data-file header) cannot be trusted.

#ifndef PDR_STORAGE_FSCK_H_
#define PDR_STORAGE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdr/storage/pager.h"

namespace pdr {

struct FsckOptions {
  /// Rewrite every repairable slot from its committed WAL after-image
  /// (image ++ trailer, fsynced once at the end). Off: report only.
  bool repair = false;
};

/// One live page whose slot trailer failed verification.
struct FsckDamagedPage {
  PageId id = kInvalidPageId;
  uint64_t offset = 0;    ///< slot offset in data.pdr
  uint64_t expected = 0;  ///< trailer's stored checksum
  uint64_t actual = 0;    ///< checksum of the bytes actually on disk
  bool redo_covered = false;  ///< a committed WAL image reconstructs it
  bool repaired = false;      ///< slot rewritten (repair mode only)
};

struct FsckReport {
  std::string dir;
  /// Fatal problem that stopped the walk (missing store, untrusted
  /// metadata); empty when every page could be examined.
  std::string error;

  bool checkpoint_ok = false;   ///< descriptor checksum/magic verified
  bool data_header_ok = false;  ///< data.pdr magic/version verified
  bool wal_torn_tail = false;
  bool wal_interior_corruption = false;
  int64_t wal_batches = 0;            ///< committed batches in the log
  int64_t wal_records_discarded = 0;  ///< uncommitted tail records
  uint64_t epoch = 0;

  int64_t pages_total = 0;  ///< allocated pages per the adopted state
  int64_t pages_free = 0;
  int64_t pages_ok = 0;
  int64_t pages_repairable = 0;    ///< damaged, WAL-covered, not rewritten
  int64_t pages_repaired = 0;      ///< damaged, rewritten from the WAL
  int64_t pages_unrepairable = 0;  ///< damaged past all redundancy
  std::vector<FsckDamagedPage> damaged;

  /// 3 when the store cannot be (or could not fully be) trusted:
  /// unrepairable pages or a fatal error. 0 otherwise — including
  /// repairable damage, which recovery heals on the next open.
  int exit_code() const {
    return (!error.empty() || pages_unrepairable > 0) ? 3 : 0;
  }

  /// The whole report as one JSON object (machine-readable mode).
  std::string ToJson() const;
};

/// Verifies (and with options.repair, heals) the store in `dir`.
/// Never throws on damage — damage is the report's subject matter; only
/// I/O failures (unopenable directory) surface as exceptions.
FsckReport RunFsck(const std::string& dir, const FsckOptions& options = {});

}  // namespace pdr

#endif  // PDR_STORAGE_FSCK_H_
