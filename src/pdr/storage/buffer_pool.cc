#include "pdr/storage/buffer_pool.h"

#include <cassert>
#include <mutex>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/registry.h"

namespace pdr {
namespace {

// Process-wide mirrors of the per-pool IoStats so cross-pool I/O pressure
// shows up in one place (pdr_tool stats, bench JSONL exports).
Counter& LogicalReadsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.logical_reads");
  return c;
}
Counter& PhysicalReadsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.physical_reads");
  return c;
}
Counter& WritebacksCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.writebacks");
  return c;
}

// Cross-pool cache hit ratio (1 - physical/logical), refreshed on every
// fetch so the monitor report always sees the storage layer's current
// effectiveness without having to divide counters itself.
void UpdateHitRatioGauge() {
  if (!PdrObs::Enabled()) return;
  static Gauge& g = MetricsRegistry::Global().GetGauge("pdr.storage.hit_ratio");
  const int64_t logical = LogicalReadsCounter().value();
  if (logical <= 0) return;
  const int64_t physical = PhysicalReadsCounter().value();
  g.Set(1.0 - static_cast<double>(physical) / static_cast<double>(logical));
}

// Phase epochs are unique across all pools for the process lifetime, so a
// thread-local slot left over from a destroyed pool can never be mistaken
// for the current phase of a pool reusing the same address.
std::atomic<uint64_t> g_phase_epoch_source{0};

// One slot per pool a thread has touched during a read phase. Threads see
// few pools (typically one), so a flat scan beats a hash map.
struct ThreadIoSlot {
  const void* pool = nullptr;
  uint64_t epoch = 0;
  IoStats delta;
};
thread_local std::vector<ThreadIoSlot> t_io_slots;

IoStats* ThreadSlot(const void* pool, uint64_t epoch) {
  for (ThreadIoSlot& s : t_io_slots) {
    if (s.pool == pool) {
      if (s.epoch != epoch) {
        s.epoch = epoch;
        s.delta = IoStats{};
      }
      return &s.delta;
    }
  }
  t_io_slots.push_back(ThreadIoSlot{pool, epoch, IoStats{}});
  return &t_io_slots.back().delta;
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  assert(capacity_pages >= 4 && "buffer pool too small to pin a tree path");
  frames_ = std::make_unique<Frame[]>(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

BufferPool::~BufferPool() { FlushAll(); }

// ---------------------------------------------------------------------------
// PageRef

BufferPool::PageRef::PageRef(BufferPool* pool, size_t frame)
    : pool_(pool), frame_(frame) {}

BufferPool::PageRef::PageRef(PageRef&& o) noexcept
    : pool_(o.pool_), frame_(o.frame_) {
  o.pool_ = nullptr;
}

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    Reset();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageRef::~PageRef() { Reset(); }

Page& BufferPool::PageRef::operator*() const { return pool_->frames_[frame_].page; }
Page* BufferPool::PageRef::operator->() const { return &pool_->frames_[frame_].page; }
Page* BufferPool::PageRef::get() const {
  return pool_ ? &pool_->frames_[frame_].page : nullptr;
}
PageId BufferPool::PageRef::id() const { return pool_->frames_[frame_].id; }

void BufferPool::PageRef::MarkDirty() const {
  assert(!pool_->in_read_phase() && "write during a read-mostly phase");
  pool_->frames_[frame_].dirty = true;
}

void BufferPool::PageRef::Reset() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferPool

void BufferPool::PinLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (f.pins.load(std::memory_order_relaxed) == 0 && f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.pins.fetch_add(1, std::memory_order_acq_rel);
  f.last_access.store(access_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
}

void BufferPool::Unpin(size_t frame) {
  if (read_phase_.load(std::memory_order_acquire)) {
    // Lock-free: the frame stays out of the LRU ("loose") until
    // EndReadPhase re-links it; the evictor's loose-frame scan can still
    // reclaim it under the exclusive latch if the pool runs dry.
    Frame& f = frames_[frame];
    const int prev = f.pins.fetch_sub(1, std::memory_order_acq_rel);
    assert(prev > 0);
    (void)prev;
    return;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Frame& f = frames_[frame];
  const int prev = f.pins.fetch_sub(1, std::memory_order_acq_rel);
  assert(prev > 0);
  if (prev == 1 && !f.in_lru) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::FlushFrameLocked(Frame& frame) {
  if (frame.dirty && frame.id != kInvalidPageId) {
    pager_->WritePage(frame.id, frame.page);
    frame.dirty = false;
    if (read_phase_.load(std::memory_order_relaxed)) {
      ThreadSlot(this, phase_epoch_.load(std::memory_order_relaxed))
          ->writebacks++;
      phase_writebacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++stats_.writebacks;
    }
    WritebacksCounter().Increment();
  }
}

size_t BufferPool::AcquireFrameLocked() {
  if (!free_frames_.empty()) {
    const size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (read_phase_.load(std::memory_order_relaxed)) {
    // The LRU list goes stale during a phase (hits bypass it), so evict
    // the unpinned frame with the oldest access stamp — true LRU under
    // one reader, approximate LRU under many. Evicting by the stale list
    // instead throws out the pages the phase is hammering (observed as a
    // ~3x physical-read blowup on cold-cache parallel queries).
    size_t victim = capacity_;
    uint64_t oldest = ~uint64_t{0};
    for (size_t i = 0; i < capacity_; ++i) {
      Frame& f = frames_[i];
      if (f.id == kInvalidPageId ||
          f.pins.load(std::memory_order_acquire) != 0) {
        continue;
      }
      const uint64_t stamp = f.last_access.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = i;
      }
    }
    if (victim < capacity_) {
      Frame& f = frames_[victim];
      if (f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      FlushFrameLocked(f);
      frame_of_.erase(f.id);
      f.id = kInvalidPageId;
      return victim;
    }
    assert(false && "buffer pool exhausted: all frames pinned");
    return 0;
  }
  // Serial mode: exact LRU. No frame in the list can be pinned (pinning
  // removes it), so the back is always the victim.
  assert(!lru_.empty() && "buffer pool exhausted: all frames pinned");
  const size_t victim = lru_.back();
  Frame& f = frames_[victim];
  lru_.pop_back();
  f.in_lru = false;
  FlushFrameLocked(f);
  frame_of_.erase(f.id);
  f.id = kInvalidPageId;
  return victim;
}

void BufferPool::CountRead(bool physical) {
  IoStats* slot = ThreadSlot(this, phase_epoch_.load(std::memory_order_relaxed));
  slot->logical_reads++;
  phase_logical_.fetch_add(1, std::memory_order_relaxed);
  LogicalReadsCounter().Increment();
  if (physical) {
    slot->physical_reads++;
    phase_physical_.fetch_add(1, std::memory_order_relaxed);
    PhysicalReadsCounter().Increment();
  }
  UpdateHitRatioGauge();
}

BufferPool::PageRef BufferPool::FetchMissLocked(PageId id) {
  // Re-check residency: another reader may have brought the page in
  // between our shared-lock probe and this exclusive acquisition.
  auto it = frame_of_.find(id);
  if (it != frame_of_.end()) {
    CountRead(/*physical=*/false);
    PinLocked(it->second);
    return PageRef(this, it->second);
  }
  CountRead(/*physical=*/true);
  FlightRecorder::Record(FrEvent::kPageFault, static_cast<int64_t>(id),
                         /*physical=*/1);
  const size_t frame = AcquireFrameLocked();
  Frame& f = frames_[frame];
  f.id = id;
  try {
    pager_->ReadPage(id, &f.page);
  } catch (...) {
    // Verified fill failed (e.g. CorruptionError): release the acquired
    // frame or it would leak — neither resident nor free — and the pool
    // would shrink by one frame per failed read.
    f.id = kInvalidPageId;
    free_frames_.push_back(frame);
    throw;
  }
  f.dirty = false;
  frame_of_[id] = frame;
  PinLocked(frame);
  return PageRef(this, frame);
}

BufferPool::PageRef BufferPool::Fetch(PageId id) {
  if (read_phase_.load(std::memory_order_acquire)) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = frame_of_.find(id);
      if (it != frame_of_.end()) {
        // Hit: atomic pin and access stamp, no LRU reorder — the stamp
        // (not the list) carries recency within a phase, which is what
        // lets hits share the latch.
        Frame& f = frames_[it->second];
        f.pins.fetch_add(1, std::memory_order_acq_rel);
        f.last_access.store(
            access_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        CountRead(/*physical=*/false);
        return PageRef(this, it->second);
      }
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    return FetchMissLocked(id);
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  ++stats_.logical_reads;
  LogicalReadsCounter().Increment();
  auto it = frame_of_.find(id);
  if (it != frame_of_.end()) {
    PinLocked(it->second);
    UpdateHitRatioGauge();
    return PageRef(this, it->second);
  }
  ++stats_.physical_reads;
  PhysicalReadsCounter().Increment();
  UpdateHitRatioGauge();
  FlightRecorder::Record(FrEvent::kPageFault, static_cast<int64_t>(id),
                         /*physical=*/1);
  const size_t frame = AcquireFrameLocked();
  Frame& f = frames_[frame];
  f.id = id;
  try {
    pager_->ReadPage(id, &f.page);
  } catch (...) {
    f.id = kInvalidPageId;  // see FetchMissLocked: don't leak the frame
    free_frames_.push_back(frame);
    throw;
  }
  f.dirty = false;
  frame_of_[id] = frame;
  PinLocked(frame);
  return PageRef(this, frame);
}

BufferPool::PageRef BufferPool::FetchMut(PageId id) {
  assert(!in_read_phase() && "FetchMut during a read-mostly phase");
  PageRef ref = Fetch(id);
  ref.MarkDirty();
  return ref;
}

BufferPool::PageRef BufferPool::Create(PageId* id_out) {
  assert(!in_read_phase() && "Create during a read-mostly phase");
  std::unique_lock<std::shared_mutex> lock(mu_);
  const PageId id = pager_->Allocate();
  if (id_out != nullptr) *id_out = id;
  const size_t frame = AcquireFrameLocked();
  Frame& f = frames_[frame];
  f.id = id;
  f.page = Page{};
  f.dirty = true;
  frame_of_[id] = frame;
  PinLocked(frame);
  return PageRef(this, frame);
}

void BufferPool::Discard(PageId id) {
  assert(!in_read_phase() && "Discard during a read-mostly phase");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = frame_of_.find(id);
  if (it == frame_of_.end()) return;
  Frame& f = frames_[it->second];
  assert(f.pins.load(std::memory_order_relaxed) == 0 &&
         "discarding a pinned page");
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.id = kInvalidPageId;
  f.dirty = false;
  free_frames_.push_back(it->second);
  frame_of_.erase(it);
}

void BufferPool::FlushAll() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < capacity_; ++i) FlushFrameLocked(frames_[i]);
}

void BufferPool::Clear() {
  assert(!in_read_phase() && "Clear during a read-mostly phase");
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < capacity_; ++i) FlushFrameLocked(frames_[i]);
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& f = frames_[i];
    assert(f.pins.load(std::memory_order_relaxed) == 0 &&
           "clearing a pool with pinned pages");
    f.id = kInvalidPageId;
    f.in_lru = false;
  }
  lru_.clear();
  frame_of_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

void BufferPool::BeginReadPhase() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  assert(!read_phase_.load(std::memory_order_relaxed) &&
         "read phases do not nest");
#ifndef NDEBUG
  for (size_t i = 0; i < capacity_; ++i) {
    assert(frames_[i].pins.load(std::memory_order_relaxed) == 0 &&
           "page pinned across BeginReadPhase");
  }
#endif
  phase_epoch_.store(g_phase_epoch_source.fetch_add(1) + 1,
                     std::memory_order_relaxed);
  phase_logical_.store(0, std::memory_order_relaxed);
  phase_physical_.store(0, std::memory_order_relaxed);
  phase_writebacks_.store(0, std::memory_order_relaxed);
  read_phase_.store(true, std::memory_order_release);
}

void BufferPool::EndReadPhase() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  assert(read_phase_.load(std::memory_order_relaxed));
  read_phase_.store(false, std::memory_order_release);
  stats_.logical_reads += phase_logical_.load(std::memory_order_relaxed);
  stats_.physical_reads += phase_physical_.load(std::memory_order_relaxed);
  stats_.writebacks += phase_writebacks_.load(std::memory_order_relaxed);
  phase_logical_.store(0, std::memory_order_relaxed);
  phase_physical_.store(0, std::memory_order_relaxed);
  phase_writebacks_.store(0, std::memory_order_relaxed);
  // Re-link frames unpinned during the phase in ascending frame order, so
  // the post-phase LRU state is a deterministic function of the phase's
  // result set, independent of thread interleaving.
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& f = frames_[i];
    assert(f.pins.load(std::memory_order_relaxed) == 0 &&
           "page still pinned at EndReadPhase");
    if (f.id != kInvalidPageId && !f.in_lru) {
      lru_.push_front(i);
      f.lru_pos = lru_.begin();
      f.in_lru = true;
    }
  }
}

IoStats BufferPool::TakeThreadIoDelta() {
  if (!read_phase_.load(std::memory_order_acquire)) return IoStats{};
  IoStats* slot = ThreadSlot(this, phase_epoch_.load(std::memory_order_relaxed));
  const IoStats out = *slot;
  *slot = IoStats{};
  return out;
}

IoStats BufferPool::PeekThreadIoDelta() const {
  if (!read_phase_.load(std::memory_order_acquire)) return IoStats{};
  return *ThreadSlot(this, phase_epoch_.load(std::memory_order_relaxed));
}

IoStats BufferPool::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  IoStats out = stats_;
  out.logical_reads += phase_logical_.load(std::memory_order_relaxed);
  out.physical_reads += phase_physical_.load(std::memory_order_relaxed);
  out.writebacks += phase_writebacks_.load(std::memory_order_relaxed);
  return out;
}

void BufferPool::ResetStats() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  assert(!read_phase_.load(std::memory_order_relaxed));
  stats_ = IoStats{};
}

size_t BufferPool::resident_pages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return frame_of_.size();
}

size_t BufferPool::dirty_pages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    if (frames_[i].id != kInvalidPageId && frames_[i].dirty) ++n;
  }
  return n;
}

}  // namespace pdr
