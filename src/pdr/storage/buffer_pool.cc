#include "pdr/storage/buffer_pool.h"

#include <cassert>

#include "pdr/obs/registry.h"

namespace pdr {
namespace {

// Process-wide mirrors of the per-pool IoStats so cross-pool I/O pressure
// shows up in one place (pdr_tool stats, bench JSONL exports).
Counter& LogicalReadsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.logical_reads");
  return c;
}
Counter& PhysicalReadsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.physical_reads");
  return c;
}
Counter& WritebacksCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("pdr.storage.writebacks");
  return c;
}

// Cross-pool cache hit ratio (1 - physical/logical), refreshed on every
// fetch so the monitor report always sees the storage layer's current
// effectiveness without having to divide counters itself.
void UpdateHitRatioGauge() {
  if (!PdrObs::Enabled()) return;
  static Gauge& g = MetricsRegistry::Global().GetGauge("pdr.storage.hit_ratio");
  const int64_t logical = LogicalReadsCounter().value();
  if (logical <= 0) return;
  const int64_t physical = PhysicalReadsCounter().value();
  g.Set(1.0 - static_cast<double>(physical) / static_cast<double>(logical));
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  assert(capacity_pages >= 4 && "buffer pool too small to pin a tree path");
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

BufferPool::~BufferPool() { FlushAll(); }

// ---------------------------------------------------------------------------
// PageRef

BufferPool::PageRef::PageRef(BufferPool* pool, size_t frame)
    : pool_(pool), frame_(frame) {}

BufferPool::PageRef::PageRef(PageRef&& o) noexcept
    : pool_(o.pool_), frame_(o.frame_) {
  o.pool_ = nullptr;
}

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    Reset();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageRef::~PageRef() { Reset(); }

Page& BufferPool::PageRef::operator*() const { return pool_->frames_[frame_].page; }
Page* BufferPool::PageRef::operator->() const { return &pool_->frames_[frame_].page; }
Page* BufferPool::PageRef::get() const {
  return pool_ ? &pool_->frames_[frame_].page : nullptr;
}
PageId BufferPool::PageRef::id() const { return pool_->frames_[frame_].id; }

void BufferPool::PageRef::MarkDirty() const {
  pool_->frames_[frame_].dirty = true;
}

void BufferPool::PageRef::Reset() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferPool

void BufferPool::Pin(size_t frame) {
  Frame& f = frames_[frame];
  if (f.pins == 0 && f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  assert(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty && frame.id != kInvalidPageId) {
    pager_->PageAt(frame.id) = frame.page;
    frame.dirty = false;
    ++stats_.writebacks;
    WritebacksCounter().Increment();
  }
}

size_t BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  assert(!lru_.empty() && "buffer pool exhausted: all frames pinned");
  const size_t victim = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[victim];
  f.in_lru = false;
  FlushFrame(f);
  frame_of_.erase(f.id);
  f.id = kInvalidPageId;
  return victim;
}

BufferPool::PageRef BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  LogicalReadsCounter().Increment();
  auto it = frame_of_.find(id);
  if (it != frame_of_.end()) {
    Pin(it->second);
    UpdateHitRatioGauge();
    return PageRef(this, it->second);
  }
  ++stats_.physical_reads;
  PhysicalReadsCounter().Increment();
  UpdateHitRatioGauge();
  const size_t frame = AcquireFrame();
  Frame& f = frames_[frame];
  f.id = id;
  f.page = pager_->PageAt(id);
  f.dirty = false;
  frame_of_[id] = frame;
  Pin(frame);
  return PageRef(this, frame);
}

BufferPool::PageRef BufferPool::FetchMut(PageId id) {
  PageRef ref = Fetch(id);
  ref.MarkDirty();
  return ref;
}

BufferPool::PageRef BufferPool::Create(PageId* id_out) {
  const PageId id = pager_->Allocate();
  if (id_out != nullptr) *id_out = id;
  const size_t frame = AcquireFrame();
  Frame& f = frames_[frame];
  f.id = id;
  f.page = Page{};
  f.dirty = true;
  frame_of_[id] = frame;
  Pin(frame);
  return PageRef(this, frame);
}

void BufferPool::Discard(PageId id) {
  auto it = frame_of_.find(id);
  if (it == frame_of_.end()) return;
  Frame& f = frames_[it->second];
  assert(f.pins == 0 && "discarding a pinned page");
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.id = kInvalidPageId;
  f.dirty = false;
  free_frames_.push_back(it->second);
  frame_of_.erase(it);
}

void BufferPool::FlushAll() {
  for (Frame& f : frames_) FlushFrame(f);
}

void BufferPool::Clear() {
  FlushAll();
  for (auto& f : frames_) {
    assert(f.pins == 0 && "clearing a pool with pinned pages");
    f.id = kInvalidPageId;
    f.in_lru = false;
  }
  lru_.clear();
  frame_of_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

}  // namespace pdr
