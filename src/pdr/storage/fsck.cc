#include "pdr/storage/fsck.h"

#include <sys/stat.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pdr/storage/page_format.h"
#include "pdr/storage/serde.h"
#include "pdr/storage/storage_file.h"
#include "pdr/storage/wal.h"

namespace pdr {
namespace {

// File-format constants, mirrored from disk_pager.cc (the two must agree;
// wal_test.cc + cli_test.cc round-trip stores between the pager and fsck,
// pinning the agreement).
constexpr uint32_t kDataMagic = 0x50524450u;  // "PDRP"
constexpr uint32_t kDataVersion = 2;
constexpr uint32_t kCkptMagic = 0x43524450u;  // "PDRC"
constexpr uint32_t kCkptVersion = 1;

struct StoreState {
  uint64_t page_count = 0;
  std::vector<PageId> free_list;
};

// Decodes the {page count, free list, app meta} tuple shared by commit
// records and the checkpoint descriptor. Returns false on truncation.
bool DecodeState(std::string_view raw, StoreState* state) {
  try {
    ByteReader reader(raw);
    state->page_count = reader.Get<uint64_t>();
    const uint64_t frees = reader.Get<uint64_t>();
    state->free_list.clear();
    state->free_list.reserve(frees);
    for (uint64_t i = 0; i < frees; ++i) {
      state->free_list.push_back(reader.Get<PageId>());
    }
    reader.GetBlob();  // app meta: fsck only needs the page accounting
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void AppendJson(std::string* out, const char* key, int64_t value,
                bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
}

void AppendJsonBool(std::string* out, const char* key, bool value,
                    bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += value ? "true" : "false";
}

void AppendJsonString(std::string* out, const char* key,
                      const std::string& value, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\"";
}

std::string Hex(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += digits[(v >> shift) & 0xF];
  }
  return out;
}

}  // namespace

std::string FsckReport::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendJsonString(&out, "dir", dir, &first);
  AppendJsonString(&out, "error", error, &first);
  AppendJsonBool(&out, "checkpoint_ok", checkpoint_ok, &first);
  AppendJsonBool(&out, "data_header_ok", data_header_ok, &first);
  AppendJsonBool(&out, "wal_torn_tail", wal_torn_tail, &first);
  AppendJsonBool(&out, "wal_interior_corruption", wal_interior_corruption,
                 &first);
  AppendJson(&out, "wal_batches", wal_batches, &first);
  AppendJson(&out, "wal_records_discarded", wal_records_discarded, &first);
  AppendJson(&out, "epoch", static_cast<int64_t>(epoch), &first);
  AppendJson(&out, "pages_total", pages_total, &first);
  AppendJson(&out, "pages_free", pages_free, &first);
  AppendJson(&out, "pages_ok", pages_ok, &first);
  AppendJson(&out, "pages_repairable", pages_repairable, &first);
  AppendJson(&out, "pages_repaired", pages_repaired, &first);
  AppendJson(&out, "pages_unrepairable", pages_unrepairable, &first);
  AppendJson(&out, "exit_code", exit_code(), &first);
  out += ",\"damaged\":[";
  for (size_t i = 0; i < damaged.size(); ++i) {
    const FsckDamagedPage& d = damaged[i];
    if (i > 0) out += ",";
    out += "{";
    bool dfirst = true;
    AppendJson(&out, "page", static_cast<int64_t>(d.id), &dfirst);
    AppendJson(&out, "offset", static_cast<int64_t>(d.offset), &dfirst);
    AppendJsonString(&out, "expected", Hex(d.expected), &dfirst);
    AppendJsonString(&out, "actual", Hex(d.actual), &dfirst);
    AppendJsonBool(&out, "redo_covered", d.redo_covered, &dfirst);
    AppendJsonBool(&out, "repaired", d.repaired, &dfirst);
    out += "}";
  }
  out += "]}";
  return out;
}

FsckReport RunFsck(const std::string& dir, const FsckOptions& options) {
  FsckReport report;
  report.dir = dir;

  const std::string ckpt_path = dir + "/checkpoint.pdr";
  const std::string data_path = dir + "/data.pdr";
  if (!FileExists(ckpt_path) && !FileExists(data_path)) {
    report.error = "no durable store in " + dir;
    return report;
  }

  // Checkpoint descriptor: atomically published, so any damage here is
  // at-rest. The last committed WAL batch (if any) supersedes its state,
  // exactly as recovery adopts it.
  StoreState state;
  bool have_state = false;
  std::string ckpt_raw;
  if (ReadFileIfExists(ckpt_path, &ckpt_raw) &&
      ckpt_raw.size() >= sizeof(uint64_t)) {
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, ckpt_raw.data() + ckpt_raw.size() - 8, 8);
    if (Fnv1a64(ckpt_raw.data(), ckpt_raw.size() - 8) == stored_sum) {
      try {
        ByteReader reader(
            std::string_view(ckpt_raw.data(), ckpt_raw.size() - 8));
        const uint32_t magic = reader.Get<uint32_t>();
        const uint32_t version = reader.Get<uint32_t>();
        if (magic == kCkptMagic && version == kCkptVersion) {
          report.epoch = reader.Get<uint64_t>();
          reader.Get<uint64_t>();  // next LSN
          std::string_view rest(ckpt_raw.data() + (ckpt_raw.size() - 8 -
                                                   reader.remaining()),
                                reader.remaining());
          if (DecodeState(rest, &state)) {
            report.checkpoint_ok = true;
            have_state = true;
          }
        }
      } catch (const std::runtime_error&) {
        // truncated descriptor: checkpoint_ok stays false
      }
    }
  }

  // WAL: committed batches both supersede the checkpoint state and supply
  // the redo images that make damaged slots repairable.
  Wal wal(dir + "/wal.log", WalOptions{}, nullptr);
  const Wal::ScanResult scan = wal.Scan();
  report.wal_torn_tail = scan.torn_tail;
  report.wal_interior_corruption = scan.interior_corruption;
  report.wal_batches = static_cast<int64_t>(scan.batches.size());
  report.wal_records_discarded = scan.records_discarded;
  std::map<PageId, const Wal::PageImage*> redo;  // later images win
  for (const Wal::Batch& batch : scan.batches) {
    for (const Wal::PageImage& pi : batch.pages) redo[pi.id] = &pi;
  }
  if (!scan.batches.empty()) {
    if (DecodeState(scan.batches.back().commit_payload, &state)) {
      have_state = true;
    }
  }
  if (!have_state) {
    report.error = "store metadata untrusted: checkpoint descriptor "
                   "damaged and no committed WAL batch supersedes it";
    return report;
  }

  StorageFile data;
  data.Open(data_path, "fsck", nullptr);
  struct {
    uint32_t magic = 0;
    uint32_t version = 0;
  } header;
  data.ReadAt(0, &header, sizeof(header));
  if (header.magic != kDataMagic || header.version != kDataVersion) {
    report.error = "data.pdr header untrusted: magic/version " +
                   Hex((uint64_t{header.version} << 32) | header.magic);
    return report;
  }
  report.data_header_ok = true;

  const std::set<PageId> free_set(state.free_list.begin(),
                                  state.free_list.end());
  report.pages_total = static_cast<int64_t>(state.page_count);
  std::vector<char> slot(kSlotSize);
  bool wrote = false;
  for (uint64_t id64 = 0; id64 < state.page_count; ++id64) {
    const PageId id = static_cast<PageId>(id64);
    if (free_set.count(id) != 0) {
      report.pages_free++;
      continue;
    }
    data.ReadAt(SlotOffset(id), slot.data(), kSlotSize);
    Page page;
    std::memcpy(page.bytes.data(), slot.data(), kPageSize);
    PageTrailer trailer;
    std::memcpy(&trailer, slot.data() + kPageSize, sizeof(trailer));
    if (PageTrailerValid(trailer, page, id)) {
      report.pages_ok++;
      continue;
    }
    FsckDamagedPage d;
    d.id = id;
    d.offset = SlotOffset(id);
    d.expected = trailer.checksum;
    d.actual = ComputePageChecksum(page, id, trailer.lsn);
    const auto it = redo.find(id);
    d.redo_covered = it != redo.end();
    if (!d.redo_covered) {
      report.pages_unrepairable++;
    } else if (options.repair) {
      // Rewrite the slot from the committed after-image, trailer bound to
      // the image's LSN — byte-identical to what ConvergeFiles stamps, so
      // the subsequent recovery's redo over the same image is a no-op.
      const Wal::PageImage& pi = *it->second;
      const PageTrailer fresh = MakePageTrailer(pi.image, id, pi.lsn);
      std::memcpy(slot.data(), pi.image.bytes.data(), kPageSize);
      std::memcpy(slot.data() + kPageSize, &fresh, sizeof(fresh));
      data.WriteAt(SlotOffset(id), slot.data(), kSlotSize);
      wrote = true;
      d.repaired = true;
      report.pages_repaired++;
    } else {
      report.pages_repairable++;
    }
    report.damaged.push_back(d);
  }
  if (wrote) data.Sync();
  return report;
}

}  // namespace pdr
