// Paged storage: the disk under the index trees.
//
// The paper's cost model (Table 1 / Section 7.3) uses 4 KB pages, a buffer
// of 10% of the dataset size, and charges 10 ms per random disk access.
// Every access from a query path goes through the buffer pool
// (buffer_pool.h) which tracks hits/misses and converts misses into the
// simulated I/O charge, reproducing the paper's "total cost = CPU + I/O"
// accounting.
//
// Pager is the backing-store interface the buffer pool talks to. Two
// implementations:
//
//   * MemPager  — pages live in memory (the original simulated disk; the
//                 default, and the mirror inside DiskPager).
//   * DiskPager — file-backed, write-ahead logged, checkpointed store
//                 (disk_pager.h).

#ifndef PDR_STORAGE_PAGER_H_
#define PDR_STORAGE_PAGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace pdr {

/// Fixed page size (bytes).
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// One fixed-size page of raw bytes.
struct alignas(8) Page {
  std::array<std::byte, kPageSize> bytes{};

  /// Reinterprets the page contents as a POD layout struct.
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<T*>(bytes.data());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<const T*>(bytes.data());
  }
};

/// Page allocator + backing store ("the disk"). Access from query paths
/// must go through BufferPool so that I/O is accounted.
class Pager {
 public:
  virtual ~Pager() = default;

  /// Allocates a zeroed page and returns its id (reuses freed ids).
  virtual PageId Allocate() = 0;

  /// Returns a page to the free list. Throws std::invalid_argument on an
  /// out-of-range id or a double free.
  virtual void Free(PageId id) = 0;

  /// Copies the page into `*out`.
  virtual void ReadPage(PageId id, Page* out) const = 0;

  /// Stores `page` as the new content of `id`.
  virtual void WritePage(PageId id, const Page& page) = 0;

  /// Number of pages ever allocated (including freed ones).
  virtual size_t allocated_pages() const = 0;

  /// Number of live (not freed) pages.
  virtual size_t live_pages() const = 0;
};

/// In-memory backing store: the simulated disk. Also serves as the working
/// mirror inside DiskPager, which restores it from a checkpoint + WAL.
class MemPager : public Pager {
 public:
  PageId Allocate() override;
  void Free(PageId id) override;
  void ReadPage(PageId id, Page* out) const override;
  void WritePage(PageId id, const Page& page) override;
  size_t allocated_pages() const override { return pages_.size(); }
  size_t live_pages() const override {
    return pages_.size() - free_list_.size();
  }

  /// Direct access to backing storage (no I/O accounting) — for tests and
  /// for DiskPager's checkpoint/redo machinery.
  Page& PageAt(PageId id);
  const Page& PageAt(PageId id) const;

  /// Replaces the allocation state wholesale (crash recovery): all of
  /// `page_count` pages exist zeroed, with `free_list` returned to the
  /// allocator. Throws std::invalid_argument on an inconsistent free list.
  void Restore(size_t page_count, const std::vector<PageId>& free_list);

  const std::vector<PageId>& free_list() const { return free_list_; }

 private:
  std::deque<Page> pages_;  // deque: stable addresses across Allocate()
  std::vector<PageId> free_list_;
  std::vector<uint8_t> is_free_;  // parallel to pages_
};

}  // namespace pdr

#endif  // PDR_STORAGE_PAGER_H_
