// Paged storage: the simulated disk under the TPR-tree.
//
// The paper's cost model (Table 1 / Section 7.3) uses 4 KB pages, a buffer
// of 10% of the dataset size, and charges 10 ms per random disk access.
// Pages live in memory here, but every access goes through the buffer pool
// (buffer_pool.h) which tracks hits/misses and converts misses into the
// simulated I/O charge, reproducing the paper's "total cost = CPU + I/O"
// accounting.

#ifndef PDR_STORAGE_PAGER_H_
#define PDR_STORAGE_PAGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace pdr {

/// Fixed page size (bytes).
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// One fixed-size page of raw bytes.
struct alignas(8) Page {
  std::array<std::byte, kPageSize> bytes{};

  /// Reinterprets the page contents as a POD layout struct.
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<T*>(bytes.data());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<const T*>(bytes.data());
  }
};

/// Page allocator + backing store ("the disk"). Access from query paths
/// must go through BufferPool so that I/O is accounted; the raw accessors
/// here exist for the buffer pool itself and for tests.
class Pager {
 public:
  /// Allocates a zeroed page and returns its id (reuses freed ids).
  PageId Allocate();

  /// Returns a page to the free list.
  void Free(PageId id);

  /// Direct access to backing storage (no I/O accounting).
  Page& PageAt(PageId id);
  const Page& PageAt(PageId id) const;

  /// Number of pages ever allocated (including freed ones).
  size_t allocated_pages() const { return pages_.size(); }

  /// Number of live (not freed) pages.
  size_t live_pages() const { return pages_.size() - free_list_.size(); }

 private:
  std::deque<Page> pages_;  // deque: stable addresses across Allocate()
  std::vector<PageId> free_list_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_PAGER_H_
