// File-backed pager: WAL + fuzzy checkpoints + crash recovery.
//
// A DiskPager keeps the working copy of every page in an in-memory mirror
// (a MemPager) and tracks which pages changed since the last checkpoint.
// Between checkpoints NO file I/O happens — reads and writes hit the
// mirror, exactly as fast as the simulated disk. Durability is produced in
// bulk by Checkpoint(), which runs a redo-only protocol over three files
// in the store directory:
//
//   data.pdr        page slots (page image ++ integrity trailer), page id
//                   i at SlotOffset(i) — see page_format.h for the v2
//                   slot layout and the checksum binding
//   wal.log         physical-page write-ahead log (wal.h)
//   checkpoint.pdr  last published snapshot descriptor: {epoch, next LSN,
//                   page count, free list, application metadata blob,
//                   checksum}, replaced atomically (tmp + fsync + rename)
//
// Checkpoint(meta):
//   1. append a WAL after-image record for every dirty page (buffered)
//   2. append a WAL commit record carrying {page count, free list, meta}
//   3. wal fsync                      <- THE durable point (group commit)
//   4. write the dirty pages into data.pdr
//   5. data fsync
//   6. atomically publish checkpoint.pdr
//   7. reset the WAL (the checkpoint now carries everything)
//
// Recovery (automatic in the constructor when the store exists):
//   load checkpoint.pdr (or empty-store defaults) -> load data.pdr into
//   the mirror -> scan the WAL for committed batches (checksummed records
//   closed by a commit; a torn tail is discarded) -> apply each batch's
//   after-images and adopt its {page count, free list, meta} -> if redo
//   was applied, converge the files (steps 4-7 above). A crash at ANY
//   write/fsync boundary — including during recovery itself — leaves a
//   state this procedure maps back to the last committed checkpoint:
//   before step 3 the old state survives untouched; from step 3 on, redo
//   reconstructs the new state idempotently.
//
// The application metadata blob carries whatever the index/engine needs to
// reattach to its pages (tree roots, object->leaf maps, clocks, histogram
// state); it travels inside the commit record so pages and metadata are
// atomic as a unit.
//
// Silent-corruption defense (DESIGN.md §16). Every converged page slot
// carries a trailer checksumming the page bytes bound to (page id, LSN).
// The pager keeps the expected (lsn, checksum) per page and verifies the
// mirror on every ReadPage of a clean page — a flipped bit in RAM or a
// damaged slot restored at recovery cannot be served as an answer. On a
// mismatch the pager self-heals from whichever redundant copy still
// verifies (mirror vs slot vs WAL redo chain); a page with no healthy
// copy is *quarantined* and every read of it throws CorruptionError,
// which the resilience ladder converts into a tier downgrade instead of
// a crash. An incremental Scrub() walks a budgeted window of pages per
// call (scheduled from PdrMonitor ticks) so cold rot is found and healed
// before a query trips on it.

#ifndef PDR_STORAGE_DISK_PAGER_H_
#define PDR_STORAGE_DISK_PAGER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "pdr/resilience/deadline.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/pager.h"
#include "pdr/storage/storage_file.h"
#include "pdr/storage/wal.h"

namespace pdr {

struct CheckpointStats {
  int64_t checkpoints = 0;
  int64_t pages_logged = 0;   ///< after-images appended across all ckpts
  double last_ms = 0.0;
};

struct RecoveryStats {
  bool ran = false;             ///< an existing store was opened
  int64_t batches_applied = 0;  ///< committed WAL batches redone
  int64_t redo_records = 0;     ///< page images applied from the WAL
  int64_t discarded_records = 0;  ///< valid but uncommitted tail records
  bool torn_tail = false;         ///< WAL scan hit a crash-shaped boundary
  bool interior_corruption = false;  ///< WAL damage inside the durable region
  int64_t pages_repaired = 0;  ///< invalid data slots healed by WAL redo
  double recovery_ms = 0.0;
};

/// Per-call and cumulative scrubber counters (pdr.storage.scrub.*).
struct ScrubStats {
  int64_t pages_scanned = 0;       ///< clean stamped pages verified
  int64_t pages_repaired = 0;      ///< healed from the surviving copy
  int64_t pages_unrepairable = 0;  ///< quarantined: no copy verified
};

/// Cumulative self-healing counters (pdr.storage.repair.*).
struct RepairStats {
  int64_t mirror_repairs = 0;  ///< mirror rebuilt from a valid slot
  int64_t slot_repairs = 0;    ///< slot rewritten from a valid mirror
  int64_t unrepairable = 0;    ///< both copies damaged; page quarantined
};

/// Outcome of DiskPager::RepairPage on one page.
enum class PageHealth {
  kHealthy,         ///< both the mirror and the slot verify
  kMirrorRepaired,  ///< mirror was damaged; rebuilt from the slot
  kSlotRepaired,    ///< slot was damaged; rewritten from the mirror
  kUnrepairable,    ///< neither copy verifies; page quarantined
};

class DiskPager : public Pager {
 public:
  /// Opens (creating or recovering) the store in directory `dir`, which
  /// must already exist. `injector` may be null (no fault injection).
  explicit DiskPager(const std::string& dir, FaultInjector* injector = nullptr,
                     const WalOptions& wal_options = {});

  // Pager interface — mirror-backed; no file I/O except when ReadPage
  // catches a checksum mismatch and self-heals from the data slot.
  PageId Allocate() override;
  void Free(PageId id) override;
  /// Serves the page from the mirror. Clean (non-dirty, stamped) pages
  /// are verified against the trailer checksum recorded at the last
  /// converge; on a mismatch the pager repairs in place (see RepairPage)
  /// and serves the healed bytes, or throws CorruptionError when no
  /// healthy copy exists. Reads of a quarantined page always throw.
  /// Verification mutates repair bookkeeping under const — callers
  /// (BufferPool miss fill) already serialize misses.
  void ReadPage(PageId id, Page* out) const override;
  void WritePage(PageId id, const Page& page) override;
  size_t allocated_pages() const override { return mirror_.allocated_pages(); }
  size_t live_pages() const override { return mirror_.live_pages(); }

  /// Makes the current state durable together with `app_meta` (see file
  /// comment for the protocol). Throws CrashError when an injected fault
  /// fires; the pager is poisoned afterwards and must be discarded (as a
  /// killed process would be).
  void Checkpoint(const std::string& app_meta);

  /// True when the constructor recovered pre-existing durable state (as
  /// opposed to initializing an empty store).
  bool recovered() const { return recovered_; }

  /// Application metadata from the last durable checkpoint ("" for a
  /// fresh store).
  const std::string& recovered_meta() const { return meta_; }

  /// Pages dirtied since the last checkpoint.
  size_t dirty_page_count() const { return dirty_.size(); }

  /// Reconciles the mirror and the data slot of one clean page against
  /// the expected (lsn, checksum) recorded at the last converge, healing
  /// whichever copy is damaged from the one that still verifies. Both
  /// damaged: the page is quarantined (kUnrepairable) — it stays readable
  /// only after the next WritePage replaces its content or a checkpoint
  /// restamps it. Dirty or never-converged pages have nothing to verify
  /// against and report kHealthy. Never throws.
  PageHealth RepairPage(PageId id);

  /// Incremental online scrub: verifies (and repairs, via RepairPage) up
  /// to `budget_pages` pages starting at a persistent wrapping cursor.
  /// Dirty, free, and never-stamped pages are passed over but still
  /// consume budget, so a call's cost is bounded by the budget regardless
  /// of store composition. Checks `token` between pages when provided.
  /// Returns this call's counters; cumulative ones are in scrub_stats().
  ScrubStats Scrub(int64_t budget_pages, const CancelToken* token = nullptr);

  /// Pages with no healthy copy; every ReadPage of one throws.
  const std::set<PageId>& quarantined() const { return quarantined_; }

  const ScrubStats& scrub_stats() const { return scrub_stats_; }
  const RepairStats& repair_stats() const { return repair_stats_; }

  /// Test hook: flips one bit of the in-memory mirror WITHOUT marking the
  /// page dirty — exactly what RAM rot or a misbehaving DMA would do.
  void CorruptMirrorPageForTest(PageId id, int bit_index);

  uint64_t epoch() const { return epoch_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  const CheckpointStats& checkpoint_stats() const { return checkpoint_stats_; }
  const WalStats& wal_stats() const { return wal_.stats(); }
  uint64_t wal_bytes() const { return wal_.file_bytes(); }
  bool poisoned() const { return poisoned_; }
  const std::string& dir() const { return dir_; }

 private:
  void Recover();
  /// Steps 4-7 of the protocol: pages in `dirty` are durable in the WAL
  /// (or being re-applied from it); push them to data.pdr, publish the
  /// checkpoint descriptor, reset the WAL.
  void ConvergeFiles(const std::set<PageId>& dirty,
                     const std::string& app_meta);
  std::string EncodeCheckpoint(const std::string& app_meta) const;
  void Poison();
  /// Grows the per-page trailer tables to cover `pages` ids.
  void EnsureTables(size_t pages);
  /// Writes page `id`'s slot (image + trailer) from the mirror and
  /// records the expectation tables. Part of ConvergeFiles and of
  /// slot-direction repair.
  void WriteSlot(PageId id);

  std::string dir_;
  FaultInjector* injector_;
  MemPager mirror_;
  std::set<PageId> dirty_;  // ordered: deterministic WAL append order
  StorageFile data_;
  Wal wal_;
  std::string meta_;
  uint64_t epoch_ = 0;
  bool recovered_ = false;
  bool poisoned_ = false;
  RecoveryStats recovery_stats_;
  CheckpointStats checkpoint_stats_;

  // Per-page integrity expectations, indexed by page id. stamped == 1
  // means the id's slot was written (with a trailer) by a converge and
  // the page has not been freed since; only stamped, non-dirty pages are
  // verified — everything else has no durable expectation yet.
  std::vector<uint64_t> page_lsn_;
  std::vector<uint64_t> page_sum_;
  std::vector<uint8_t> page_stamped_;
  std::set<PageId> quarantined_;
  PageId scrub_cursor_ = 0;
  ScrubStats scrub_stats_;
  RepairStats repair_stats_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_DISK_PAGER_H_
