// File-backed pager: WAL + fuzzy checkpoints + crash recovery.
//
// A DiskPager keeps the working copy of every page in an in-memory mirror
// (a MemPager) and tracks which pages changed since the last checkpoint.
// Between checkpoints NO file I/O happens — reads and writes hit the
// mirror, exactly as fast as the simulated disk. Durability is produced in
// bulk by Checkpoint(), which runs a redo-only protocol over three files
// in the store directory:
//
//   data.pdr        page images, page id i at offset (i + 1) * kPageSize
//   wal.log         physical-page write-ahead log (wal.h)
//   checkpoint.pdr  last published snapshot descriptor: {epoch, next LSN,
//                   page count, free list, application metadata blob,
//                   checksum}, replaced atomically (tmp + fsync + rename)
//
// Checkpoint(meta):
//   1. append a WAL after-image record for every dirty page (buffered)
//   2. append a WAL commit record carrying {page count, free list, meta}
//   3. wal fsync                      <- THE durable point (group commit)
//   4. write the dirty pages into data.pdr
//   5. data fsync
//   6. atomically publish checkpoint.pdr
//   7. reset the WAL (the checkpoint now carries everything)
//
// Recovery (automatic in the constructor when the store exists):
//   load checkpoint.pdr (or empty-store defaults) -> load data.pdr into
//   the mirror -> scan the WAL for committed batches (checksummed records
//   closed by a commit; a torn tail is discarded) -> apply each batch's
//   after-images and adopt its {page count, free list, meta} -> if redo
//   was applied, converge the files (steps 4-7 above). A crash at ANY
//   write/fsync boundary — including during recovery itself — leaves a
//   state this procedure maps back to the last committed checkpoint:
//   before step 3 the old state survives untouched; from step 3 on, redo
//   reconstructs the new state idempotently.
//
// The application metadata blob carries whatever the index/engine needs to
// reattach to its pages (tree roots, object->leaf maps, clocks, histogram
// state); it travels inside the commit record so pages and metadata are
// atomic as a unit.

#ifndef PDR_STORAGE_DISK_PAGER_H_
#define PDR_STORAGE_DISK_PAGER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "pdr/storage/fault_injector.h"
#include "pdr/storage/pager.h"
#include "pdr/storage/storage_file.h"
#include "pdr/storage/wal.h"

namespace pdr {

struct CheckpointStats {
  int64_t checkpoints = 0;
  int64_t pages_logged = 0;   ///< after-images appended across all ckpts
  double last_ms = 0.0;
};

struct RecoveryStats {
  bool ran = false;             ///< an existing store was opened
  int64_t batches_applied = 0;  ///< committed WAL batches redone
  int64_t redo_records = 0;     ///< page images applied from the WAL
  int64_t discarded_records = 0;  ///< valid but uncommitted tail records
  bool torn_tail = false;         ///< WAL scan hit a checksum/cut boundary
  double recovery_ms = 0.0;
};

class DiskPager : public Pager {
 public:
  /// Opens (creating or recovering) the store in directory `dir`, which
  /// must already exist. `injector` may be null (no fault injection).
  explicit DiskPager(const std::string& dir, FaultInjector* injector = nullptr,
                     const WalOptions& wal_options = {});

  // Pager interface — mirror-backed, no file I/O.
  PageId Allocate() override;
  void Free(PageId id) override;
  void ReadPage(PageId id, Page* out) const override;
  void WritePage(PageId id, const Page& page) override;
  size_t allocated_pages() const override { return mirror_.allocated_pages(); }
  size_t live_pages() const override { return mirror_.live_pages(); }

  /// Makes the current state durable together with `app_meta` (see file
  /// comment for the protocol). Throws CrashError when an injected fault
  /// fires; the pager is poisoned afterwards and must be discarded (as a
  /// killed process would be).
  void Checkpoint(const std::string& app_meta);

  /// True when the constructor recovered pre-existing durable state (as
  /// opposed to initializing an empty store).
  bool recovered() const { return recovered_; }

  /// Application metadata from the last durable checkpoint ("" for a
  /// fresh store).
  const std::string& recovered_meta() const { return meta_; }

  /// Pages dirtied since the last checkpoint.
  size_t dirty_page_count() const { return dirty_.size(); }

  uint64_t epoch() const { return epoch_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  const CheckpointStats& checkpoint_stats() const { return checkpoint_stats_; }
  const WalStats& wal_stats() const { return wal_.stats(); }
  uint64_t wal_bytes() const { return wal_.file_bytes(); }
  bool poisoned() const { return poisoned_; }
  const std::string& dir() const { return dir_; }

 private:
  void Recover();
  /// Steps 4-7 of the protocol: pages in `dirty` are durable in the WAL
  /// (or being re-applied from it); push them to data.pdr, publish the
  /// checkpoint descriptor, reset the WAL.
  void ConvergeFiles(const std::set<PageId>& dirty,
                     const std::string& app_meta);
  std::string EncodeCheckpoint(const std::string& app_meta) const;
  void Poison();

  std::string dir_;
  FaultInjector* injector_;
  MemPager mirror_;
  std::set<PageId> dirty_;  // ordered: deterministic WAL append order
  StorageFile data_;
  Wal wal_;
  std::string meta_;
  uint64_t epoch_ = 0;
  bool recovered_ = false;
  bool poisoned_ = false;
  RecoveryStats recovery_stats_;
  CheckpointStats checkpoint_stats_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_DISK_PAGER_H_
