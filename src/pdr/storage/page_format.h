// Per-page integrity trailer: the at-rest detection layer of the
// silent-corruption defense (DESIGN.md §16).
//
// data.pdr format v2 stores each page in a fixed-size *slot*:
//
//   [file header zone: kPageSize bytes, DataFileHeader at offset 0]
//   [slot 0: page bytes ++ PageTrailer][slot 1: ...] ...
//
//   PageTrailer := {u32 magic "PDRT", u32 version, u64 lsn,
//                   u64 fnv1a64(page_id ++ lsn ++ page bytes)}
//
// The checksum is seeded with the page id and the WAL LSN of the
// after-image the slot persists, so a slot that checks out is known to be
// (a) uncorrupted, (b) the page it claims to be (a misdirected write to
// the wrong offset fails the id binding), and (c) the *version* the pager
// expects (a stale-but-intact slot fails the LSN binding during verified
// reads). DiskPager stamps trailers when it converges dirty pages and
// verifies them on every read path; the scrubber and fsck walk the slots
// offline. See disk_pager.h for who repairs what from where.

#ifndef PDR_STORAGE_PAGE_FORMAT_H_
#define PDR_STORAGE_PAGE_FORMAT_H_

#include <cstdint>
#include <string>

#include "pdr/common/errors.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/storage/pager.h"
#include "pdr/storage/serde.h"

namespace pdr {

inline constexpr uint32_t kPageTrailerMagic = 0x54524450u;  // "PDRT"
inline constexpr uint32_t kPageTrailerVersion = 1;

struct PageTrailer {
  uint32_t magic = kPageTrailerMagic;
  uint32_t version = kPageTrailerVersion;
  uint64_t lsn = 0;       ///< WAL LSN of the after-image this slot holds
  uint64_t checksum = 0;  ///< ComputePageChecksum(page, id, lsn)
};
static_assert(sizeof(PageTrailer) == 24, "trailer layout is on-disk format");

/// On-disk size of one page slot (page bytes + trailer).
inline constexpr size_t kSlotSize = kPageSize + sizeof(PageTrailer);

/// Byte offset of page `id`'s slot in data.pdr v2. The first kPageSize
/// bytes are the header zone (DataFileHeader at offset 0, rest reserved).
inline uint64_t SlotOffset(PageId id) {
  return kPageSize + static_cast<uint64_t>(id) * kSlotSize;
}

/// Content checksum bound to the page identity and version (see file
/// comment). FNV-1a-64 chained over page_id, lsn, then the page bytes.
inline uint64_t ComputePageChecksum(const Page& page, PageId id,
                                    uint64_t lsn) {
  uint64_t c = Fnv1a64(&id, sizeof(id));
  c = Fnv1a64(&lsn, sizeof(lsn), c);
  return Fnv1a64(page.bytes.data(), kPageSize, c);
}

inline PageTrailer MakePageTrailer(const Page& page, PageId id,
                                   uint64_t lsn) {
  PageTrailer t;
  t.lsn = lsn;
  t.checksum = ComputePageChecksum(page, id, lsn);
  return t;
}

/// Structural + content validation of a slot read back from disk.
inline bool PageTrailerValid(const PageTrailer& t, const Page& page,
                             PageId id) {
  return t.magic == kPageTrailerMagic && t.version == kPageTrailerVersion &&
         t.checksum == ComputePageChecksum(page, id, t.lsn);
}

/// The single chokepoint for surfacing an unrepairable integrity failure:
/// records the corruption micro-event, fires the flight recorder's
/// kOnCorruption dump trigger (a repro bundle before any handler unwinds,
/// mirroring CrashError's kOnCrash hook), then throws the typed error.
[[noreturn]] inline void ThrowCorruption(const std::string& file, PageId id,
                                         uint64_t offset, uint64_t expected,
                                         uint64_t actual) {
  FlightRecorder::Record(FrEvent::kCorruption, static_cast<int64_t>(id),
                         /*repaired=*/0);
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnCorruption,
                                       "corruption",
                                       FlightRecorder::CurrentQueryId());
  throw CorruptionError(file, id, offset, expected, actual);
}

}  // namespace pdr

#endif  // PDR_STORAGE_PAGE_FORMAT_H_
