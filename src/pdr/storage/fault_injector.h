// Deterministic crash-fault injection for the durability layer.
//
// Every write/fsync boundary in the storage files (WAL appends, WAL
// fsyncs, data-page writes, data fsyncs, checkpoint-file publication) is a
// numbered *fault point*: before executing, the operation asks the
// injector whether to proceed. A test arms the injector to crash at the
// k-th point in one of three modes:
//
//   * kClean         — the operation does not happen at all (power lost
//                      just before the syscall).
//   * kTornWrite     — a deterministic prefix of the byte range is written
//                      and the rest lost (interrupted pwrite).
//   * kTruncatedTail — for appends: the bytes are written, then the file
//                      tail is chopped mid-record (filesystem dropping
//                      not-yet-durable tail data). Non-append writes fall
//                      back to kTornWrite, which is the physical
//                      equivalent for in-place updates.
//
// The "crash" is a CrashError exception thrown by the storage primitive;
// the store object that observes it poisons itself (no further file
// writes, including from destructors), so the on-disk state is exactly
// what a killed process would leave behind. The injector fires at most
// once per arming and counts points identically whether armed or not, so
// a fault-free rehearsal run yields the exact number of kill points a
// sweep must cover.
//
// Separately from crashes, the injector models *transient* I/O errors
// (EIO under memory pressure, NFS hiccups, a full-but-recovering device):
// an armed transient window makes fault points fail with
// Action::kTransientFail instead of crashing. The storage primitive
// handles those by bounded retry — and because a retried operation
// consumes a NEW fault point index, "fail k times then succeed" falls out
// naturally from a k-wide window. Transient faults never fire at the same
// point as the armed crash (the crash wins) and are disjoint from the
// fire-once crash semantics.

#ifndef PDR_STORAGE_FAULT_INJECTOR_H_
#define PDR_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdr {

/// Thrown by a storage primitive when the armed fault point fires. The
/// durability tests catch it where a real deployment would be SIGKILLed.
/// Construction is the single chokepoint for the flight recorder's
/// crash-dump trigger (see fault_injector.cc) — every throw site inherits
/// the hook for free.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& what);
};

/// Thrown when a transient I/O fault outlives the bounded retry budget
/// (see storage_file.cc). Distinct from CrashError — the store is NOT
/// poisoned; the degradation ladder treats it as "storage is struggling"
/// and falls back to an in-memory rung (DowngradeReason::kTransient).
class TransientExhaustedError : public std::runtime_error {
 public:
  explicit TransientExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class CrashMode {
  kClean,
  kTornWrite,
  kTruncatedTail,
};

class FaultInjector {
 public:
  /// What the intercepted operation must do.
  enum class Action {
    kProceed,
    kCrash,          ///< skip the operation and throw CrashError
    kTornThenCrash,  ///< write a prefix / chop the tail, then throw
    kTransientFail,  ///< skip the operation and report a retryable error
  };

  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Arms a crash at fault point `point` (0-based, counted across every
  /// intercepted operation since construction or the last ResetCount).
  void Arm(int64_t point, CrashMode mode) {
    crash_at_ = point;
    mode_ = mode;
    fired_ = false;
  }
  void Disarm() { crash_at_ = -1; }

  /// Arms transient failures at the `failures` consecutive fault points
  /// starting at `point`: each reports kTransientFail and the operation is
  /// not performed. The retry consumes fresh indices past the window, so
  /// this is exactly "fail `failures` times, then succeed".
  void ArmTransient(int64_t point, int failures = 1) {
    transient_at_ = point;
    transient_failures_ = failures;
    transient_period_ = 0;
    transient_fired_ = 0;
  }

  /// Arms a recurring pattern: every fault point whose index satisfies
  /// `index % period < failures` reports kTransientFail. Models a flaky
  /// device that keeps hiccuping for the whole run.
  void ArmTransientEvery(int64_t period, int failures = 1) {
    transient_at_ = -1;
    transient_failures_ = failures;
    transient_period_ = period;
    transient_fired_ = 0;
  }

  void DisarmTransient() {
    transient_at_ = -1;
    transient_period_ = 0;
    transient_failures_ = 0;
  }

  /// Transient failures delivered since the last transient arming.
  int64_t transient_fired() const { return transient_fired_; }

  /// Called by a storage primitive before each write/fsync. Counts the
  /// point, records `op` for post-hoc inspection, and reports whether the
  /// armed crash fires here. The crash fires at most once per arming and
  /// takes precedence over any transient window covering the same index.
  Action OnOp(const char* op) {
    const int64_t index = ops_seen_++;
    op_log_.emplace_back(op);
    if (!fired_ && index == crash_at_) {
      fired_ = true;
      return mode_ == CrashMode::kClean ? Action::kCrash
                                        : Action::kTornThenCrash;
    }
    if (TransientAt(index)) {
      ++transient_fired_;
      return Action::kTransientFail;
    }
    return Action::kProceed;
  }

  CrashMode mode() const { return mode_; }

  /// Fraction of the byte range a torn write persists, deterministic in
  /// (seed, point index) so a sweep is reproducible bit-for-bit.
  double TornFraction() const {
    const uint64_t h =
        (seed_ * 0x9e3779b97f4a7c15ull) ^
        (static_cast<uint64_t>(crash_at_) * 0xff51afd7ed558ccdull);
    return 0.1 + 0.8 * static_cast<double>((h >> 16) % 1000) / 1000.0;
  }

  /// Fault points seen so far (armed or not); a fault-free run's total is
  /// the sweep size.
  int64_t ops_seen() const { return ops_seen_; }
  void ResetCount() {
    ops_seen_ = 0;
    op_log_.clear();
  }

  /// Names of the operations seen, in order (e.g. "wal.write",
  /// "wal.sync", "data.write", "data.sync", "ckpt.write", "ckpt.sync",
  /// "ckpt.rename", "wal.reset").
  const std::vector<std::string>& op_log() const { return op_log_; }

  bool fired() const { return fired_; }

 private:
  bool TransientAt(int64_t index) const {
    if (transient_period_ > 0) {
      return index % transient_period_ < transient_failures_;
    }
    return transient_at_ >= 0 && index >= transient_at_ &&
           index < transient_at_ + transient_failures_;
  }

  uint64_t seed_;
  int64_t crash_at_ = -1;
  CrashMode mode_ = CrashMode::kClean;
  bool fired_ = false;
  int64_t ops_seen_ = 0;
  int64_t transient_at_ = -1;      // window start (one-shot mode)
  int64_t transient_period_ = 0;   // > 0: recurring mode
  int transient_failures_ = 0;
  int64_t transient_fired_ = 0;
  std::vector<std::string> op_log_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_FAULT_INJECTOR_H_
