// Deterministic crash-fault injection for the durability layer.
//
// Every write/fsync boundary in the storage files (WAL appends, WAL
// fsyncs, data-page writes, data fsyncs, checkpoint-file publication) is a
// numbered *fault point*: before executing, the operation asks the
// injector whether to proceed. A test arms the injector to crash at the
// k-th point in one of three modes:
//
//   * kClean         — the operation does not happen at all (power lost
//                      just before the syscall).
//   * kTornWrite     — a deterministic prefix of the byte range is written
//                      and the rest lost (interrupted pwrite).
//   * kTruncatedTail — for appends: the bytes are written, then the file
//                      tail is chopped mid-record (filesystem dropping
//                      not-yet-durable tail data). Non-append writes fall
//                      back to kTornWrite, which is the physical
//                      equivalent for in-place updates.
//
// The "crash" is a CrashError exception thrown by the storage primitive;
// the store object that observes it poisons itself (no further file
// writes, including from destructors), so the on-disk state is exactly
// what a killed process would leave behind. The injector fires at most
// once per arming and counts points identically whether armed or not, so
// a fault-free rehearsal run yields the exact number of kill points a
// sweep must cover.
//
// Separately from crashes, the injector models *transient* I/O errors
// (EIO under memory pressure, NFS hiccups, a full-but-recovering device):
// an armed transient window makes fault points fail with
// Action::kTransientFail instead of crashing. The storage primitive
// handles those by bounded retry — and because a retried operation
// consumes a NEW fault point index, "fail k times then succeed" falls out
// naturally from a k-wide window. Transient faults never fire at the same
// point as the armed crash (the crash wins) and are disjoint from the
// fire-once crash semantics.
//
// A third fault family models *silent corruption* (bit-rot, firmware bugs,
// misbehaving write caches): an armed corrupt point makes the write
// SUCCEED — no exception, no poisoning, the caller believes everything
// worked — but the bytes that reach the file are damaged. Two modes:
//
//   * kBitFlip           — one seeded bit in the byte range is inverted
//                          (classic single-event upset).
//   * kSilentCorruption  — a seeded ~16-byte run is XORed with 0xA5
//                          (firmware scribbling a cache line).
//
// Damage placement is deterministic in (seed, point index) so a corruption
// sweep reproduces bit-for-bit. Corrupt arming is fire-once and loses to
// an armed crash at the same index, mirroring the transient rules, and it
// does NOT change the fault-point numbering of unarmed runs, so crash-sweep
// rehearsal counts stay valid. For at-rest ("cold") damage between runs —
// where no fault point executes — use FlipBitInFile directly on the store
// files.

#ifndef PDR_STORAGE_FAULT_INJECTOR_H_
#define PDR_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdr {

/// Thrown by a storage primitive when the armed fault point fires. The
/// durability tests catch it where a real deployment would be SIGKILLed.
/// Construction is the single chokepoint for the flight recorder's
/// crash-dump trigger (see fault_injector.cc) — every throw site inherits
/// the hook for free.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& what);
};

/// Thrown when a transient I/O fault outlives the bounded retry budget
/// (see storage_file.cc). Distinct from CrashError — the store is NOT
/// poisoned; the degradation ladder treats it as "storage is struggling"
/// and falls back to an in-memory rung (DowngradeReason::kTransient).
class TransientExhaustedError : public std::runtime_error {
 public:
  explicit TransientExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class CrashMode {
  kClean,
  kTornWrite,
  kTruncatedTail,
};

/// How an armed corruption point damages the bytes it intercepts.
enum class CorruptMode {
  kBitFlip,           ///< invert one seeded bit
  kSilentCorruption,  ///< XOR a seeded ~16-byte run with 0xA5
};

/// At-rest damage: flips bit `bit_index` (0–7) of the byte at
/// `byte_offset` in `path`, in place. Models cold bit-rot that happens
/// between process runs, where no fault point ever executes. Returns false
/// when the file cannot be opened or is shorter than the offset.
bool FlipBitInFile(const std::string& path, uint64_t byte_offset,
                   int bit_index);

class FaultInjector {
 public:
  /// What the intercepted operation must do.
  enum class Action {
    kProceed,
    kCrash,          ///< skip the operation and throw CrashError
    kTornThenCrash,  ///< write a prefix / chop the tail, then throw
    kTransientFail,  ///< skip the operation and report a retryable error
    kCorruptWrite,   ///< perform the operation but damage the bytes first
  };

  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Arms a crash at fault point `point` (0-based, counted across every
  /// intercepted operation since construction or the last ResetCount).
  void Arm(int64_t point, CrashMode mode) {
    crash_at_ = point;
    mode_ = mode;
    fired_ = false;
  }
  void Disarm() { crash_at_ = -1; }

  /// Arms transient failures at the `failures` consecutive fault points
  /// starting at `point`: each reports kTransientFail and the operation is
  /// not performed. The retry consumes fresh indices past the window, so
  /// this is exactly "fail `failures` times, then succeed".
  void ArmTransient(int64_t point, int failures = 1) {
    transient_at_ = point;
    transient_failures_ = failures;
    transient_period_ = 0;
    transient_fired_ = 0;
  }

  /// Arms a recurring pattern: every fault point whose index satisfies
  /// `index % period < failures` reports kTransientFail. Models a flaky
  /// device that keeps hiccuping for the whole run.
  void ArmTransientEvery(int64_t period, int failures = 1) {
    transient_at_ = -1;
    transient_failures_ = failures;
    transient_period_ = period;
    transient_fired_ = 0;
  }

  void DisarmTransient() {
    transient_at_ = -1;
    transient_period_ = 0;
    transient_failures_ = 0;
  }

  /// Arms silent corruption at fault point `point` (same numbering as
  /// Arm). Fire-once; an armed crash at the same index wins. The
  /// intercepted write proceeds normally except the buffer it persists is
  /// damaged per `mode` — the caller sees success.
  void ArmCorrupt(int64_t point, CorruptMode mode) {
    corrupt_at_ = point;
    corrupt_mode_ = mode;
    corrupt_fired_ = false;
  }
  void DisarmCorrupt() { corrupt_at_ = -1; }

  /// Whether the armed corruption point has fired. Sweeps assert this to
  /// distinguish "damage was injected and healed" from "the armed point
  /// was never reached" — both look like a clean run from the outside.
  bool corrupt_fired() const { return corrupt_fired_; }
  CorruptMode corrupt_mode() const { return corrupt_mode_; }

  /// Damages `n` bytes at `buf` in place, deterministic in (seed, armed
  /// point index). Called by the storage primitive on kCorruptWrite with
  /// a copy of the caller's buffer. No-op when n == 0.
  void ApplyCorruption(void* buf, size_t n) const {
    if (n == 0) return;
    unsigned char* bytes = static_cast<unsigned char*>(buf);
    const uint64_t h =
        (seed_ * 0x9e3779b97f4a7c15ull) ^
        (static_cast<uint64_t>(corrupt_at_) * 0xff51afd7ed558ccdull);
    if (corrupt_mode_ == CorruptMode::kBitFlip) {
      bytes[h % n] ^= static_cast<unsigned char>(1u << ((h >> 8) % 8));
      return;
    }
    // kSilentCorruption: a cache-line-ish run of bytes XORed with a
    // constant, clamped to the buffer.
    const size_t run = n < 16 ? n : 16;
    const size_t start = static_cast<size_t>(h % (n - run + 1));
    for (size_t i = 0; i < run; ++i) bytes[start + i] ^= 0xA5u;
  }

  /// Transient failures delivered since the last transient arming.
  int64_t transient_fired() const { return transient_fired_; }

  /// Called by a storage primitive before each write/fsync. Counts the
  /// point, records `op` for post-hoc inspection, and reports whether the
  /// armed crash fires here. The crash fires at most once per arming and
  /// takes precedence over any transient window covering the same index.
  Action OnOp(const char* op) {
    const int64_t index = ops_seen_++;
    op_log_.emplace_back(op);
    if (!fired_ && index == crash_at_) {
      fired_ = true;
      return mode_ == CrashMode::kClean ? Action::kCrash
                                        : Action::kTornThenCrash;
    }
    if (TransientAt(index)) {
      ++transient_fired_;
      return Action::kTransientFail;
    }
    if (!corrupt_fired_ && index == corrupt_at_) {
      corrupt_fired_ = true;
      return Action::kCorruptWrite;
    }
    return Action::kProceed;
  }

  CrashMode mode() const { return mode_; }

  /// Fraction of the byte range a torn write persists, deterministic in
  /// (seed, point index) so a sweep is reproducible bit-for-bit.
  double TornFraction() const {
    const uint64_t h =
        (seed_ * 0x9e3779b97f4a7c15ull) ^
        (static_cast<uint64_t>(crash_at_) * 0xff51afd7ed558ccdull);
    return 0.1 + 0.8 * static_cast<double>((h >> 16) % 1000) / 1000.0;
  }

  /// Fault points seen so far (armed or not); a fault-free run's total is
  /// the sweep size.
  int64_t ops_seen() const { return ops_seen_; }
  void ResetCount() {
    ops_seen_ = 0;
    op_log_.clear();
  }

  /// Names of the operations seen, in order (e.g. "wal.write",
  /// "wal.sync", "data.write", "data.sync", "ckpt.write", "ckpt.sync",
  /// "ckpt.rename", "wal.reset").
  const std::vector<std::string>& op_log() const { return op_log_; }

  bool fired() const { return fired_; }

 private:
  bool TransientAt(int64_t index) const {
    if (transient_period_ > 0) {
      return index % transient_period_ < transient_failures_;
    }
    return transient_at_ >= 0 && index >= transient_at_ &&
           index < transient_at_ + transient_failures_;
  }

  uint64_t seed_;
  int64_t crash_at_ = -1;
  CrashMode mode_ = CrashMode::kClean;
  bool fired_ = false;
  int64_t ops_seen_ = 0;
  int64_t transient_at_ = -1;      // window start (one-shot mode)
  int64_t transient_period_ = 0;   // > 0: recurring mode
  int transient_failures_ = 0;
  int64_t transient_fired_ = 0;
  int64_t corrupt_at_ = -1;
  CorruptMode corrupt_mode_ = CorruptMode::kBitFlip;
  bool corrupt_fired_ = false;
  std::vector<std::string> op_log_;
};

}  // namespace pdr

#endif  // PDR_STORAGE_FAULT_INJECTOR_H_
