// Dense-cell query baseline (Hadjieleftheriou et al., SSTD 2004; the
// paper's reference [4] / "[]").
//
// The space is partitioned into the histogram's disjoint grid cells; a
// cell is reported iff its own object count divided by its area meets the
// density threshold. This is the method the paper criticizes for *answer
// loss* (Fig. 1a): a dense square straddling several cells is missed
// entirely. Implemented here as a comparator for the example programs and
// the generality tests (a PDR answer always covers the centers of the
// cells this method reports; Section 3.1).

#ifndef PDR_BASELINE_DENSE_CELL_H_
#define PDR_BASELINE_DENSE_CELL_H_

#include "pdr/common/region.h"
#include "pdr/histogram/density_histogram.h"

namespace pdr {

/// All grid cells whose own density (count / cell area) is >= rho at q_t.
Region DenseCellQuery(const DensityHistogram& dh, Tick q_t, double rho);

}  // namespace pdr

#endif  // PDR_BASELINE_DENSE_CELL_H_
