#include "pdr/baseline/edq.h"

#include <algorithm>
#include <cmath>

namespace pdr {
namespace {

struct CandidateSquare {
  int col = 0;  // anchor cell (bottom-left) of the eta x eta block
  int row = 0;
  int64_t count = 0;
};

}  // namespace

EdqResult EffectiveDensityQuery(const DensityHistogram& dh, Tick q_t,
                                double rho, double l, EdqStrategy strategy) {
  const Grid& grid = dh.grid();
  const int m = grid.cells_per_side();
  const auto& slice = dh.Slice(q_t);
  const int eta =
      std::max(1, static_cast<int>(std::llround(l / grid.cell_edge())));
  const double square_edge = eta * grid.cell_edge();
  const int64_t n_min = static_cast<int64_t>(
      std::ceil(rho * square_edge * square_edge - 1e-9));

  // Prefix sums for O(1) block counts.
  std::vector<int64_t> sums(static_cast<size_t>(m + 1) * (m + 1), 0);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      sums[(r + 1) * (m + 1) + (c + 1)] =
          sums[r * (m + 1) + (c + 1)] + sums[(r + 1) * (m + 1) + c] -
          sums[r * (m + 1) + c] + slice[static_cast<size_t>(r) * m + c];
    }
  }
  const auto block_count = [&](int col, int row) {
    const auto at = [&](int r, int c) {
      return sums[static_cast<size_t>(r) * (m + 1) + c];
    };
    return at(row + eta, col + eta) - at(row, col + eta) -
           at(row + eta, col) + at(row, col);
  };

  std::vector<CandidateSquare> candidates;
  for (int row = 0; row + eta <= m; ++row) {
    for (int col = 0; col + eta <= m; ++col) {
      const int64_t count = block_count(col, row);
      if (count >= n_min) candidates.push_back({col, row, count});
    }
  }

  EdqResult result;
  result.candidate_squares = static_cast<int64_t>(candidates.size());
  if (strategy == EdqStrategy::kDensestFirst) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const CandidateSquare& a, const CandidateSquare& b) {
                       return a.count > b.count;
                     });
  }  // kScanOrder keeps row-major enumeration order.

  // Greedy non-overlap selection on anchor distance: two eta-blocks
  // overlap iff their anchors differ by < eta in both axes.
  std::vector<std::pair<int, int>> chosen;
  for (const CandidateSquare& cand : candidates) {
    bool overlaps = false;
    for (const auto& [col, row] : chosen) {
      if (std::abs(col - cand.col) < eta && std::abs(row - cand.row) < eta) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    chosen.emplace_back(cand.col, cand.row);
    const Rect square(cand.col * grid.cell_edge(), cand.row * grid.cell_edge(),
                      (cand.col + eta) * grid.cell_edge(),
                      (cand.row + eta) * grid.cell_edge());
    result.squares.push_back(square);
    result.region.Add(square);
  }
  return result;
}

}  // namespace pdr
