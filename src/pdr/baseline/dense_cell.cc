#include "pdr/baseline/dense_cell.h"

#include <cmath>

namespace pdr {

Region DenseCellQuery(const DensityHistogram& dh, Tick q_t, double rho) {
  const Grid& grid = dh.grid();
  const auto& slice = dh.Slice(q_t);
  const double threshold = rho * grid.cell_area();
  Region out;
  for (int row = 0; row < grid.cells_per_side(); ++row) {
    for (int col = 0; col < grid.cells_per_side(); ++col) {
      const double count =
          static_cast<double>(slice[grid.FlatIndex(col, row)]);
      if (count >= threshold - 1e-9) out.Add(grid.CellRect(col, row));
    }
  }
  return out.Coalesced();
}

}  // namespace pdr
