// Effective density query baseline (Jensen et al., ICDE 2006; the paper's
// reference [7]).
//
// An EDQ reports *non-overlapping* dense regions of a fixed shape and
// size: squares of edge l, grid-aligned at the histogram's cell
// granularity, whose object count is at least rho * l^2. When several
// overlapping squares qualify, only a maximal non-overlapping subset is
// reported — the source of the *ambiguity* problem the paper illustrates
// in Fig. 1(b): different tie-breaking strategies return different, each
// individually valid, answers. Both of the strategies discussed there are
// provided so the ambiguity can be demonstrated (examples/, tests/).

#ifndef PDR_BASELINE_EDQ_H_
#define PDR_BASELINE_EDQ_H_

#include <vector>

#include "pdr/common/region.h"
#include "pdr/histogram/density_histogram.h"

namespace pdr {

/// Tie-breaking strategy for choosing among overlapping dense squares.
enum class EdqStrategy {
  kDensestFirst,   ///< greedily keep the square with the highest count
  kScanOrder,      ///< keep the first qualifying square in row-major order
};

struct EdqResult {
  Region region;                ///< union of the reported squares
  std::vector<Rect> squares;    ///< the individual non-overlapping squares
  int64_t candidate_squares = 0;  ///< dense squares before de-overlapping
};

/// Runs the effective density query (rho, l, q_t) over the histogram.
/// `l` is rounded to a whole number of grid cells (at least one).
EdqResult EffectiveDensityQuery(const DensityHistogram& dh, Tick q_t,
                                double rho, double l, EdqStrategy strategy);

}  // namespace pdr

#endif  // PDR_BASELINE_EDQ_H_
