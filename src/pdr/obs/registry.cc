#include "pdr/obs/registry.h"

#include <cmath>
#include <cstdlib>

#include "pdr/common/geometry.h"
#include "pdr/obs/trace.h"

namespace pdr {

#if PDR_OBS_COMPILED
namespace {

bool InitialEnabled() {
  const char* env = std::getenv("PDR_OBS");
  return env == nullptr || std::string_view(env) != "0";
}

}  // namespace

std::atomic<bool> PdrObs::enabled_{InitialEnabled()};
std::atomic<TraceSink*> PdrObs::sink_{nullptr};
#endif

void PdrObs::SetEnabled(bool on) {
#if PDR_OBS_COMPILED
  enabled_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void PdrObs::SetTraceSink(TraceSink* sink) {
#if PDR_OBS_COMPILED
  sink_.store(sink, std::memory_order_release);
#else
  (void)sink;
#endif
}

double Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0.0;
  return kMinValue * std::ldexp(1.0, i - 1);
}

int Histogram::BucketOf(double v) {
  if (!(v >= kMinValue)) return 0;  // also catches NaN
  const int i = static_cast<int>(std::floor(std::log2(v / kMinValue))) + 1;
  return i >= kBuckets ? kBuckets - 1 : i;
}

void Histogram::Observe(double v) {
  if (!PdrObs::Enabled()) return;
  const int bucket = BucketOf(v);
  std::lock_guard<std::mutex> lock(mu_);
  stat_.Add(v);
  ++buckets_[bucket];
}

RunningStat Histogram::stat() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stat_;
}

std::array<int64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double HistogramPercentile(
    const std::array<int64_t, Histogram::kBuckets>& buckets, double p) {
  int64_t total = 0;
  for (const int64_t c : buckets) total += c;
  if (total <= 0) return 0.0;
  const double clamped_p = Clamp(p, 0.0, 100.0);
  // Rank in (0, total]: the value below which ~p% of the mass lies.
  const double rank = clamped_p / 100.0 * static_cast<double>(total);
  int64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = static_cast<double>(cum + buckets[i]);
    if (rank <= next) {
      const double lo = Histogram::BucketLowerBound(i);
      // The open-ended last bucket is treated as one more doubling.
      const double hi = i + 1 < Histogram::kBuckets
                            ? Histogram::BucketLowerBound(i + 1)
                            : 2.0 * lo;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * Clamp(frac, 0.0, 1.0);
    }
    cum += buckets[i];
  }
  return Histogram::BucketLowerBound(Histogram::kBuckets - 1);
}

double Histogram::Percentile(double p) const {
  std::array<int64_t, kBuckets> snapshot_buckets;
  RunningStat snapshot_stat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_buckets = buckets_;
    snapshot_stat = stat_;
  }
  if (snapshot_stat.count() == 0) return 0.0;
  return Clamp(HistogramPercentile(snapshot_buckets, p), snapshot_stat.min(),
               snapshot_stat.max());
}

double MetricsRegistry::Snapshot::HistogramEntry::Percentile(double p) const {
  if (stat.count() == 0) return 0.0;
  return Clamp(HistogramPercentile(buckets, p), stat.min(), stat.max());
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stat_ = RunningStat();
  buckets_.fill(0);
}

std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value) {
  std::string name;
  name.reserve(base.size() + key.size() + value.size() + 5);
  name.append(base);
  name.push_back('{');
  name.append(key);
  name.append("=\"");
  for (const char c : value) {
    if (c == '"' || c == '\\') name.push_back('\\');
    name.push_back(c);
  }
  name.append("\"}");
  return name;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric handles cached in function-local statics all
  // over the library must outlive every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->stat(), h->buckets()});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace pdr
