#include "pdr/obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstring>

namespace pdr {

namespace {

// JSON number with inf/nan mapped to null (JSON has no literals for them).
void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendField(std::string* out, const char* key, double v) {
  out->push_back('"');
  out->append(key);
  out->append("\":");
  AppendNumber(out, v);
}

void AppendField(std::string* out, const char* key, int64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  out->append(buf);
}

const MetricsRegistry::Snapshot::HistogramEntry* FindHistogram(
    const MetricsRegistry::Snapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const MetricsRegistry::Snapshot::GaugeEntry* FindGauge(
    const MetricsRegistry::Snapshot& snap, const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

}  // namespace

int64_t MonitorReporter::DiffCounter(const MetricsRegistry::Snapshot& now,
                                     const MetricsRegistry::Snapshot& prev,
                                     const std::string& name) {
  int64_t cur = 0, old = 0;
  for (const auto& c : now.counters) {
    if (c.name == name) cur = c.value;
  }
  for (const auto& c : prev.counters) {
    if (c.name == name) old = c.value;
  }
  return cur - old;
}

std::optional<WindowHistogram> MonitorReporter::DiffHistogram(
    const MetricsRegistry::Snapshot& now, const MetricsRegistry::Snapshot& prev,
    const std::string& name) {
  const auto* cur = FindHistogram(now, name);
  if (cur == nullptr) return std::nullopt;
  const auto* old = FindHistogram(prev, name);

  const int64_t old_count = old != nullptr ? old->stat.count() : 0;
  const int64_t count = cur->stat.count() - old_count;
  if (count <= 0) return std::nullopt;

  WindowHistogram w;
  w.count = count;
  const double old_sum = old != nullptr ? old->stat.sum() : 0.0;
  w.mean = (cur->stat.sum() - old_sum) / static_cast<double>(count);

  std::array<int64_t, Histogram::kBuckets> delta = cur->buckets;
  if (old != nullptr) {
    for (int i = 0; i < Histogram::kBuckets; ++i) delta[i] -= old->buckets[i];
  }
  for (auto& b : delta) b = std::max<int64_t>(b, 0);
  w.p50 = HistogramPercentile(delta, 50.0);
  w.p95 = HistogramPercentile(delta, 95.0);
  w.p99 = HistogramPercentile(delta, 99.0);
  return w;
}

void MonitorReporter::EmitWindow(Tick now) {
  MetricsRegistry::Snapshot snap = MetricsRegistry::Global().TakeSnapshot();
  ++windows_;

  const int64_t sampled = DiffCounter(snap, prev_, "pdr.audit.sampled");
  const int64_t disagreements =
      DiffCounter(snap, prev_, "pdr.audit.disagreements");
  const auto precision = DiffHistogram(snap, prev_, "pdr.audit.precision");
  const auto recall = DiffHistogram(snap, prev_, "pdr.audit.recall");
  const auto io_ratio = DiffHistogram(snap, prev_, "pdr.calib.io_ratio");
  const auto cand_ratio =
      DiffHistogram(snap, prev_, "pdr.calib.candidate_ratio");
  const auto replay = DiffHistogram(snap, prev_, "pdr.audit.fr_replay_ms");
  const auto pa_ms = DiffHistogram(snap, prev_, "pdr.monitor.pa_query_ms");

  // Feed the drift detector on window means (quality only when the window
  // actually audited something).
  std::vector<EwmaDriftDetector::Event> fired;
  const size_t events_before = drift_.events().size();
  if (precision && recall) {
    drift_.ObserveQuality(now, precision->mean, recall->mean);
  }
  if (io_ratio) drift_.ObserveIoRatio(now, io_ratio->mean);
  for (size_t i = events_before; i < drift_.events().size(); ++i) {
    fired.push_back(drift_.events()[i]);
  }

  if (writer_ != nullptr) {
    std::string line = "{\"type\":\"audit_window\"";
    auto field = [&line](const char* key, auto v) {
      line.push_back(',');
      AppendField(&line, key, v);
    };
    field("window", windows_);
    field("tick_start", static_cast<int64_t>(window_start_));
    field("tick_end", static_cast<int64_t>(now));
    field("interval", static_cast<int64_t>(options_.interval));
    field("sampled", sampled);
    field("disagreements", disagreements);
    if (precision) {
      field("precision_mean", precision->mean);
      field("precision_p50", precision->p50);
    }
    if (recall) {
      field("recall_mean", recall->mean);
      field("recall_p50", recall->p50);
    }
    if (io_ratio) field("io_ratio_mean", io_ratio->mean);
    if (cand_ratio) field("candidate_ratio_mean", cand_ratio->mean);
    if (replay) {
      field("fr_replay_ms_mean", replay->mean);
      field("fr_replay_ms_p95", replay->p95);
      field("fr_replay_ms_p99", replay->p99);
    }
    if (pa_ms) {
      field("pa_query_ms_mean", pa_ms->mean);
      field("pa_query_ms_p95", pa_ms->p95);
      field("pa_query_ms_p99", pa_ms->p99);
    }
    if (const auto* g = FindGauge(snap, "pdr.storage.hit_ratio")) {
      field("hit_ratio", g->value);
    }
    field("drift_flagged", static_cast<int64_t>(drift_.drifted() ? 1 : 0));
    line.push_back('}');
    writer_->WriteLine(line);

    for (const auto& e : fired) {
      std::string ev = "{\"type\":\"drift\"";
      ev.append(",\"signal\":\"");
      ev.append(e.signal);
      ev.push_back('"');
      ev.push_back(',');
      AppendField(&ev, "tick", static_cast<int64_t>(e.tick));
      ev.push_back(',');
      AppendField(&ev, "value", e.value);
      ev.push_back(',');
      AppendField(&ev, "threshold", e.threshold);
      ev.push_back('}');
      writer_->WriteLine(ev);
    }
    writer_->Flush();
  }

  prev_ = std::move(snap);
  window_start_ = now;
}

void MonitorReporter::WriteFinalReport(std::FILE* out) const {
  MetricsRegistry::Snapshot snap = MetricsRegistry::Global().TakeSnapshot();

  std::fprintf(out, "=== PDR monitoring report ===\n");
  std::fprintf(out, "windows emitted: %" PRId64 "\n", windows_);

  int64_t offered = 0, sampled = 0, disagreements = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "pdr.audit.offered") offered = c.value;
    if (c.name == "pdr.audit.sampled") sampled = c.value;
    if (c.name == "pdr.audit.disagreements") disagreements = c.value;
  }
  std::fprintf(out,
               "audit: %" PRId64 " sampled of %" PRId64
               " offered (%" PRId64 " disagreements)\n",
               sampled, offered, disagreements);

  if (const auto* h = FindHistogram(snap, "pdr.audit.precision")) {
    std::fprintf(out, "PA precision: mean=%.4f p50=%.4f min=%.4f\n",
                 h->stat.mean(), h->Percentile(50), h->stat.min());
  }
  if (const auto* h = FindHistogram(snap, "pdr.audit.recall")) {
    std::fprintf(out, "PA recall:    mean=%.4f p50=%.4f min=%.4f\n",
                 h->stat.mean(), h->Percentile(50), h->stat.min());
  }
  if (const auto* h = FindHistogram(snap, "pdr.calib.io_ratio")) {
    std::fprintf(out,
                 "I/O actual/predicted: mean=%.3f p50=%.3f "
                 "[%.3f, %.3f]\n",
                 h->stat.mean(), h->Percentile(50), h->stat.min(),
                 h->stat.max());
  }
  if (const auto* g = FindGauge(snap, "pdr.storage.hit_ratio")) {
    std::fprintf(out, "buffer-pool hit ratio: %.4f\n", g->value);
  }

  std::fprintf(out, "\ndrift: %s\n", drift_.drifted() ? "FLAGGED" : "none");
  std::fprintf(out,
               "  recall_ewma=%.4f precision_ewma=%.4f io_ratio_ewma=%.3f\n",
               drift_.recall_ewma(), drift_.precision_ewma(),
               drift_.io_ratio_ewma());
  for (const auto& e : drift_.events()) {
    std::fprintf(out,
                 "  event: signal=%s tick=%lld value=%.4f threshold=%.4f\n",
                 e.signal, static_cast<long long>(e.tick), e.value,
                 e.threshold);
  }

  std::fprintf(out, "\npercentiles (all registry histograms):\n");
  std::fprintf(out, "  %-34s %10s %10s %10s %10s %10s\n", "histogram", "count",
               "mean", "p50", "p95", "p99");
  for (const auto& h : snap.histograms) {
    if (h.stat.count() == 0) continue;
    std::fprintf(out, "  %-34s %10" PRId64 " %10.4g %10.4g %10.4g %10.4g\n",
                 h.name.c_str(), h.stat.count(), h.stat.mean(),
                 h.Percentile(50), h.Percentile(95), h.Percentile(99));
  }
  std::fflush(out);
}

}  // namespace pdr
