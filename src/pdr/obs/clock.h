// Deterministic clock seam for observability timestamps.
//
// Every obs-layer timestamp (flight-recorder micro-events, trace spans)
// flows through ObsClock::NowNs() instead of touching steady_clock
// directly. By default that IS the steady clock, so production behavior is
// unchanged; tests install a LogicalClock — a logical tick counter scaled
// by a fixed step plus a monotonic offset — and every dump becomes
// byte-stable: the same event sequence always serializes to the same
// bytes, independent of machine speed or scheduling.
//
// The seam deliberately does NOT touch the Timer/Deadline machinery in
// pdr/common and pdr/resilience: measured query cost and deadline expiry
// stay real wall time (the hexfloat determinism transcripts never include
// timestamps, so they are unaffected either way).
//
// Thread-safety: the source pointer is a single atomic; installed clocks
// must be safe to call from any thread (LogicalClock is — one fetch_add).

#ifndef PDR_OBS_CLOCK_H_
#define PDR_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pdr {

/// A source of nanosecond timestamps. Implementations must be monotonic
/// per call site and thread-safe.
class EventClock {
 public:
  virtual ~EventClock() = default;
  virtual int64_t NowNs() = 0;
};

/// The process-wide timestamp seam. With no source installed (the
/// default), NowNs() reads the steady clock.
class ObsClock {
 public:
  static int64_t NowNs() {
    if (EventClock* c = Source().load(std::memory_order_acquire)) {
      return c->NowNs();
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Installs `clock` (not owned; must outlive its installation). nullptr
  /// restores the steady clock.
  static void SetSource(EventClock* clock) {
    Source().store(clock, std::memory_order_release);
  }

  static EventClock* source() {
    return Source().load(std::memory_order_acquire);
  }

 private:
  static std::atomic<EventClock*>& Source() {
    static std::atomic<EventClock*> source{nullptr};
    return source;
  }
};

/// Deterministic test clock: the n-th call (process-wide, any thread)
/// returns offset_ns + n * step_ns. Install via ObsClock::SetSource for
/// byte-stable flight-recorder dumps; single-threaded event sequences then
/// serialize identically on every run.
class LogicalClock : public EventClock {
 public:
  explicit LogicalClock(int64_t offset_ns = 0, int64_t step_ns = 1000)
      : offset_ns_(offset_ns), step_ns_(step_ns) {}

  int64_t NowNs() override {
    return offset_ns_ +
           step_ns_ * static_cast<int64_t>(
                          ticks_.fetch_add(1, std::memory_order_relaxed));
  }

  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  int64_t offset_ns_;
  int64_t step_ns_;
  std::atomic<int64_t> ticks_{0};
};

/// RAII installation of a clock source (tests).
class ScopedObsClock {
 public:
  explicit ScopedObsClock(EventClock* clock) : prev_(ObsClock::source()) {
    ObsClock::SetSource(clock);
  }
  ~ScopedObsClock() { ObsClock::SetSource(prev_); }

  ScopedObsClock(const ScopedObsClock&) = delete;
  ScopedObsClock& operator=(const ScopedObsClock&) = delete;

 private:
  EventClock* prev_;
};

}  // namespace pdr

#endif  // PDR_OBS_CLOCK_H_
