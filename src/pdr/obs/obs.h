// Observability master switch (and umbrella header for pdr/obs).
//
// The obs layer has two independent costs, and two switches to match:
//
//   * Metrics (MetricsRegistry counters/gauges/histograms) are cheap —
//     one relaxed atomic op per event — and are meant to stay on in hot
//     paths. They are gated only by the master switch below.
//   * Traces (TraceSpan trees) allocate per span, so they are additionally
//     gated on a sink being installed: with no sink, a TraceSpan
//     constructor is a single relaxed atomic load.
//
// Compile-time kill switch: configuring with -DPDR_OBS=OFF defines
// PDR_OBS_DISABLED, which pins PdrObs::Enabled() to `false` as a constant
// so every instrumentation site folds away entirely.
//
// Runtime: the master switch defaults to ON; set the environment variable
// PDR_OBS=0 before process start (or call PdrObs::SetEnabled(false)) to
// turn all instrumentation off.

#ifndef PDR_OBS_OBS_H_
#define PDR_OBS_OBS_H_

#include <atomic>

#ifdef PDR_OBS_DISABLED
#define PDR_OBS_COMPILED 0
#else
#define PDR_OBS_COMPILED 1
#endif

namespace pdr {

class TraceSink;

class PdrObs {
 public:
  /// True when the layer is compiled in (PDR_OBS cmake option).
  static constexpr bool CompiledIn() { return PDR_OBS_COMPILED != 0; }

  /// Master runtime switch. Defaults to the PDR_OBS environment variable
  /// ("0" disables), else on. Always false when compiled out.
  static bool Enabled() {
#if PDR_OBS_COMPILED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }
  static void SetEnabled(bool on);

  /// Installs the trace sink (not owned; nullptr uninstalls). Completed
  /// root spans are delivered to the sink, which must be thread-safe.
  static void SetTraceSink(TraceSink* sink);
  static TraceSink* trace_sink() {
#if PDR_OBS_COMPILED
    return sink_.load(std::memory_order_acquire);
#else
    return nullptr;
#endif
  }

  /// True when spans should be recorded: enabled and a sink is installed.
  static bool TracingActive() {
    return Enabled() && trace_sink() != nullptr;
  }

 private:
#if PDR_OBS_COMPILED
  static std::atomic<bool> enabled_;
  static std::atomic<TraceSink*> sink_;
#endif
};

}  // namespace pdr

#include "pdr/obs/registry.h"  // IWYU pragma: export
#include "pdr/obs/trace.h"     // IWYU pragma: export

#endif  // PDR_OBS_OBS_H_
