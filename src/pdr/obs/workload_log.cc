#include "pdr/obs/workload_log.h"

#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstring>
#include <stdexcept>

#include "pdr/obs/registry.h"
#include "pdr/resilience/executor.h"
#include "pdr/storage/serde.h"

namespace pdr {
namespace {

constexpr uint32_t kLogMagic = 0x4C524450u;     // "PDRL"
constexpr uint32_t kLogVersion = 1;
constexpr uint32_t kRecordMagic = 0x4345524Cu;  // "LREC"

constexpr uint8_t kTypeHeader = 1;
constexpr uint8_t kTypeUpdates = 2;
constexpr uint8_t kTypeTick = 3;

struct LogFileHeader {
  uint32_t magic = kLogMagic;
  uint32_t version = kLogVersion;
};
static_assert(sizeof(LogFileHeader) == 8);

struct RecordHeader {
  uint32_t magic = kRecordMagic;
  uint8_t type = 0;
  uint8_t pad[3] = {};
  uint32_t payload_len = 0;
  uint32_t pad2 = 0;  // keeps the u64 checksum naturally aligned
  uint64_t checksum = 0;
};
static_assert(sizeof(RecordHeader) == 24);

uint64_t RecordChecksum(uint8_t type, const std::string& payload) {
  uint64_t c = Fnv1a64(&type, sizeof(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  c = Fnv1a64(&len, sizeof(len), c);
  return Fnv1a64(payload.data(), payload.size(), c);
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

// Raw IEEE-754 rectangle bytes: any numeric divergence, however small,
// changes the transcript (bitwise identity, the same strength as the
// determinism tests' hexfloat convention). Raw bits instead of %a
// because the digest runs on every monitored tick — formatting four
// hexfloats per answer rect cost more than the rest of recording
// combined on dense answers (~100 µs/tick at a few hundred rects).
void AppendRegionBits(const char* name, const Region& region,
                      std::string* out) {
  AppendF(out, "%s=%zu ", name, region.size());
  for (const Rect& r : region.rects()) {
    PutPod(out, r.x_lo);
    PutPod(out, r.y_lo);
    PutPod(out, r.x_hi);
    PutPod(out, r.y_hi);
  }
  out->push_back('\n');
}

void PutMotionState(std::string* out, const MotionState& state) {
  PutPod(out, state.pos.x);
  PutPod(out, state.pos.y);
  PutPod(out, state.vel.x);
  PutPod(out, state.vel.y);
  PutPod(out, state.t_ref);
}

MotionState GetMotionState(ByteReader* reader) {
  MotionState state;
  state.pos.x = reader->Get<double>();
  state.pos.y = reader->Get<double>();
  state.vel.x = reader->Get<double>();
  state.vel.y = reader->Get<double>();
  state.t_ref = reader->Get<Tick>();
  return state;
}

std::string EncodeHeader(const WorkloadLogHeader& h) {
  std::string payload;
  PutPod(&payload, h.extent);
  PutPod(&payload, h.num_objects);
  PutPod(&payload, h.max_update_interval);
  PutPod(&payload, h.seed);
  PutPod(&payload, h.duration);
  PutPod(&payload, h.rho);
  PutPod(&payload, h.l);
  PutPod(&payload, h.lookahead);
  PutPod(&payload, h.every);
  PutPod(&payload, h.deadline_ms);
  PutPod(&payload, h.max_inflight);
  PutPod(&payload, h.degrade);
  PutPod(&payload, h.enable_exact);
  PutPod(&payload, h.enable_approx);
  PutPod(&payload, h.has_fallback);
  PutPod(&payload, h.threads);
  PutPod(&payload, h.histogram_side);
  PutPod(&payload, h.horizon);
  PutPod(&payload, h.buffer_pages);
  PutPod(&payload, h.io_ms);
  PutPod(&payload, h.index);
  PutPod(&payload, h.poly_side);
  PutPod(&payload, h.degree);
  PutPod(&payload, h.eval_grid);
  // Trailing optional fields: the FFT rung. Decoders guard on remaining
  // bytes, so pre-FFT logs (which stop at eval_grid) still parse and
  // pre-FFT readers simply ignore the tail they don't know about.
  PutPod(&payload, h.has_fft);
  PutPod(&payload, h.fft_grid);
  return payload;
}

WorkloadLogHeader DecodeHeader(ByteReader* reader) {
  WorkloadLogHeader h;
  h.extent = reader->Get<double>();
  h.num_objects = reader->Get<int32_t>();
  h.max_update_interval = reader->Get<int32_t>();
  h.seed = reader->Get<uint64_t>();
  h.duration = reader->Get<int32_t>();
  h.rho = reader->Get<double>();
  h.l = reader->Get<double>();
  h.lookahead = reader->Get<int32_t>();
  h.every = reader->Get<int32_t>();
  h.deadline_ms = reader->Get<double>();
  h.max_inflight = reader->Get<int32_t>();
  h.degrade = reader->Get<uint8_t>();
  h.enable_exact = reader->Get<uint8_t>();
  h.enable_approx = reader->Get<uint8_t>();
  h.has_fallback = reader->Get<uint8_t>();
  h.threads = reader->Get<int32_t>();
  h.histogram_side = reader->Get<int32_t>();
  h.horizon = reader->Get<int32_t>();
  h.buffer_pages = reader->Get<uint64_t>();
  h.io_ms = reader->Get<double>();
  h.index = reader->Get<uint8_t>();
  h.poly_side = reader->Get<int32_t>();
  h.degree = reader->Get<int32_t>();
  h.eval_grid = reader->Get<int32_t>();
  // Optional trailing FFT-rung fields (absent in pre-FFT captures).
  if (reader->remaining() >= sizeof(uint8_t) + sizeof(int32_t)) {
    h.has_fft = reader->Get<uint8_t>();
    h.fft_grid = reader->Get<int32_t>();
  }
  return h;
}

// Last path component, for manifest entries.
std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string SanitizeReason(const std::string& reason) {
  std::string out;
  for (char c : reason) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out.empty() ? std::string("incident") : out;
}

void CopyFileOrThrow(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) {
    throw std::runtime_error("bundle: cannot read " + from);
  }
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    throw std::runtime_error("bundle: cannot write " + to);
  }
  char buf[1 << 16];
  size_t n;
  bool ok = true;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (std::fwrite(buf, 1, n, out) != n) {
      ok = false;
      break;
    }
  }
  std::fclose(in);
  if (std::fclose(out) != 0) ok = false;
  if (!ok) throw std::runtime_error("bundle: short write to " + to);
}

void MkdirOrThrow(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("bundle: cannot create " + dir + ": " +
                             std::strerror(errno));
  }
}

}  // namespace

uint64_t TickDigest(const PdrMonitor::Delta& delta) {
  std::string transcript;
  AppendF(&transcript, "now=%d q_t=%d rho=%a l=%a tier=%u reason=%u shed=%u\n",
          delta.now, delta.q_t, delta.explain.rho, delta.explain.l,
          static_cast<unsigned>(delta.tier),
          static_cast<unsigned>(delta.downgrade_reason),
          delta.shed ? 1u : 0u);
  AppendRegionBits("current", delta.current, &transcript);
  AppendRegionBits("appeared", delta.appeared, &transcript);
  AppendRegionBits("vanished", delta.vanished, &transcript);
  AppendRegionBits("maybe", delta.maybe_region, &transcript);
  AppendF(&transcript,
          "cells=%" PRId64 "/%" PRId64 "/%" PRId64 " fetched=%" PRId64
          " rects=%" PRId64 " bnb=%" PRId64 "/%" PRId64 "\n",
          delta.explain.accepted_cells, delta.explain.candidate_cells,
          delta.explain.rejected_cells, delta.explain.objects_fetched,
          delta.explain.dense_rects, delta.explain.bnb_nodes,
          delta.explain.bnb_pruned);
  return Fnv1a64(transcript.data(), transcript.size());
}

uint64_t ExplainSignatureHash(const ExplainRecord& explain) {
  const std::string sig = explain.DeterministicSignature();
  return Fnv1a64(sig.data(), sig.size());
}

WorkloadRecorder::WorkloadRecorder(const std::string& path,
                                   const WorkloadLogHeader& header)
    : path_(path), header_(header) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("workload log: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  LogFileHeader fh;
  if (std::fwrite(&fh, sizeof(fh), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("workload log: cannot write " + path);
  }
  stats_.bytes = sizeof(fh);
  AppendRecord(kTypeHeader, EncodeHeader(header_));
}

WorkloadRecorder::~WorkloadRecorder() {
  DisarmBundles();
  if (file_ != nullptr) std::fclose(file_);
}

void WorkloadRecorder::AppendRecord(uint8_t type, const std::string& payload) {
  RecordHeader rh;
  rh.type = type;
  rh.payload_len = static_cast<uint32_t>(payload.size());
  rh.checksum = RecordChecksum(type, payload);
  if (std::fwrite(&rh, sizeof(rh), 1, file_) != 1 ||
      (!payload.empty() &&
       std::fwrite(payload.data(), payload.size(), 1, file_) != 1)) {
    throw std::runtime_error("workload log: write failed on " + path_);
  }
  stats_.bytes += static_cast<int64_t>(sizeof(rh) + payload.size());
}

namespace {

std::string EncodeUpdates(Tick now, const std::vector<UpdateEvent>& updates) {
  std::string payload;
  PutPod(&payload, now);
  PutPod(&payload, static_cast<uint32_t>(updates.size()));
  for (const UpdateEvent& e : updates) {
    PutPod(&payload, e.id);
    const uint8_t flags = static_cast<uint8_t>((e.old_state ? 1 : 0) |
                                               (e.new_state ? 2 : 0));
    PutPod(&payload, flags);
    if (e.old_state) PutMotionState(&payload, *e.old_state);
    if (e.new_state) PutMotionState(&payload, *e.new_state);
  }
  return payload;
}

}  // namespace

void WorkloadRecorder::OnUpdates(Tick now,
                                 const std::vector<UpdateEvent>& updates) {
  if (updates.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  AppendRecord(kTypeUpdates, EncodeUpdates(now, updates));
  ++stats_.update_batches;
  stats_.updates += static_cast<int64_t>(updates.size());
}

void WorkloadRecorder::OnCommit(Tick now,
                                const std::vector<UpdateEvent>& updates,
                                uint64_t epoch) {
  std::string payload = EncodeUpdates(now, updates);
  PutPod(&payload, epoch);  // trailing field; absent in serialized logs
  std::lock_guard<std::mutex> lock(mu_);
  AppendRecord(kTypeUpdates, payload);
  ++stats_.update_batches;
  stats_.updates += static_cast<int64_t>(updates.size());
}

WorkloadTickRecord WorkloadRecorder::RecordTick(
    const PdrMonitor::Delta& delta) {
  WorkloadTickRecord rec;
  rec.now = delta.now;
  rec.q_t = delta.q_t;
  rec.tier = static_cast<uint8_t>(delta.tier);
  rec.downgrade_reason = static_cast<uint8_t>(delta.downgrade_reason);
  rec.shed = delta.shed ? 1 : 0;
  rec.elapsed_ms = delta.elapsed_ms;
  rec.digest = TickDigest(delta);
  rec.sig_hash = ExplainSignatureHash(delta.explain);
  rec.epoch = delta.epoch;

  std::string payload;
  PutPod(&payload, rec.now);
  PutPod(&payload, rec.q_t);
  PutPod(&payload, rec.tier);
  PutPod(&payload, rec.downgrade_reason);
  PutPod(&payload, rec.shed);
  PutPod(&payload, rec.elapsed_ms);
  PutPod(&payload, rec.digest);
  PutPod(&payload, rec.sig_hash);
  // Trailing epoch only on snapshot answers: serialized captures keep
  // their exact pre-MVCC record bytes (and goldens).
  if (rec.epoch > 0) PutPod(&payload, rec.epoch);

  std::lock_guard<std::mutex> lock(mu_);
  AppendRecord(kTypeTick, payload);
  ++stats_.ticks;

  static Counter& ticks =
      MetricsRegistry::Global().GetCounter("pdr.workload_log.ticks");
  ticks.Increment();
  return rec;
}

void WorkloadRecorder::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void WorkloadRecorder::ArmBundles(const std::string& bundle_dir) {
  MkdirOrThrow(bundle_dir);
  bundle_dir_ = bundle_dir;
  FlightRecorder::Global().SetDumpHook(
      [this](const FlightRecorder::DumpInfo& dump, const std::string& reason) {
        // Incident path: never let bundle I/O trouble mask the incident.
        try {
          WriteBundle(reason, dump);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "workload log: bundle write failed: %s\n",
                       e.what());
        }
      });
  hook_installed_ = true;
}

void WorkloadRecorder::DisarmBundles() {
  if (!hook_installed_) return;
  FlightRecorder::Global().SetDumpHook(nullptr);
  hook_installed_ = false;
  bundle_dir_.clear();
}

std::string WorkloadRecorder::WriteBundle(
    const std::string& reason, const FlightRecorder::DumpInfo& dump) {
  if (bundle_dir_.empty()) {
    throw std::runtime_error("bundle: ArmBundles was not called");
  }
  char name[128];
  std::snprintf(name, sizeof(name), "bundle_%03" PRId64 "_%s", stats_.bundles,
                SanitizeReason(reason).c_str());
  const std::string dir = bundle_dir_ + "/" + name;
  MkdirOrThrow(dir);

  Flush();
  CopyFileOrThrow(path_, dir + "/workload.wlog");
  std::string jsonl_name, trace_name;
  if (dump.ok) {
    jsonl_name = Basename(dump.jsonl_path);
    trace_name = Basename(dump.trace_path);
    CopyFileOrThrow(dump.jsonl_path, dir + "/" + jsonl_name);
    CopyFileOrThrow(dump.trace_path, dir + "/" + trace_name);
  }

  std::FILE* manifest = std::fopen((dir + "/MANIFEST.json").c_str(), "w");
  if (manifest == nullptr) {
    throw std::runtime_error("bundle: cannot write manifest in " + dir);
  }
  std::fprintf(manifest,
               "{\"type\":\"repro_bundle\",\"reason\":\"%s\","
               "\"workload_log\":\"workload.wlog\","
               "\"flight_jsonl\":\"%s\",\"flight_trace\":\"%s\","
               "\"ticks\":%" PRId64 ",\"updates\":%" PRId64
               ",\"log_bytes\":%" PRId64 "}\n",
               SanitizeReason(reason).c_str(), jsonl_name.c_str(),
               trace_name.c_str(), stats_.ticks, stats_.updates,
               stats_.bytes);
  std::fclose(manifest);

  ++stats_.bundles;
  static Counter& bundles =
      MetricsRegistry::Global().GetCounter("pdr.workload_log.bundles");
  bundles.Increment();
  return dir;
}

WorkloadLog WorkloadLog::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("workload log: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);

  if (bytes.size() < sizeof(LogFileHeader)) {
    throw std::runtime_error("workload log: " + path + " is not a PDRL file");
  }
  LogFileHeader fh;
  std::memcpy(&fh, bytes.data(), sizeof(fh));
  if (fh.magic != kLogMagic) {
    throw std::runtime_error("workload log: bad magic in " + path);
  }
  if (fh.version != kLogVersion) {
    throw std::runtime_error("workload log: unsupported version in " + path);
  }

  WorkloadLog log;
  size_t pos = sizeof(fh);
  bool saw_header = false;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < sizeof(RecordHeader)) {
      log.torn_tail = true;  // a process died mid-append; keep the prefix
      break;
    }
    RecordHeader rh;
    std::memcpy(&rh, bytes.data() + pos, sizeof(rh));
    if (rh.magic != kRecordMagic) {
      throw std::runtime_error("workload log: corrupt record header in " +
                               path);
    }
    if (bytes.size() - pos - sizeof(rh) < rh.payload_len) {
      log.torn_tail = true;
      break;
    }
    const std::string payload =
        bytes.substr(pos + sizeof(rh), rh.payload_len);
    if (RecordChecksum(rh.type, payload) != rh.checksum) {
      // Interior corruption is not a torn tail: the record is fully
      // present and wrong. Refuse the whole log.
      throw std::runtime_error("workload log: checksum mismatch in " + path);
    }
    pos += sizeof(rh) + rh.payload_len;

    ByteReader reader(payload);
    switch (rh.type) {
      case kTypeHeader:
        log.header = DecodeHeader(&reader);
        saw_header = true;
        break;
      case kTypeUpdates: {
        WorkloadLogRecord rec;
        rec.kind = WorkloadLogRecord::Kind::kUpdates;
        rec.tick = reader.Get<Tick>();
        const uint32_t count = reader.Get<uint32_t>();
        rec.updates.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          UpdateEvent e;
          e.tick = rec.tick;
          e.id = reader.Get<ObjectId>();
          const uint8_t flags = reader.Get<uint8_t>();
          if (flags & 1) e.old_state = GetMotionState(&reader);
          if (flags & 2) e.new_state = GetMotionState(&reader);
          rec.updates.push_back(std::move(e));
        }
        // Optional trailing epoch (concurrent captures only).
        if (reader.remaining() >= sizeof(uint64_t)) {
          rec.epoch = reader.Get<uint64_t>();
        }
        log.records.push_back(std::move(rec));
        break;
      }
      case kTypeTick: {
        WorkloadLogRecord rec;
        rec.kind = WorkloadLogRecord::Kind::kTick;
        rec.query.now = reader.Get<Tick>();
        rec.query.q_t = reader.Get<Tick>();
        rec.query.tier = reader.Get<uint8_t>();
        rec.query.downgrade_reason = reader.Get<uint8_t>();
        rec.query.shed = reader.Get<uint8_t>();
        rec.query.elapsed_ms = reader.Get<double>();
        rec.query.digest = reader.Get<uint64_t>();
        rec.query.sig_hash = reader.Get<uint64_t>();
        // Optional trailing epoch (snapshot answers only).
        if (reader.remaining() >= sizeof(uint64_t)) {
          rec.query.epoch = reader.Get<uint64_t>();
          rec.epoch = rec.query.epoch;
        }
        rec.tick = rec.query.now;
        log.records.push_back(std::move(rec));
        break;
      }
      default:
        throw std::runtime_error("workload log: unknown record type in " +
                                 path);
    }
  }
  if (!saw_header) {
    throw std::runtime_error("workload log: missing header record in " +
                             path);
  }
  log.bytes = static_cast<int64_t>(pos);
  return log;
}

std::string BundleWorkloadLog(const std::string& bundle_dir) {
  const std::string path = bundle_dir + "/workload.wlog";
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    throw std::runtime_error("bundle: no workload.wlog in " + bundle_dir);
  }
  return path;
}

}  // namespace pdr
