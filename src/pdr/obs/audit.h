// Shadow-audit quality observability.
//
// The PA engine trades exactness for speed (Chebyshev-truncated density
// fields, branch-and-bound over interval bounds); offline benches quantify
// the trade once, but nothing in the repo observed how wrong PA is on a
// *live* workload. This module closes that gap with three cooperating
// pieces, all built on the pdr/obs metrics registry:
//
//  * ShadowAuditor — probabilistically samples PA answers (configurable
//    rate) and replays each sampled query through the exact FR engine on
//    the same snapshot. The PA answer is scored by area overlap against
//    the exact region (precision / recall / false-accept / false-reject
//    fractions, Section 7.2's r_fp / r_fn), and the worst pointwise
//    density error over the disagreement region is probed against the
//    ground-truth oracle. Verdicts are published as registry
//    histograms/gauges and trace-span attributes.
//  * CostCalibrator — a closed-form cost model of the FR query path
//    (candidate cells, fetched objects, index page reads), predicted from
//    the density histogram plus coarse index shape only, compared after
//    each observed FR query against the measured actuals. The
//    actual/predicted ratio series makes cost-model drift (clustering,
//    cache behavior, index degradation) a first-class signal.
//  * EwmaDriftDetector — exponentially-weighted tracking of PA recall /
//    precision and the I/O calibration ratio, raising sticky flags when
//    a signal leaves its configured band.
//
// Layering note: these files live under pdr/obs/ with the rest of the
// observability layer but compile into pdr_core (they drive FrEngine and
// the Oracle, which sit above the base obs library). Nothing here touches
// PaEngine::Query itself, and every entry point early-outs on
// !PdrObs::Enabled(), so with -DPDR_OBS=OFF the audit machinery folds
// away and the PA query path carries zero added overhead.

#ifndef PDR_OBS_AUDIT_H_
#define PDR_OBS_AUDIT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/oracle.h"
#include "pdr/obs/obs.h"

namespace pdr {

/// Region-level quality score of one audited PA answer against the exact
/// FR answer on the same snapshot.
struct AuditVerdict {
  Tick q_t = 0;
  double rho = 0.0;
  double l = 0.0;

  double pa_area = 0.0;       ///< area(D'), the approximate answer
  double fr_area = 0.0;       ///< area(D), the exact answer
  double overlap_area = 0.0;  ///< area(D ∩ D')

  /// Area-weighted precision = overlap / pa_area (1 when PA reports
  /// nothing).
  double precision = 1.0;
  /// Area-weighted recall = overlap / fr_area (1 when nothing is dense).
  double recall = 1.0;
  /// False-accept area fraction = area(D' \ D) / area(D) — r_fp; may
  /// exceed 1. Normalized by the domain area when the truth is empty.
  double false_accept_frac = 0.0;
  /// False-reject area fraction = area(D \ D') / area(D) — r_fn in [0, 1].
  double false_reject_frac = 0.0;

  /// Largest |approximate − exact| point density over probe points inside
  /// the disagreement region (0 when the answers agree or no oracle is
  /// wired in).
  double max_density_err = 0.0;
  int density_probes = 0;

  double fr_replay_ms = 0.0;  ///< total cost of the shadow FR query
  int64_t fr_io_reads = 0;    ///< physical page reads of the replay

  /// True when the two answers coincide up to `eps` symmetric-difference
  /// area.
  bool Agrees(double eps = 1e-6) const {
    return pa_area + fr_area - 2.0 * overlap_area <= eps;
  }
};

class CostCalibrator;

/// Samples live PA queries and replays them through exact FR; see the
/// file comment. Not thread-safe (one auditor per monitoring loop).
class ShadowAuditor {
 public:
  struct Options {
    double sample_rate = 0.1;  ///< fraction of offered queries audited
    double l = 30.0;           ///< neighborhood edge (must match PA's l)
    uint64_t seed = 0x5eedda7aULL;  ///< sampling stream seed
    int probe_grid = 4;   ///< density probes per disagreement rect (grid²)
    int max_probes = 512; ///< per-verdict probe budget
  };

  /// Audits against `fr`, which must be fed the same update stream as the
  /// audited PA engine (not owned). `oracle` may be null; when present it
  /// supplies exact point densities for the error probes.
  ShadowAuditor(FrEngine* fr, const Oracle* oracle, const Options& options)
      : fr_(fr), oracle_(oracle), options_(options), rng_(options.seed) {}

  /// Wires a cost calibrator: every shadow FR replay is then predicted
  /// before it runs and the prediction scored against the actuals.
  void SetCalibrator(CostCalibrator* calibrator) { calibrator_ = calibrator; }

  /// Wires the audited engine's point-density evaluator (for PA:
  /// `[&pa](Tick t, Vec2 p) { return pa.Density(t, p); }`). Without it —
  /// or without an oracle — verdicts skip the pointwise error probes and
  /// report max_density_err = 0.
  void SetApproxDensityProbe(std::function<double(Tick, Vec2)> probe) {
    approx_density_ = std::move(probe);
  }

  /// Rolls the sampling dice. Always false when observability is off —
  /// the compiled-out configuration reduces the whole audit path to this
  /// constant-false branch.
  bool ShouldSample() {
    if (!PdrObs::Enabled()) return false;
    offered_.Increment();
    return rng_.Bernoulli(options_.sample_rate);
  }

  /// Samples-and-audits: returns a verdict for ~sample_rate of the calls.
  std::optional<AuditVerdict> MaybeAudit(Tick q_t, double rho,
                                         const Region& pa_region);

  /// Unconditional audit of one PA answer.
  AuditVerdict Audit(Tick q_t, double rho, const Region& pa_region);

  int64_t audited() const { return audited_; }
  const Options& options() const { return options_; }

 private:
  /// Worst pointwise |PA − oracle| density over the disagreement region.
  void ProbeDensityError(Tick q_t, const Region& pa_region,
                         const Region& fr_region, AuditVerdict* verdict);
  void Publish(const AuditVerdict& verdict);

  FrEngine* fr_;
  const Oracle* oracle_;
  Options options_;
  Rng rng_;
  CostCalibrator* calibrator_ = nullptr;
  std::function<double(Tick, Vec2)> approx_density_;
  Counter& offered_ = MetricsRegistry::Global().GetCounter(
      "pdr.audit.offered");
  int64_t audited_ = 0;
};

/// Closed-form prediction of one FR query's work. Derived from the
/// density histogram and coarse index shape only — no index traversal —
/// so a prediction is O(m²) and can run before every query.
struct CostPrediction {
  double accepted_cells = 0.0;
  double rejected_cells = 0.0;
  double candidate_cells = 0.0;
  double objects_fetched = 0.0;  ///< candidate-window object estimate
  double io_reads = 0.0;  ///< predicted index page touches (logical reads)
  double io_ms = 0.0;     ///< cold-cache bound: io_reads at the I/O rate
};

/// Predicts FR filtering/refinement cost and scores the predictions
/// against measured actuals (see file comment). Model: the filter's own
/// conservative/expansive block sums classify each cell, with the
/// candidate band widened by a Poisson slack z·sqrt(count) absorbing the
/// motion the histogram slice cannot resolve; candidate refinement cost
/// is the expansive-window object estimate divided by the index's average
/// entries per page, plus one page per cell for the root-to-leaf descent.
/// The I/O ratio compares logical page touches — cache behavior is
/// deliberately outside the model, so a hit-rate collapse shows up as
/// physical cost without moving the ratio.
class CostCalibrator {
 public:
  struct Options {
    /// Poisson slack multiplier: cells whose estimated l-square count is
    /// within z·sqrt(count) of the threshold are predicted candidates.
    double z = 2.0;
    double ewma_alpha = 0.3;  ///< smoothing of the published ratio gauges
  };

  explicit CostCalibrator(const FrEngine* fr) : CostCalibrator(fr, Options()) {}
  CostCalibrator(const FrEngine* fr, const Options& options)
      : fr_(fr), options_(options) {}

  /// Histogram-only prediction for query (rho, l) at tick q_t (which must
  /// lie inside the histogram's horizon).
  CostPrediction Predict(Tick q_t, double rho, double l) const;

  /// Scores one measured FR query against its prediction, publishing the
  /// actual/predicted ratio series (histograms + EWMA gauges).
  void Observe(const CostPrediction& prediction,
               const FrEngine::QueryResult& actual);

  int64_t observations() const { return observations_; }
  double candidate_ratio_ewma() const { return candidate_ewma_; }
  double io_ratio_ewma() const { return io_ewma_; }
  const Options& options() const { return options_; }

 private:
  double Smooth(double ewma, double sample) const {
    return observations_ <= 1
               ? sample
               : ewma + options_.ewma_alpha * (sample - ewma);
  }

  const FrEngine* fr_;
  Options options_;
  int64_t observations_ = 0;
  double candidate_ewma_ = 1.0;
  double io_ewma_ = 1.0;
};

/// Exponentially-weighted drift tracking over the audit quality and
/// cost-calibration signals. Flags are sticky: once a signal leaves its
/// band the detector stays drifted until Reset().
class EwmaDriftDetector {
 public:
  struct Options {
    double alpha = 0.3;        ///< EWMA smoothing factor
    double min_recall = 0.9;   ///< drift when recall EWMA falls below
    double min_precision = 0.5;///< drift when precision EWMA falls below
    double io_ratio_lo = 0.05; ///< drift when I/O ratio EWMA leaves
    double io_ratio_hi = 20.0; ///<   [io_ratio_lo, io_ratio_hi]
    int warmup = 3;  ///< samples per signal before its flag may raise
  };

  /// One tripped threshold (reported once, when the signal first leaves
  /// its band).
  struct Event {
    Tick tick = 0;
    const char* signal = "";  ///< "recall" | "precision" | "io_ratio"
    double value = 0.0;       ///< the EWMA that tripped
    double threshold = 0.0;   ///< the band edge it crossed
  };

  EwmaDriftDetector() : EwmaDriftDetector(Options()) {}
  explicit EwmaDriftDetector(const Options& options) : options_(options) {}

  /// Feeds one audited quality sample; returns true when a flag newly
  /// raised.
  bool ObserveQuality(Tick tick, double precision, double recall);

  /// Feeds one actual/predicted I/O ratio; returns true when the flag
  /// newly raised.
  bool ObserveIoRatio(Tick tick, double ratio);

  bool drifted() const {
    return recall_drifted_ || precision_drifted_ || io_drifted_;
  }
  bool recall_drifted() const { return recall_drifted_; }
  bool precision_drifted() const { return precision_drifted_; }
  bool io_drifted() const { return io_drifted_; }

  double recall_ewma() const { return recall_ewma_; }
  double precision_ewma() const { return precision_ewma_; }
  double io_ratio_ewma() const { return io_ewma_; }

  const std::vector<Event>& events() const { return events_; }
  const Options& options() const { return options_; }

  void Reset();

 private:
  static double Smooth(double ewma, double sample, double alpha, int n) {
    return n <= 1 ? sample : ewma + alpha * (sample - ewma);
  }
  void PublishGauges() const;

  Options options_;
  int quality_samples_ = 0;
  int io_samples_ = 0;
  double recall_ewma_ = 1.0;
  double precision_ewma_ = 1.0;
  double io_ewma_ = 1.0;
  bool recall_drifted_ = false;
  bool precision_drifted_ = false;
  bool io_drifted_ = false;
  std::vector<Event> events_;
};

}  // namespace pdr

#endif  // PDR_OBS_AUDIT_H_
