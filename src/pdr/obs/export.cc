#include "pdr/obs/export.h"

#include <cinttypes>
#include <cstring>

namespace pdr {
namespace {

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; clamp to null.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    out->append("null");
  } else {
    out->append(buf);
  }
}

void AppendInt(int64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  out->append(JsonEscape(s));
  out->push_back('"');
}

void AppendSpan(const SpanNode& span, std::string* out) {
  out->append("{\"name\":");
  AppendQuoted(span.name, out);
  out->append(",\"start_ns\":");
  AppendInt(span.start_ns, out);
  out->append(",\"dur_ms\":");
  AppendDouble(span.duration_ms(), out);
  out->append(",\"tid\":");
  AppendInt(span.thread_id, out);
  if (!span.int_attrs.empty() || !span.num_attrs.empty()) {
    out->append(",\"attrs\":{");
    bool first = true;
    for (const auto& [k, v] : span.int_attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendQuoted(k, out);
      out->push_back(':');
      AppendInt(v, out);
    }
    for (const auto& [k, v] : span.num_attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendQuoted(k, out);
      out->push_back(':');
      AppendDouble(v, out);
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendSpan(*span.children[i], out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string SpanToJson(const SpanNode& span) {
  std::string out;
  AppendSpan(span, &out);
  return out;
}

std::string TraceJsonLine(const SpanNode& root) {
  std::string out = "{\"type\":\"trace\",\"span\":";
  AppendSpan(root, &out);
  out.push_back('}');
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) : path_(path) {
  if (path == "-") {
    file_ = stdout;
  } else {
    file_ = std::fopen(path.c_str(), "a");
    owns_file_ = true;
  }
}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (owns_file_) std::fclose(file_);
  }
}

void JsonlWriter::WriteLine(std::string_view json) {
  if (file_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

void JsonlWriter::Flush() {
  if (file_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

void JsonlTraceSink::OnTrace(std::unique_ptr<SpanNode> root) {
  if (writer_ != nullptr && root != nullptr) {
    writer_->WriteLine(TraceJsonLine(*root));
  }
}

void WriteMetricsJsonl(JsonlWriter* writer,
                       const MetricsRegistry::Snapshot& snap) {
  if (writer == nullptr || !writer->ok()) return;
  std::string line;
  for (const auto& c : snap.counters) {
    line = "{\"type\":\"counter\",\"name\":";
    AppendQuoted(c.name, &line);
    line.append(",\"value\":");
    AppendInt(c.value, &line);
    line.push_back('}');
    writer->WriteLine(line);
  }
  for (const auto& g : snap.gauges) {
    line = "{\"type\":\"gauge\",\"name\":";
    AppendQuoted(g.name, &line);
    line.append(",\"value\":");
    AppendDouble(g.value, &line);
    line.push_back('}');
    writer->WriteLine(line);
  }
  for (const auto& h : snap.histograms) {
    line = "{\"type\":\"histogram\",\"name\":";
    AppendQuoted(h.name, &line);
    line.append(",\"count\":");
    AppendInt(h.stat.count(), &line);
    line.append(",\"mean\":");
    AppendDouble(h.stat.mean(), &line);
    line.append(",\"min\":");
    AppendDouble(h.stat.min(), &line);
    line.append(",\"max\":");
    AppendDouble(h.stat.max(), &line);
    line.append(",\"stddev\":");
    AppendDouble(h.stat.stddev(), &line);
    line.append(",\"p50\":");
    AppendDouble(h.Percentile(50), &line);
    line.append(",\"p95\":");
    AppendDouble(h.Percentile(95), &line);
    line.append(",\"p99\":");
    AppendDouble(h.Percentile(99), &line);
    line.append(",\"buckets\":[");
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first) line.push_back(',');
      first = false;
      line.append("{\"ge\":");
      AppendDouble(Histogram::BucketLowerBound(i), &line);
      line.append(",\"count\":");
      AppendInt(h.buckets[i], &line);
      line.push_back('}');
    }
    line.append("]}");
    writer->WriteLine(line);
  }
  writer->Flush();
}

void DumpMetrics(std::FILE* out, const MetricsRegistry::Snapshot& snap) {
  if (!snap.counters.empty()) {
    std::fprintf(out, "-- counters --\n");
    for (const auto& c : snap.counters) {
      std::fprintf(out, "  %-44s %14" PRId64 "\n", c.name.c_str(), c.value);
    }
  }
  if (!snap.gauges.empty()) {
    std::fprintf(out, "-- gauges --\n");
    for (const auto& g : snap.gauges) {
      std::fprintf(out, "  %-44s %14.6g\n", g.name.c_str(), g.value);
    }
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "-- histograms --\n");
    for (const auto& h : snap.histograms) {
      std::fprintf(out,
                   "  %-44s n=%" PRId64 " mean=%.4g min=%.4g max=%.4g "
                   "sd=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
                   h.name.c_str(), h.stat.count(), h.stat.mean(),
                   h.stat.min(), h.stat.max(), h.stat.stddev(),
                   h.Percentile(50), h.Percentile(95), h.Percentile(99));
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        std::fprintf(out, "    >= %-12.4g %10" PRId64 "\n",
                     Histogram::BucketLowerBound(i), h.buckets[i]);
      }
    }
  }
  if (snap.Empty()) std::fprintf(out, "(no metrics registered)\n");
}

namespace {

void DumpSpanIndented(std::FILE* out, const SpanNode& span, int depth,
                      int64_t parent_tid) {
  std::fprintf(out, "%*s%s  %.3f ms", depth * 2, "", span.name.c_str(),
               span.duration_ms());
  // Cross-thread children (parallel query stages) are the only case where
  // the id adds signal; same-thread subtrees keep the old compact form.
  if (span.thread_id != parent_tid) {
    std::fprintf(out, "  tid=%" PRId64, span.thread_id);
  }
  for (const auto& [k, v] : span.int_attrs) {
    std::fprintf(out, "  %s=%" PRId64, k.c_str(), v);
  }
  for (const auto& [k, v] : span.num_attrs) {
    std::fprintf(out, "  %s=%.4g", k.c_str(), v);
  }
  std::fprintf(out, "\n");
  for (const auto& child : span.children) {
    DumpSpanIndented(out, *child, depth + 1, span.thread_id);
  }
}

}  // namespace

void DumpSpanTree(std::FILE* out, const SpanNode& root) {
  DumpSpanIndented(out, root, 0, root.thread_id);
}

}  // namespace pdr
