#include "pdr/obs/export.h"

#include <cinttypes>
#include <cstring>

namespace pdr {
namespace {

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; clamp to null.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    out->append("null");
  } else {
    out->append(buf);
  }
}

void AppendInt(int64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  out->append(JsonEscape(s));
  out->push_back('"');
}

void AppendSpan(const SpanNode& span, std::string* out) {
  out->append("{\"name\":");
  AppendQuoted(span.name, out);
  out->append(",\"start_ns\":");
  AppendInt(span.start_ns, out);
  out->append(",\"dur_ms\":");
  AppendDouble(span.duration_ms(), out);
  out->append(",\"tid\":");
  AppendInt(span.thread_id, out);
  if (!span.int_attrs.empty() || !span.num_attrs.empty()) {
    out->append(",\"attrs\":{");
    bool first = true;
    for (const auto& [k, v] : span.int_attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendQuoted(k, out);
      out->push_back(':');
      AppendInt(v, out);
    }
    for (const auto& [k, v] : span.num_attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendQuoted(k, out);
      out->push_back(':');
      AppendDouble(v, out);
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendSpan(*span.children[i], out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string SpanToJson(const SpanNode& span) {
  std::string out;
  AppendSpan(span, &out);
  return out;
}

std::string TraceJsonLine(const SpanNode& root) {
  std::string out = "{\"type\":\"trace\",\"span\":";
  AppendSpan(root, &out);
  out.push_back('}');
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path) : path_(path) {
  if (path == "-") {
    file_ = stdout;
  } else {
    file_ = std::fopen(path.c_str(), "a");
    owns_file_ = true;
  }
}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (owns_file_) std::fclose(file_);
  }
}

void JsonlWriter::WriteLine(std::string_view json) {
  if (file_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

void JsonlWriter::Flush() {
  if (file_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fflush(file_);
}

void JsonlTraceSink::OnTrace(std::unique_ptr<SpanNode> root) {
  if (writer_ != nullptr && root != nullptr) {
    writer_->WriteLine(TraceJsonLine(*root));
  }
}

void WriteMetricsJsonl(JsonlWriter* writer,
                       const MetricsRegistry::Snapshot& snap) {
  if (writer == nullptr || !writer->ok()) return;
  std::string line;
  for (const auto& c : snap.counters) {
    line = "{\"type\":\"counter\",\"name\":";
    AppendQuoted(c.name, &line);
    line.append(",\"value\":");
    AppendInt(c.value, &line);
    line.push_back('}');
    writer->WriteLine(line);
  }
  for (const auto& g : snap.gauges) {
    line = "{\"type\":\"gauge\",\"name\":";
    AppendQuoted(g.name, &line);
    line.append(",\"value\":");
    AppendDouble(g.value, &line);
    line.push_back('}');
    writer->WriteLine(line);
  }
  for (const auto& h : snap.histograms) {
    line = "{\"type\":\"histogram\",\"name\":";
    AppendQuoted(h.name, &line);
    line.append(",\"count\":");
    AppendInt(h.stat.count(), &line);
    line.append(",\"mean\":");
    AppendDouble(h.stat.mean(), &line);
    line.append(",\"min\":");
    AppendDouble(h.stat.min(), &line);
    line.append(",\"max\":");
    AppendDouble(h.stat.max(), &line);
    line.append(",\"stddev\":");
    AppendDouble(h.stat.stddev(), &line);
    line.append(",\"p50\":");
    AppendDouble(h.Percentile(50), &line);
    line.append(",\"p95\":");
    AppendDouble(h.Percentile(95), &line);
    line.append(",\"p99\":");
    AppendDouble(h.Percentile(99), &line);
    line.append(",\"buckets\":[");
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first) line.push_back(',');
      first = false;
      line.append("{\"ge\":");
      AppendDouble(Histogram::BucketLowerBound(i), &line);
      line.append(",\"count\":");
      AppendInt(h.buckets[i], &line);
      line.push_back('}');
    }
    line.append("]}");
    writer->WriteLine(line);
  }
  writer->Flush();
}

void DumpMetrics(std::FILE* out, const MetricsRegistry::Snapshot& snap) {
  if (!snap.counters.empty()) {
    std::fprintf(out, "-- counters --\n");
    for (const auto& c : snap.counters) {
      std::fprintf(out, "  %-44s %14" PRId64 "\n", c.name.c_str(), c.value);
    }
  }
  if (!snap.gauges.empty()) {
    std::fprintf(out, "-- gauges --\n");
    for (const auto& g : snap.gauges) {
      std::fprintf(out, "  %-44s %14.6g\n", g.name.c_str(), g.value);
    }
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "-- histograms --\n");
    for (const auto& h : snap.histograms) {
      std::fprintf(out,
                   "  %-44s n=%" PRId64 " mean=%.4g min=%.4g max=%.4g "
                   "sd=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
                   h.name.c_str(), h.stat.count(), h.stat.mean(),
                   h.stat.min(), h.stat.max(), h.stat.stddev(),
                   h.Percentile(50), h.Percentile(95), h.Percentile(99));
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        std::fprintf(out, "    >= %-12.4g %10" PRId64 "\n",
                     Histogram::BucketLowerBound(i), h.buckets[i]);
      }
    }
  }
  if (snap.Empty()) std::fprintf(out, "(no metrics registered)\n");
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:], label names the same minus
// the colon; everything else (the registry's dots, mostly) becomes '_'.
std::string PromName(std::string_view raw, bool allow_colon) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' ||
                    (allow_colon && c == ':');
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PromEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Splits a registry name — `base` or `base{key="value",...}` as WithLabel
// writes it — into a sanitized base and a re-encoded label list (no
// braces; empty when unlabeled). Backslash escapes in stored values are
// undone and re-applied so the output escaping is canonical.
void SplitPromName(const std::string& name, std::string* base,
                   std::string* labels) {
  labels->clear();
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = PromName(name, /*allow_colon=*/true);
    return;
  }
  *base = PromName(std::string_view(name).substr(0, brace),
                   /*allow_colon=*/true);
  size_t i = brace + 1;
  const size_t end = name.size() - 1;
  while (i < end) {
    if (name[i] == ',' || name[i] == ' ') {
      ++i;
      continue;
    }
    const size_t eq = name.find('=', i);
    if (eq == std::string::npos || eq + 1 >= end || name[eq + 1] != '"') {
      break;  // malformed block: keep what parsed so far
    }
    const std::string key =
        PromName(std::string_view(name).substr(i, eq - i),
                 /*allow_colon=*/false);
    std::string value;
    size_t j = eq + 2;
    while (j < end && name[j] != '"') {
      if (name[j] == '\\' && j + 1 < end) ++j;  // stored escape
      value.push_back(name[j]);
      ++j;
    }
    if (!labels->empty()) labels->push_back(',');
    labels->append(key);
    labels->append("=\"");
    labels->append(PromEscape(value));
    labels->push_back('"');
    i = j + 1;
  }
}

void PromSeries(std::FILE* out, const std::string& base,
                const std::string& labels, const char* extra_label,
                const std::string& value) {
  if (labels.empty() && extra_label == nullptr) {
    std::fprintf(out, "%s %s\n", base.c_str(), value.c_str());
    return;
  }
  std::fprintf(out, "%s{%s%s%s} %s\n", base.c_str(), labels.c_str(),
               !labels.empty() && extra_label != nullptr ? "," : "",
               extra_label != nullptr ? extra_label : "", value.c_str());
}

std::string PromDouble(double v) {
  // Prometheus accepts +Inf/-Inf/NaN spellings, unlike JSON.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  if (std::strstr(buf, "inf") != nullptr) {
    return buf[0] == '-' ? "-Inf" : "+Inf";
  }
  if (std::strstr(buf, "nan") != nullptr) return "NaN";
  return buf;
}

}  // namespace

void WriteMetricsPrometheus(std::FILE* out,
                            const MetricsRegistry::Snapshot& snap) {
  // The snapshot is sorted by full registry name, so labeled series of one
  // family are adjacent: emit the # TYPE header when the base changes.
  std::string base, labels, last_base;
  const auto TypeLine = [&](const char* type) {
    if (base == last_base) return;
    std::fprintf(out, "# TYPE %s %s\n", base.c_str(), type);
    last_base = base;
  };
  for (const auto& c : snap.counters) {
    SplitPromName(c.name, &base, &labels);
    TypeLine("counter");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, c.value);
    PromSeries(out, base, labels, nullptr, buf);
  }
  for (const auto& g : snap.gauges) {
    SplitPromName(g.name, &base, &labels);
    TypeLine("gauge");
    PromSeries(out, base, labels, nullptr, PromDouble(g.value));
  }
  for (const auto& h : snap.histograms) {
    SplitPromName(h.name, &base, &labels);
    TypeLine("summary");
    PromSeries(out, base, labels, "quantile=\"0.5\"",
               PromDouble(h.Percentile(50)));
    PromSeries(out, base, labels, "quantile=\"0.95\"",
               PromDouble(h.Percentile(95)));
    PromSeries(out, base, labels, "quantile=\"0.99\"",
               PromDouble(h.Percentile(99)));
    PromSeries(out, base + "_sum", labels, nullptr,
               PromDouble(h.stat.mean() * static_cast<double>(h.stat.count())));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, h.stat.count());
    PromSeries(out, base + "_count", labels, nullptr, buf);
  }
}

namespace {

void DumpSpanIndented(std::FILE* out, const SpanNode& span, int depth,
                      int64_t parent_tid) {
  std::fprintf(out, "%*s%s  %.3f ms", depth * 2, "", span.name.c_str(),
               span.duration_ms());
  // Cross-thread children (parallel query stages) are the only case where
  // the id adds signal; same-thread subtrees keep the old compact form.
  if (span.thread_id != parent_tid) {
    std::fprintf(out, "  tid=%" PRId64, span.thread_id);
  }
  for (const auto& [k, v] : span.int_attrs) {
    std::fprintf(out, "  %s=%" PRId64, k.c_str(), v);
  }
  for (const auto& [k, v] : span.num_attrs) {
    std::fprintf(out, "  %s=%.4g", k.c_str(), v);
  }
  std::fprintf(out, "\n");
  for (const auto& child : span.children) {
    DumpSpanIndented(out, *child, depth + 1, span.thread_id);
  }
}

}  // namespace

void DumpSpanTree(std::FILE* out, const SpanNode& root) {
  DumpSpanIndented(out, root, 0, root.thread_id);
}

}  // namespace pdr
