#include "pdr/obs/explain.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "pdr/obs/export.h"
#include "pdr/resilience/executor.h"

namespace pdr {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

std::string ExplainRecord::ToJson() const {
  std::string out = "{\"type\":\"explain\"";
  AppendF(&out, ",\"query_id\":%u", query_id);
  AppendF(&out, ",\"q_t\":%d", q_t);
  AppendF(&out, ",\"rho\":\"%a\",\"l\":\"%a\"", rho, l);
  AppendF(&out, ",\"tier\":\"%s\"", AnswerTierName(tier));
  AppendF(&out, ",\"downgrade_reason\":\"%s\"",
          DowngradeReasonName(downgrade_reason));
  AppendF(&out, ",\"timed_out\":%s", timed_out ? "true" : "false");
  AppendF(&out, ",\"budget_ms\":%.3f,\"elapsed_ms\":%.3f", budget_ms,
          elapsed_ms);
  if (epoch > 0) AppendF(&out, ",\"epoch\":%" PRIu64, epoch);
  out.append(",\"stages\":[");
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendF(&out, "{\"name\":\"%s\",\"spent_ms\":%.3f,\"completed\":%s}",
            JsonEscape(stages[i].name).c_str(), stages[i].spent_ms,
            stages[i].completed ? "true" : "false");
  }
  out.push_back(']');
  AppendF(&out,
          ",\"accepted_cells\":%" PRId64 ",\"rejected_cells\":%" PRId64
          ",\"candidate_cells\":%" PRId64,
          accepted_cells, rejected_cells, candidate_cells);
  AppendF(&out,
          ",\"objects_fetched\":%" PRId64 ",\"dense_rects\":%" PRId64,
          objects_fetched, dense_rects);
  AppendF(&out,
          ",\"pages_read_physical\":%" PRId64
          ",\"pages_read_logical\":%" PRId64,
          pages_read_physical, pages_read_logical);
  AppendF(&out, ",\"bnb_nodes\":%" PRId64 ",\"bnb_pruned\":%" PRId64,
          bnb_nodes, bnb_pruned);
  AppendF(&out, ",\"audited\":%s", audited ? "true" : "false");
  if (audited) {
    AppendF(&out, ",\"audit_precision\":%.6f,\"audit_recall\":%.6f",
            audit_precision, audit_recall);
  }
  out.push_back('}');
  return out;
}

std::string ExplainRecord::ToText() const {
  std::string out;
  AppendF(&out, "EXPLAIN query %u  (q_t=%d rho=%g l=%g)\n", query_id, q_t,
          rho, l);
  AppendF(&out, "  tier:     %s%s", AnswerTierName(tier),
          timed_out ? "  [deadline missed]" : "");
  out.push_back('\n');
  if (downgrade_reason != DowngradeReason::kNone) {
    AppendF(&out, "  reason:   %s\n", DowngradeReasonName(downgrade_reason));
  }
  AppendF(&out, "  budget:   %.3f ms   elapsed: %.3f ms\n", budget_ms,
          elapsed_ms);
  if (epoch > 0) {
    AppendF(&out, "  epoch:    %" PRIu64 "  (MVCC snapshot read)\n", epoch);
  }
  out.append("  stages:\n");
  for (const ExplainStage& s : stages) {
    AppendF(&out, "    %-10s %9.3f ms%s\n", s.name.c_str(), s.spent_ms,
            s.completed ? "" : "  (cancelled)");
  }
  AppendF(&out,
          "  filter:   accepted=%" PRId64 " rejected=%" PRId64
          " candidates=%" PRId64 "\n",
          accepted_cells, rejected_cells, candidate_cells);
  AppendF(&out,
          "  refine:   objects=%" PRId64 " dense_rects=%" PRId64
          "  pages: physical=%" PRId64 " logical=%" PRId64 "\n",
          objects_fetched, dense_rects, pages_read_physical,
          pages_read_logical);
  if (bnb_nodes > 0) {
    AppendF(&out, "  bnb:      nodes=%" PRId64 " pruned=%" PRId64 "\n",
            bnb_nodes, bnb_pruned);
  }
  if (audited) {
    AppendF(&out, "  audit:    precision=%.4f recall=%.4f\n",
            audit_precision, audit_recall);
  }
  return out;
}

std::string ExplainRecord::DeterministicSignature() const {
  std::string out;
  AppendF(&out, "q_t=%d;rho=%a;l=%a;tier=%s;reason=%s;stages=", q_t, rho, l,
          AnswerTierName(tier), DowngradeReasonName(downgrade_reason));
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out.push_back('+');
    out.append(stages[i].name);
  }
  AppendF(&out,
          ";filter=%" PRId64 "/%" PRId64 "/%" PRId64 ";objects=%" PRId64
          ";rects=%" PRId64 ";bnb=%" PRId64 "/%" PRId64,
          accepted_cells, rejected_cells, candidate_cells, objects_fetched,
          dense_rects, bnb_nodes, bnb_pruned);
  return out;
}

}  // namespace pdr
