// Exporters for the obs layer: a JSONL (one JSON object per line) sink
// for traces and metrics, plus human-readable dumps.
//
// JSONL schema (stable; consumed by scripts and the bench tooling):
//
//   {"type":"trace","span":{"name":...,"start_ns":N,"dur_ms":F,
//                           "attrs":{...},"children":[...]}}
//   {"type":"counter","name":...,"value":N}
//   {"type":"gauge","name":...,"value":F}
//   {"type":"histogram","name":...,"count":N,"mean":F,"min":F,"max":F,
//    "stddev":F,"buckets":[{"ge":F,"count":N},...]}   (nonzero buckets)
//   {"type":"series","bench":...,"values":{col:F,...}} (bench_util rows)
//
// Span attributes merge the int and double attribute lists into one JSON
// object; ints are emitted without a decimal point so exact I/O counts
// survive the round-trip.

#ifndef PDR_OBS_EXPORT_H_
#define PDR_OBS_EXPORT_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "pdr/obs/registry.h"
#include "pdr/obs/trace.h"

namespace pdr {

/// `s` with JSON string escapes applied (no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// The nested JSON object for a span tree (no trailing newline).
std::string SpanToJson(const SpanNode& span);

/// The full `{"type":"trace",...}` line for a finished root span.
std::string TraceJsonLine(const SpanNode& root);

/// Thread-safe line-oriented writer over a stdio FILE.
class JsonlWriter {
 public:
  /// Opens `path` for appending ("-" means stdout). Check ok().
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  int64_t lines_written() const { return lines_; }

  /// Appends one line (newline added). No-op when !ok().
  void WriteLine(std::string_view json);
  void Flush();

 private:
  std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  int64_t lines_ = 0;
};

/// TraceSink that writes every finished trace as one JSONL line.
class JsonlTraceSink : public TraceSink {
 public:
  /// Writes through `writer` (not owned; must outlive the sink).
  explicit JsonlTraceSink(JsonlWriter* writer) : writer_(writer) {}

  void OnTrace(std::unique_ptr<SpanNode> root) override;

 private:
  JsonlWriter* writer_;
};

/// Writes one JSONL line per metric in `snap`.
void WriteMetricsJsonl(JsonlWriter* writer,
                       const MetricsRegistry::Snapshot& snap);

/// Human-readable metrics dump (sorted, aligned; histograms show summary
/// stats and their nonzero buckets).
void DumpMetrics(std::FILE* out, const MetricsRegistry::Snapshot& snap);

/// Prometheus text exposition (version 0.0.4) of `snap`. Registry names
/// are dots (`pdr.monitor.ticks`), optionally carrying one WithLabel()
/// block (`...{reason="deadline"}`); here the base is sanitized to the
/// Prometheus charset [a-zA-Z0-9_:] and the label block re-emitted with
/// `"`/`\`/newline escaped. Histograms export as summaries (quantile
/// series + _sum/_count). One # TYPE line per metric family.
void WriteMetricsPrometheus(std::FILE* out,
                            const MetricsRegistry::Snapshot& snap);

/// Human-readable indented span tree.
void DumpSpanTree(std::FILE* out, const SpanNode& root);

}  // namespace pdr

#endif  // PDR_OBS_EXPORT_H_
