// SLO burn-rate monitoring over the serving loop.
//
// An SLO is a target fraction of "good" outcomes (e.g. 99% of ticks answer
// at full quality within the latency bound); the error budget is the
// allowed bad fraction (1%). The *burn rate* of a window is
// bad_fraction / error_budget: burn 1.0 spends the budget exactly on
// schedule, burn 10 exhausts it 10x too fast. Following the multi-window
// practice, an alert requires BOTH a short window (fast detection) and a
// long window (noise suppression) to burn above the threshold — a single
// slow tick cannot alert, and a sustained regression alerts within
// short_window samples.
//
// Four independent signals are tracked, one window pair each:
//
//   latency   elapsed_ms above Options::latency_slo_ms (off when 0)
//   degraded  answered below kExact (the tier mix)
//   shed      rejected at admission control
//   audit     sampled shadow-audit verdict below the precision/recall floor
//
// Windows are sample-counted, not wall-clocked, so tests are deterministic
// and a stalled loop cannot silently "recover" by aging samples out.
//
// On a newly raised alert the monitor (1) bumps the labeled
// pdr.slo.alerts counter, (2) triggers a flight-recorder dump
// (Trigger::kOnSloAlert) so the incident's event window is preserved,
// (3) optionally halves an attached AdmissionController's bound to shed
// load at the door, and (4) invokes the user alert hook. When every
// signal's long-window burn drops below 1.0 the alert latch releases and
// the admission bound is restored.
//
// The monitor is deliberately single-threaded (one per serving loop),
// like ShadowAuditor; feed it from the thread that owns the loop.

#ifndef PDR_OBS_SLO_H_
#define PDR_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pdr {

class AdmissionController;
enum class AnswerTier : uint8_t;
struct TieredResult;

class SloMonitor {
 public:
  struct Options {
    /// Latency SLO bound in ms; 0 disables the latency signal.
    double latency_slo_ms = 0.0;
    /// Target good fraction; error budget = 1 - target.
    double target = 0.99;
    /// Window sizes in samples (short detects, long confirms).
    int short_window = 32;
    int long_window = 256;
    /// Alert when a signal's short AND long burn reach this multiple of
    /// the budget.
    double burn_alert = 2.0;
    /// Audit-signal floors (a sampled verdict below either is "bad").
    double min_audit_precision = 0.5;
    double min_audit_recall = 0.9;
    /// Divisor applied to the attached admission bound while alerting.
    int admission_backoff = 2;
  };

  /// One raised alert (also kept in alerts() for inspection).
  struct Alert {
    std::string signal;    ///< "latency" | "degraded" | "shed" | "audit"
    double burn_short = 0.0;
    double burn_long = 0.0;
    int64_t sample = 0;    ///< index of the sample that tripped it
  };

  explicit SloMonitor(const Options& options);

  /// Feeds one completed serving decision (shed ticks included).
  void OnResult(const TieredResult& result);
  void OnSample(double elapsed_ms, AnswerTier tier, bool shed);

  /// Feeds one sampled shadow-audit verdict.
  void OnAudit(double precision, double recall);

  /// Attaches the admission controller whose bound the monitor may tighten
  /// while alerting (not owned; nullptr detaches and restores the bound).
  void SetAdmission(AdmissionController* admission);

  /// Called once per newly raised alert (after the built-in responses).
  void SetAlertHook(std::function<void(const Alert&)> hook) {
    hook_ = std::move(hook);
  }

  /// True while any signal's alert latch is raised.
  bool alerting() const;

  /// Burn rates of one signal's current windows.
  double BurnShort(const std::string& signal) const;
  double BurnLong(const std::string& signal) const;

  const std::vector<Alert>& alerts() const { return alerts_; }
  int64_t samples() const { return samples_; }
  const Options& options() const { return options_; }

 private:
  /// Fixed-capacity rolling window of bad-bits.
  struct Window {
    explicit Window(int capacity)
        : capacity(capacity < 1 ? 1 : capacity) {}
    void Push(bool bad);
    double BadFraction() const;

    int capacity;
    std::vector<uint8_t> bits;
    int next = 0;
    int64_t count = 0;  ///< total pushes (window is full when >= capacity)
    int64_t bad = 0;    ///< bad bits currently inside the window
  };

  struct Signal {
    Signal(const char* name, const Options& options)
        : name(name),
          short_w(options.short_window),
          long_w(options.long_window) {}
    const char* name;
    Window short_w;
    Window long_w;
    bool latched = false;
  };

  void Feed(Signal* signal, bool bad);
  void Raise(Signal* signal);
  void MaybeRecover();
  const Signal* Find(const std::string& name) const;
  double Budget() const { return 1.0 - options_.target; }

  Options options_;
  std::vector<Signal> signals_;
  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> hook_;
  AdmissionController* admission_ = nullptr;
  int admission_normal_bound_ = 0;  ///< bound to restore on recovery
  bool admission_tightened_ = false;
  int64_t samples_ = 0;
};

}  // namespace pdr

#endif  // PDR_OBS_SLO_H_
