// Continuous monitoring report mode.
//
// MonitorReporter turns the metrics the audit/calibration layer publishes
// into an operator-facing stream: at a configurable tick interval it
// snapshots the metrics registry, diffs it against the previous window,
// and emits one {"type":"audit_window",...} JSONL line holding the
// window's PA quality (precision/recall means), cost-calibration ratio,
// latency percentiles, and storage-layer state. Window means are exact —
// Welford sums are subtractable even though variance/min/max are not —
// and window percentiles come from bucket-count deltas via
// HistogramPercentile.
//
// Every window also feeds the EWMA drift detector; a threshold crossing
// emits a {"type":"drift",...} JSONL event (once per signal) and latches
// the reporter's drift flag, which `pdr_tool monitor --fail-on-drift`
// turns into a nonzero exit.
//
// At end of run, WriteFinalReport prints the human-readable summary:
// audit verdict aggregates, a percentile table of every registry
// histogram (p50/p95/p99 interpolated within log2 buckets), and the drift
// state.

#ifndef PDR_OBS_REPORT_H_
#define PDR_OBS_REPORT_H_

#include <cstdio>
#include <optional>
#include <string>

#include "pdr/obs/audit.h"
#include "pdr/obs/export.h"
#include "pdr/obs/registry.h"

namespace pdr {

/// One histogram's activity inside a report window (snapshot delta).
struct WindowHistogram {
  int64_t count = 0;   ///< observations inside the window
  double mean = 0.0;   ///< exact window mean (sum delta / count delta)
  double p50 = 0.0;    ///< interpolated from the window's bucket deltas
  double p95 = 0.0;
  double p99 = 0.0;
};

class MonitorReporter {
 public:
  struct Options {
    Tick interval = 10;  ///< ticks per report window (cadence is the
                         ///< caller's; this is recorded in the output)
    EwmaDriftDetector::Options drift{};
  };

  /// JSONL goes through `writer` (not owned; may be null for report-only
  /// use — windows are still aggregated and drift still tracked).
  MonitorReporter(JsonlWriter* writer, const Options& options)
      : writer_(writer), options_(options), drift_(options.drift) {}

  /// Closes the current window at tick `now`: snapshots the registry,
  /// diffs it against the previous window's snapshot, emits the
  /// audit_window JSONL line, and feeds the drift detector.
  void EmitWindow(Tick now);

  bool drift_seen() const { return drift_.drifted(); }
  const EwmaDriftDetector& drift() const { return drift_; }
  int64_t windows() const { return windows_; }

  /// Human-readable end-of-run report (aggregates over the whole run).
  void WriteFinalReport(std::FILE* out) const;

  /// Window delta of one named histogram between two snapshots (exposed
  /// for tests; returns nullopt when the histogram saw no observations).
  static std::optional<WindowHistogram> DiffHistogram(
      const MetricsRegistry::Snapshot& now,
      const MetricsRegistry::Snapshot& prev, const std::string& name);

  /// Window delta of one named counter between two snapshots.
  static int64_t DiffCounter(const MetricsRegistry::Snapshot& now,
                             const MetricsRegistry::Snapshot& prev,
                             const std::string& name);

 private:
  JsonlWriter* writer_;
  Options options_;
  EwmaDriftDetector drift_;
  MetricsRegistry::Snapshot prev_;
  Tick window_start_ = 0;
  int64_t windows_ = 0;
};

}  // namespace pdr

#endif  // PDR_OBS_REPORT_H_
