#include "pdr/obs/audit.h"

#include <algorithm>
#include <cmath>

#include "pdr/core/metrics.h"
#include "pdr/histogram/filter.h"
#include "pdr/obs/flight_recorder.h"

namespace pdr {
namespace {

struct AuditMetrics {
  Counter& sampled;
  Counter& disagreements;
  Histogram& precision;
  Histogram& recall;
  Histogram& false_accept;
  Histogram& false_reject;
  Histogram& density_err;
  Histogram& replay_ms;
  Gauge& last_precision;
  Gauge& last_recall;

  static AuditMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static AuditMetrics m{
        reg.GetCounter("pdr.audit.sampled"),
        reg.GetCounter("pdr.audit.disagreements"),
        reg.GetHistogram("pdr.audit.precision"),
        reg.GetHistogram("pdr.audit.recall"),
        reg.GetHistogram("pdr.audit.false_accept_frac"),
        reg.GetHistogram("pdr.audit.false_reject_frac"),
        reg.GetHistogram("pdr.audit.max_density_err"),
        reg.GetHistogram("pdr.audit.fr_replay_ms"),
        reg.GetGauge("pdr.audit.last_precision"),
        reg.GetGauge("pdr.audit.last_recall"),
    };
    return m;
  }
};

struct CalibMetrics {
  Counter& observations;
  Histogram& candidate_ratio;
  Histogram& objects_ratio;
  Histogram& io_ratio;
  Gauge& candidate_ewma;
  Gauge& io_ewma;

  static CalibMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static CalibMetrics m{
        reg.GetCounter("pdr.calib.observations"),
        reg.GetHistogram("pdr.calib.candidate_ratio"),
        reg.GetHistogram("pdr.calib.objects_ratio"),
        reg.GetHistogram("pdr.calib.io_ratio"),
        reg.GetGauge("pdr.calib.candidate_ratio_ewma"),
        reg.GetGauge("pdr.calib.io_ratio_ewma"),
    };
    return m;
  }
};

/// actual/predicted with both sides floored at 1 so empty-prediction and
/// empty-actual queries produce a finite, comparable ratio.
double GuardedRatio(double actual, double predicted) {
  return std::max(actual, 1.0) / std::max(predicted, 1.0);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShadowAuditor

std::optional<AuditVerdict> ShadowAuditor::MaybeAudit(
    Tick q_t, double rho, const Region& pa_region) {
  if (!ShouldSample()) return std::nullopt;
  return Audit(q_t, rho, pa_region);
}

AuditVerdict ShadowAuditor::Audit(Tick q_t, double rho,
                                  const Region& pa_region) {
  TraceSpan span("audit.shadow");
  AuditVerdict verdict;
  verdict.q_t = q_t;
  verdict.rho = rho;
  verdict.l = options_.l;

  CostPrediction prediction;
  if (calibrator_ != nullptr) {
    prediction = calibrator_->Predict(q_t, rho, options_.l);
  }

  Timer timer;
  const FrEngine::QueryResult exact = fr_->Query(q_t, rho, options_.l);
  verdict.fr_replay_ms = timer.ElapsedMillis();
  verdict.fr_io_reads = exact.cost.io.physical_reads;

  if (calibrator_ != nullptr) calibrator_->Observe(prediction, exact);

  const double domain_edge = fr_->options().extent;
  const AccuracyMetrics acc =
      CompareRegions(exact.region, pa_region, domain_edge * domain_edge);
  verdict.fr_area = acc.truth_area;
  verdict.pa_area = acc.reported_area;
  verdict.overlap_area = acc.overlap_area;
  verdict.precision =
      verdict.pa_area > 0 ? verdict.overlap_area / verdict.pa_area : 1.0;
  verdict.recall =
      verdict.fr_area > 0 ? verdict.overlap_area / verdict.fr_area : 1.0;
  verdict.false_accept_frac = acc.false_positive_ratio;
  verdict.false_reject_frac = acc.false_negative_ratio;

  if (oracle_ != nullptr && approx_density_ && !verdict.Agrees()) {
    ProbeDensityError(q_t, pa_region, exact.region, &verdict);
  }

  ++audited_;
  Publish(verdict);

  if (span.active()) {
    span.SetAttr("q_t", static_cast<int64_t>(q_t));
    span.SetAttr("rho", rho);
    span.SetAttr("precision", verdict.precision);
    span.SetAttr("recall", verdict.recall);
    span.SetAttr("false_accept_frac", verdict.false_accept_frac);
    span.SetAttr("false_reject_frac", verdict.false_reject_frac);
    span.SetAttr("max_density_err", verdict.max_density_err);
    span.SetAttr("fr_replay_ms", verdict.fr_replay_ms);
    span.SetAttr("fr_io_reads", verdict.fr_io_reads);
  }
  return verdict;
}

void ShadowAuditor::ProbeDensityError(Tick q_t, const Region& pa_region,
                                      const Region& fr_region,
                                      AuditVerdict* verdict) {
  // Disagreement cells: where exactly one of the two answers claims
  // density. Probe a small lattice inside each rectangle of both
  // differences; the worst |PA − oracle| gap there is the pointwise error
  // the area metrics cannot see.
  const Region false_rejects = RegionDifference(fr_region, pa_region);
  const Region false_accepts = RegionDifference(pa_region, fr_region);
  const int g = std::max(1, options_.probe_grid);
  int budget = std::max(1, options_.max_probes);
  double worst = 0.0;
  int probes = 0;
  for (const Region* diff : {&false_rejects, &false_accepts}) {
    for (const Rect& r : diff->rects()) {
      for (int iy = 0; iy < g && budget > 0; ++iy) {
        for (int ix = 0; ix < g && budget > 0; ++ix) {
          const Vec2 p{r.x_lo + (ix + 0.5) * r.Width() / g,
                       r.y_lo + (iy + 0.5) * r.Height() / g};
          const double exact = oracle_->PointDensity(q_t, p, options_.l);
          const double approx = approx_density_(q_t, p);
          worst = std::max(worst, std::fabs(approx - exact));
          ++probes;
          --budget;
        }
      }
    }
  }
  verdict->max_density_err = worst;
  verdict->density_probes = probes;
}

void ShadowAuditor::Publish(const AuditVerdict& verdict) {
  AuditMetrics& m = AuditMetrics::Get();
  m.sampled.Increment();
  if (!verdict.Agrees()) m.disagreements.Increment();
  m.precision.Observe(verdict.precision);
  m.recall.Observe(verdict.recall);
  m.false_accept.Observe(verdict.false_accept_frac);
  m.false_reject.Observe(verdict.false_reject_frac);
  m.density_err.Observe(verdict.max_density_err);
  m.replay_ms.Observe(verdict.fr_replay_ms);
  m.last_precision.Set(verdict.precision);
  m.last_recall.Set(verdict.recall);
}

// ---------------------------------------------------------------------------
// CostCalibrator

CostPrediction CostCalibrator::Predict(Tick q_t, double rho,
                                       double l) const {
  CostPrediction pred;
  const DensityHistogram& dh = fr_->histogram();
  const Grid& grid = dh.grid();
  const std::vector<DensityHistogram::Counter>& slice = dh.Slice(q_t);
  const int m = grid.cells_per_side();
  const double cell_edge = grid.cell_edge();
  const double n_min = static_cast<double>(MinObjectsForDensity(rho, l));
  // The prediction mirrors the filter's neighborhood structure
  // (conservative / expansive block sums), then widens the candidate band
  // by a Poisson slack z·sqrt(count) on each bound: cells whose histogram
  // counts sit that close to the threshold can flip class under the
  // object motion the slice cannot resolve. z = 0 reproduces the filter's
  // classification exactly.
  const int cons_hw = ConservativeHalfWidth(l, cell_edge);
  const int exp_hw = ExpansiveHalfWidth(l, cell_edge);

  // Inclusive 2-D prefix sums over the slice (same trick as FilterCells).
  std::vector<double> ps(static_cast<size_t>(m + 1) * (m + 1), 0.0);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      ps[static_cast<size_t>(r + 1) * (m + 1) + (c + 1)] =
          static_cast<double>(slice[grid.FlatIndex(c, r)]) +
          ps[static_cast<size_t>(r) * (m + 1) + (c + 1)] +
          ps[static_cast<size_t>(r + 1) * (m + 1) + c] -
          ps[static_cast<size_t>(r) * (m + 1) + c];
    }
  }
  const auto block_sum = [&ps, m](int c, int r, int hw) {
    const int c0 = std::max(0, c - hw), c1 = std::min(m - 1, c + hw);
    const int r0 = std::max(0, r - hw), r1 = std::min(m - 1, r + hw);
    return ps[static_cast<size_t>(r1 + 1) * (m + 1) + (c1 + 1)] -
           ps[static_cast<size_t>(r0) * (m + 1) + (c1 + 1)] -
           ps[static_cast<size_t>(r1 + 1) * (m + 1) + c0] +
           ps[static_cast<size_t>(r0) * (m + 1) + c0];
  };

  // Coarse index shape: average indexed entries per allocated page. The
  // +1 page per candidate approximates the root-to-leaf descent.
  const ObjectIndex& index = fr_->index();
  const double entries_per_page =
      index.node_count() > 0
          ? std::max(1.0, static_cast<double>(index.size()) /
                              static_cast<double>(index.node_count()))
          : 1.0;
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      const double cons = cons_hw >= 0 ? block_sum(c, r, cons_hw) : 0.0;
      const double expn = block_sum(c, r, exp_hw);
      if (cons - options_.z * std::sqrt(cons + 1.0) >= n_min) {
        pred.accepted_cells += 1.0;
      } else if (expn + options_.z * std::sqrt(expn + 1.0) < n_min) {
        pred.rejected_cells += 1.0;
      } else {
        pred.candidate_cells += 1.0;
        // The refinement range query for a candidate cell fetches the
        // objects of the cell grown by l/2 — the expansive window is the
        // histogram's best estimate of that count.
        pred.objects_fetched += expn;
        pred.io_reads += 1.0 + expn / entries_per_page;
      }
    }
  }
  // Charged at the physical rate, this is the cold-cache bound; the
  // calibration ratio itself compares logical page touches (cache state
  // is the FR engine's business, not the model's).
  pred.io_ms = pred.io_reads * fr_->options().io_ms;
  return pred;
}

void CostCalibrator::Observe(const CostPrediction& prediction,
                             const FrEngine::QueryResult& actual) {
  if (!PdrObs::Enabled()) return;
  ++observations_;
  const double candidate_ratio = GuardedRatio(
      static_cast<double>(actual.candidate_cells), prediction.candidate_cells);
  const double objects_ratio = GuardedRatio(
      static_cast<double>(actual.objects_fetched), prediction.objects_fetched);
  const double io_ratio = GuardedRatio(
      static_cast<double>(actual.cost.io.logical_reads), prediction.io_reads);
  candidate_ewma_ = Smooth(candidate_ewma_, candidate_ratio);
  io_ewma_ = Smooth(io_ewma_, io_ratio);

  CalibMetrics& m = CalibMetrics::Get();
  m.observations.Increment();
  m.candidate_ratio.Observe(candidate_ratio);
  m.objects_ratio.Observe(objects_ratio);
  m.io_ratio.Observe(io_ratio);
  m.candidate_ewma.Set(candidate_ewma_);
  m.io_ewma.Set(io_ewma_);
}

// ---------------------------------------------------------------------------
// EwmaDriftDetector

bool EwmaDriftDetector::ObserveQuality(Tick tick, double precision,
                                       double recall) {
  ++quality_samples_;
  recall_ewma_ =
      Smooth(recall_ewma_, recall, options_.alpha, quality_samples_);
  precision_ewma_ =
      Smooth(precision_ewma_, precision, options_.alpha, quality_samples_);
  bool raised = false;
  if (quality_samples_ >= options_.warmup) {
    if (!recall_drifted_ && recall_ewma_ < options_.min_recall) {
      recall_drifted_ = true;
      events_.push_back({tick, "recall", recall_ewma_, options_.min_recall});
      raised = true;
    }
    if (!precision_drifted_ && precision_ewma_ < options_.min_precision) {
      precision_drifted_ = true;
      events_.push_back(
          {tick, "precision", precision_ewma_, options_.min_precision});
      raised = true;
    }
  }
  if (raised) {
    // Preserve the event window around the drift before it scrolls away.
    FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDrift,
                                         "drift_quality");
  }
  PublishGauges();
  return raised;
}

bool EwmaDriftDetector::ObserveIoRatio(Tick tick, double ratio) {
  ++io_samples_;
  io_ewma_ = Smooth(io_ewma_, ratio, options_.alpha, io_samples_);
  bool raised = false;
  if (io_samples_ >= options_.warmup && !io_drifted_) {
    if (io_ewma_ < options_.io_ratio_lo) {
      io_drifted_ = true;
      events_.push_back({tick, "io_ratio", io_ewma_, options_.io_ratio_lo});
      raised = true;
    } else if (io_ewma_ > options_.io_ratio_hi) {
      io_drifted_ = true;
      events_.push_back({tick, "io_ratio", io_ewma_, options_.io_ratio_hi});
      raised = true;
    }
  }
  if (raised) {
    FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDrift,
                                         "drift_io");
  }
  PublishGauges();
  return raised;
}

void EwmaDriftDetector::PublishGauges() const {
  if (!PdrObs::Enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Gauge& recall_g = reg.GetGauge("pdr.drift.recall_ewma");
  static Gauge& precision_g = reg.GetGauge("pdr.drift.precision_ewma");
  static Gauge& io_g = reg.GetGauge("pdr.drift.io_ratio_ewma");
  static Gauge& flag_g = reg.GetGauge("pdr.drift.flagged");
  recall_g.Set(recall_ewma_);
  precision_g.Set(precision_ewma_);
  io_g.Set(io_ewma_);
  flag_g.Set(drifted() ? 1.0 : 0.0);
}

void EwmaDriftDetector::Reset() {
  quality_samples_ = 0;
  io_samples_ = 0;
  recall_ewma_ = 1.0;
  precision_ewma_ = 1.0;
  io_ewma_ = 1.0;
  recall_drifted_ = false;
  precision_drifted_ = false;
  io_drifted_ = false;
  events_.clear();
}

}  // namespace pdr
