// Workload capture: a checksummed, append-only log of everything a
// serving process consumed and produced, tick by tick.
//
// The monitoring setting is a continuous stream — object updates arrive
// every tick, the standing PDR query re-evaluates every K ticks — and
// until now none of it was recorded: a flight-recorder dump tells an
// operator what the last few thousand micro-events did, but gives no way
// to *re-run* the offending workload offline. The workload log closes
// that gap. One file captures
//
//   * a header record: the full serving configuration (dataset shape,
//     standing-query parameters, resilience policy, engine geometry,
//     execution policy) so a replay can rebuild the exact engine;
//   * one updates record per tick that received updates: the raw
//     UpdateEvent batch, doubles serialized as bit patterns;
//   * one tick record per PdrMonitor evaluation: (now, q_t), the achieved
//     tier, and two result digests — a 64-bit FNV hash of the answer
//     transcript (region rectangles as raw IEEE-754 bit patterns,
//     filter/refine/BnB counts) and
//     a hash of the EXPLAIN DeterministicSignature. Both cover exactly
//     the thread-count-invariant logical answer, never wall times or
//     physical I/O, so a digest comparison is a bit-identity check.
//
// Framing follows the WAL's discipline: every record is
// {magic, type, payload_len, fnv1a64 checksum} + payload, append-only.
// Loading tolerates a *torn tail* (a process died mid-append: the intact
// prefix is returned with torn_tail set) but rejects interior corruption
// (a checksum mismatch with the full record present throws — a log that
// lies is worse than no log).
//
// Repro bundles: ArmBundles() registers the recorder with the flight
// recorder's dump hook, so the moment an incident dump fires (deadline
// miss, drift, CrashError, SLO alert) a self-contained directory is
// written next to it: MANIFEST.json + workload.wlog (the full captured
// prefix — replay needs every update from tick 0 to rebuild engine state
// bit-exactly) + the dump pair. `pdr_tool replay --bundle DIR` re-drives
// the incident from nothing but that directory.
//
// Layering: lives under pdr/obs/ with the rest of the observability
// layer but depends on PdrMonitor, so (like audit.cc and explain.cc) it
// compiles into pdr_core, not pdr_obs.

#ifndef PDR_OBS_WORKLOAD_LOG_H_
#define PDR_OBS_WORKLOAD_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "pdr/core/monitor.h"
#include "pdr/mobility/object.h"
#include "pdr/obs/flight_recorder.h"

namespace pdr {

/// Everything a replay needs to rebuild the serving process: dataset
/// shape, standing query, resilience policy, engine geometry, execution
/// policy. Serialized into the log's first record.
struct WorkloadLogHeader {
  // Dataset shape (echoed from WorkloadConfig; the updates themselves
  // ride in the log, so this is provenance + engine sizing input).
  double extent = 1000.0;
  int32_t num_objects = 0;
  int32_t max_update_interval = 60;  ///< U
  uint64_t seed = 0;
  int32_t duration = 0;

  // Standing query.
  double rho = 0.0;
  double l = 30.0;
  int32_t lookahead = 0;
  int32_t every = 1;  ///< monitor cadence (ticks between evaluations)

  // Resilience policy. A deadline makes tier selection wall-clock
  // dependent, so verify-mode replays of deadline-bounded captures are
  // best-effort; rung toggles (enable_exact/enable_approx) stay exact.
  double deadline_ms = 0.0;
  int32_t max_inflight = 0;
  uint8_t degrade = 1;
  uint8_t enable_exact = 1;
  uint8_t enable_approx = 1;
  uint8_t has_fallback = 0;  ///< a PA fallback engine was attached
  /// An FFT whole-plane engine was attached as the ladder's middle rung.
  /// Written as optional trailing header fields (with fft_grid), so logs
  /// captured before the FFT rung keep their exact bytes and goldens.
  uint8_t has_fft = 0;
  int32_t fft_grid = 128;  ///< raster resolution m (cells per axis)

  // Execution policy (threads as ExecPolicy encodes it: 1 = serial,
  // 0 = hardware concurrency).
  int32_t threads = 1;

  // Engine geometry (FrEngine + fallback PaEngine options).
  int32_t histogram_side = 100;
  int32_t horizon = 120;
  uint64_t buffer_pages = 256;
  double io_ms = 10.0;
  uint8_t index = 0;  ///< IndexKind as uint8
  int32_t poly_side = 10;
  int32_t degree = 5;
  int32_t eval_grid = 1000;
};

/// One recorded PdrMonitor evaluation: query parameters, achieved tier,
/// and the two result digests the replayer re-derives and compares.
struct WorkloadTickRecord {
  Tick now = 0;
  Tick q_t = 0;
  uint8_t tier = 0;
  uint8_t downgrade_reason = 0;
  uint8_t shed = 0;
  double elapsed_ms = 0.0;  ///< informational; never part of a digest
  uint64_t digest = 0;      ///< answer-transcript hash (TickDigest)
  uint64_t sig_hash = 0;    ///< ExplainRecord::DeterministicSignature hash
  /// MVCC epoch the answer was pinned to (0 = serialized OnTick). Written
  /// as an optional trailing field, so serialized logs keep their exact
  /// pre-MVCC bytes.
  uint64_t epoch = 0;
};

/// FNV-64 over the delta's answer transcript: q_t, rho, l, tier,
/// downgrade reason, shed flag, every rectangle of current / appeared /
/// vanished / maybe_region as raw IEEE-754 bit patterns (bitwise
/// identity without per-rect formatting cost), and the logical work
/// counts (filter cells, objects fetched, dense rects, BnB nodes).
/// Thread-count invariant by the row-major merge guarantee; excludes wall
/// times, physical/logical I/O, and query ids.
uint64_t TickDigest(const PdrMonitor::Delta& delta);

/// FNV-64 over explain.DeterministicSignature().
uint64_t ExplainSignatureHash(const ExplainRecord& explain);

/// Appends records to a workload log file. Throws std::runtime_error when
/// the file cannot be opened or written.
class WorkloadRecorder {
 public:
  struct Stats {
    int64_t ticks = 0;          ///< tick records written
    int64_t update_batches = 0; ///< updates records written
    int64_t updates = 0;        ///< individual UpdateEvents recorded
    int64_t bytes = 0;          ///< file bytes written so far
    int64_t bundles = 0;        ///< repro bundles written
  };

  WorkloadRecorder(const std::string& path, const WorkloadLogHeader& header);
  ~WorkloadRecorder();

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  /// Records the update batch applied at `now`. Empty batches are skipped
  /// (the replayer advances engine clocks from record ticks alone).
  void OnUpdates(Tick now, const std::vector<UpdateEvent>& updates);

  /// Concurrent-capture variant: records the batch the writer is about to
  /// commit as MVCC epoch `epoch`. Unlike OnUpdates, empty batches are
  /// written too — the replayer re-derives one reference answer per epoch,
  /// so every epoch needs its updates record even when nothing moved.
  /// PdrMonitor::ApplyUpdates calls this *before* the epoch commits, so
  /// tick records pinned to an epoch always follow its updates record.
  void OnCommit(Tick now, const std::vector<UpdateEvent>& updates,
                uint64_t epoch);

  /// Computes the delta's digests, appends a tick record, and returns it.
  /// PdrMonitor calls this from OnTick / RunSnapshotQuery when attached
  /// via SetRecorder. Thread-safe: concurrent readers and the writer may
  /// interleave record appends (each append is atomic under a mutex).
  WorkloadTickRecord RecordTick(const PdrMonitor::Delta& delta);

  /// Flushes buffered bytes to the OS (bundle writers call this before
  /// copying the log; a clean close happens in the destructor).
  void Flush();

  const std::string& path() const { return path_; }
  const WorkloadLogHeader& header() const { return header_; }
  const Stats& stats() const { return stats_; }

  // --- repro bundles -------------------------------------------------------

  /// Arms incident bundles: creates `bundle_dir` and installs the flight
  /// recorder's dump hook so every successful incident dump also writes a
  /// self-contained bundle (manifest + workload log + dump pair) under it.
  /// The hook is removed by DisarmBundles() / the destructor.
  void ArmBundles(const std::string& bundle_dir);
  void DisarmBundles();

  /// Writes one bundle directory now ("<bundle_dir>/bundle_NNN_<reason>"):
  /// MANIFEST.json, workload.wlog (the log so far), and — when `dump.ok`
  /// — the dump pair copied in. Returns the directory path. Throws on
  /// I/O failure (the dump hook swallows the throw; explicit callers see
  /// it).
  std::string WriteBundle(const std::string& reason,
                          const FlightRecorder::DumpInfo& dump);

 private:
  void AppendRecord(uint8_t type, const std::string& payload);

  std::string path_;
  WorkloadLogHeader header_;
  std::FILE* file_ = nullptr;
  // Serializes appends from concurrent capture (one writer thread plus
  // any number of RunSnapshotQuery readers share one recorder).
  std::mutex mu_;
  Stats stats_;
  std::string bundle_dir_;  ///< empty: bundles disarmed
  bool hook_installed_ = false;
};

/// One parsed log record, in file order.
struct WorkloadLogRecord {
  enum class Kind : uint8_t { kUpdates = 2, kTick = 3 };
  Kind kind = Kind::kUpdates;
  Tick tick = 0;                     ///< kUpdates: receipt tick
  std::vector<UpdateEvent> updates;  ///< kUpdates payload
  WorkloadTickRecord query;          ///< kTick payload
  /// kUpdates: MVCC epoch the batch committed as (0 = serialized capture
  /// via OnUpdates). Any record with epoch > 0 marks the log concurrent.
  uint64_t epoch = 0;
};

/// A fully loaded workload log.
struct WorkloadLog {
  WorkloadLogHeader header;
  std::vector<WorkloadLogRecord> records;
  bool torn_tail = false;  ///< the file ended mid-record; prefix returned
  int64_t bytes = 0;       ///< bytes consumed (excludes any torn tail)

  /// Parses `path`. Tolerates a truncated final record (torn_tail = true);
  /// throws std::runtime_error on a missing file, bad magic/version, a
  /// checksum mismatch on a fully present record, or a missing header.
  static WorkloadLog Load(const std::string& path);
};

/// Locates the workload log inside a repro bundle directory (the
/// "workload.wlog" written by WriteBundle). Throws when absent.
std::string BundleWorkloadLog(const std::string& bundle_dir);

}  // namespace pdr

#endif  // PDR_OBS_WORKLOAD_LOG_H_
