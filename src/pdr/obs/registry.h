// Process-wide metrics registry: named counters, gauges, and latency
// histograms, cheap enough to stay on in hot paths and safe to touch from
// the monitor / simulation loops concurrently.
//
//   * Counter — monotonically increasing int64 (one relaxed atomic add).
//   * Gauge   — last-write-wins double (one relaxed atomic store).
//   * Histogram — log-scaled buckets (powers of two over [kMinValue, inf))
//     plus Welford summary stats (RunningStat) under a per-histogram mutex;
//     intended for per-query / per-stage latencies, not per-page events.
//
// Lookup is by name under a registry mutex; hot paths cache the returned
// reference once (function-local static), so steady-state cost is the
// atomic op alone. Handles are stable for the process lifetime — the
// registry is never destroyed.
//
// Every mutating entry point early-outs on !PdrObs::Enabled(), which is a
// compile-time constant `false` when the layer is configured out.

#ifndef PDR_OBS_REGISTRY_H_
#define PDR_OBS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pdr/common/stats.h"
#include "pdr/obs/obs.h"

namespace pdr {

class Counter {
 public:
  void Add(int64_t n = 1) {
    if (!PdrObs::Enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void Set(double v) {
    if (!PdrObs::Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Latency/size histogram: bucket i >= 1 counts values in
/// [kMinValue * 2^(i-1), kMinValue * 2^i); bucket 0 counts values below
/// kMinValue. With kMinValue = 1e-3 (1 us when observing milliseconds)
/// and 48 buckets the range covers ~4.5 years of milliseconds.
class Histogram {
 public:
  static constexpr int kBuckets = 48;
  static constexpr double kMinValue = 1e-3;

  /// Inclusive lower bound of bucket `i` (0 for bucket 0).
  static double BucketLowerBound(int i);
  /// Bucket index for value `v`.
  static int BucketOf(double v);

  void Observe(double v);

  RunningStat stat() const;
  std::array<int64_t, kBuckets> buckets() const;

  /// Interpolated percentile estimate (p in [0, 100]): locates the bucket
  /// holding the requested rank and interpolates linearly inside it, then
  /// clamps to the observed [min, max]. Returns 0 with no observations.
  double Percentile(double p) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  RunningStat stat_;
  std::array<int64_t, kBuckets> buckets_{};
};

/// Interpolated percentile (p in [0, 100]) over raw log2 bucket counts
/// (shared by Histogram, snapshot entries, and windowed bucket deltas).
/// The rank is located by cumulative count and mapped linearly within its
/// bucket's [lower, upper) value range. Returns 0 when the counts are
/// empty.
double HistogramPercentile(
    const std::array<int64_t, Histogram::kBuckets>& buckets, double p);

/// Builds a labeled metric name: WithLabel("pdr.x", "reason", "deadline")
/// == `pdr.x{reason="deadline"}`. The JSONL and human exporters print the
/// convention verbatim; the Prometheus exporter (export.h) parses it back
/// into a real label pair. Quotes and backslashes in `value` are escaped.
std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value);

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  /// Finds or creates the metric. The returned reference is stable for
  /// the process lifetime; cache it at hot call sites:
  ///   static Counter& c = MetricsRegistry::Global().GetCounter("x");
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Point-in-time copy of every registered metric, sorted by name.
  struct Snapshot {
    struct CounterEntry {
      std::string name;
      int64_t value = 0;
    };
    struct GaugeEntry {
      std::string name;
      double value = 0.0;
    };
    struct HistogramEntry {
      std::string name;
      RunningStat stat;
      std::array<int64_t, Histogram::kBuckets> buckets{};

      /// Interpolated percentile of the snapshotted distribution, clamped
      /// to the observed [min, max].
      double Percentile(double p) const;
    };
    std::vector<CounterEntry> counters;
    std::vector<GaugeEntry> gauges;
    std::vector<HistogramEntry> histograms;

    bool Empty() const {
      return counters.empty() && gauges.empty() && histograms.empty();
    }
  };
  Snapshot TakeSnapshot() const;

  /// Zeroes every metric (registrations survive; handles stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pdr

#endif  // PDR_OBS_REGISTRY_H_
