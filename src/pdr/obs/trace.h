// Scoped query-path tracing.
//
// A TraceSpan is an RAII scope marker: constructing one while tracing is
// active (PdrObs::TracingActive()) opens a node in the calling thread's
// current trace tree; destruction closes it. Nesting follows the stack, so
// the FR query path assembles
//
//   fr.query
//   ├─ fr.filter
//   └─ fr.cell (per candidate)
//      ├─ tpr.range_query | bx.range_query
//      └─ sweep.cell
//
// without any explicit plumbing between layers. Spans carry wall time
// (steady-clock start + duration), the opening thread's id, and named
// numeric attributes (I/O deltas, cell ids, counter values). When the
// outermost span of a thread closes, the finished tree is handed to the
// installed TraceSink.
//
// Cost: with no sink installed the TraceSpan constructor is one relaxed
// atomic load and the destructor a null check; when the layer is compiled
// out both fold away entirely.
//
// Threading: the span stack is thread-local (each thread builds its own
// trees); sinks receive trees from any thread and must be thread-safe.
//
// Parallel query stages fan work out to pool threads but should still
// assemble ONE tree per query, so a span can be adopted across threads:
// capture TraceContext::Current() on the submitting thread, and install a
// TraceContextScope on the worker — spans the worker opens then attach as
// children of the captured span (each tagged with its own thread id).
// Attachment to a shared parent is mutex-guarded, so any number of workers
// may add children to the same open span concurrently. The captured span
// must remain open until every adopting worker has finished (the fork/join
// query stages guarantee this by joining before the span closes).

#ifndef PDR_OBS_TRACE_H_
#define PDR_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pdr/obs/obs.h"

namespace pdr {

/// One closed span: a node of a finished (or in-flight) trace tree.
struct SpanNode {
  std::string name;
  int64_t start_ns = 0;     ///< steady-clock time at open
  int64_t duration_ns = 0;  ///< close - open
  int64_t thread_id = 0;    ///< small per-process id of the opening thread
  std::vector<std::pair<std::string, int64_t>> int_attrs;
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::unique_ptr<SpanNode>> children;

  double duration_ms() const {
    return static_cast<double>(duration_ns) / 1e6;
  }
  int64_t end_ns() const { return start_ns + duration_ns; }

  /// First attribute with this key, or `fallback`.
  int64_t IntAttrOr(std::string_view key, int64_t fallback) const;
  double NumAttrOr(std::string_view key, double fallback) const;

  /// Recursive node count (including this one).
  size_t TreeSize() const;
};

/// Receives finished root spans. Implementations must be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTrace(std::unique_ptr<SpanNode> root) = 0;
};

/// Accumulates finished traces in memory (tests, consistency checks).
class CollectingSink : public TraceSink {
 public:
  void OnTrace(std::unique_ptr<SpanNode> root) override;

  size_t size() const;
  std::vector<std::unique_ptr<SpanNode>> TakeAll();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanNode>> traces_;
};

class TraceSpan {
 public:
  /// Opens a span when tracing is active; otherwise a no-op shell.
  explicit TraceSpan(std::string_view name) {
    if (PdrObs::TracingActive()) Open(name);
  }
  ~TraceSpan() {
    if (node_ != nullptr) Close();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is recording (tracing was active at open).
  bool active() const { return node_ != nullptr; }

  /// Attaches a named value; no-op when inactive.
  void SetAttr(std::string_view key, int64_t v);
  void SetAttr(std::string_view key, double v);
  void SetAttr(std::string_view key, int v) {
    SetAttr(key, static_cast<int64_t>(v));
  }

 private:
  void Open(std::string_view name);
  void Close();

  SpanNode* node_ = nullptr;    // owned by the thread's tree while open
  SpanNode* parent_ = nullptr;  // chain parent on THIS thread (may be null)
  SpanNode* prev_current_ = nullptr;  // thread's innermost span at open
};

/// Copyable handle to the calling thread's innermost open span, for handing
/// to worker threads (see the file comment). Invalid (and harmless) when no
/// span is open or tracing is inactive.
class TraceContext {
 public:
  TraceContext() = default;

  /// The calling thread's innermost open span (its own or adopted).
  static TraceContext Current();

  bool valid() const { return node_ != nullptr; }

 private:
  friend class TraceContextScope;
  explicit TraceContext(SpanNode* node) : node_(node) {}

  SpanNode* node_ = nullptr;
};

/// RAII adoption of a cross-thread parent span: while in scope, spans the
/// calling thread opens attach as children of the context's span instead of
/// starting a new tree. Scopes nest; an invalid context detaches the thread
/// from any surrounding adoption (its spans form their own trees again).
/// The adopted span must stay open for the lifetime of the scope.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  SpanNode* saved_current_ = nullptr;
  SpanNode* saved_adopted_ = nullptr;
};

}  // namespace pdr

#endif  // PDR_OBS_TRACE_H_
