#include "pdr/obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "pdr/obs/clock.h"
#include "pdr/obs/export.h"
#include "pdr/obs/registry.h"

namespace pdr {
namespace {

// Slot layout: four uint64 words per event.
//   w0 = ts_ns
//   w1 = qid<<32 | tid<<16 | kind<<8 | 1   (the low 1 marks a written slot)
//   w2 = a, w3 = b
constexpr size_t kWordsPerSlot = 4;

uint64_t PackMeta(uint32_t qid, uint16_t tid, FrEvent kind) {
  return (static_cast<uint64_t>(qid) << 32) | (static_cast<uint64_t>(tid) << 16) |
         (static_cast<uint64_t>(kind) << 8) | 1u;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

thread_local uint32_t tls_query_id = 0;

}  // namespace

const char* FrEventName(FrEvent kind) {
  switch (kind) {
    case FrEvent::kQueryBegin: return "query_begin";
    case FrEvent::kQueryEnd: return "query_end";
    case FrEvent::kFilter: return "filter";
    case FrEvent::kCellBegin: return "cell_begin";
    case FrEvent::kCellEnd: return "cell_end";
    case FrEvent::kSweep: return "sweep";
    case FrEvent::kBnbPrune: return "bnb_prune";
    case FrEvent::kPageFault: return "page_fault";
    case FrEvent::kWalAppend: return "wal_append";
    case FrEvent::kTierEnter: return "tier_enter";
    case FrEvent::kCancelled: return "cancelled";
    case FrEvent::kShed: return "shed";
    case FrEvent::kTaskRun: return "task_run";
    case FrEvent::kCheckpoint: return "checkpoint";
    case FrEvent::kFftField: return "fft_field";
    case FrEvent::kCorruption: return "corruption";
  }
  return "unknown";
}

// One thread's event ring. The owner thread is the only writer; snapshot
// readers copy slots concurrently and validate against the head afterward.
struct FlightRecorder::State {
  struct Ring {
    explicit Ring(size_t capacity, uint16_t tid)
        : capacity(capacity),
          mask(capacity - 1),
          tid(tid),
          words(new std::atomic<uint64_t>[capacity * kWordsPerSlot]) {
      for (size_t i = 0; i < capacity * kWordsPerSlot; ++i) {
        words[i].store(0, std::memory_order_relaxed);
      }
    }

    const size_t capacity;
    const size_t mask;
    const uint16_t tid;
    std::atomic<uint64_t> head{0};  // total events ever written
    std::unique_ptr<std::atomic<uint64_t>[]> words;
  };

  // Returns the calling thread's ring for the current configuration,
  // registering one on first use (or after a Configure/Reset bumped the
  // generation).
  Ring* ThreadRing() {
    struct Tls {
      Ring* ring = nullptr;
      uint64_t gen = 0;
    };
    thread_local Tls tls;
    uint64_t gen = generation.load(std::memory_order_acquire);
    if (tls.ring == nullptr || tls.gen != gen) {
      std::lock_guard<std::mutex> lock(mu);
      // Re-read under the lock: Configure may have raced.
      gen = generation.load(std::memory_order_relaxed);
      auto ring = std::make_unique<Ring>(
          options.ring_capacity, static_cast<uint16_t>(rings.size()));
      tls.ring = ring.get();
      tls.gen = gen;
      rings.push_back(std::move(ring));
    }
    return tls.ring;
  }

  std::mutex mu;  // guards rings vector growth, options, and dump files
  std::vector<std::unique_ptr<Ring>> rings;
  Options options;
  DumpHook dump_hook;  // guarded by mu; copied out before invocation
  std::atomic<uint64_t> generation{1};
  std::atomic<int64_t> dump_seq{0};
};

#if PDR_OBS_COMPILED
namespace {
// The env default must live in enabled_'s own initializer, not the
// Global() constructor: Record() checks Enabled() *before* touching
// Global(), so a process that only records (a bench under
// PDR_FLIGHT_RECORDER=1) would otherwise never construct the singleton
// and the variable would silently do nothing.
bool EnabledFromEnv() {
  const char* env = std::getenv("PDR_FLIGHT_RECORDER");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}
}  // namespace

std::atomic<bool> FlightRecorder::enabled_{EnabledFromEnv()};
#endif

FlightRecorder::FlightRecorder() : state_(new State) {
  state_->options.ring_capacity = RoundUpPow2(state_->options.ring_capacity);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder;  // never destroyed
  return *recorder;
}

void FlightRecorder::SetEnabled(bool on) {
#if PDR_OBS_COMPILED
  enabled_.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void FlightRecorder::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->options = options;
  state_->options.ring_capacity =
      RoundUpPow2(std::max<size_t>(options.ring_capacity, 16));
  state_->rings.clear();
  state_->generation.fetch_add(1, std::memory_order_acq_rel);
}

FlightRecorder::Options FlightRecorder::options() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->options;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->rings.clear();
  state_->generation.fetch_add(1, std::memory_order_acq_rel);
  state_->dump_seq.store(0, std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::RecordImpl(FrEvent kind, int64_t a, int64_t b) {
  State::Ring* ring = state_->ThreadRing();
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const size_t base = (head & ring->mask) * kWordsPerSlot;
  ring->words[base + 0].store(static_cast<uint64_t>(ObsClock::NowNs()),
                              std::memory_order_relaxed);
  ring->words[base + 1].store(PackMeta(tls_query_id, ring->tid, kind),
                              std::memory_order_relaxed);
  ring->words[base + 2].store(static_cast<uint64_t>(a),
                              std::memory_order_relaxed);
  ring->words[base + 3].store(static_cast<uint64_t>(b),
                              std::memory_order_relaxed);
  // Publish: a reader that observes head > slot index also observes the
  // slot words (or detects the overwrite via the head re-read).
  ring->head.store(head + 1, std::memory_order_release);
}

uint32_t FlightRecorder::NextQueryId() {
  static std::atomic<uint32_t> next{1};
  uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint32_t FlightRecorder::CurrentQueryId() { return tls_query_id; }

FlightRecorder::QueryScope::QueryScope(uint32_t query_id) : prev_(tls_query_id) {
  tls_query_id = query_id;
}

FlightRecorder::QueryScope::~QueryScope() { tls_query_id = prev_; }

std::vector<MicroEvent> FlightRecorder::Snapshot() const {
  // Copy the ring pointer list under the lock; rings are append-only and
  // never freed before a generation bump, which also clears this list.
  std::vector<State::Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    rings.reserve(state_->rings.size());
    for (const auto& r : state_->rings) rings.push_back(r.get());
  }

  std::vector<MicroEvent> events;
  for (State::Ring* ring : rings) {
    const uint64_t h1 = ring->head.load(std::memory_order_acquire);
    const uint64_t count = std::min<uint64_t>(h1, ring->capacity);
    const uint64_t first = h1 - count;
    struct Raw {
      uint64_t index;
      uint64_t w[kWordsPerSlot];
    };
    std::vector<Raw> raw;
    raw.reserve(count);
    for (uint64_t i = first; i < h1; ++i) {
      Raw r;
      r.index = i;
      const size_t base = (i & ring->mask) * kWordsPerSlot;
      for (size_t w = 0; w < kWordsPerSlot; ++w) {
        r.w[w] = ring->words[base + w].load(std::memory_order_relaxed);
      }
      raw.push_back(r);
    }
    // Seqlock validation: any slot the producer may have advanced past
    // during the copy could hold a torn mix of old and new words — drop it.
    const uint64_t h2 = ring->head.load(std::memory_order_acquire);
    const uint64_t safe_first = h2 > ring->capacity ? h2 - ring->capacity : 0;
    for (const Raw& r : raw) {
      if (r.index < safe_first) continue;
      if ((r.w[1] & 0xff) != 1) continue;  // never written
      MicroEvent e;
      e.ts_ns = static_cast<int64_t>(r.w[0]);
      e.query_id = static_cast<uint32_t>(r.w[1] >> 32);
      e.tid = static_cast<uint16_t>((r.w[1] >> 16) & 0xffff);
      e.kind = static_cast<FrEvent>((r.w[1] >> 8) & 0xff);
      e.a = static_cast<int64_t>(r.w[2]);
      e.b = static_cast<int64_t>(r.w[3]);
      events.push_back(e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const MicroEvent& x, const MicroEvent& y) {
                     if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
                     return x.tid < y.tid;
                   });
  return events;
}

namespace {

// Appends `,"name":value` pairs decoding the two payload words per kind.
void AppendArgs(std::string* out, const MicroEvent& e) {
  auto add = [out](const char* name, int64_t v) {
    out->append(out->back() == '{' ? "\"" : ",\"");
    out->append(name);
    out->append("\":");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out->append(buf);
  };
  const int64_t hi_a = FlightRecorder::PackHi(e.a);
  const int64_t lo_a = FlightRecorder::PackLo(e.a);
  const int64_t hi_b = FlightRecorder::PackHi(e.b);
  const int64_t lo_b = FlightRecorder::PackLo(e.b);
  switch (e.kind) {
    case FrEvent::kQueryBegin: {
      add("q_t", e.a);
      double rho;
      static_assert(sizeof(rho) == sizeof(e.b));
      std::memcpy(&rho, &e.b, sizeof(rho));
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"rho\":\"%a\"", rho);
      out->append(buf);
      break;
    }
    case FrEvent::kQueryEnd:
      add("objects", e.a);
      add("dense_rects", e.b);
      break;
    case FrEvent::kFilter:
      add("accepted", hi_a);
      add("rejected", lo_a);
      add("candidates", e.b);
      break;
    case FrEvent::kCellBegin:
      add("col", hi_a);
      add("row", lo_a);
      break;
    case FrEvent::kCellEnd:
      add("col", hi_a);
      add("row", lo_a);
      add("objects", hi_b);
      add("rects", lo_b);
      break;
    case FrEvent::kSweep:
      add("x_strips", hi_a);
      add("y_sweeps", lo_a);
      add("y_strips", hi_b);
      add("rects", lo_b);
      break;
    case FrEvent::kBnbPrune:
      add("cell", e.a);
      add("pruned", e.b);
      break;
    case FrEvent::kPageFault:
      add("page", e.a);
      add("physical", e.b);
      break;
    case FrEvent::kWalAppend:
      add("lsn", e.a);
      add("bytes", e.b);
      break;
    case FrEvent::kTierEnter:
      add("tier", e.a);
      add("reason", e.b);
      break;
    case FrEvent::kCancelled:
      add("tier", e.a);
      add("elapsed_us", e.b);
      break;
    case FrEvent::kShed:
      add("tick", e.a);
      break;
    case FrEvent::kTaskRun:
      add("seq", e.a);
      break;
    case FrEvent::kCheckpoint:
      add("tick", e.a);
      add("pages", e.b);
      break;
    case FrEvent::kFftField:
      add("q_t", e.a);
      add("grid", e.b);
      break;
    case FrEvent::kCorruption:
      add("page", e.a);
      add("repaired", e.b);
      break;
  }
}

}  // namespace

std::string FlightRecorder::EventJson(const MicroEvent& event) {
  std::string out = "{\"type\":\"fr_event\",\"ts_ns\":";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 ",\"qid\":%u,\"tid\":%u,\"kind\":\"%s\",\"args\":{",
                event.ts_ns, event.query_id, event.tid,
                FrEventName(event.kind));
  out.append(buf);
  AppendArgs(&out, event);
  out.append("}}");
  return out;
}

void FlightRecorder::WriteJsonl(std::FILE* out,
                                const std::vector<MicroEvent>& events,
                                const std::string& reason, uint32_t query_id) {
  std::fprintf(out,
               "{\"type\":\"fr_dump\",\"reason\":\"%s\",\"query_id\":%u,"
               "\"events\":%zu}\n",
               JsonEscape(reason).c_str(), query_id, events.size());
  for (const MicroEvent& e : events) {
    std::string line = EventJson(e);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
}

void FlightRecorder::WriteChromeTrace(std::FILE* out,
                                      const std::vector<MicroEvent>& events,
                                      const std::string& reason,
                                      uint32_t query_id) {
  // Chrome trace-event JSON object form, loadable by Perfetto and
  // chrome://tracing. ts is microseconds; we keep nanosecond precision via
  // the fractional part.
  std::fprintf(out,
               "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"reason\":\"%s\","
               "\"query_id\":\"%u\"},\"traceEvents\":[",
               JsonEscape(reason).c_str(), query_id);
  bool first = true;
  auto emit = [&](const MicroEvent& e, char ph, const char* name) {
    std::fprintf(out,
                 "%s\n{\"name\":\"%s\",\"cat\":\"pdr\",\"ph\":\"%c\","
                 "\"ts\":%" PRId64 ".%03d,\"pid\":1,\"tid\":%u",
                 first ? "" : ",", name, ph, e.ts_ns / 1000,
                 static_cast<int>(e.ts_ns % 1000), e.tid);
    first = false;
    if (ph == 'i') {
      std::fputs(",\"s\":\"t\"", out);
    }
    if (ph != 'E') {
      std::string args = "{";
      AppendArgs(&args, e);
      args.push_back('}');
      std::fprintf(out, ",\"args\":{\"qid\":%u,\"detail\":%s}", e.query_id,
                   args.c_str());
    }
    std::fputc('}', out);
  };
  // Per-tid stacks so B/E pairs nest even when the ring overwrote one
  // side of a pair: an unmatched End degrades to an instant, and any
  // Begin still open at the end of the snapshot is closed at the final
  // timestamp.
  std::map<uint16_t, std::vector<FrEvent>> open;
  int64_t last_ts = events.empty() ? 0 : events.back().ts_ns;
  for (const MicroEvent& e : events) {
    switch (e.kind) {
      case FrEvent::kQueryBegin:
      case FrEvent::kCellBegin: {
        const char* name =
            e.kind == FrEvent::kQueryBegin ? "query" : "cell";
        emit(e, 'B', name);
        open[e.tid].push_back(e.kind);
        break;
      }
      case FrEvent::kQueryEnd:
      case FrEvent::kCellEnd: {
        const FrEvent match = e.kind == FrEvent::kQueryEnd
                                  ? FrEvent::kQueryBegin
                                  : FrEvent::kCellBegin;
        const char* name = e.kind == FrEvent::kQueryEnd ? "query" : "cell";
        auto& stack = open[e.tid];
        if (!stack.empty() && stack.back() == match) {
          emit(e, 'E', name);
          stack.pop_back();
        } else {
          emit(e, 'i', name);
        }
        break;
      }
      default:
        emit(e, 'i', FrEventName(e.kind));
        break;
    }
  }
  for (const auto& [tid, stack] : open) {
    for (size_t i = stack.size(); i > 0; --i) {
      MicroEvent close;
      close.ts_ns = last_ts;
      close.tid = tid;
      emit(close, 'E',
           stack[i - 1] == FrEvent::kQueryBegin ? "query" : "cell");
    }
  }
  std::fputs("\n]}\n", out);
}

FlightRecorder::DumpInfo FlightRecorder::Dump(const std::string& reason,
                                              uint32_t query_id) {
  DumpInfo info;
  Options opts = options();
  if (opts.dump_dir.empty()) return info;
  const int64_t seq = state_->dump_seq.fetch_add(1, std::memory_order_relaxed);
  if (seq >= opts.max_dumps) return info;

  std::vector<MicroEvent> events = Snapshot();

  char stem[256];
  if (query_id != 0) {
    std::snprintf(stem, sizeof(stem), "%s/fr_%03" PRId64 "_%s_q%u",
                  opts.dump_dir.c_str(), seq, reason.c_str(), query_id);
  } else {
    std::snprintf(stem, sizeof(stem), "%s/fr_%03" PRId64 "_%s",
                  opts.dump_dir.c_str(), seq, reason.c_str());
  }
  info.jsonl_path = std::string(stem) + ".jsonl";
  info.trace_path = std::string(stem) + ".trace.json";

  std::FILE* jsonl = std::fopen(info.jsonl_path.c_str(), "w");
  if (jsonl == nullptr) return info;
  WriteJsonl(jsonl, events, reason, query_id);
  info.jsonl_bytes = std::ftell(jsonl);
  std::fclose(jsonl);

  std::FILE* trace = std::fopen(info.trace_path.c_str(), "w");
  if (trace == nullptr) return info;
  WriteChromeTrace(trace, events, reason, query_id);
  info.trace_bytes = std::ftell(trace);
  std::fclose(trace);

  info.ok = true;
  info.events = events.size();
  dumps_.fetch_add(1, std::memory_order_relaxed);
  static Counter& dumps =
      MetricsRegistry::Global().GetCounter("pdr.flightrec.dumps");
  dumps.Increment();

  // Bundle seam: hand the finished dump to the registered hook (workload
  // recorder), outside the lock so the hook may re-enter recorder APIs.
  DumpHook hook;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    hook = state_->dump_hook;
  }
  if (hook) hook(info, reason);
  return info;
}

void FlightRecorder::SetDumpHook(DumpHook hook) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->dump_hook = std::move(hook);
}

void FlightRecorder::TriggerDump(Trigger trigger, const std::string& reason,
                                 uint32_t query_id) {
  if (!Enabled()) return;
  if ((options().triggers & trigger) == 0) return;
  Dump(reason, query_id);
}

}  // namespace pdr
