// Per-query EXPLAIN provenance.
//
// An ExplainRecord is the structured answer to "what did this query do":
// which tier answered, which ladder stages ran and what each spent, what
// the filter decided, how much refinement work followed, and what the
// shadow audit thought of the result when one sampled in. ResilientExecutor
// assembles one for every TieredResult; PdrMonitor forwards it on every
// Delta; `pdr_tool explain` renders it for operators.
//
// Determinism contract: DeterministicSignature() covers exactly the fields
// that are bit-identical across thread counts (the row-major merge
// guarantee) — the logical plan and its counts, never wall times, physical
// I/O (eviction order varies), or the process-wide query id. Serial and
// parallel runs of the same query must produce equal signatures;
// differential_test enforces this.
//
// Layering: lives under pdr/obs/ with the rest of the observability layer
// but is a leaf header (geometry + stdlib only) so resilience/executor.h
// can embed a record in TieredResult; explain.cc compiles into pdr_core.

#ifndef PDR_OBS_EXPLAIN_H_
#define PDR_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdr/common/geometry.h"

namespace pdr {

enum class AnswerTier : uint8_t;
enum class DowngradeReason : uint8_t;

/// One ladder stage the query actually ran, in execution order.
struct ExplainStage {
  /// "filter" | "refine" | "exact" (cancelled before its parts were
  /// attributed) | "fft" | "approx" | "histogram"
  std::string name;
  double spent_ms = 0.0;
  bool completed = true;  ///< false: cancelled mid-stage
};

/// The provenance of one deadline-bounded answer.
struct ExplainRecord {
  uint32_t query_id = 0;  ///< flight-recorder correlation key
  Tick q_t = 0;
  double rho = 0.0;
  double l = 0.0;

  AnswerTier tier{};                ///< tier that produced the answer
  DowngradeReason downgrade_reason{};  ///< kNone when tier == kExact
  bool timed_out = false;
  double budget_ms = 0.0;   ///< 0 = unbounded
  double elapsed_ms = 0.0;  ///< across all stages

  /// MVCC epoch the answer was read at (0 = live/serialized execution).
  /// Provenance only — a snapshot answer is bit-identical to serialized
  /// execution at the same epoch, so the signature excludes it.
  uint64_t epoch = 0;

  std::vector<ExplainStage> stages;

  // Filter decisions (from the rung that produced the answer; for a
  // cancelled exact rung these come from the histogram floor's own run).
  int64_t accepted_cells = 0;
  int64_t rejected_cells = 0;
  int64_t candidate_cells = 0;

  // Refinement work (exact tier).
  int64_t objects_fetched = 0;
  int64_t dense_rects = 0;

  // Pages touched by the answering rung.
  int64_t pages_read_physical = 0;
  int64_t pages_read_logical = 0;

  // Branch-and-bound work (approx tier).
  int64_t bnb_nodes = 0;
  int64_t bnb_pruned = 0;

  // Shadow-audit verdict when this answer was sampled.
  bool audited = false;
  double audit_precision = 1.0;
  double audit_recall = 1.0;

  /// One-line JSON object (stable field order; rho/l as hexfloat strings
  /// so records round-trip exactly).
  std::string ToJson() const;

  /// Multi-line human rendering (pdr_tool explain).
  std::string ToText() const;

  /// The thread-count-invariant logical plan: q_t, rho, l, tier, reason,
  /// stage names, filter counts, refinement counts, BnB counts. Excludes
  /// query_id, every wall time, and physical/logical I/O.
  std::string DeterministicSignature() const;
};

}  // namespace pdr

#endif  // PDR_OBS_EXPLAIN_H_
