// Flight recorder: always-on last-N-events diagnostics for the query path.
//
// Aggregate metrics answer "how is the system doing"; sampled trace spans
// answer "what does a typical query look like". Neither answers the
// operator's first question after a deadline miss, a drift alert, or a
// crash: "what exactly did THIS query do?" The flight recorder closes that
// gap: every instrumented layer (FrEngine, PaEngine, PlaneSweep,
// BufferPool, Wal, ResilientExecutor, ThreadPool, PdrMonitor) emits
// compact binary micro-events into lock-free per-thread ring buffers, and
// on an incident the rings are snapshotted into a JSONL dump plus a Chrome
// trace-event file (Perfetto-loadable), keyed by query id.
//
// Cost model:
//   * disabled (the default): Record() is one relaxed atomic load and a
//     predicted branch — instrumentation sites stay in hot paths.
//   * enabled: one ObsClock read plus four relaxed atomic stores into the
//     calling thread's own ring (~tens of ns). No locks, no allocation
//     after the ring is built; producers never contend with each other.
//   * compiled out (PDR_OBS=OFF): every site folds away entirely.
//
// Ring semantics: each thread owns one single-producer ring of
// `ring_capacity` events (a power of two). The head counter grows forever;
// a full ring overwrites its oldest slot, so the recorder always holds the
// most recent window of activity — exactly what an incident dump needs.
// Snapshot readers run concurrently with producers: events are stored as
// four relaxed-atomic words published by a release store of the head, and
// the reader re-reads the head after copying to discard any slot the
// producer may have overwritten mid-copy (seqlock-style), so snapshots
// contain only intact events.
//
// Query attribution: a QueryScope stamps the calling thread's events with
// a query id; ThreadPool propagates the submitting thread's id to workers
// the same way it propagates TraceContext, so one query's fan-out is one
// id across every thread.
//
// Dump triggers: deadline miss (ResilientExecutor), drift alert
// (MonitorReporter), CrashError (constructor hook), SLO burn-rate alert
// (SloMonitor), or an explicit Dump() call (pdr_tool explain --dump). Each
// trigger kind is armed independently via Options::triggers, dumps are
// capped by Options::max_dumps, and nothing is written unless
// Options::dump_dir is set.

#ifndef PDR_OBS_FLIGHT_RECORDER_H_
#define PDR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "pdr/obs/obs.h"

namespace pdr {

/// Micro-event vocabulary. Two int64 payloads per event; their meaning is
/// listed per kind here and decoded to named args in dumps (DESIGN.md §12
/// has the full field reference).
enum class FrEvent : uint8_t {
  kQueryBegin = 1,  ///< a = q_t, b = bit pattern of rho
  kQueryEnd,        ///< a = objects fetched, b = dense rects
  kFilter,          ///< a = accepted<<32 | rejected, b = candidates
  kCellBegin,       ///< a = col<<32 | row
  kCellEnd,         ///< a = col<<32 | row, b = objects<<32 | rects
  kSweep,           ///< a = x_strips<<32 | y_sweeps, b = y_strips<<32 | rects
  kBnbPrune,        ///< a = macro cell index, b = boxes pruned in the cell
  kPageFault,       ///< a = page id, b = 1 physical miss / 0 logical
  kWalAppend,       ///< a = lsn, b = bytes appended
  kTierEnter,       ///< a = AnswerTier entered, b = DowngradeReason
  kCancelled,       ///< a = AnswerTier cancelled, b = elapsed us
  kShed,            ///< a = tick shed at admission control
  kTaskRun,         ///< a = pool task sequence number
  kCheckpoint,      ///< a = tick, b = pages logged
  kFftField,        ///< a = q_t the density field was built for, b = grid m
  kCorruption,      ///< a = page id (-1 = checkpoint blob), b = 1 repaired
};

/// Stable lower-case name ("query_begin", "page_fault", ...).
const char* FrEventName(FrEvent kind);

/// One decoded ring event.
struct MicroEvent {
  int64_t ts_ns = 0;
  uint32_t query_id = 0;
  uint16_t tid = 0;  ///< small per-ring thread id
  FrEvent kind = FrEvent::kQueryBegin;
  int64_t a = 0;
  int64_t b = 0;
};

class FlightRecorder {
 public:
  /// Incident kinds that may auto-trigger a dump (Options::triggers mask).
  enum Trigger : uint32_t {
    kOnDeadlineMiss = 1u << 0,
    kOnDrift = 1u << 1,
    kOnCrash = 1u << 2,
    kOnSloAlert = 1u << 3,
    kOnCorruption = 1u << 4,
    kAllTriggers = 0x1Fu,
  };

  struct Options {
    /// Events retained per thread ring (rounded up to a power of two).
    size_t ring_capacity = 1 << 13;
    /// Directory for dump files; empty disables file dumps (Snapshot()
    /// still works for in-process consumers).
    std::string dump_dir;
    /// Bitwise-or of Trigger values that auto-dump.
    uint32_t triggers = 0;
    /// Cap on files written over the recorder's lifetime, so a trigger
    /// storm (every tick missing its deadline) cannot fill the disk.
    int max_dumps = 8;
  };

  /// The process-wide recorder (never destroyed).
  static FlightRecorder& Global();

  /// Replaces the configuration and drops all recorded events (rings are
  /// re-registered lazily at the new capacity). Does not change enabled().
  void Configure(const Options& options);
  Options options() const;

  /// Master switch. Off by default; the environment variable
  /// PDR_FLIGHT_RECORDER=1 turns it on at first use (benches, tools).
  static void SetEnabled(bool on);
  static bool Enabled() {
#if PDR_OBS_COMPILED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Records one micro-event on the calling thread's ring. Safe from any
  /// thread at any time; a single load+branch when disabled.
  static void Record(FrEvent kind, int64_t a = 0, int64_t b = 0) {
    if (!Enabled()) return;
    Global().RecordImpl(kind, a, b);
  }

  /// Packs two non-negative 32-bit counts into one payload word.
  static int64_t Pack(int64_t hi, int64_t lo) {
    return (hi << 32) | (lo & 0xffffffffll);
  }
  static int64_t PackHi(int64_t packed) { return packed >> 32; }
  static int64_t PackLo(int64_t packed) { return packed & 0xffffffffll; }

  // --- query attribution ---------------------------------------------------

  /// Allocates a fresh process-unique query id (never 0).
  static uint32_t NextQueryId();

  /// The query id events on this thread are stamped with (0 = none).
  static uint32_t CurrentQueryId();

  /// RAII scope stamping this thread's events with `query_id`. Nests;
  /// restores the previous id on destruction. ThreadPool installs one per
  /// task with the submitting thread's id.
  class QueryScope {
   public:
    explicit QueryScope(uint32_t query_id);
    ~QueryScope();
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

   private:
    uint32_t prev_;
  };

  // --- snapshot and dumps --------------------------------------------------

  /// Copies every ring's intact events, merged and sorted by timestamp
  /// (ties broken by thread id). Runs concurrently with producers.
  std::vector<MicroEvent> Snapshot() const;

  struct DumpInfo {
    bool ok = false;
    std::string jsonl_path;
    std::string trace_path;
    size_t events = 0;
    int64_t jsonl_bytes = 0;
    int64_t trace_bytes = 0;
  };

  /// Snapshots the rings and writes `<dump_dir>/fr_<seq>_<reason>.jsonl`
  /// plus `...trace.json` (Chrome trace-event format; load either file in
  /// Perfetto). `query_id` (when nonzero) is recorded in the dump header
  /// and the file name. Returns ok=false when dump_dir is unset, the
  /// max_dumps cap is reached, or a file cannot be written.
  DumpInfo Dump(const std::string& reason, uint32_t query_id = 0);

  /// Dump() gated on `trigger` being armed in options().triggers. The
  /// incident paths (executor, reporter, CrashError) call this.
  void TriggerDump(Trigger trigger, const std::string& reason,
                   uint32_t query_id = 0);

  /// Invoked after every successful Dump() with the dump's file info and
  /// reason — the seam the workload recorder uses to turn incident dumps
  /// into self-contained repro bundles. One hook at a time; nullptr clears.
  /// The hook runs outside the recorder's lock, on the dumping thread, and
  /// must not throw (exceptions are swallowed by the caller's wrapper).
  using DumpHook = std::function<void(const DumpInfo&, const std::string&)>;
  void SetDumpHook(DumpHook hook);

  int64_t dumps_written() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events and the dump counter (tests).
  void Reset();

  // --- serialization (exposed for tests and in-process consumers) ----------

  /// One `{"type":"fr_event",...}` JSON object (no newline).
  static std::string EventJson(const MicroEvent& event);

  /// Full JSONL dump: one header line, then one line per event.
  static void WriteJsonl(std::FILE* out, const std::vector<MicroEvent>& events,
                         const std::string& reason, uint32_t query_id);

  /// Chrome trace-event JSON: query/cell begin-end pairs become B/E
  /// duration events, everything else thread-scoped instants.
  static void WriteChromeTrace(std::FILE* out,
                               const std::vector<MicroEvent>& events,
                               const std::string& reason, uint32_t query_id);

 private:
  FlightRecorder();
  void RecordImpl(FrEvent kind, int64_t a, int64_t b);

#if PDR_OBS_COMPILED
  static std::atomic<bool> enabled_;
#endif
  std::atomic<int64_t> dumps_{0};

  struct State;
  State* state_;  // leaked with the singleton
};

}  // namespace pdr

#endif  // PDR_OBS_FLIGHT_RECORDER_H_
