#include "pdr/obs/slo.h"

#include <algorithm>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/executor.h"

namespace pdr {
namespace {

Counter& AlertCounter(const char* signal) {
  return MetricsRegistry::Global().GetCounter(
      WithLabel("pdr.slo.alerts", "signal", signal));
}

Gauge& BurnGauge(const char* signal, const char* window) {
  return MetricsRegistry::Global().GetGauge(WithLabel(
      std::string("pdr.slo.burn_") + window, "signal", signal));
}

}  // namespace

void SloMonitor::Window::Push(bool is_bad) {
  if (bits.empty()) bits.assign(static_cast<size_t>(capacity), 0);
  uint8_t& slot = bits[static_cast<size_t>(next)];
  if (count >= capacity) bad -= slot;  // evict the overwritten bit
  slot = is_bad ? 1 : 0;
  bad += slot;
  next = (next + 1) % capacity;
  ++count;
}

double SloMonitor::Window::BadFraction() const {
  const int64_t n = std::min<int64_t>(count, capacity);
  return n > 0 ? static_cast<double>(bad) / static_cast<double>(n) : 0.0;
}

SloMonitor::SloMonitor(const Options& options) : options_(options) {
  if (options_.short_window < 1) options_.short_window = 1;
  if (options_.long_window < options_.short_window) {
    options_.long_window = options_.short_window;
  }
  if (options_.target >= 1.0) options_.target = 0.999;
  if (options_.admission_backoff < 2) options_.admission_backoff = 2;
  signals_.reserve(4);
  signals_.emplace_back("latency", options_);
  signals_.emplace_back("degraded", options_);
  signals_.emplace_back("shed", options_);
  signals_.emplace_back("audit", options_);
}

void SloMonitor::OnResult(const TieredResult& result) {
  OnSample(result.elapsed_ms, result.tier,
           result.tier == AnswerTier::kShed);
}

void SloMonitor::OnSample(double elapsed_ms, AnswerTier tier, bool shed) {
  ++samples_;
  if (options_.latency_slo_ms > 0.0) {
    Feed(&signals_[0], elapsed_ms > options_.latency_slo_ms);
  }
  Feed(&signals_[1], !shed && tier != AnswerTier::kExact);
  Feed(&signals_[2], shed);
  MaybeRecover();
}

void SloMonitor::OnAudit(double precision, double recall) {
  Feed(&signals_[3], precision < options_.min_audit_precision ||
                         recall < options_.min_audit_recall);
  MaybeRecover();
}

void SloMonitor::Feed(Signal* signal, bool bad) {
  signal->short_w.Push(bad);
  signal->long_w.Push(bad);
  const double budget = Budget();
  const double burn_short = signal->short_w.BadFraction() / budget;
  const double burn_long = signal->long_w.BadFraction() / budget;
  BurnGauge(signal->name, "short").Set(burn_short);
  BurnGauge(signal->name, "long").Set(burn_long);
  if (signal->latched) return;
  // Both windows must be full and burning: the short window alone would
  // alert on one slow tick right after construction, the long window
  // alone would alert an hour after the incident ended.
  if (signal->short_w.count < signal->short_w.capacity) return;
  if (signal->long_w.count < signal->long_w.capacity) return;
  if (burn_short >= options_.burn_alert && burn_long >= options_.burn_alert) {
    Raise(signal);
  }
}

void SloMonitor::Raise(Signal* signal) {
  signal->latched = true;
  const double budget = Budget();
  Alert alert;
  alert.signal = signal->name;
  alert.burn_short = signal->short_w.BadFraction() / budget;
  alert.burn_long = signal->long_w.BadFraction() / budget;
  alert.sample = samples_;
  alerts_.push_back(alert);
  AlertCounter(signal->name).Increment();
  // Preserve the incident's event window before it scrolls out of the
  // rings, then shed load at the door until the long window recovers.
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnSloAlert,
                                       std::string("slo_") + signal->name);
  if (admission_ != nullptr && !admission_tightened_) {
    admission_normal_bound_ = admission_->max_inflight();
    admission_->SetMaxInflight(
        std::max(1, admission_normal_bound_ / options_.admission_backoff));
    admission_tightened_ = true;
  }
  if (hook_) hook_(alerts_.back());
}

void SloMonitor::MaybeRecover() {
  bool any_latched = false;
  for (Signal& signal : signals_) {
    if (!signal.latched) continue;
    // Release when the long window is back under budget (burn < 1): the
    // regression has not just paused, it has been absorbed.
    if (signal.long_w.BadFraction() / Budget() < 1.0) {
      signal.latched = false;
    } else {
      any_latched = true;
    }
  }
  if (!any_latched && admission_tightened_) {
    admission_->SetMaxInflight(admission_normal_bound_);
    admission_tightened_ = false;
  }
}

void SloMonitor::SetAdmission(AdmissionController* admission) {
  if (admission == nullptr && admission_tightened_ && admission_ != nullptr) {
    admission_->SetMaxInflight(admission_normal_bound_);
    admission_tightened_ = false;
  }
  admission_ = admission;
}

bool SloMonitor::alerting() const {
  for (const Signal& signal : signals_) {
    if (signal.latched) return true;
  }
  return false;
}

const SloMonitor::Signal* SloMonitor::Find(const std::string& name) const {
  for (const Signal& signal : signals_) {
    if (name == signal.name) return &signal;
  }
  return nullptr;
}

double SloMonitor::BurnShort(const std::string& signal) const {
  const Signal* s = Find(signal);
  return s != nullptr ? s->short_w.BadFraction() / Budget() : 0.0;
}

double SloMonitor::BurnLong(const std::string& signal) const {
  const Signal* s = Find(signal);
  return s != nullptr ? s->long_w.BadFraction() / Budget() : 0.0;
}

}  // namespace pdr
