#include "pdr/obs/trace.h"

#include <chrono>

namespace pdr {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread trace assembly state. `root` owns the in-flight tree;
// `current` points at the innermost open span.
struct ThreadTrace {
  std::unique_ptr<SpanNode> root;
  SpanNode* current = nullptr;
};

thread_local ThreadTrace g_thread_trace;

}  // namespace

int64_t SpanNode::IntAttrOr(std::string_view key, int64_t fallback) const {
  for (const auto& [k, v] : int_attrs) {
    if (k == key) return v;
  }
  return fallback;
}

double SpanNode::NumAttrOr(std::string_view key, double fallback) const {
  for (const auto& [k, v] : num_attrs) {
    if (k == key) return v;
  }
  return fallback;
}

size_t SpanNode::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->TreeSize();
  return n;
}

void CollectingSink::OnTrace(std::unique_ptr<SpanNode> root) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(root));
}

size_t CollectingSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::vector<std::unique_ptr<SpanNode>> CollectingSink::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(traces_);
}

void TraceSpan::Open(std::string_view name) {
  ThreadTrace& tt = g_thread_trace;
  auto node = std::make_unique<SpanNode>();
  node->name.assign(name.data(), name.size());
  node->start_ns = NowNs();
  SpanNode* raw = node.get();
  if (tt.current == nullptr) {
    tt.root = std::move(node);
  } else {
    tt.current->children.push_back(std::move(node));
  }
  parent_ = tt.current;
  tt.current = raw;
  node_ = raw;
}

void TraceSpan::Close() {
  node_->duration_ns = NowNs() - node_->start_ns;
  ThreadTrace& tt = g_thread_trace;
  tt.current = parent_;
  if (parent_ == nullptr) {
    std::unique_ptr<SpanNode> finished = std::move(tt.root);
    // The sink may have been swapped or removed while the span was open;
    // deliver to whatever is installed now, else drop the tree.
    if (TraceSink* sink = PdrObs::trace_sink(); sink != nullptr) {
      sink->OnTrace(std::move(finished));
    }
  }
  node_ = nullptr;
}

void TraceSpan::SetAttr(std::string_view key, int64_t v) {
  if (node_ == nullptr) return;
  node_->int_attrs.emplace_back(std::string(key), v);
}

void TraceSpan::SetAttr(std::string_view key, double v) {
  if (node_ == nullptr) return;
  node_->num_attrs.emplace_back(std::string(key), v);
}

}  // namespace pdr
