#include "pdr/obs/trace.h"

#include "pdr/obs/clock.h"

namespace pdr {
namespace {

// Span timestamps flow through the deterministic clock seam so tests can
// pin them (production default is still the steady clock).
int64_t NowNs() { return ObsClock::NowNs(); }

// Per-thread trace assembly state. `root` owns the in-flight tree;
// `current` points at the innermost open span; `adopted` is a cross-thread
// parent installed by TraceContextScope (children the thread opens while
// `current` is null attach there instead of starting a new tree).
struct ThreadTrace {
  std::unique_ptr<SpanNode> root;
  SpanNode* current = nullptr;
  SpanNode* adopted = nullptr;
};

thread_local ThreadTrace g_thread_trace;

// Guards child attachment: workers adopted into the same parent span
// push_back into one shared children vector concurrently. A single global
// mutex is enough — attachment happens once per span open, only while
// tracing is active.
std::mutex g_attach_mu;

// Small sequential per-thread ids (more readable than pthread handles and
// stable across a trace).
int64_t ThreadId() {
  static std::atomic<int64_t> next{0};
  thread_local int64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

int64_t SpanNode::IntAttrOr(std::string_view key, int64_t fallback) const {
  for (const auto& [k, v] : int_attrs) {
    if (k == key) return v;
  }
  return fallback;
}

double SpanNode::NumAttrOr(std::string_view key, double fallback) const {
  for (const auto& [k, v] : num_attrs) {
    if (k == key) return v;
  }
  return fallback;
}

size_t SpanNode::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->TreeSize();
  return n;
}

void CollectingSink::OnTrace(std::unique_ptr<SpanNode> root) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(root));
}

size_t CollectingSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::vector<std::unique_ptr<SpanNode>> CollectingSink::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(traces_);
}

void TraceSpan::Open(std::string_view name) {
  ThreadTrace& tt = g_thread_trace;
  auto node = std::make_unique<SpanNode>();
  node->name.assign(name.data(), name.size());
  node->start_ns = NowNs();
  node->thread_id = ThreadId();
  SpanNode* raw = node.get();
  prev_current_ = tt.current;
  SpanNode* parent = tt.current != nullptr ? tt.current : tt.adopted;
  if (parent == nullptr) {
    tt.root = std::move(node);
  } else {
    // The parent may be shared with other adopting threads; serialize the
    // children push_back (see g_attach_mu).
    std::lock_guard<std::mutex> lock(g_attach_mu);
    parent->children.push_back(std::move(node));
  }
  parent_ = parent;
  tt.current = raw;
  node_ = raw;
}

void TraceSpan::Close() {
  node_->duration_ns = NowNs() - node_->start_ns;
  ThreadTrace& tt = g_thread_trace;
  tt.current = prev_current_;
  if (parent_ == nullptr) {
    std::unique_ptr<SpanNode> finished = std::move(tt.root);
    // The sink may have been swapped or removed while the span was open;
    // deliver to whatever is installed now, else drop the tree.
    if (TraceSink* sink = PdrObs::trace_sink(); sink != nullptr) {
      sink->OnTrace(std::move(finished));
    }
  }
  node_ = nullptr;
}

TraceContext TraceContext::Current() {
  const ThreadTrace& tt = g_thread_trace;
  return TraceContext(tt.current != nullptr ? tt.current : tt.adopted);
}

TraceContextScope::TraceContextScope(const TraceContext& context) {
  ThreadTrace& tt = g_thread_trace;
  saved_current_ = tt.current;
  saved_adopted_ = tt.adopted;
  // The scope suspends the thread's own chain: new spans attach under the
  // adopted parent (or form fresh trees when the context is invalid).
  tt.current = nullptr;
  tt.adopted = context.node_;
}

TraceContextScope::~TraceContextScope() {
  ThreadTrace& tt = g_thread_trace;
  tt.current = saved_current_;
  tt.adopted = saved_adopted_;
}

void TraceSpan::SetAttr(std::string_view key, int64_t v) {
  if (node_ == nullptr) return;
  node_->int_attrs.emplace_back(std::string(key), v);
}

void TraceSpan::SetAttr(std::string_view key, double v) {
  if (node_ == nullptr) return;
  node_->num_attrs.emplace_back(std::string(key), v);
}

}  // namespace pdr
