#include "pdr/sweep/plane_sweep.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"

namespace pdr {
namespace {

/// Builds the sorted, deduplicated event coordinates for one axis: the two
/// boundaries plus every object-induced stopping coordinate strictly
/// inside (lo, hi).
std::vector<double> BuildEvents(double lo, double hi,
                                const std::vector<double>& candidates) {
  std::vector<double> events;
  events.reserve(candidates.size() + 2);
  events.push_back(lo);
  for (double c : candidates) {
    if (c > lo && c < hi) events.push_back(c);
  }
  events.push_back(hi);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

}  // namespace

std::vector<std::pair<double, double>> SweepY(
    const std::vector<double>& sorted_ys, double y_b, double y_t, double l,
    int64_t n_min, SweepStats* stats, const QueryControl* ctl) {
  assert(std::is_sorted(sorted_ys.begin(), sorted_ys.end()));
  // The object at oy is inside the square centered at y iff
  // oy - l/2 <= y < oy + l/2. Count strictly in terms of the *computed*
  // entry (oy - l/2) and exit (oy + l/2) coordinates — the same values
  // that define the stopping events — so that membership flips exactly at
  // the events. (Re-deriving the window as [y - l/2, y + l/2] from the
  // strip coordinate rounds differently and can keep an object one strip
  // past its own exit event.)
  std::vector<double> entries, exits;
  entries.reserve(sorted_ys.size());
  exits.reserve(sorted_ys.size());
  std::vector<double> candidates;
  candidates.reserve(sorted_ys.size() * 2);
  for (double oy : sorted_ys) {
    entries.push_back(oy - l / 2);
    exits.push_back(oy + l / 2);
    candidates.push_back(oy - l / 2);
    candidates.push_back(oy + l / 2);
  }
  std::sort(entries.begin(), entries.end());
  std::sort(exits.begin(), exits.end());
  const std::vector<double> events = BuildEvents(y_b, y_t, candidates);

  std::vector<std::pair<double, double>> dense;
  for (size_t j = 0; j + 1 < events.size(); ++j) {
    if (ctl != nullptr) ctl->Check();  // cancellation point per Y-strip
    if (stats != nullptr) ++stats->y_strips;
    const double y = events[j];
    const int64_t entered =
        std::upper_bound(entries.begin(), entries.end(), y) - entries.begin();
    const int64_t exited =
        std::upper_bound(exits.begin(), exits.end(), y) - exits.begin();
    const int64_t count = entered - exited;
    if (count >= n_min) {
      if (!dense.empty() && dense.back().second == y) {
        dense.back().second = events[j + 1];  // extend the previous segment
      } else {
        dense.emplace_back(y, events[j + 1]);
      }
    }
  }
  return dense;
}

namespace {

std::vector<Rect> SweepCellImpl(const Rect& cell,
                                const std::vector<Vec2>& positions, double l,
                                int64_t n_min, SweepStats* stats,
                                const QueryControl* ctl) {
  std::vector<Rect> result;
  if (n_min <= 0) {
    // Degenerate threshold: everything is dense.
    result.push_back(cell);
    if (stats != nullptr) ++stats->dense_rects;
    return result;
  }
  if (static_cast<int64_t>(positions.size()) < n_min) return result;

  // Entry/exit event lists for incremental band membership: an object at
  // ox is inside the band centered at x iff ox - l/2 <= x < ox + l/2.
  struct ByEntry {
    double entry;
    double y;
  };
  std::vector<ByEntry> by_entry;
  by_entry.reserve(positions.size());
  std::vector<std::pair<double, double>> by_exit;  // (exit coordinate, y)
  by_exit.reserve(positions.size());
  std::vector<double> x_candidates;
  x_candidates.reserve(positions.size() * 2);
  for (const Vec2& p : positions) {
    by_entry.push_back({p.x - l / 2, p.y});
    by_exit.emplace_back(p.x + l / 2, p.y);
    x_candidates.push_back(p.x - l / 2);
    x_candidates.push_back(p.x + l / 2);
  }
  std::sort(by_entry.begin(), by_entry.end(),
            [](const ByEntry& a, const ByEntry& b) { return a.entry < b.entry; });
  std::sort(by_exit.begin(), by_exit.end());

  const std::vector<double> events =
      BuildEvents(cell.x_lo, cell.x_hi, x_candidates);

  // Ordered multiset of y-coordinates of current band members.
  std::multiset<double> band_ys;
  size_t next_entry = 0;
  size_t next_exit = 0;

  std::vector<double> ys;  // reused scratch for dense strips
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    if (ctl != nullptr) ctl->Check();  // cancellation point per X-strip
    const double x = events[i];
    if (stats != nullptr) ++stats->x_strips;
    // Admit objects whose entry coordinate has been reached...
    while (next_entry < by_entry.size() && by_entry[next_entry].entry <= x) {
      band_ys.insert(by_entry[next_entry].y);
      ++next_entry;
    }
    // ...and expel objects whose exit coordinate has been reached.
    while (next_exit < by_exit.size() && by_exit[next_exit].first <= x) {
      auto it = band_ys.find(by_exit[next_exit].second);
      assert(it != band_ys.end());
      band_ys.erase(it);
      ++next_exit;
    }
    if (static_cast<int64_t>(band_ys.size()) < n_min) continue;
    if (stats != nullptr) ++stats->y_sweeps;

    ys.assign(band_ys.begin(), band_ys.end());
    const auto segments =
        SweepY(ys, cell.y_lo, cell.y_hi, l, n_min, stats, ctl);
    for (const auto& [y_lo, y_hi] : segments) {
      result.emplace_back(x, y_lo, events[i + 1], y_hi);
      if (stats != nullptr) ++stats->dense_rects;
    }
  }
  return result;
}

}  // namespace

std::vector<Rect> SweepCell(const Rect& cell,
                            const std::vector<Vec2>& positions, double l,
                            int64_t n_min, SweepStats* stats,
                            const QueryControl* ctl) {
  TraceSpan span("sweep.cell");
  SweepStats local;
  std::vector<Rect> result =
      SweepCellImpl(cell, positions, l, n_min, &local, ctl);

  static Counter& cells =
      MetricsRegistry::Global().GetCounter("pdr.sweep.cells");
  static Counter& x_strips =
      MetricsRegistry::Global().GetCounter("pdr.sweep.x_strips");
  static Counter& y_sweeps =
      MetricsRegistry::Global().GetCounter("pdr.sweep.y_sweeps");
  static Counter& y_strips =
      MetricsRegistry::Global().GetCounter("pdr.sweep.y_strips");
  static Counter& dense_rects =
      MetricsRegistry::Global().GetCounter("pdr.sweep.dense_rects");
  cells.Increment();
  x_strips.Add(local.x_strips);
  y_sweeps.Add(local.y_sweeps);
  y_strips.Add(local.y_strips);
  dense_rects.Add(local.dense_rects);

  if (span.active()) {
    span.SetAttr("positions", static_cast<int64_t>(positions.size()));
    span.SetAttr("x_strips", local.x_strips);
    span.SetAttr("y_sweeps", local.y_sweeps);
    span.SetAttr("dense_rects", local.dense_rects);
  }
  // One summary event per cell sweep (not per strip: the flight recorder
  // tracks the decision chain, per-strip work stays in the counters).
  FlightRecorder::Record(
      FrEvent::kSweep, FlightRecorder::Pack(local.x_strips, local.y_sweeps),
      FlightRecorder::Pack(local.y_strips, local.dense_rects));
  if (stats != nullptr) *stats += local;
  return result;
}

}  // namespace pdr
