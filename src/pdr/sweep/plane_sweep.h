// Plane-sweep refinement (Section 5.3, Algorithms 2 and 3).
//
// Given a candidate cell and the positions of every object that can appear
// in the l-square neighborhood of some point of the cell, the sweep finds
// the exact set of rho-dense points inside the cell as a union of
// half-open rectangles.
//
// An l-band of width l sweeps its vertical center line x across the cell.
// With the paper's half-open square semantics, an object at ox is inside
// the band iff ox - l/2 <= x < ox + l/2, so band membership (and therefore
// point density, Lemma 1) is piecewise constant between the "stopping
// events" {ox +- l/2}. For every maximal strip whose band population can
// meet the threshold, a second sweep runs along Y over the band members
// (Lemma 2), yielding dense segments [y_j, y_{j+1}) and hence dense
// rectangles [x_i, x_{i+1}) x [y_j, y_{j+1}).
//
// Band membership is maintained incrementally with entry/exit event lists
// and an ordered multiset of member y-coordinates, so a cell with k nearby
// objects costs O(k log k + sum over dense strips of the Y-sweep).

#ifndef PDR_SWEEP_PLANE_SWEEP_H_
#define PDR_SWEEP_PLANE_SWEEP_H_

#include <cstdint>
#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

/// Work counters for the sweep (used by benches and tests).
struct SweepStats {
  int64_t x_strips = 0;    ///< strips between consecutive X events
  int64_t y_sweeps = 0;    ///< strips whose band population met n_min
  int64_t y_strips = 0;    ///< Y strips examined across all Y sweeps
  int64_t dense_rects = 0; ///< rectangles emitted

  SweepStats& operator+=(const SweepStats& o) {
    x_strips += o.x_strips;
    y_sweeps += o.y_sweeps;
    y_strips += o.y_strips;
    dense_rects += o.dense_rects;
    return *this;
  }
};

/// Exact dense sub-rectangles of `cell`.
///
/// `positions` must contain (at least) every object position lying in the
/// closed square cell.Expanded(l/2); extra positions are harmless.
/// `n_min` is the object-count threshold (MinObjectsForDensity(rho, l)).
/// The returned rectangles are half-open, disjoint in x-strips, and clipped
/// to `cell`.
///
/// `ctl` (optional) is polled once per X-strip — and inside each Y-sweep
/// per Y-strip — so a deadline-bounded query abandons the sweep within one
/// strip of expiry (CancelledError).
std::vector<Rect> SweepCell(const Rect& cell,
                            const std::vector<Vec2>& positions, double l,
                            int64_t n_min, SweepStats* stats = nullptr,
                            const QueryControl* ctl = nullptr);

/// Y-sweep over one band (Algorithm 3), exposed for testing: given the
/// sorted y-coordinates of the band's members, returns maximal dense
/// segments [y_lo, y_hi) within [y_b, y_t). `ctl` is polled per Y-strip.
std::vector<std::pair<double, double>> SweepY(
    const std::vector<double>& sorted_ys, double y_b, double y_t, double l,
    int64_t n_min, SweepStats* stats = nullptr,
    const QueryControl* ctl = nullptr);

}  // namespace pdr

#endif  // PDR_SWEEP_PLANE_SWEEP_H_
