#include "pdr/histogram/density_histogram.h"

#include <cassert>
#include <numeric>

namespace pdr {

DensityHistogram::DensityHistogram(const Options& options)
    : grid_(options.extent, options.cells_per_side),
      horizon_(options.horizon) {
  assert(options.horizon >= 0);
  ring_.assign(horizon_ + 1,
               std::vector<Counter>(grid_.cell_count(), 0));
  slot_tick_.resize(horizon_ + 1);
  for (Tick t = 0; t <= horizon_; ++t) slot_tick_[SlotOf(t)] = t;
}

void DensityHistogram::AdvanceTo(Tick now) {
  assert(now >= now_);
  for (Tick t = now_ + 1; t <= now; ++t) {
    // The slot that held tick t-1 now represents tick t+H.
    const Tick incoming = t + horizon_;
    const int slot = SlotOf(incoming);
    std::fill(ring_[slot].begin(), ring_[slot].end(), 0);
    slot_tick_[slot] = incoming;
  }
  now_ = now;
}

void DensityHistogram::AddTrajectory(const MotionState& state, Tick from,
                                     Tick to, int delta) {
  const int m = grid_.cells_per_side();
  for (Tick t = from; t <= to; ++t) {
    const Vec2 p = state.PositionAt(t);
    if (!grid_.InDomain(p)) continue;
    const int slot = SlotOf(t);
    std::vector<Counter>& slice = ring_[slot];
    assert(slot_tick_[slot] == t);
    const int cell = grid_.CellOf(p);
    Counter& counter = slice[cell];
    assert(delta > 0 || counter > 0);
    counter = static_cast<Counter>(static_cast<int64_t>(counter) + delta);
    if (!dirty_mark_.empty()) {
      const uint32_t key = static_cast<uint32_t>(slot * m + cell / m);
      if (!dirty_mark_[key]) {
        dirty_mark_[key] = 1;
        dirty_keys_.push_back(key);
      }
    }
  }
}

void DensityHistogram::Apply(const UpdateEvent& update) {
  assert(update.tick == now_ && "updates must be applied at their tick");
  if (update.old_state) {
    // The old movement wrote ticks [old.t_ref, old.t_ref + H]; ticks before
    // now_ have been recycled already, so undo only the still-live ones.
    const Tick last = std::min(update.old_state->t_ref + horizon_,
                               now_ + horizon_);
    if (last >= now_) AddTrajectory(*update.old_state, now_, last, -1);
  }
  if (update.new_state) {
    assert(update.new_state->t_ref == now_);
    AddTrajectory(*update.new_state, now_, now_ + horizon_, +1);
  }
}

const std::vector<DensityHistogram::Counter>& DensityHistogram::Slice(
    Tick t) const {
  assert(t >= now_ && t <= now_ + horizon_ && "tick outside the horizon");
  assert(slot_tick_[SlotOf(t)] == t);
  return ring_[SlotOf(t)];
}

int64_t DensityHistogram::TotalAt(Tick t) const {
  const auto& slice = Slice(t);
  return std::accumulate(slice.begin(), slice.end(), int64_t{0});
}

namespace {
constexpr uint32_t kDhMetaMagic = 0x54534844u;  // "DHST"
}

void DensityHistogram::Serialize(std::string* out) const {
  PutPod(out, kDhMetaMagic);
  PutPod(out, static_cast<int32_t>(grid_.cells_per_side()));
  PutPod(out, horizon_);
  PutPod(out, now_);
  for (const Tick t : slot_tick_) PutPod(out, t);
  for (const std::vector<Counter>& slice : ring_) {
    out->append(reinterpret_cast<const char*>(slice.data()),
                slice.size() * sizeof(Counter));
  }
}

void DensityHistogram::Restore(ByteReader* reader) {
  if (reader->Get<uint32_t>() != kDhMetaMagic) {
    throw std::runtime_error("density histogram state: bad magic");
  }
  if (reader->Get<int32_t>() != grid_.cells_per_side() ||
      reader->Get<Tick>() != horizon_) {
    throw std::runtime_error(
        "density histogram state was checkpointed under different options");
  }
  now_ = reader->Get<Tick>();
  for (Tick& t : slot_tick_) t = reader->Get<Tick>();
  for (std::vector<Counter>& slice : ring_) {
    for (Counter& c : slice) c = reader->Get<Counter>();
  }
}

}  // namespace pdr
