#include "pdr/histogram/filter.h"

#include <cassert>
#include <cmath>

namespace pdr {
namespace {

/// Inclusive 2-D prefix sums: sums[(r+1)*(m+1) + (c+1)] = sum of cells
/// with row <= r, col <= c.
std::vector<int64_t> PrefixSums(const std::vector<DensityHistogram::Counter>&
                                    slice,
                                int m) {
  std::vector<int64_t> sums(static_cast<size_t>(m + 1) * (m + 1), 0);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      sums[(r + 1) * (m + 1) + (c + 1)] =
          sums[r * (m + 1) + (c + 1)] + sums[(r + 1) * (m + 1) + c] -
          sums[r * (m + 1) + c] +
          slice[static_cast<size_t>(r) * m + c];
    }
  }
  return sums;
}

int64_t BlockSum(const std::vector<int64_t>& sums, int m, int col, int row,
                 int half_width) {
  const int c_lo = std::max(0, col - half_width);
  const int c_hi = std::min(m - 1, col + half_width);
  const int r_lo = std::max(0, row - half_width);
  const int r_hi = std::min(m - 1, row + half_width);
  if (c_lo > c_hi || r_lo > r_hi) return 0;
  const auto at = [&](int r, int c) {
    return sums[static_cast<size_t>(r) * (m + 1) + c];
  };
  return at(r_hi + 1, c_hi + 1) - at(r_lo, c_hi + 1) - at(r_hi + 1, c_lo) +
         at(r_lo, c_lo);
}

}  // namespace

int64_t MinObjectsForDensity(double rho, double l) {
  return static_cast<int64_t>(std::ceil(rho * l * l - 1e-9));
}

int ConservativeHalfWidth(double l, double cell_edge) {
  // Largest a with (2a+1)*l_c <= l - l_c.
  return static_cast<int>(std::floor((l / cell_edge - 2.0) / 2.0 + 1e-12));
}

int ExpansiveHalfWidth(double l, double cell_edge) {
  // The block [(col-b)*l_c, (col+b+1)*l_c) must cover every point of every
  // S_l(p), p in the half-open cell: b*l_c >= l/2 on each side. The closed
  // top/right edge of S_l needs no extra cell: an object exactly at
  // coordinate (col+b+1)*l_c is assigned to the next cell, but p < cell_hi
  // implies p + l/2 < cell_hi + l/2 <= (col+b+1)*l_c, so that object is in
  // no S_l(p) anyway.
  return static_cast<int>(std::ceil(l / (2.0 * cell_edge) - 1e-12));
}

FilterResult FilterCells(const DensityHistogram& dh, Tick q_t, double rho,
                         double l) {
  return FilterCellsOverSlice(dh.grid(), dh.Slice(q_t), rho, l);
}

FilterResult FilterCellsOverSlice(
    const Grid& grid, const std::vector<DensityHistogram::Counter>& slice,
    double rho, double l) {
  const int m = grid.cells_per_side();
  const int64_t n_min = MinObjectsForDensity(rho, l);
  const int a = ConservativeHalfWidth(l, grid.cell_edge());
  const int b = ExpansiveHalfWidth(l, grid.cell_edge());

  const std::vector<int64_t> sums = PrefixSums(slice, m);

  FilterResult result;
  result.cells_per_side = m;
  result.classes.resize(static_cast<size_t>(m) * m, CellClass::kCandidate);
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      CellClass cls = CellClass::kCandidate;
      if (a >= 0 && BlockSum(sums, m, col, row, a) >= n_min) {
        cls = CellClass::kAccept;
        ++result.accepted;
      } else if (BlockSum(sums, m, col, row, b) < n_min) {
        cls = CellClass::kReject;
        ++result.rejected;
      } else {
        ++result.candidates;
      }
      result.classes[static_cast<size_t>(row) * m + col] = cls;
    }
  }
  return result;
}

FilterResult FilterCellsNaive(const DensityHistogram& dh, Tick q_t,
                              double rho, double l) {
  const Grid& grid = dh.grid();
  const int m = grid.cells_per_side();
  const int64_t n_min = MinObjectsForDensity(rho, l);
  const int a = ConservativeHalfWidth(l, grid.cell_edge());
  const int b = ExpansiveHalfWidth(l, grid.cell_edge());
  const auto& slice = dh.Slice(q_t);

  const auto block_sum = [&](int col, int row, int half_width) {
    int64_t sum = 0;
    for (int r = std::max(0, row - half_width);
         r <= std::min(m - 1, row + half_width); ++r) {
      for (int c = std::max(0, col - half_width);
           c <= std::min(m - 1, col + half_width); ++c) {
        sum += slice[static_cast<size_t>(r) * m + c];
      }
    }
    return sum;
  };

  FilterResult result;
  result.cells_per_side = m;
  result.classes.resize(static_cast<size_t>(m) * m, CellClass::kCandidate);
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      CellClass cls = CellClass::kCandidate;
      if (a >= 0 && block_sum(col, row, a) >= n_min) {
        cls = CellClass::kAccept;
        ++result.accepted;
      } else if (block_sum(col, row, b) < n_min) {
        cls = CellClass::kReject;
        ++result.rejected;
      } else {
        ++result.candidates;
      }
      result.classes[static_cast<size_t>(row) * m + col] = cls;
    }
  }
  return result;
}

Region CellsAsRegion(const FilterResult& filter, const Grid& grid,
                     bool include_candidates) {
  assert(filter.cells_per_side == grid.cells_per_side());
  Region region;
  const int m = filter.cells_per_side;
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      const CellClass cls = filter.At(col, row);
      if (cls == CellClass::kAccept ||
          (include_candidates && cls == CellClass::kCandidate)) {
        region.Add(grid.CellRect(col, row));
      }
    }
  }
  return region.Coalesced();
}

}  // namespace pdr
