// Filtering step of the FR algorithm (Section 5.2, Algorithm 1).
//
// Using only the density histogram, every grid cell is classified as
//
//   kAccept:    the *conservative neighborhood* C_ij (the largest centered
//               block of cells contained in S_l(p) for every point p of the
//               cell) already holds >= rho*l^2 objects, so the whole cell
//               is certainly dense;
//   kReject:    the *expansive neighborhood* E_ij (the smallest centered
//               block of cells containing S_l(p) for every p of the cell)
//               holds < rho*l^2 objects, so no point of the cell can be
//               dense;
//   kCandidate: neither bound decides; the refinement step (plane sweep)
//               must resolve the cell.
//
// Neighborhood sizing (derived from first principles; the OCR'd paper text
// is ambiguous — see DESIGN.md): with cell edge l_c,
//
//   conservative half-width  a = floor((l/l_c - 2) / 2)   cells
//     (block width (2a+1)*l_c must fit in l - l_c, the intersection of all
//      l-squares centered in the cell; a < 0 means no accept is possible),
//   expansive half-width     b = ceil(l / (2*l_c)) + 1    cells
//     (block must cover a square of width l + l_c centered on the cell;
//      the extra +1 absorbs the closed top/right edge of S_l).
//
// Both choices are *sound* — accepts are always dense and rejects never
// dense — so FR's exactness never depends on their tightness. Block sums
// are computed with a 2-D prefix-sum table (an implementation improvement
// over the paper's per-cell summation; results are identical).

#ifndef PDR_HISTOGRAM_FILTER_H_
#define PDR_HISTOGRAM_FILTER_H_

#include <cstdint>
#include <vector>

#include "pdr/common/region.h"
#include "pdr/histogram/density_histogram.h"

namespace pdr {

enum class CellClass : uint8_t { kReject = 0, kCandidate = 1, kAccept = 2 };

struct FilterResult {
  std::vector<CellClass> classes;  ///< m*m, row-major
  int cells_per_side = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t candidates = 0;

  CellClass At(int col, int row) const {
    return classes[static_cast<size_t>(row) * cells_per_side + col];
  }
};

/// Number of objects in an l-square needed to meet density threshold rho:
/// the smallest integer >= rho * l^2 (with a tolerance so that thresholds
/// that are exactly integral are not bumped by rounding noise).
int64_t MinObjectsForDensity(double rho, double l);

/// Conservative-block half-width in cells; negative means "cannot accept".
int ConservativeHalfWidth(double l, double cell_edge);

/// Expansive-block half-width in cells.
int ExpansiveHalfWidth(double l, double cell_edge);

/// Runs the filter step for query (rho, l, q_t) against the histogram.
FilterResult FilterCells(const DensityHistogram& dh, Tick q_t, double rho,
                         double l);

/// The filter step against an explicit counter slice (m*m, row-major) —
/// the body of FilterCells, exposed so an MVCC snapshot query can run it
/// over a slice materialized from frozen row versions
/// (src/pdr/mvcc/versioned_histogram.h) with the exact same code path.
FilterResult FilterCellsOverSlice(
    const Grid& grid, const std::vector<DensityHistogram::Counter>& slice,
    double rho, double l);

/// The paper-faithful variant: per-cell neighborhood summation with no
/// prefix-sum table (O(m^2 * b^2) instead of O(m^2)). Classifications are
/// identical to FilterCells; exists so bench_fig9_cpu can report the
/// filter cost the paper's own DH implementation would have had.
FilterResult FilterCellsNaive(const DensityHistogram& dh, Tick q_t,
                              double rho, double l);

/// The region formed by all cells of the given class(es): used for the
/// DH-only baselines of Fig. 8 (optimistic DH = accepts + candidates,
/// pessimistic DH = accepts only).
Region CellsAsRegion(const FilterResult& filter, const Grid& grid,
                     bool include_candidates);

}  // namespace pdr

#endif  // PDR_HISTOGRAM_FILTER_H_
