// Density histogram (DH), Section 5.1 of the paper.
//
// For every tick t in [now, now + H] the histogram keeps an m x m grid of
// counters: the number of objects whose *reported* linear motion predicts a
// position inside each cell at t. An insertion update increments the cell
// that the new trajectory hits at every tick of the horizon; a deletion
// update decrements the cells of the old trajectory over the ticks it still
// covers. The slices are kept in a ring buffer keyed by tick so advancing
// the clock recycles the slice that just fell out of the horizon; the
// update-interval contract (every object reports within U, queries look at
// most W = H - U ahead) guarantees a recycled slice is never consulted
// before every live object has re-reported into it.
//
// Domain convention (see generator.h): predicted positions outside the
// closed domain [0, extent]^2 are not counted, matching the ground-truth
// density definition, which keeps the filter step's accept test sound.

#ifndef PDR_HISTOGRAM_DENSITY_HISTOGRAM_H_
#define PDR_HISTOGRAM_DENSITY_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/mobility/object.h"
#include "pdr/storage/serde.h"

namespace pdr {

class DensityHistogram {
 public:
  using Counter = uint32_t;

  struct Options {
    double extent = 1000.0;  ///< domain edge (miles)
    int cells_per_side = 100;  ///< m; the paper uses m^2 = 10000..62500
    Tick horizon = 120;      ///< H = U + W
  };

  explicit DensityHistogram(const Options& options);

  /// Moves the logical clock to `now`, recycling expired slices.
  void AdvanceTo(Tick now);
  Tick now() const { return now_; }
  Tick horizon() const { return horizon_; }

  /// Applies one update event received at `update.tick` (== now()).
  void Apply(const UpdateEvent& update);

  /// Counter of cell (col, row) at tick t; t must be in [now, now + H].
  Counter CountAt(Tick t, int col, int row) const {
    return Slice(t)[grid_.FlatIndex(col, row)];
  }

  /// Whole m*m counter slice for tick t (row-major).
  const std::vector<Counter>& Slice(Tick t) const;

  const Grid& grid() const { return grid_; }

  /// Bytes of counter storage, the quantity on Fig. 8(c,d)'s x-axis.
  size_t MemoryBytes() const {
    return ring_.size() * grid_.cell_count() * sizeof(Counter);
  }

  /// Total objects recorded in the slice for tick `t` (for sanity checks).
  int64_t TotalAt(Tick t) const;

  /// Durability: appends the full counter state to `out`. The ring is a
  /// function of the whole update *history* (recycled slices refill
  /// gradually as objects re-report), not of the live object set, so it
  /// must persist verbatim for recovered queries to be bit-identical.
  void Serialize(std::string* out) const;

  /// Restores state written by Serialize. Throws std::runtime_error when
  /// the blob is truncated or was produced under different Options.
  void Restore(ByteReader* reader);

  // --- MVCC hooks (src/pdr/mvcc/versioned_histogram.h) ------------------
  // The copy-on-write layer versions the histogram at counter-row
  // granularity: key = slot * m + row. With tracking enabled (before any
  // Apply), every counter write marks its row; the versioned wrapper
  // drains the marks at commit and copies just those rows.

  /// Starts recording which (slot, row) counter rows Apply touches.
  void EnableDirtyTracking() {
    dirty_mark_.assign(ring_.size() * grid_.cells_per_side(), 0);
  }
  bool dirty_tracking() const { return !dirty_mark_.empty(); }

  /// Drains the dirty row keys accumulated since the last call.
  void TakeDirtyRows(std::vector<uint32_t>* out) {
    for (const uint32_t key : dirty_keys_) dirty_mark_[key] = 0;
    out->swap(dirty_keys_);
    dirty_keys_.clear();
  }

  int slots() const { return static_cast<int>(ring_.size()); }
  Tick slot_tick(int slot) const { return slot_tick_[slot]; }
  const std::vector<Counter>& SlotSlice(int slot) const { return ring_[slot]; }

 private:
  int SlotOf(Tick t) const {
    return static_cast<int>(t % static_cast<Tick>(ring_.size()));
  }
  void AddTrajectory(const MotionState& state, Tick from, Tick to, int delta);

  Grid grid_;
  Tick horizon_;
  Tick now_ = 0;
  std::vector<std::vector<Counter>> ring_;  // (H+1) slices of m*m counters
  std::vector<Tick> slot_tick_;             // tick currently held by a slot
  std::vector<uint8_t> dirty_mark_;         // empty until EnableDirtyTracking
  std::vector<uint32_t> dirty_keys_;
};

}  // namespace pdr

#endif  // PDR_HISTOGRAM_DENSITY_HISTOGRAM_H_
