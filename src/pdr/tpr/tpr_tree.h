// TPR-tree: a time-parameterized R-tree over moving objects
// (Saltenis et al., SIGMOD 2000), used by the paper as the index behind
// the refinement step (Section 4: "Without loss of generality, we use a
// TPR-tree to index the moving objects").
//
// Every entry stores a conservative time-parameterized bounding rectangle
// (TPBR): spatial bounds valid at the entry's reference tick plus velocity
// bounds, so the rectangle at any later time t is obtained by moving each
// edge with its own bound velocity. Insertion heuristics (ChooseSubtree and
// node split) minimize the TPBR area *integrated* over the query horizon
// [now, now + H]; the integral is approximated by sampling a fixed set of
// offsets, a documented approximation that affects only performance, never
// correctness, because bounds remain conservative at every timestamp.
//
// Nodes live on 4 KB pages behind the LRU BufferPool, so range queries are
// charged simulated I/O exactly as in the paper's experiments. Deletions
// locate leaves through a direct object->leaf map (the standard
// "bottom-up update" shortcut); nodes may transiently underflow and are
// removed only when empty, which keeps the structure simple while updates
// (delete + reinsert) keep occupancy healthy.

#ifndef PDR_TPR_TPR_TREE_H_
#define PDR_TPR_TPR_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/common/stats.h"
#include "pdr/index/object_index.h"
#include "pdr/mobility/object.h"
#include "pdr/storage/buffer_pool.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/pager.h"

namespace pdr {

class DiskPager;

/// Time-parameterized bounding rectangle: `rect` holds the spatial bounds
/// at tick `t_ref`; each edge then moves with its own velocity bound.
/// Conservative for every t >= t_ref.
struct Tpbr {
  Rect rect;
  double vx_lo = 0, vy_lo = 0, vx_hi = 0, vy_hi = 0;
  Tick t_ref = 0;

  static Tpbr ForObject(const MotionState& state);

  /// Bounds at (fractional) time `t` (valid for t >= t_ref).
  Rect RectAt(double t) const {
    const double dt = t - static_cast<double>(t_ref);
    return Rect(rect.x_lo + vx_lo * dt, rect.y_lo + vy_lo * dt,
                rect.x_hi + vx_hi * dt, rect.y_hi + vy_hi * dt);
  }

  /// Smallest TPBR covering both inputs, referenced at the later of the two
  /// reference ticks.
  static Tpbr Union(const Tpbr& a, const Tpbr& b);

  /// True when this TPBR covers `o` for all t >= max(t_ref, o.t_ref).
  bool Covers(const Tpbr& o) const;

  /// Area integrated over [t0, t0 + horizon], approximated with
  /// `kAreaSamples` evenly spaced evaluations.
  double IntegratedArea(double t0, double horizon) const;

  static constexpr int kAreaSamples = 5;
};

class TprTree : public ObjectIndex {
 public:
  struct Options {
    size_t buffer_pages = 256;   ///< LRU buffer pool capacity
    Tick horizon = 120;          ///< H: optimization window for heuristics
    /// Non-empty: back the tree with a durable DiskPager in this directory
    /// (recovering any existing store). Empty: in-memory MemPager.
    std::string storage_dir;
    /// Crash-fault injection for the durable store (tests only; not owned).
    FaultInjector* fault_injector = nullptr;
    /// Non-null: the tree runs over this caller-owned pager instead of
    /// creating its own (the MVCC copy-on-write seam). Mutually exclusive
    /// with storage_dir (std::invalid_argument otherwise).
    Pager* external_pager = nullptr;
  };

  explicit TprTree(const Options& options);

  /// Inserts a new object with its reported motion.
  void Insert(ObjectId id, const MotionState& state) override;

  /// Removes an object; returns false when it is not present.
  bool Delete(ObjectId id) override;

  /// Applies a full update event (delete old motion and/or insert new).
  void Apply(const UpdateEvent& update) override;

  /// Moves the tree's logical clock; heuristics optimize [now, now + H].
  void AdvanceTo(Tick now) override;
  Tick now() const { return now_; }

  /// All objects whose predicted position at tick `t` lies inside the
  /// closed rectangle `window`. Read-only; safe to call from many threads
  /// inside a BeginConcurrentReads/EndConcurrentReads bracket.
  std::vector<std::pair<ObjectId, MotionState>> RangeQuery(
      const Rect& window, Tick t) const override;

  /// The range query against an explicit (pool, root) pair: the traversal
  /// needs nothing else, so an MVCC snapshot query can run it over a
  /// frozen page view (src/pdr/mvcc/) with the exact instance-method code
  /// path.
  static std::vector<std::pair<ObjectId, MotionState>> RangeQueryFrom(
      BufferPool& pool, PageId root, const Rect& window, Tick t);

  /// The current root page (frozen into MVCC snapshot state at commit).
  PageId root() const { return root_; }

  /// Number of indexed objects.
  size_t size() const override { return leaf_of_.size(); }

  /// Root-to-leaf height (1 = root is a leaf).
  int height() const { return height_; }

  size_t node_count() const override { return node_count_; }

  /// Cumulative buffer-pool statistics (reset with ResetIoStats).
  IoStats io_stats() const override { return pool_.stats(); }
  void ResetIoStats() override { pool_.ResetStats(); }

  /// Concurrent-reads bracket: flips the buffer pool into its read-mostly
  /// mode so parallel RangeQuery calls share the pool latch.
  void BeginConcurrentReads() override { pool_.BeginReadPhase(); }
  void EndConcurrentReads() override { pool_.EndReadPhase(); }
  IoStats TakeThreadIoDelta() override { return pool_.TakeThreadIoDelta(); }

  /// Drops the whole buffer cache (cold-start measurement).
  void DropCaches() override { pool_.Clear(); }

  void FlushBufferPool() override { pool_.FlushAll(); }

  // Durability (ObjectIndex hooks): flushes the pool and checkpoints the
  // DiskPager with the tree's metadata (clock, root, height, node count,
  // object->leaf map) + `app_meta` as one atomic unit.
  bool durable() const override { return disk_ != nullptr; }
  void Checkpoint(const std::string& app_meta) override;
  bool recovered() const override;
  const std::string& recovered_app_meta() const override {
    return recovered_app_meta_;
  }

  /// The durable store behind the tree (null when in-memory).
  DiskPager* disk() const override { return disk_; }

  /// Structural self-check (containment of children in parent TPBRs over
  /// sampled ticks, entry counts, parent pointers, leaf map). Aborts via
  /// assert/exception on violation; heavy, intended for tests.
  void CheckInvariants();

  // On-page layout structs; defined in the .cc, incomplete for callers.
  struct LeafEntry;
  struct InternalEntry;
  struct NodeHeader;

 private:
  void InsertEntry(ObjectId id, const Tpbr& box, const MotionState& state);
  PageId ChooseLeaf(const Tpbr& box, std::vector<PageId>* path);
  void SplitLeaf(PageId leaf_id, ObjectId id, const MotionState& state,
                 const std::vector<PageId>& path);
  void SplitInternal(PageId node_id, const InternalEntry& extra,
                     std::vector<PageId> path);
  void InstallEntry(const InternalEntry& entry, std::vector<PageId> path);
  void RefreshParentEntry(PageId child_id);
  Tpbr NodeTpbr(PageId node_id);
  std::string SerializeMeta(const std::string& app_meta) const;
  void RestoreMeta(const std::string& blob);

  std::unique_ptr<Pager> pager_;
  DiskPager* disk_ = nullptr;  // pager_ downcast when durable, else null
  mutable BufferPool pool_;
  Options options_;
  Tick now_ = 0;
  PageId root_ = kInvalidPageId;
  int height_ = 1;
  size_t node_count_ = 0;
  std::unordered_map<ObjectId, PageId> leaf_of_;
  std::string recovered_app_meta_;
};

}  // namespace pdr

#endif  // PDR_TPR_TPR_TREE_H_
