#include "pdr/tpr/tpr_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "pdr/obs/obs.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/serde.h"

namespace pdr {

// ---------------------------------------------------------------------------
// Tpbr

Tpbr Tpbr::ForObject(const MotionState& state) {
  Tpbr box;
  box.rect = Rect(state.pos.x, state.pos.y, state.pos.x, state.pos.y);
  box.vx_lo = box.vx_hi = state.vel.x;
  box.vy_lo = box.vy_hi = state.vel.y;
  box.t_ref = state.t_ref;
  return box;
}

Tpbr Tpbr::Union(const Tpbr& a, const Tpbr& b) {
  Tpbr out;
  out.t_ref = std::max(a.t_ref, b.t_ref);
  const Rect ra = a.RectAt(out.t_ref);
  const Rect rb = b.RectAt(out.t_ref);
  out.rect = ra.Union(rb);
  out.vx_lo = std::min(a.vx_lo, b.vx_lo);
  out.vy_lo = std::min(a.vy_lo, b.vy_lo);
  out.vx_hi = std::max(a.vx_hi, b.vx_hi);
  out.vy_hi = std::max(a.vy_hi, b.vy_hi);
  return out;
}

bool Tpbr::Covers(const Tpbr& o) const {
  const Tick t0 = std::max(t_ref, o.t_ref);
  const Rect mine = RectAt(t0);
  const Rect theirs = o.RectAt(t0);
  const double eps = kGeomEps;
  return mine.x_lo <= theirs.x_lo + eps && mine.y_lo <= theirs.y_lo + eps &&
         mine.x_hi >= theirs.x_hi - eps && mine.y_hi >= theirs.y_hi - eps &&
         vx_lo <= o.vx_lo + eps && vy_lo <= o.vy_lo + eps &&
         vx_hi >= o.vx_hi - eps && vy_hi >= o.vy_hi - eps;
}

double Tpbr::IntegratedArea(double t0, double horizon) const {
  // Trapezoid-free uniform sampling: the integrand is piecewise quadratic
  // and monotone in practice; five samples rank candidates reliably.
  double total = 0;
  for (int i = 0; i < kAreaSamples; ++i) {
    const double t =
        t0 + horizon * static_cast<double>(i) / (kAreaSamples - 1);
    total += RectAt(t).Area();
  }
  return total / kAreaSamples * horizon;
}

// ---------------------------------------------------------------------------
// On-page layout

struct TprTree::NodeHeader {
  uint8_t is_leaf = 0;
  uint8_t pad = 0;
  uint16_t count = 0;
  PageId parent = kInvalidPageId;
};

struct TprTree::LeafEntry {
  double x, y, vx, vy;
  Tick t_ref;
  ObjectId id;

  MotionState ToState() const { return {{x, y}, {vx, vy}, t_ref}; }
  static LeafEntry From(ObjectId oid, const MotionState& s) {
    return {s.pos.x, s.pos.y, s.vel.x, s.vel.y, s.t_ref, oid};
  }
  Tpbr Box() const { return Tpbr::ForObject(ToState()); }
};

struct TprTree::InternalEntry {
  double x_lo, y_lo, x_hi, y_hi;
  double vx_lo, vy_lo, vx_hi, vy_hi;
  Tick t_ref;
  PageId child;

  Tpbr Box() const {
    return Tpbr{Rect(x_lo, y_lo, x_hi, y_hi), vx_lo, vy_lo, vx_hi, vy_hi,
                t_ref};
  }
  static InternalEntry From(const Tpbr& b, PageId child_id) {
    return {b.rect.x_lo, b.rect.y_lo, b.rect.x_hi, b.rect.y_hi,
            b.vx_lo,     b.vy_lo,     b.vx_hi,     b.vy_hi,
            b.t_ref,     child_id};
  }
};

namespace {

constexpr size_t kHeaderSize = 8;

}  // namespace

static constexpr size_t kLeafCapacity =
    (kPageSize - kHeaderSize) / sizeof(TprTree::LeafEntry);
static constexpr size_t kInternalCapacity =
    (kPageSize - kHeaderSize) / sizeof(TprTree::InternalEntry);

namespace {

struct LeafLayout {
  TprTree::NodeHeader header;
  TprTree::LeafEntry entries[kLeafCapacity];
};
struct InternalLayout {
  TprTree::NodeHeader header;
  TprTree::InternalEntry entries[kInternalCapacity];
};
static_assert(sizeof(LeafLayout) <= kPageSize);
static_assert(sizeof(InternalLayout) <= kPageSize);

constexpr size_t kLeafMinFill = kLeafCapacity * 2 / 5;
constexpr size_t kInternalMinFill = kInternalCapacity * 2 / 5;

// Sort keys used by the split heuristic: low edge of the rectangle at the
// start and at the end of the optimization horizon, per axis.
enum class SplitKey { kXNow, kXLater, kYNow, kYLater };

double KeyOf(const Tpbr& box, SplitKey key, double now, double horizon) {
  switch (key) {
    case SplitKey::kXNow:
      return box.RectAt(now).x_lo;
    case SplitKey::kXLater:
      return box.RectAt(now + horizon).x_lo;
    case SplitKey::kYNow:
      return box.RectAt(now).y_lo;
    case SplitKey::kYLater:
      return box.RectAt(now + horizon).y_lo;
  }
  return 0;
}

// Splits `boxes` (paired with opaque payload indices) into two groups
// minimizing the summed integrated TPBR area. Returns indices of the
// second group; the first group is the complement.
std::vector<size_t> PickSplit(const std::vector<Tpbr>& boxes, size_t min_fill,
                              double now, double horizon) {
  const size_t n = boxes.size();
  assert(n >= 2 * min_fill && n >= 2);
  std::vector<size_t> order(n);
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_second;

  for (SplitKey key : {SplitKey::kXNow, SplitKey::kXLater, SplitKey::kYNow,
                       SplitKey::kYLater}) {
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return KeyOf(boxes[a], key, now, horizon) <
             KeyOf(boxes[b], key, now, horizon);
    });
    // Prefix/suffix unions of the sorted sequence.
    std::vector<Tpbr> prefix(n), suffix(n);
    prefix[0] = boxes[order[0]];
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = Tpbr::Union(prefix[i - 1], boxes[order[i]]);
    }
    suffix[n - 1] = boxes[order[n - 1]];
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = Tpbr::Union(suffix[i + 1], boxes[order[i]]);
    }
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      const double cost = prefix[k - 1].IntegratedArea(now, horizon) +
                          suffix[k].IntegratedArea(now, horizon);
      if (cost < best_cost) {
        best_cost = cost;
        best_second.assign(order.begin() + k, order.end());
      }
    }
  }
  return best_second;
}

}  // namespace

// ---------------------------------------------------------------------------
// TprTree

namespace {

constexpr uint32_t kTprMetaMagic = 0x4d525054u;  // "TPRM"

std::unique_ptr<Pager> MakeTreePager(const TprTree::Options& options) {
  if (options.external_pager != nullptr) {
    if (!options.storage_dir.empty()) {
      throw std::invalid_argument(
          "TprTree: external_pager and storage_dir are mutually exclusive");
    }
    return nullptr;  // caller-owned store
  }
  if (options.storage_dir.empty()) return std::make_unique<MemPager>();
  return std::make_unique<DiskPager>(options.storage_dir,
                                     options.fault_injector);
}

}  // namespace

TprTree::TprTree(const Options& options)
    : pager_(MakeTreePager(options)),
      pool_(options.external_pager != nullptr ? options.external_pager
                                              : pager_.get(),
            options.buffer_pages),
      options_(options) {
  disk_ = dynamic_cast<DiskPager*>(pager_.get());
  if (disk_ != nullptr && disk_->recovered()) {
    RestoreMeta(disk_->recovered_meta());
  }
}

bool TprTree::recovered() const {
  return disk_ != nullptr && disk_->recovered();
}

std::string TprTree::SerializeMeta(const std::string& app_meta) const {
  std::string out;
  PutPod(&out, kTprMetaMagic);
  PutPod(&out, now_);
  PutPod(&out, root_);
  PutPod(&out, static_cast<int32_t>(height_));
  PutPod(&out, static_cast<uint64_t>(node_count_));
  // Sorted by object id so the checkpoint bytes are a pure function of the
  // logical tree state, not of hash-map iteration order.
  std::vector<std::pair<ObjectId, PageId>> entries(leaf_of_.begin(),
                                                   leaf_of_.end());
  std::sort(entries.begin(), entries.end());
  PutPod(&out, static_cast<uint64_t>(entries.size()));
  for (const auto& [id, leaf] : entries) {
    PutPod(&out, id);
    PutPod(&out, leaf);
  }
  PutBlob(&out, app_meta);
  return out;
}

void TprTree::RestoreMeta(const std::string& blob) {
  ByteReader reader(blob);
  if (reader.Get<uint32_t>() != kTprMetaMagic) {
    throw std::runtime_error(
        "recovered store does not hold a TPR-tree (index kind mismatch?)");
  }
  now_ = reader.Get<Tick>();
  root_ = reader.Get<PageId>();
  height_ = reader.Get<int32_t>();
  node_count_ = reader.Get<uint64_t>();
  const uint64_t objects = reader.Get<uint64_t>();
  leaf_of_.clear();
  leaf_of_.reserve(objects);
  for (uint64_t i = 0; i < objects; ++i) {
    const ObjectId id = reader.Get<ObjectId>();
    const PageId leaf = reader.Get<PageId>();
    leaf_of_.emplace(id, leaf);
  }
  recovered_app_meta_ = std::string(reader.GetBlob());
}

void TprTree::Checkpoint(const std::string& app_meta) {
  if (disk_ == nullptr) return;
  pool_.FlushAll();  // drain the dirty-page table into the store
  disk_->Checkpoint(SerializeMeta(app_meta));
}

void TprTree::AdvanceTo(Tick now) {
  assert(now >= now_);
  now_ = now;
}

void TprTree::Apply(const UpdateEvent& update) {
  if (update.old_state) {
    const bool removed = Delete(update.id);
    assert(removed && "update deletes an object that is not indexed");
    (void)removed;
  }
  if (update.new_state) Insert(update.id, *update.new_state);
}

Tpbr TprTree::NodeTpbr(PageId node_id) {
  auto ref = pool_.Fetch(node_id);
  const NodeHeader* header = ref->As<NodeHeader>();
  assert(header->count > 0);
  Tpbr box;
  if (header->is_leaf) {
    const auto* node = ref->As<LeafLayout>();
    box = node->entries[0].Box();
    for (uint16_t i = 1; i < header->count; ++i) {
      box = Tpbr::Union(box, node->entries[i].Box());
    }
  } else {
    const auto* node = ref->As<InternalLayout>();
    box = node->entries[0].Box();
    for (uint16_t i = 1; i < header->count; ++i) {
      box = Tpbr::Union(box, node->entries[i].Box());
    }
  }
  // Re-reference to the current clock so repeated tightening cannot leave
  // stale reference ticks behind.
  if (box.t_ref < now_) {
    box.rect = box.RectAt(now_);
    box.t_ref = now_;
  }
  return box;
}

void TprTree::Insert(ObjectId id, const MotionState& state) {
  assert(leaf_of_.find(id) == leaf_of_.end() && "duplicate insert");
  if (root_ == kInvalidPageId) {
    auto ref = pool_.Create(&root_);
    auto* node = ref->As<LeafLayout>();
    node->header = NodeHeader{1, 0, 0, kInvalidPageId};
    height_ = 1;
    node_count_ = 1;
  }
  InsertEntry(id, Tpbr::ForObject(state), state);
}

PageId TprTree::ChooseLeaf(const Tpbr& box, std::vector<PageId>* path) {
  PageId node_id = root_;
  while (true) {
    auto ref = pool_.Fetch(node_id);
    const NodeHeader* header = ref->As<NodeHeader>();
    if (header->is_leaf) return node_id;
    if (path != nullptr) path->push_back(node_id);
    auto mut = std::move(ref);
    auto* node = mut->As<InternalLayout>();
    // Choose the child whose integrated area grows least.
    int best = 0;
    double best_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (uint16_t i = 0; i < node->header.count; ++i) {
      const Tpbr child_box = node->entries[i].Box();
      const double area = child_box.IntegratedArea(now_, options_.horizon);
      const double grown = Tpbr::Union(child_box, box)
                               .IntegratedArea(now_, options_.horizon);
      const double delta = grown - area;
      if (delta < best_delta - kGeomEps ||
          (std::fabs(delta - best_delta) <= kGeomEps && area < best_area)) {
        best = i;
        best_delta = delta;
        best_area = area;
      }
    }
    // Expand the chosen entry to cover the new box.
    InternalEntry& entry = node->entries[best];
    if (!entry.Box().Covers(box)) {
      const Tpbr merged = Tpbr::Union(entry.Box(), box);
      const PageId child = entry.child;
      entry = InternalEntry::From(merged, child);
      mut.MarkDirty();
    }
    node_id = entry.child;
  }
}

void TprTree::InsertEntry(ObjectId id, const Tpbr& box,
                          const MotionState& state) {
  std::vector<PageId> path;
  const PageId leaf_id = ChooseLeaf(box, &path);
  auto ref = pool_.FetchMut(leaf_id);
  auto* node = ref->As<LeafLayout>();
  if (node->header.count < kLeafCapacity) {
    node->entries[node->header.count++] = LeafEntry::From(id, state);
    leaf_of_[id] = leaf_id;
    return;
  }
  ref.Reset();
  SplitLeaf(leaf_id, id, state, path);
}

void TprTree::SplitLeaf(PageId leaf_id, ObjectId id, const MotionState& state,
                        const std::vector<PageId>& path) {
  std::vector<LeafEntry> items;
  {
    auto ref = pool_.Fetch(leaf_id);
    const auto* node = ref->As<LeafLayout>();
    items.assign(node->entries, node->entries + node->header.count);
  }
  items.push_back(LeafEntry::From(id, state));

  std::vector<Tpbr> boxes;
  boxes.reserve(items.size());
  for (const LeafEntry& e : items) boxes.push_back(e.Box());
  const std::vector<size_t> second =
      PickSplit(boxes, kLeafMinFill, now_, options_.horizon);
  std::vector<bool> in_second(items.size(), false);
  for (size_t idx : second) in_second[idx] = true;

  PageId sibling_id = kInvalidPageId;
  {
    auto sib = pool_.Create(&sibling_id);
    auto* sib_node = sib->As<LeafLayout>();
    sib_node->header = NodeHeader{1, 0, 0, kInvalidPageId};
    auto ref = pool_.FetchMut(leaf_id);
    auto* node = ref->As<LeafLayout>();
    node->header.count = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      if (in_second[i]) {
        sib_node->entries[sib_node->header.count++] = items[i];
        leaf_of_[items[i].id] = sibling_id;
      } else {
        node->entries[node->header.count++] = items[i];
        leaf_of_[items[i].id] = leaf_id;
      }
    }
    assert(node->header.count > 0 && sib_node->header.count > 0);
  }
  ++node_count_;

  const Tpbr sibling_box = NodeTpbr(sibling_id);
  if (leaf_id == root_) {
    // Grow a new internal root over the two leaves.
    PageId new_root = kInvalidPageId;
    auto root_ref = pool_.Create(&new_root);
    auto* root_node = root_ref->As<InternalLayout>();
    root_node->header = NodeHeader{0, 0, 2, kInvalidPageId};
    root_node->entries[0] = InternalEntry::From(NodeTpbr(leaf_id), leaf_id);
    root_node->entries[1] = InternalEntry::From(sibling_box, sibling_id);
    for (PageId child : {leaf_id, sibling_id}) {
      auto child_ref = pool_.FetchMut(child);
      child_ref->As<NodeHeader>()->parent = new_root;
    }
    root_ = new_root;
    ++height_;
    ++node_count_;
    return;
  }
  RefreshParentEntry(leaf_id);
  const PageId parent = path.back();
  {
    auto sib = pool_.FetchMut(sibling_id);
    sib->As<NodeHeader>()->parent = parent;
  }
  InstallEntry(InternalEntry::From(sibling_box, sibling_id), path);
}

void TprTree::InstallEntry(const InternalEntry& entry,
                           std::vector<PageId> path) {
  assert(!path.empty());
  const PageId node_id = path.back();
  path.pop_back();
  auto ref = pool_.FetchMut(node_id);
  auto* node = ref->As<InternalLayout>();
  if (node->header.count < kInternalCapacity) {
    node->entries[node->header.count++] = entry;
    return;
  }
  ref.Reset();
  SplitInternal(node_id, entry, std::move(path));
}

void TprTree::SplitInternal(PageId node_id, const InternalEntry& extra,
                            std::vector<PageId> path) {
  std::vector<InternalEntry> items;
  {
    auto ref = pool_.Fetch(node_id);
    const auto* node = ref->As<InternalLayout>();
    items.assign(node->entries, node->entries + node->header.count);
  }
  items.push_back(extra);

  std::vector<Tpbr> boxes;
  boxes.reserve(items.size());
  for (const InternalEntry& e : items) boxes.push_back(e.Box());
  const std::vector<size_t> second =
      PickSplit(boxes, kInternalMinFill, now_, options_.horizon);
  std::vector<bool> in_second(items.size(), false);
  for (size_t idx : second) in_second[idx] = true;

  PageId sibling_id = kInvalidPageId;
  {
    auto sib = pool_.Create(&sibling_id);
    auto* sib_node = sib->As<InternalLayout>();
    sib_node->header = NodeHeader{0, 0, 0, kInvalidPageId};
    auto ref = pool_.FetchMut(node_id);
    auto* node = ref->As<InternalLayout>();
    node->header.count = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      if (in_second[i]) {
        sib_node->entries[sib_node->header.count++] = items[i];
      } else {
        node->entries[node->header.count++] = items[i];
      }
    }
    assert(node->header.count > 0 && sib_node->header.count > 0);
  }
  ++node_count_;
  // Re-point moved children at the sibling.
  {
    auto sib = pool_.Fetch(sibling_id);
    const auto* sib_node = sib->As<InternalLayout>();
    std::vector<PageId> moved;
    for (uint16_t i = 0; i < sib_node->header.count; ++i) {
      moved.push_back(sib_node->entries[i].child);
    }
    sib.Reset();
    for (PageId child : moved) {
      auto child_ref = pool_.FetchMut(child);
      child_ref->As<NodeHeader>()->parent = sibling_id;
    }
  }

  const Tpbr sibling_box = NodeTpbr(sibling_id);
  if (node_id == root_) {
    PageId new_root = kInvalidPageId;
    auto root_ref = pool_.Create(&new_root);
    auto* root_node = root_ref->As<InternalLayout>();
    root_node->header = NodeHeader{0, 0, 2, kInvalidPageId};
    root_node->entries[0] = InternalEntry::From(NodeTpbr(node_id), node_id);
    root_node->entries[1] = InternalEntry::From(sibling_box, sibling_id);
    for (PageId child : {node_id, sibling_id}) {
      auto child_ref = pool_.FetchMut(child);
      child_ref->As<NodeHeader>()->parent = new_root;
    }
    root_ = new_root;
    ++height_;
    ++node_count_;
    return;
  }
  RefreshParentEntry(node_id);
  PageId parent;
  {
    auto ref = pool_.Fetch(node_id);
    parent = ref->As<NodeHeader>()->parent;
  }
  {
    auto sib = pool_.FetchMut(sibling_id);
    sib->As<NodeHeader>()->parent = parent;
  }
  if (path.empty() || path.back() != parent) path.push_back(parent);
  InstallEntry(InternalEntry::From(sibling_box, sibling_id), std::move(path));
}

void TprTree::RefreshParentEntry(PageId child_id) {
  while (child_id != root_) {
    PageId parent;
    {
      auto child = pool_.Fetch(child_id);
      parent = child->As<NodeHeader>()->parent;
    }
    assert(parent != kInvalidPageId);
    const Tpbr tight = NodeTpbr(child_id);
    auto ref = pool_.FetchMut(parent);
    auto* node = ref->As<InternalLayout>();
    bool found = false;
    for (uint16_t i = 0; i < node->header.count; ++i) {
      if (node->entries[i].child == child_id) {
        node->entries[i] = InternalEntry::From(tight, child_id);
        found = true;
        break;
      }
    }
    assert(found && "child missing from parent node");
    (void)found;
    child_id = parent;
  }
}

bool TprTree::Delete(ObjectId id) {
  auto it = leaf_of_.find(id);
  if (it == leaf_of_.end()) return false;
  PageId node_id = it->second;
  leaf_of_.erase(it);
  {
    auto ref = pool_.FetchMut(node_id);
    auto* node = ref->As<LeafLayout>();
    bool found = false;
    for (uint16_t i = 0; i < node->header.count; ++i) {
      if (node->entries[i].id == id) {
        node->entries[i] = node->entries[node->header.count - 1];
        --node->header.count;
        found = true;
        break;
      }
    }
    assert(found && "leaf map points to a leaf without the object");
    (void)found;
  }
  // Remove empty nodes bottom-up; tighten surviving ancestors.
  while (node_id != root_) {
    PageId parent;
    uint16_t count;
    {
      auto ref = pool_.Fetch(node_id);
      const auto* header = ref->As<NodeHeader>();
      parent = header->parent;
      count = header->count;
    }
    if (count > 0) {
      RefreshParentEntry(node_id);
      break;
    }
    {
      auto ref = pool_.FetchMut(parent);
      auto* node = ref->As<InternalLayout>();
      for (uint16_t i = 0; i < node->header.count; ++i) {
        if (node->entries[i].child == node_id) {
          node->entries[i] = node->entries[node->header.count - 1];
          --node->header.count;
          break;
        }
      }
    }
    pool_.Discard(node_id);
    pager_->Free(node_id);
    --node_count_;
    node_id = parent;
  }
  // Collapse a chain of single-child internal roots.
  while (true) {
    auto ref = pool_.Fetch(root_);
    const auto* header = ref->As<NodeHeader>();
    if (header->is_leaf) break;
    if (header->count == 0) {
      // Tree became empty.
      ref.Reset();
      pool_.Discard(root_);
      pager_->Free(root_);
      --node_count_;
      root_ = kInvalidPageId;
      height_ = 1;
      break;
    }
    if (header->count > 1) break;
    const PageId only_child = ref->As<InternalLayout>()->entries[0].child;
    ref.Reset();
    pool_.Discard(root_);
    pager_->Free(root_);
    --node_count_;
    root_ = only_child;
    --height_;
    auto child_ref = pool_.FetchMut(root_);
    child_ref->As<NodeHeader>()->parent = kInvalidPageId;
  }
  return true;
}

std::vector<std::pair<ObjectId, MotionState>> TprTree::RangeQuery(
    const Rect& window, Tick t) const {
  const auto out = RangeQueryFrom(pool_, root_, window, t);
  // Tree-shape gauges for the monitor report / cost calibration: refreshed
  // per query so they track splits and condensations without a hook in
  // every structural operation.
  static Gauge& height_gauge =
      MetricsRegistry::Global().GetGauge("pdr.tpr.height");
  static Gauge& pages_gauge =
      MetricsRegistry::Global().GetGauge("pdr.tpr.node_pages");
  height_gauge.Set(static_cast<double>(height_));
  pages_gauge.Set(static_cast<double>(node_count_));
  return out;
}

std::vector<std::pair<ObjectId, MotionState>> TprTree::RangeQueryFrom(
    BufferPool& pool, PageId root, const Rect& window, Tick t) {
  TraceSpan span("tpr.range_query");
  // Inside a concurrent-reads phase, pool-wide stats mix in other threads'
  // I/O; attribute this query's span from the calling thread's delta.
  const bool phased = pool.in_read_phase();
  const IoStats io_before =
      span.active() ? (phased ? pool.PeekThreadIoDelta() : pool.stats())
                    : IoStats{};
  static Counter& queries =
      MetricsRegistry::Global().GetCounter("pdr.tpr.range_queries");
  static Counter& nodes_counter =
      MetricsRegistry::Global().GetCounter("pdr.tpr.nodes_visited");
  queries.Increment();
  int64_t nodes_visited = 0;

  std::vector<std::pair<ObjectId, MotionState>> out;
  if (root == kInvalidPageId) return out;
  std::vector<PageId> stack{root};
  while (!stack.empty()) {
    const PageId node_id = stack.back();
    stack.pop_back();
    ++nodes_visited;
    auto ref = pool.Fetch(node_id);
    const NodeHeader* header = ref->As<NodeHeader>();
    if (header->is_leaf) {
      const auto* node = ref->As<LeafLayout>();
      for (uint16_t i = 0; i < header->count; ++i) {
        const MotionState state = node->entries[i].ToState();
        if (window.ContainsClosed(state.PositionAt(t))) {
          out.emplace_back(node->entries[i].id, state);
        }
      }
    } else {
      const auto* node = ref->As<InternalLayout>();
      for (uint16_t i = 0; i < header->count; ++i) {
        if (node->entries[i].Box().RectAt(t).IntersectsClosed(window)) {
          stack.push_back(node->entries[i].child);
        }
      }
    }
  }
  nodes_counter.Add(nodes_visited);
  if (span.active()) {
    const IoStats delta =
        (phased ? pool.PeekThreadIoDelta() : pool.stats()) - io_before;
    span.SetAttr("nodes_visited", nodes_visited);
    span.SetAttr("results", static_cast<int64_t>(out.size()));
    span.SetAttr("io_reads", delta.physical_reads);
    span.SetAttr("io_logical", delta.logical_reads);
  }
  return out;
}

void TprTree::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    if (!leaf_of_.empty()) throw std::logic_error("empty tree with leaf map");
    return;
  }
  size_t leaf_entries = 0;
  struct Item {
    PageId id;
    int depth;
  };
  std::vector<Item> stack{{root_, 1}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    auto ref = pool_.Fetch(item.id);
    const NodeHeader* header = ref->As<NodeHeader>();
    if (item.id == root_) {
      if (header->parent != kInvalidPageId) {
        throw std::logic_error("root has a parent");
      }
    }
    if (header->is_leaf) {
      if (item.depth != height_) {
        throw std::logic_error("leaf at wrong depth");
      }
      const auto* node = ref->As<LeafLayout>();
      for (uint16_t i = 0; i < header->count; ++i) {
        ++leaf_entries;
        auto it = leaf_of_.find(node->entries[i].id);
        if (it == leaf_of_.end() || it->second != item.id) {
          throw std::logic_error("leaf map out of sync");
        }
      }
    } else {
      const auto* node = ref->As<InternalLayout>();
      if (header->count == 0) throw std::logic_error("empty internal node");
      std::vector<std::pair<InternalEntry, PageId>> children;
      for (uint16_t i = 0; i < header->count; ++i) {
        children.emplace_back(node->entries[i], node->entries[i].child);
      }
      ref.Reset();
      for (const auto& [entry, child_id] : children) {
        {
          auto child = pool_.Fetch(child_id);
          if (child->As<NodeHeader>()->parent != item.id) {
            throw std::logic_error("bad parent pointer");
          }
        }
        const Tpbr actual = NodeTpbr(child_id);
        const Tpbr declared = entry.Box();
        for (int s = 0; s <= 4; ++s) {
          const double t = static_cast<double>(now_) +
                           options_.horizon * (static_cast<double>(s) / 4.0);
          const Rect outer = declared.RectAt(t);
          const Rect inner = actual.RectAt(t);
          if (!(outer.x_lo <= inner.x_lo + 1e-6 &&
                outer.y_lo <= inner.y_lo + 1e-6 &&
                outer.x_hi >= inner.x_hi - 1e-6 &&
                outer.y_hi >= inner.y_hi - 1e-6)) {
            throw std::logic_error("parent TPBR does not cover child");
          }
        }
        stack.push_back({child_id, item.depth + 1});
      }
    }
  }
  if (leaf_entries != leaf_of_.size()) {
    throw std::logic_error("leaf entry count mismatch");
  }
}

}  // namespace pdr
