// Lightweight measurement utilities: wall-clock timers, running statistics,
// and the cost-accounting record shared by the query engines.
//
// The paper reports query cost as CPU time plus a simulated I/O charge
// (10 ms per random page read, Section 7); CostBreakdown carries both so
// benches can report each component and their sum exactly as Figure 10 does.

#ifndef PDR_COMMON_STATS_H_
#define PDR_COMMON_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace pdr {

/// Accumulates count/mean/min/max/variance of a stream of samples
/// (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Simulated I/O counters, maintained by the storage layer's BufferPool.
/// `physical_reads` drive the paper's cost model; `logical_reads` (all
/// fetches) measure access locality; `writebacks` count dirty evictions.
/// Lives here (not in pdr/storage) so the cost record below, the query
/// engines, and the obs layer all read one accounting type.
struct IoStats {
  int64_t logical_reads = 0;
  int64_t physical_reads = 0;
  int64_t writebacks = 0;

  double ReadCostMs(double ms_per_read) const {
    return static_cast<double>(physical_reads) * ms_per_read;
  }
  IoStats operator-(const IoStats& o) const {
    return {logical_reads - o.logical_reads,
            physical_reads - o.physical_reads, writebacks - o.writebacks};
  }
  IoStats& operator+=(const IoStats& o) {
    logical_reads += o.logical_reads;
    physical_reads += o.physical_reads;
    writebacks += o.writebacks;
    return *this;
  }
};

/// Cost of evaluating one query: measured CPU time plus the simulated I/O
/// charge of the storage layer. Carries the full IoStats delta of the
/// query so logical reads and writebacks survive into reports, not just
/// the charged physical reads.
struct CostBreakdown {
  double cpu_ms = 0.0;
  IoStats io;
  double io_ms = 0.0;

  /// Physical page reads — the quantity the paper charges io_ms for.
  int64_t io_reads() const { return io.physical_reads; }

  double TotalMs() const { return cpu_ms + io_ms; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    cpu_ms += o.cpu_ms;
    io += o.io;
    io_ms += o.io_ms;
    return *this;
  }
};

}  // namespace pdr

#endif  // PDR_COMMON_STATS_H_
