#include "pdr/common/random.h"

#include <cassert>
#include <cmath>

namespace pdr {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~0ULL) - (~0ULL) % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double rate) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(int n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  int lo = 0, hi = static_cast<int>(cdf_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (cdf_[mid] >= u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace pdr
