#include "pdr/common/geometry.h"

#include <ostream>
#include <sstream>

namespace pdr {

std::string Vec2::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.x_lo << ", " << r.x_hi << ") x [" << r.y_lo << ", "
            << r.y_hi << ")";
}

}  // namespace pdr
