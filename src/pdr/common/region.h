// Region algebra over unions of axis-aligned half-open rectangles.
//
// PDR query answers are unions of rectangles [x_i, x_{i+1}) x [y_j, y_{j+1})
// (Section 5.3 of the paper). The paper's accuracy metrics (Section 7.2)
//
//   r_fp = area(D' \ D) / area(D)      (may exceed 100%)
//   r_fn = area(D \ D') / area(D)      (never exceeds 100%)
//
// require exact areas of boolean combinations of two such unions. This
// module provides those measures with an x-sweep and 1-D interval merging,
// plus normalization (coalescing into disjoint maximal rectangles) used to
// keep reported answers small and canonical.

#ifndef PDR_COMMON_REGION_H_
#define PDR_COMMON_REGION_H_

#include <string>
#include <vector>

#include "pdr/common/geometry.h"

namespace pdr {

/// A (possibly overlapping) union of half-open axis-aligned rectangles.
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<Rect> rects);

  /// Adds one rectangle; empty rectangles are ignored.
  void Add(const Rect& r);

  /// Adds every rectangle of `other`.
  void Add(const Region& other);

  const std::vector<Rect>& rects() const { return rects_; }
  bool IsEmpty() const { return rects_.empty(); }
  size_t size() const { return rects_.size(); }
  void Clear() { rects_.clear(); }

  /// Exact area of the union (overlaps counted once).
  double Area() const;

  /// True when `p` lies in some rectangle under half-open semantics.
  bool Contains(Vec2 p) const;

  /// Smallest rectangle enclosing the whole region (empty Rect if empty).
  Rect BoundingBox() const;

  /// Canonical form: a region covering the same point set, made of disjoint
  /// rectangles, with horizontally adjacent slabs merged. Deterministic for
  /// a given point set regardless of input rectangle order.
  Region Coalesced() const;

  /// The part of this region inside `window` (rectangles clipped).
  Region ClippedTo(const Rect& window) const;

  std::string ToString() const;

 private:
  std::vector<Rect> rects_;
};

/// Exact area of the union of `rects`.
double UnionArea(const std::vector<Rect>& rects);

/// Exact area of (union of `a`) intersected with (union of `b`).
double IntersectionArea(const Region& a, const Region& b);

/// Exact area of (union of `a`) minus (union of `b`).
double DifferenceArea(const Region& a, const Region& b);

/// Exact area of the symmetric difference of the two unions.
double SymmetricDifferenceArea(const Region& a, const Region& b);

/// The set difference (union of `a`) minus (union of `b`), as a coalesced
/// region of disjoint rectangles. Backbone of continuous-query deltas.
Region RegionDifference(const Region& a, const Region& b);

/// The intersection (union of `a`) with (union of `b`), coalesced.
Region RegionIntersection(const Region& a, const Region& b);

}  // namespace pdr

#endif  // PDR_COMMON_REGION_H_
