// Deterministic random number generation for workload synthesis.
//
// Everything in the library that needs randomness (the road-network
// generator, object trips, query workloads, Monte-Carlo checks in tests)
// draws from SplitMix-seeded xoshiro256++ so that every experiment is
// reproducible from a single 64-bit seed.

#ifndef PDR_COMMON_RANDOM_H_
#define PDR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdr {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies the C++ uniform random
/// bit generator requirements so it also works with <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller with caching).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential deviate with the given rate.
  double Exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Weights need not be normalized; at least one must be positive.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Forks an independent generator; deterministic for a given parent state.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(s) sampler over ranks {1..n}; rank 1 is most likely. Used for
/// skewed hotspot popularity and skewed speed classes (the paper draws
/// velocities "from a skewed distribution").
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent);

  /// Draws a rank in [0, n) (0-based; 0 is the most popular).
  int Sample(Rng& rng) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pdr

#endif  // PDR_COMMON_RANDOM_H_
