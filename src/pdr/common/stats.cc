#include "pdr/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pdr {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

}  // namespace pdr
