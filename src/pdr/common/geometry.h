// Geometry kernel for the PDR library.
//
// All spatio-temporal algorithms in this library (plane sweep, density
// histograms, Chebyshev approximation, TPR-tree) share the primitives
// defined here. Two conventions from the paper are load-bearing and are
// enforced globally:
//
//  * Half-open square semantics (Definition 1): the l-square neighborhood
//    S_l(p) of a point p includes its top and right edges but excludes its
//    left and bottom edges. Grid cells follow the same convention so that
//    cells tile the plane without double counting.
//  * Dense regions are reported as unions of half-open rectangles
//    [x_lo, x_hi) x [y_lo, y_hi); see region.h.

#ifndef PDR_COMMON_GEOMETRY_H_
#define PDR_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

namespace pdr {

/// Discrete simulation timestamp ("tick"). The paper models time as integer
/// timestamps; queries may target any tick in [t_now, t_now + H].
using Tick = int32_t;

/// Identifier of a moving object.
using ObjectId = uint32_t;

/// Tolerance used when comparing derived coordinates (event positions,
/// rectangle edges). Raw object coordinates are compared exactly.
inline constexpr double kGeomEps = 1e-9;

/// A 2-D point / vector with double coordinates.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double Norm2() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(Norm2()); }
  double DistanceTo(Vec2 o) const { return (*this - o).Norm(); }

  std::string ToString() const;
};

using Point = Vec2;

/// An axis-aligned rectangle. Unless stated otherwise a Rect is interpreted
/// as the half-open product [x_lo, x_hi) x [y_lo, y_hi); helper predicates
/// exist for both open and closed interpretations because the paper's
/// l-square is closed on top/right and the sweep needs both.
struct Rect {
  double x_lo = 0.0;
  double y_lo = 0.0;
  double x_hi = 0.0;
  double y_hi = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double xl, double yl, double xh, double yh)
      : x_lo(xl), y_lo(yl), x_hi(xh), y_hi(yh) {}

  /// Rectangle spanning two corner points (normalized so lo <= hi).
  static constexpr Rect FromCorners(Vec2 a, Vec2 b) {
    return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y));
  }

  /// The square of edge `l` centered at `c` (geometric footprint of the
  /// paper's l-square neighborhood S_l(c)).
  static constexpr Rect CenteredSquare(Vec2 c, double l) {
    return Rect(c.x - l / 2, c.y - l / 2, c.x + l / 2, c.y + l / 2);
  }

  constexpr bool operator==(const Rect&) const = default;

  constexpr double Width() const { return x_hi - x_lo; }
  constexpr double Height() const { return y_hi - y_lo; }
  constexpr double Area() const {
    return std::max(0.0, Width()) * std::max(0.0, Height());
  }
  constexpr Vec2 Center() const {
    return {(x_lo + x_hi) / 2, (y_lo + y_hi) / 2};
  }
  constexpr bool Empty() const { return x_lo >= x_hi || y_lo >= y_hi; }

  /// Membership under the half-open convention: lo <= p < hi.
  constexpr bool ContainsHalfOpen(Vec2 p) const {
    return p.x >= x_lo && p.x < x_hi && p.y >= y_lo && p.y < y_hi;
  }

  /// Membership under the paper's l-square convention (Definition 1):
  /// includes top and right edges, excludes left and bottom edges.
  constexpr bool ContainsLSquare(Vec2 p) const {
    return p.x > x_lo && p.x <= x_hi && p.y > y_lo && p.y <= y_hi;
  }

  /// Closed membership (all four edges included).
  constexpr bool ContainsClosed(Vec2 p) const {
    return p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi;
  }

  /// True when the closed rectangles share at least one point.
  constexpr bool IntersectsClosed(const Rect& o) const {
    return x_lo <= o.x_hi && o.x_lo <= x_hi && y_lo <= o.y_hi &&
           o.y_lo <= y_hi;
  }

  /// True when the open interiors intersect (positive-area overlap).
  constexpr bool IntersectsOpen(const Rect& o) const {
    return x_lo < o.x_hi && o.x_lo < x_hi && y_lo < o.y_hi && o.y_lo < y_hi;
  }

  /// True when `o` is fully inside this rectangle (closed containment).
  constexpr bool Contains(const Rect& o) const {
    return x_lo <= o.x_lo && o.x_hi <= x_hi && y_lo <= o.y_lo &&
           o.y_hi <= y_hi;
  }

  /// Intersection rectangle; may be Empty() when the inputs are disjoint.
  constexpr Rect Intersection(const Rect& o) const {
    return Rect(std::max(x_lo, o.x_lo), std::max(y_lo, o.y_lo),
                std::min(x_hi, o.x_hi), std::min(y_hi, o.y_hi));
  }

  /// Smallest rectangle covering both inputs.
  constexpr Rect Union(const Rect& o) const {
    return Rect(std::min(x_lo, o.x_lo), std::min(y_lo, o.y_lo),
                std::max(x_hi, o.x_hi), std::max(y_hi, o.y_hi));
  }

  /// Rectangle grown by `margin` on every side.
  constexpr Rect Expanded(double margin) const {
    return Rect(x_lo - margin, y_lo - margin, x_hi + margin, y_hi + margin);
  }

  /// Rectangle clipped to `bounds`.
  constexpr Rect ClippedTo(const Rect& bounds) const {
    return Intersection(bounds);
  }

  /// Approximate equality within `eps` on every edge.
  bool AlmostEquals(const Rect& o, double eps = kGeomEps) const {
    return std::fabs(x_lo - o.x_lo) <= eps && std::fabs(y_lo - o.y_lo) <= eps &&
           std::fabs(x_hi - o.x_hi) <= eps && std::fabs(y_hi - o.y_hi) <= eps;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Uniform grid over a square [0, extent) x [0, extent) domain, split into
/// cells x cells half-open cells. Used by the density histogram, the
/// baselines, and the PA macro-grid. Cell (col, row) covers
/// [col*edge, (col+1)*edge) x [row*edge, (row+1)*edge).
class Grid {
 public:
  Grid(double extent, int cells)
      : extent_(extent), cells_(cells), edge_(extent / cells) {}

  double extent() const { return extent_; }
  int cells_per_side() const { return cells_; }
  int cell_count() const { return cells_ * cells_; }
  double cell_edge() const { return edge_; }
  double cell_area() const { return edge_ * edge_; }
  Rect domain() const { return Rect(0, 0, extent_, extent_); }

  /// Column index of coordinate `x`, clamped into [0, cells-1] so that
  /// objects sitting exactly on the domain's top/right edge stay in range.
  int ColOf(double x) const {
    return std::clamp(static_cast<int>(std::floor(x / edge_)), 0, cells_ - 1);
  }
  int RowOf(double y) const { return ColOf(y); }

  /// Flat index of the cell containing point `p`.
  int CellOf(Vec2 p) const { return RowOf(p.y) * cells_ + ColOf(p.x); }

  int FlatIndex(int col, int row) const { return row * cells_ + col; }

  Rect CellRect(int col, int row) const {
    return Rect(col * edge_, row * edge_, (col + 1) * edge_,
                (row + 1) * edge_);
  }
  Rect CellRect(int flat) const {
    return CellRect(flat % cells_, flat / cells_);
  }

  bool InDomain(Vec2 p) const {
    return p.x >= 0 && p.x <= extent_ && p.y >= 0 && p.y <= extent_;
  }

 private:
  double extent_;
  int cells_;
  double edge_;
};

/// Clamps `v` into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace pdr

#endif  // PDR_COMMON_GEOMETRY_H_
