// Typed errors shared across the query engines.

#ifndef PDR_COMMON_ERRORS_H_
#define PDR_COMMON_ERRORS_H_

#include <stdexcept>
#include <string>

#include "pdr/common/geometry.h"

namespace pdr {

/// A query timestamp outside the engine's horizon [now, now + H].
///
/// Both engines keep per-tick state (histogram slices, Chebyshev slices)
/// only for the horizon window H = U + W: every object re-reports within U
/// ticks, so predictions past now + H would extrapolate from motion
/// vectors the protocol guarantees are stale. Before this error existed
/// the out-of-range slice access was assert-only — silently wrong answers
/// in release builds — so the engines now validate q_t at entry and
/// reject with this typed error instead.
class HorizonError : public std::out_of_range {
 public:
  HorizonError(const char* engine, Tick q_t, Tick now, Tick horizon)
      : std::out_of_range(std::string(engine) + " query at t=" +
                          std::to_string(q_t) + " outside horizon [" +
                          std::to_string(now) + ", " +
                          std::to_string(now + horizon) +
                          "] (H=" + std::to_string(horizon) + ")"),
        q_t_(q_t),
        now_(now),
        horizon_(horizon) {}

  Tick q_t() const { return q_t_; }
  Tick now() const { return now_; }
  Tick horizon() const { return horizon_; }

 private:
  Tick q_t_;
  Tick now_;
  Tick horizon_;
};

/// Validates q_t against [now, now + horizon]; throws HorizonError.
inline void ValidateHorizon(const char* engine, Tick q_t, Tick now,
                            Tick horizon) {
  if (q_t < now || q_t > now + horizon) {
    throw HorizonError(engine, q_t, now, horizon);
  }
}

}  // namespace pdr

#endif  // PDR_COMMON_ERRORS_H_
