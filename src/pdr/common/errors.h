// Typed errors shared across the query engines.

#ifndef PDR_COMMON_ERRORS_H_
#define PDR_COMMON_ERRORS_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "pdr/common/geometry.h"

namespace pdr {

/// Silent data corruption caught by an integrity check: a stored checksum
/// disagrees with the bytes it covers. Raised by the storage layer when a
/// page trailer, checkpoint descriptor, or snapshot version fails
/// verification and no redundant copy can heal it (see
/// storage/page_format.h for the trailer format and DESIGN.md §16 for the
/// threat model). Distinct from CrashError (the process "died"; state is
/// consistent) and TransientExhaustedError (I/O kept failing; bytes are
/// intact): here the device *lied* — the read succeeded but returned
/// damaged data, so the caller must not serve the page as an answer.
class CorruptionError : public std::runtime_error {
 public:
  CorruptionError(const std::string& file, uint32_t page_id, uint64_t offset,
                  uint64_t expected, uint64_t actual)
      : std::runtime_error("corruption detected: " + file + " page " +
                           (page_id == static_cast<uint32_t>(-1)
                                ? std::string("-")
                                : std::to_string(page_id)) +
                           " at offset " + std::to_string(offset) +
                           ": checksum expected " + Hex(expected) +
                           ", actual " + Hex(actual)),
        file_(file),
        page_id_(page_id),
        offset_(offset),
        expected_(expected),
        actual_(actual) {}

  const std::string& file() const { return file_; }
  uint32_t page_id() const { return page_id_; }
  uint64_t offset() const { return offset_; }
  uint64_t expected() const { return expected_; }
  uint64_t actual() const { return actual_; }

 private:
  static std::string Hex(uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out = "0x";
    for (int shift = 60; shift >= 0; shift -= 4) {
      out += digits[(v >> shift) & 0xF];
    }
    return out;
  }

  std::string file_;
  uint32_t page_id_;
  uint64_t offset_;
  uint64_t expected_;
  uint64_t actual_;
};

/// A query timestamp outside the engine's horizon [now, now + H].
///
/// Both engines keep per-tick state (histogram slices, Chebyshev slices)
/// only for the horizon window H = U + W: every object re-reports within U
/// ticks, so predictions past now + H would extrapolate from motion
/// vectors the protocol guarantees are stale. Before this error existed
/// the out-of-range slice access was assert-only — silently wrong answers
/// in release builds — so the engines now validate q_t at entry and
/// reject with this typed error instead.
class HorizonError : public std::out_of_range {
 public:
  HorizonError(const char* engine, Tick q_t, Tick now, Tick horizon)
      : std::out_of_range(std::string(engine) + " query at t=" +
                          std::to_string(q_t) + " outside horizon [" +
                          std::to_string(now) + ", " +
                          std::to_string(now + horizon) +
                          "] (H=" + std::to_string(horizon) + ")"),
        q_t_(q_t),
        now_(now),
        horizon_(horizon) {}

  Tick q_t() const { return q_t_; }
  Tick now() const { return now_; }
  Tick horizon() const { return horizon_; }

 private:
  Tick q_t_;
  Tick now_;
  Tick horizon_;
};

/// Validates q_t against [now, now + horizon]; throws HorizonError.
inline void ValidateHorizon(const char* engine, Tick q_t, Tick now,
                            Tick horizon) {
  if (q_t < now || q_t > now + horizon) {
    throw HorizonError(engine, q_t, now, horizon);
  }
}

}  // namespace pdr

#endif  // PDR_COMMON_ERRORS_H_
