#include "pdr/common/region.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace pdr {
namespace {

// One vertical slab boundary: a rectangle either starts (+1) or ends (-1)
// contributing its y-interval at coordinate x.
struct XEvent {
  double x;
  bool open;  // true = interval becomes active, false = deactivates
  double y_lo;
  double y_hi;
};

std::vector<XEvent> BuildEvents(const std::vector<Rect>& rects) {
  std::vector<XEvent> events;
  events.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    if (r.Empty()) continue;
    events.push_back({r.x_lo, true, r.y_lo, r.y_hi});
    events.push_back({r.x_hi, false, r.y_lo, r.y_hi});
  }
  std::sort(events.begin(), events.end(),
            [](const XEvent& a, const XEvent& b) { return a.x < b.x; });
  return events;
}

// Multiset of active y-intervals with O(a log a) merged-union extraction.
class ActiveIntervals {
 public:
  void Add(double lo, double hi) { ++intervals_[{lo, hi}]; }

  void Remove(double lo, double hi) {
    auto it = intervals_.find({lo, hi});
    assert(it != intervals_.end());
    if (--it->second == 0) intervals_.erase(it);
  }

  bool Empty() const { return intervals_.empty(); }

  /// Disjoint sorted union of the active intervals.
  std::vector<std::pair<double, double>> MergedUnion() const {
    std::vector<std::pair<double, double>> merged;
    merged.reserve(intervals_.size());
    for (const auto& [iv, count] : intervals_) {
      (void)count;
      if (!merged.empty() && iv.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, iv.second);
      } else {
        merged.push_back(iv);
      }
    }
    return merged;
  }

  double UnionLength() const {
    double len = 0;
    for (const auto& [lo, hi] : MergedUnion()) len += hi - lo;
    return len;
  }

 private:
  // Keyed map acts as an ordered multiset of (lo, hi) with multiplicities;
  // ordered by lo then hi, which is exactly what merging needs.
  std::map<std::pair<double, double>, int> intervals_;
};

double MergedOverlapLength(const std::vector<std::pair<double, double>>& a,
                           const std::vector<std::pair<double, double>>& b) {
  double len = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) len += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return len;
}

}  // namespace

Region::Region(std::vector<Rect> rects) {
  rects_.reserve(rects.size());
  for (const Rect& r : rects) Add(r);
}

void Region::Add(const Rect& r) {
  if (!r.Empty()) rects_.push_back(r);
}

void Region::Add(const Region& other) {
  rects_.insert(rects_.end(), other.rects_.begin(), other.rects_.end());
}

double Region::Area() const { return UnionArea(rects_); }

bool Region::Contains(Vec2 p) const {
  for (const Rect& r : rects_) {
    if (r.ContainsHalfOpen(p)) return true;
  }
  return false;
}

Rect Region::BoundingBox() const {
  if (rects_.empty()) return Rect();
  Rect box = rects_.front();
  for (const Rect& r : rects_) box = box.Union(r);
  return box;
}

Region Region::ClippedTo(const Rect& window) const {
  Region out;
  for (const Rect& r : rects_) out.Add(r.Intersection(window));
  return out;
}

Region Region::Coalesced() const {
  if (rects_.empty()) return Region();
  // Slab decomposition: cut the plane at every rectangle x-edge, compute the
  // merged y-union per slab, then extend rectangles rightward across slabs
  // whose y-union repeats.
  std::vector<XEvent> events = BuildEvents(rects_);
  ActiveIntervals active;

  struct OpenRect {
    double x_start;
    double y_lo;
    double y_hi;
  };
  std::vector<OpenRect> open;  // rects still extending rightward
  Region out;

  size_t i = 0;
  while (i < events.size()) {
    const double x = events[i].x;
    while (i < events.size() && events[i].x == x) {
      if (events[i].open) {
        active.Add(events[i].y_lo, events[i].y_hi);
      } else {
        active.Remove(events[i].y_lo, events[i].y_hi);
      }
      ++i;
    }
    const auto merged = active.MergedUnion();
    // Close every open rect whose interval is not exactly present anymore,
    // keep those that continue, open the new ones.
    std::vector<OpenRect> still_open;
    still_open.reserve(merged.size());
    std::vector<bool> continued(merged.size(), false);
    for (const OpenRect& o : open) {
      bool keep = false;
      for (size_t k = 0; k < merged.size(); ++k) {
        if (!continued[k] && merged[k].first == o.y_lo &&
            merged[k].second == o.y_hi) {
          continued[k] = true;
          keep = true;
          break;
        }
      }
      if (keep) {
        still_open.push_back(o);
      } else if (x > o.x_start) {
        out.Add(Rect(o.x_start, o.y_lo, x, o.y_hi));
      }
    }
    for (size_t k = 0; k < merged.size(); ++k) {
      if (!continued[k]) {
        still_open.push_back({x, merged[k].first, merged[k].second});
      }
    }
    open = std::move(still_open);
  }
  assert(open.empty());
  return out;
}

std::string Region::ToString() const {
  std::ostringstream os;
  os << "Region{";
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i) os << ", ";
    os << rects_[i];
  }
  os << "}";
  return os.str();
}

double UnionArea(const std::vector<Rect>& rects) {
  std::vector<XEvent> events = BuildEvents(rects);
  if (events.empty()) return 0.0;
  ActiveIntervals active;
  double area = 0.0;
  double prev_x = events.front().x;
  size_t i = 0;
  while (i < events.size()) {
    const double x = events[i].x;
    area += active.UnionLength() * (x - prev_x);
    while (i < events.size() && events[i].x == x) {
      if (events[i].open) {
        active.Add(events[i].y_lo, events[i].y_hi);
      } else {
        active.Remove(events[i].y_lo, events[i].y_hi);
      }
      ++i;
    }
    prev_x = x;
  }
  return area;
}

double IntersectionArea(const Region& a, const Region& b) {
  std::vector<XEvent> ea = BuildEvents(a.rects());
  std::vector<XEvent> eb = BuildEvents(b.rects());
  if (ea.empty() || eb.empty()) return 0.0;

  ActiveIntervals active_a;
  ActiveIntervals active_b;
  double area = 0.0;
  size_t i = 0, j = 0;
  double prev_x = std::min(ea.front().x, eb.front().x);
  while (i < ea.size() || j < eb.size()) {
    const double x = std::min(
        i < ea.size() ? ea[i].x : std::numeric_limits<double>::infinity(),
        j < eb.size() ? eb[j].x : std::numeric_limits<double>::infinity());
    if (!active_a.Empty() && !active_b.Empty()) {
      area += MergedOverlapLength(active_a.MergedUnion(),
                                  active_b.MergedUnion()) *
              (x - prev_x);
    }
    while (i < ea.size() && ea[i].x == x) {
      if (ea[i].open) {
        active_a.Add(ea[i].y_lo, ea[i].y_hi);
      } else {
        active_a.Remove(ea[i].y_lo, ea[i].y_hi);
      }
      ++i;
    }
    while (j < eb.size() && eb[j].x == x) {
      if (eb[j].open) {
        active_b.Add(eb[j].y_lo, eb[j].y_hi);
      } else {
        active_b.Remove(eb[j].y_lo, eb[j].y_hi);
      }
      ++j;
    }
    prev_x = x;
  }
  return area;
}

double DifferenceArea(const Region& a, const Region& b) {
  return a.Area() - IntersectionArea(a, b);
}

namespace {

/// Sorted disjoint intervals of `a` minus `b` (both sorted disjoint).
std::vector<std::pair<double, double>> IntervalDifference(
    const std::vector<std::pair<double, double>>& a,
    const std::vector<std::pair<double, double>>& b) {
  std::vector<std::pair<double, double>> out;
  size_t j = 0;
  for (auto [lo, hi] : a) {
    double cursor = lo;
    while (j < b.size() && b[j].second <= cursor) ++j;
    size_t k = j;
    while (k < b.size() && b[k].first < hi) {
      if (b[k].first > cursor) out.emplace_back(cursor, b[k].first);
      cursor = std::max(cursor, b[k].second);
      if (cursor >= hi) break;
      ++k;
    }
    if (cursor < hi) out.emplace_back(cursor, hi);
  }
  return out;
}

std::vector<std::pair<double, double>> IntervalIntersection(
    const std::vector<std::pair<double, double>>& a,
    const std::vector<std::pair<double, double>>& b) {
  std::vector<std::pair<double, double>> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) out.emplace_back(lo, hi);
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

/// Shared slab sweep for constructive boolean operations: for each x-slab
/// the combiner maps the two active interval unions to the result's
/// intervals on that slab.
template <typename Combiner>
Region BooleanCombine(const Region& a, const Region& b,
                      const Combiner& combine) {
  std::vector<XEvent> ea = BuildEvents(a.rects());
  std::vector<XEvent> eb = BuildEvents(b.rects());
  ActiveIntervals active_a;
  ActiveIntervals active_b;
  Region out;
  size_t i = 0, j = 0;
  double prev_x = 0;
  bool have_prev = false;
  while (i < ea.size() || j < eb.size()) {
    const double x = std::min(
        i < ea.size() ? ea[i].x : std::numeric_limits<double>::infinity(),
        j < eb.size() ? eb[j].x : std::numeric_limits<double>::infinity());
    if (have_prev && x > prev_x) {
      for (const auto& [lo, hi] :
           combine(active_a.MergedUnion(), active_b.MergedUnion())) {
        out.Add(Rect(prev_x, lo, x, hi));
      }
    }
    while (i < ea.size() && ea[i].x == x) {
      if (ea[i].open) {
        active_a.Add(ea[i].y_lo, ea[i].y_hi);
      } else {
        active_a.Remove(ea[i].y_lo, ea[i].y_hi);
      }
      ++i;
    }
    while (j < eb.size() && eb[j].x == x) {
      if (eb[j].open) {
        active_b.Add(eb[j].y_lo, eb[j].y_hi);
      } else {
        active_b.Remove(eb[j].y_lo, eb[j].y_hi);
      }
      ++j;
    }
    prev_x = x;
    have_prev = true;
  }
  return out.Coalesced();
}

}  // namespace

Region RegionDifference(const Region& a, const Region& b) {
  if (a.IsEmpty()) return Region();
  if (b.IsEmpty()) return a.Coalesced();
  return BooleanCombine(a, b, IntervalDifference);
}

Region RegionIntersection(const Region& a, const Region& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Region();
  return BooleanCombine(a, b, IntervalIntersection);
}

double SymmetricDifferenceArea(const Region& a, const Region& b) {
  return a.Area() + b.Area() - 2.0 * IntersectionArea(a, b);
}

}  // namespace pdr
