// Per-engine scalar state frozen into an MVCC commit.
//
// A commit publishes copy-on-write versions of the bulk data (index
// pages, histogram rows, Chebyshev cells) *and* one immutable struct of
// everything else a query reads: the logical clock, the index root, and
// the B^x read-path parameters. The SnapshotManager carries these as
// opaque shared_ptrs (mvcc::EpochStates); the snapshot query path
// (src/pdr/mvcc/snapshot_query.h) casts back here.

#ifndef PDR_CORE_FR_SNAPSHOT_STATE_H_
#define PDR_CORE_FR_SNAPSHOT_STATE_H_

#include <cstdint>

#include "pdr/bx/bx_tree.h"
#include "pdr/core/fr_engine.h"
#include "pdr/storage/pager.h"

namespace pdr {

/// Everything FrEngine's read path consumes besides versioned blocks,
/// frozen at commit time by FrEngine::CaptureState().
struct FrSnapshotState {
  Tick now = 0;                      ///< engine clock at commit
  IndexKind index = IndexKind::kTprTree;
  PageId tpr_root = kInvalidPageId;  ///< valid when index == kTprTree
  BxTree::ReadView bx;               ///< valid when index == kBxTree
  uint64_t size = 0;                 ///< objects indexed at commit
};

/// PaEngine analogue (the Chebyshev model's read path needs only the
/// clock; grid geometry and degree are construction-time constants).
struct PaSnapshotState {
  Tick now = 0;
};

}  // namespace pdr

#endif  // PDR_CORE_FR_SNAPSHOT_STATE_H_
