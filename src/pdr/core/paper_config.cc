#include "pdr/core/paper_config.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace pdr {

size_t PaperConfig::BufferPagesFor(int num_objects) const {
  // A leaf entry is 40 bytes (position, velocity, reference tick, id).
  const size_t dataset_bytes = static_cast<size_t>(num_objects) * 40;
  const size_t pages =
      static_cast<size_t>(dataset_bytes * buffer_fraction / page_size);
  return std::max<size_t>(pages, 16);
}

std::string PaperConfig::ToString() const {
  std::ostringstream os;
  os << "Paper configuration (Table 1, reconstructed — see DESIGN.md):\n"
     << "  domain                     : " << extent << " x " << extent
     << " miles\n"
     << "  page size                  : " << page_size << " B\n"
     << "  buffer size                : " << buffer_fraction * 100
     << "% of dataset size\n"
     << "  random disk access         : " << io_ms << " ms\n"
     << "  max update interval U      : " << max_update_interval << "\n"
     << "  prediction window W        : " << prediction_window << "\n"
     << "  horizon H = U + W          : " << horizon() << "\n"
     << "  l-square edge l            : {30, 60} (default " << default_l
     << ")\n"
     << "  objects                    : {10K, 100K, 500K} (default "
     << default_objects / 1000 << "K)\n"
     << "  relative threshold varrho  : {1..5} (default "
     << default_rel_threshold << ")\n"
     << "  DH cells m^2               : {10000, 40000, 62500} (default "
     << default_histogram_side * default_histogram_side << ")\n"
     << "  polynomials g^2            : {100, 1600} (default "
     << default_poly_side * default_poly_side << ")\n"
     << "  polynomial degree k        : {3, 4, 5} (default " << default_degree
     << ")\n"
     << "  evaluation grid m_d        : " << eval_grid << "\n";
  return os.str();
}

double BenchScaleFromEnv() {
  const char* env = std::getenv("PDR_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  const double v = std::atof(env);
  return v > 0 ? v : 0.1;
}

}  // namespace pdr
