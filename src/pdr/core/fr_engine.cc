#include "pdr/core/fr_engine.h"

#include "pdr/bx/bx_tree.h"
#include "pdr/tpr/tpr_tree.h"

namespace pdr {
namespace {

std::unique_ptr<ObjectIndex> MakeIndex(const FrEngine::Options& options) {
  switch (options.index) {
    case IndexKind::kBxTree:
      return std::make_unique<BxTree>(
          BxTree::Options{options.buffer_pages, options.extent,
                          options.max_update_interval});
    case IndexKind::kTprTree:
      break;
  }
  return std::make_unique<TprTree>(
      TprTree::Options{options.buffer_pages, options.horizon});
}

}  // namespace

FrEngine::FrEngine(const Options& options)
    : options_(options),
      histogram_({options.extent, options.histogram_side, options.horizon}),
      index_(MakeIndex(options)) {}

void FrEngine::AdvanceTo(Tick now) {
  histogram_.AdvanceTo(now);
  index_->AdvanceTo(now);
}

void FrEngine::Apply(const UpdateEvent& update) {
  histogram_.Apply(update);
  index_->Apply(update);
}

FrEngine::QueryResult FrEngine::Query(Tick q_t, double rho, double l,
                                      bool cold_cache) {
  if (cold_cache) index_->DropCaches();
  const IoStats io_before = index_->io_stats();
  Timer timer;

  QueryResult result;
  const Grid& grid = histogram_.grid();
  const int64_t n_min = MinObjectsForDensity(rho, l);

  // --- filtering step ------------------------------------------------------
  const FilterResult filter = FilterCells(histogram_, q_t, rho, l);
  result.accepted_cells = filter.accepted;
  result.rejected_cells = filter.rejected;
  result.candidate_cells = filter.candidates;

  Region region;
  const int m = grid.cells_per_side();
  std::vector<Vec2> positions;
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      const CellClass cls = filter.At(col, row);
      if (cls == CellClass::kAccept) {
        region.Add(grid.CellRect(col, row));
        continue;
      }
      if (cls != CellClass::kCandidate) continue;

      // --- refinement step -------------------------------------------------
      const Rect cell = grid.CellRect(col, row);
      const Rect window = cell.Expanded(l / 2);
      const auto objects = index_->RangeQuery(window, q_t);
      result.objects_fetched += static_cast<int64_t>(objects.size());
      positions.clear();
      positions.reserve(objects.size());
      for (const auto& [id, state] : objects) {
        (void)id;
        const Vec2 p = state.PositionAt(q_t);
        if (grid.InDomain(p)) positions.push_back(p);
      }
      for (const Rect& r :
           SweepCell(cell, positions, l, n_min, &result.sweep)) {
        region.Add(r);
      }
    }
  }
  result.region = region.Coalesced();

  result.cost.cpu_ms = timer.ElapsedMillis();
  const IoStats delta = index_->io_stats() - io_before;
  result.cost.io_reads = delta.physical_reads;
  result.cost.io_ms = delta.ReadCostMs(options_.io_ms);
  return result;
}

FrEngine::QueryResult FrEngine::QueryInterval(Tick q_lo, Tick q_hi,
                                              double rho, double l) {
  QueryResult total;
  Region all;
  for (Tick t = q_lo; t <= q_hi; ++t) {
    QueryResult snap = Query(t, rho, l);
    all.Add(snap.region);
    total.cost += snap.cost;
    total.accepted_cells += snap.accepted_cells;
    total.rejected_cells += snap.rejected_cells;
    total.candidate_cells += snap.candidate_cells;
    total.objects_fetched += snap.objects_fetched;
    total.sweep += snap.sweep;
  }
  total.region = all.Coalesced();
  return total;
}

FrEngine::DhResult FrEngine::DhOnlyQuery(Tick q_t, double rho, double l,
                                         bool optimistic) {
  Timer timer;
  DhResult result;
  result.filter = FilterCells(histogram_, q_t, rho, l);
  result.region =
      CellsAsRegion(result.filter, histogram_.grid(), optimistic);
  result.cpu_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace pdr
