#include "pdr/core/fr_engine.h"

#include "pdr/bx/bx_tree.h"
#include "pdr/obs/obs.h"
#include "pdr/tpr/tpr_tree.h"

namespace pdr {
namespace {

std::unique_ptr<ObjectIndex> MakeIndex(const FrEngine::Options& options) {
  switch (options.index) {
    case IndexKind::kBxTree:
      return std::make_unique<BxTree>(
          BxTree::Options{options.buffer_pages, options.extent,
                          options.max_update_interval});
    case IndexKind::kTprTree:
      break;
  }
  return std::make_unique<TprTree>(
      TprTree::Options{options.buffer_pages, options.horizon});
}

struct FrMetrics {
  Counter& queries;
  Counter& cells_accepted;
  Counter& cells_rejected;
  Counter& cells_candidate;
  Counter& objects_fetched;
  Histogram& query_ms;
  Histogram& refine_objects;

  static FrMetrics& Get() {
    static FrMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.fr.queries"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_accepted"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_rejected"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_candidate"),
        MetricsRegistry::Global().GetCounter("pdr.fr.objects_fetched"),
        MetricsRegistry::Global().GetHistogram("pdr.fr.query_ms"),
        MetricsRegistry::Global().GetHistogram("pdr.fr.refine_objects"),
    };
    return m;
  }
};

}  // namespace

FrEngine::FrEngine(const Options& options)
    : options_(options),
      histogram_({options.extent, options.histogram_side, options.horizon}),
      index_(MakeIndex(options)) {}

void FrEngine::AdvanceTo(Tick now) {
  histogram_.AdvanceTo(now);
  index_->AdvanceTo(now);
}

void FrEngine::Apply(const UpdateEvent& update) {
  histogram_.Apply(update);
  index_->Apply(update);
}

FrEngine::QueryResult FrEngine::Query(Tick q_t, double rho, double l,
                                      bool cold_cache) {
  if (cold_cache) index_->DropCaches();
  const IoStats io_before = index_->io_stats();

  TraceSpan span("fr.query");
  span.SetAttr("q_t", static_cast<int64_t>(q_t));
  span.SetAttr("rho", rho);
  span.SetAttr("l", l);
  Timer timer;

  QueryResult result;
  const Grid& grid = histogram_.grid();
  const int64_t n_min = MinObjectsForDensity(rho, l);

  // --- filtering step ------------------------------------------------------
  FilterResult filter;
  {
    TraceSpan filter_span("fr.filter");
    filter = FilterCells(histogram_, q_t, rho, l);
    filter_span.SetAttr("accepted", filter.accepted);
    filter_span.SetAttr("rejected", filter.rejected);
    filter_span.SetAttr("candidates", filter.candidates);
  }
  result.accepted_cells = filter.accepted;
  result.rejected_cells = filter.rejected;
  result.candidate_cells = filter.candidates;

  Region region;
  const int m = grid.cells_per_side();
  std::vector<Vec2> positions;
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      const CellClass cls = filter.At(col, row);
      if (cls == CellClass::kAccept) {
        region.Add(grid.CellRect(col, row));
        continue;
      }
      if (cls != CellClass::kCandidate) continue;

      // --- refinement step -------------------------------------------------
      TraceSpan cell_span("fr.cell");
      const IoStats cell_io_before =
          cell_span.active() ? index_->io_stats() : IoStats{};
      const Rect cell = grid.CellRect(col, row);
      const Rect window = cell.Expanded(l / 2);
      const auto objects = index_->RangeQuery(window, q_t);
      result.objects_fetched += static_cast<int64_t>(objects.size());
      positions.clear();
      positions.reserve(objects.size());
      for (const auto& [id, state] : objects) {
        (void)id;
        const Vec2 p = state.PositionAt(q_t);
        if (grid.InDomain(p)) positions.push_back(p);
      }
      const int64_t rects_before = result.sweep.dense_rects;
      for (const Rect& r :
           SweepCell(cell, positions, l, n_min, &result.sweep)) {
        region.Add(r);
      }
      if (cell_span.active()) {
        const IoStats cell_io = index_->io_stats() - cell_io_before;
        cell_span.SetAttr("col", col);
        cell_span.SetAttr("row", row);
        cell_span.SetAttr("objects", static_cast<int64_t>(objects.size()));
        cell_span.SetAttr("dense_rects",
                          result.sweep.dense_rects - rects_before);
        cell_span.SetAttr("io_reads", cell_io.physical_reads);
        cell_span.SetAttr("io_logical", cell_io.logical_reads);
      }
    }
  }
  result.region = region.Coalesced();

  result.cost.cpu_ms = timer.ElapsedMillis();
  result.cost.io = index_->io_stats() - io_before;
  result.cost.io_ms = result.cost.io.ReadCostMs(options_.io_ms);

  FrMetrics& metrics = FrMetrics::Get();
  metrics.queries.Increment();
  metrics.cells_accepted.Add(filter.accepted);
  metrics.cells_rejected.Add(filter.rejected);
  metrics.cells_candidate.Add(filter.candidates);
  metrics.objects_fetched.Add(result.objects_fetched);
  metrics.query_ms.Observe(result.cost.TotalMs());
  metrics.refine_objects.Observe(
      static_cast<double>(result.objects_fetched));

  span.SetAttr("cpu_ms", result.cost.cpu_ms);
  span.SetAttr("io_ms", result.cost.io_ms);
  span.SetAttr("io_reads", result.cost.io.physical_reads);
  span.SetAttr("io_logical", result.cost.io.logical_reads);
  span.SetAttr("io_writebacks", result.cost.io.writebacks);
  span.SetAttr("accepted", result.accepted_cells);
  span.SetAttr("rejected", result.rejected_cells);
  span.SetAttr("candidates", result.candidate_cells);
  span.SetAttr("objects_fetched", result.objects_fetched);
  span.SetAttr("dense_rects", result.sweep.dense_rects);
  return result;
}

FrEngine::QueryResult FrEngine::QueryInterval(Tick q_lo, Tick q_hi,
                                              double rho, double l) {
  TraceSpan span("fr.query_interval");
  span.SetAttr("q_lo", static_cast<int64_t>(q_lo));
  span.SetAttr("q_hi", static_cast<int64_t>(q_hi));
  QueryResult total;
  Region all;
  for (Tick t = q_lo; t <= q_hi; ++t) {
    QueryResult snap = Query(t, rho, l);
    all.Add(snap.region);
    total.cost += snap.cost;
    total.accepted_cells += snap.accepted_cells;
    total.rejected_cells += snap.rejected_cells;
    total.candidate_cells += snap.candidate_cells;
    total.objects_fetched += snap.objects_fetched;
    total.sweep += snap.sweep;
  }
  total.region = all.Coalesced();
  span.SetAttr("io_reads", total.cost.io.physical_reads);
  span.SetAttr("cpu_ms", total.cost.cpu_ms);
  return total;
}

FrEngine::DhResult FrEngine::DhOnlyQuery(Tick q_t, double rho, double l,
                                         bool optimistic) {
  TraceSpan span("fr.dh_query");
  Timer timer;
  DhResult result;
  result.filter = FilterCells(histogram_, q_t, rho, l);
  result.region =
      CellsAsRegion(result.filter, histogram_.grid(), optimistic);
  result.cpu_ms = timer.ElapsedMillis();
  span.SetAttr("cpu_ms", result.cpu_ms);
  return result;
}

}  // namespace pdr
