#include "pdr/core/fr_engine.h"

#include <cstring>
#include <optional>
#include <stdexcept>

#include "pdr/bx/bx_tree.h"
#include "pdr/core/fr_snapshot_state.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/versioned_histogram.h"
#include "pdr/mvcc/versioned_pager.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/parallel/thread_pool.h"
#include "pdr/storage/serde.h"
#include "pdr/tpr/tpr_tree.h"

namespace pdr {
namespace {

std::unique_ptr<mvcc::VersionedPager> MakeVersionedPager(
    const FrEngine::Options& options) {
  if (options.snapshots == nullptr) return nullptr;
  if (!options.storage_dir.empty()) {
    throw std::invalid_argument(
        "FrEngine: snapshots and storage_dir are mutually exclusive");
  }
  return std::make_unique<mvcc::VersionedPager>(options.snapshots);
}

std::unique_ptr<ObjectIndex> MakeIndex(const FrEngine::Options& options,
                                       Pager* external_pager) {
  switch (options.index) {
    case IndexKind::kBxTree: {
      BxTree::Options bx;
      bx.buffer_pages = options.buffer_pages;
      bx.extent = options.extent;
      bx.max_update_interval = options.max_update_interval;
      bx.storage_dir = options.storage_dir;
      bx.fault_injector = options.fault_injector;
      bx.external_pager = external_pager;
      return std::make_unique<BxTree>(bx);
    }
    case IndexKind::kTprTree:
      break;
  }
  TprTree::Options tpr;
  tpr.buffer_pages = options.buffer_pages;
  tpr.horizon = options.horizon;
  tpr.storage_dir = options.storage_dir;
  tpr.fault_injector = options.fault_injector;
  tpr.external_pager = external_pager;
  return std::make_unique<TprTree>(tpr);
}

constexpr uint32_t kEngineMetaMagic = 0x454d5246u;  // "FRME"
constexpr uint32_t kEngineMetaVersion = 1;

struct FrMetrics {
  Counter& queries;
  Counter& cells_accepted;
  Counter& cells_rejected;
  Counter& cells_candidate;
  Counter& objects_fetched;
  Histogram& query_ms;
  Histogram& refine_objects;

  static FrMetrics& Get() {
    static FrMetrics m{
        MetricsRegistry::Global().GetCounter("pdr.fr.queries"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_accepted"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_rejected"),
        MetricsRegistry::Global().GetCounter("pdr.fr.cells_candidate"),
        MetricsRegistry::Global().GetCounter("pdr.fr.objects_fetched"),
        MetricsRegistry::Global().GetHistogram("pdr.fr.query_ms"),
        MetricsRegistry::Global().GetHistogram("pdr.fr.refine_objects"),
    };
    return m;
  }
};

}  // namespace

FrEngine::FrEngine(const Options& options)
    : options_(options),
      histogram_({options.extent, options.histogram_side, options.horizon}),
      versioned_pager_(MakeVersionedPager(options)),
      index_(MakeIndex(options, versioned_pager_.get())) {
  if (options_.snapshots != nullptr) {
    histogram_.EnableDirtyTracking();
    vhist_ = std::make_unique<mvcc::VersionedHistogram>(&histogram_,
                                                        options_.snapshots);
  }
  if (index_->recovered()) {
    // The index restored its pages and metadata from the store; the
    // engine-level blob riding on the same checkpoint restores the filter
    // side, so filter and refinement resume from one consistent instant.
    ByteReader reader(index_->recovered_app_meta());
    if (reader.Get<uint32_t>() != kEngineMetaMagic ||
        reader.Get<uint32_t>() != kEngineMetaVersion) {
      throw std::runtime_error(
          "recovered store does not hold FR engine state");
    }
    const auto kind = static_cast<IndexKind>(reader.Get<uint8_t>());
    if (kind != options_.index) {
      throw std::runtime_error(
          "recovered store was checkpointed with a different index kind");
    }
    histogram_.Restore(&reader);
  }
}

FrEngine::~FrEngine() = default;

void FrEngine::Checkpoint() {
  if (!index_->durable()) return;
  FlightRecorder::Record(FrEvent::kCheckpoint,
                         static_cast<int64_t>(histogram_.now()));
  std::string meta;
  PutPod(&meta, kEngineMetaMagic);
  PutPod(&meta, kEngineMetaVersion);
  PutPod(&meta, static_cast<uint8_t>(options_.index));
  histogram_.Serialize(&meta);
  index_->Checkpoint(meta);
}

void FrEngine::SetExecPolicy(const ExecPolicy& exec) {
  options_.exec = exec;
  pool_.reset();  // rebuilt lazily at the new width
}

ThreadPool* FrEngine::PoolForQuery() {
  if (!options_.exec.IsParallel()) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.exec.threads);
  }
  return pool_.get();
}

void FrEngine::AdvanceTo(Tick now) {
  histogram_.AdvanceTo(now);
  index_->AdvanceTo(now);
}

void FrEngine::Apply(const UpdateEvent& update) {
  histogram_.Apply(update);
  index_->Apply(update);
}

void FrEngine::ValidateQt(Tick q_t) const {
  ValidateHorizon("fr", q_t, histogram_.now(), options_.horizon);
}

FrEngine::QueryResult FrEngine::Query(Tick q_t, double rho, double l,
                                      bool cold_cache,
                                      const QueryControl& ctl) {
  ValidateQt(q_t);
  return FrQueryCore(histogram_.grid(), histogram_.Slice(q_t), *index_,
                     PoolForQuery(), options_.io_ms, q_t, rho, l, cold_cache,
                     ctl);
}

void FrEngine::PrepareCommit() {
  if (versioned_pager_ == nullptr) {
    throw std::logic_error("FrEngine::PrepareCommit: snapshots not enabled");
  }
  // Flush first: the buffer pool may hold dirty tree pages the pager has
  // never seen, and a published epoch must be the complete tree image.
  index_->FlushBufferPool();
  versioned_pager_->PublishDirty();
  vhist_->PublishDirty();
}

std::shared_ptr<const FrSnapshotState> FrEngine::CaptureState() const {
  auto state = std::make_shared<FrSnapshotState>();
  state->now = histogram_.now();
  state->index = options_.index;
  state->size = index_->size();
  switch (options_.index) {
    case IndexKind::kTprTree:
      state->tpr_root = static_cast<const TprTree&>(*index_).root();
      break;
    case IndexKind::kBxTree:
      state->bx = static_cast<const BxTree&>(*index_).read_view();
      break;
  }
  return state;
}

FrEngine::QueryResult FrQueryCore(
    const Grid& grid, const std::vector<DensityHistogram::Counter>& slice,
    ObjectIndex& index, ThreadPool* pool, double io_ms, Tick q_t, double rho,
    double l, bool cold_cache, const QueryControl& ctl) {
  // Entry cancellation point: a query offered with an already-expired
  // deadline (or cancelled token) fails here deterministically, before
  // any engine work.
  if (ctl.active()) ctl.Check();
  if (cold_cache) index.DropCaches();
  const IoStats io_before = index.io_stats();

  TraceSpan span("fr.query");
  span.SetAttr("q_t", static_cast<int64_t>(q_t));
  span.SetAttr("rho", rho);
  span.SetAttr("l", l);
  Timer timer;

  FrEngine::QueryResult result;
  // Flight-recorder attribution: reuse the caller's query id (the ladder
  // opens one per TieredResult) or mint a fresh one for direct queries.
  std::optional<FlightRecorder::QueryScope> fr_scope;
  if (FlightRecorder::Enabled()) {
    result.query_id = FlightRecorder::CurrentQueryId();
    if (result.query_id == 0) {
      result.query_id = FlightRecorder::NextQueryId();
      fr_scope.emplace(result.query_id);
    }
    int64_t rho_bits = 0;
    std::memcpy(&rho_bits, &rho, sizeof(rho_bits));
    FlightRecorder::Record(FrEvent::kQueryBegin, q_t, rho_bits);
  }
  const int64_t n_min = MinObjectsForDensity(rho, l);

  // --- filtering step ------------------------------------------------------
  FilterResult filter;
  {
    TraceSpan filter_span("fr.filter");
    Timer filter_timer;
    filter = FilterCellsOverSlice(grid, slice, rho, l);
    result.filter_ms = filter_timer.ElapsedMillis();
    filter_span.SetAttr("accepted", filter.accepted);
    filter_span.SetAttr("rejected", filter.rejected);
    filter_span.SetAttr("candidates", filter.candidates);
    FlightRecorder::Record(
        FrEvent::kFilter,
        FlightRecorder::Pack(filter.accepted, filter.rejected),
        filter.candidates);
  }
  result.accepted_cells = filter.accepted;
  result.rejected_cells = filter.rejected;
  result.candidate_cells = filter.candidates;

  // --- refinement step -----------------------------------------------------
  // Three sub-phases so serial and parallel execution produce the same
  // rectangle sequence: collect candidate cells in row-major order, refine
  // each candidate independently (inline and in order when serial, fanned
  // out over the pool when parallel), then merge per-cell outputs back in
  // row-major order, interleaved with the accepted cells' rectangles.
  Timer refine_timer;
  const int m = grid.cells_per_side();
  struct Candidate {
    int col, row;
  };
  struct CellOut {
    std::vector<Rect> rects;
    int64_t objects = 0;
    SweepStats sweep;
  };
  std::vector<Candidate> candidates;
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      if (filter.At(col, row) == CellClass::kCandidate) {
        candidates.push_back({col, row});
      }
    }
  }

  const bool fan_out = pool != nullptr && candidates.size() > 1;
  std::vector<CellOut> outs(candidates.size());
  const QueryControl* control = ctl.active() ? &ctl : nullptr;

  const auto refine_cell = [&](int64_t i) {
    // Cancellation point per candidate cell (plus per sweep strip inside
    // SweepCell): a deadline-expired refinement abandons the query here.
    if (control != nullptr) control->Check();
    const Candidate c = candidates[static_cast<size_t>(i)];
    CellOut& out = outs[static_cast<size_t>(i)];
    TraceSpan cell_span("fr.cell");
    FlightRecorder::Record(FrEvent::kCellBegin,
                           FlightRecorder::Pack(c.col, c.row));
    // Serial: per-cell I/O is a pool-stats delta (nothing else touches the
    // pool). Parallel: pool-wide stats mix all threads, so attribute from
    // this thread's delta instead (cleared here, read after the work).
    const IoStats cell_io_before =
        cell_span.active() && !fan_out ? index.io_stats() : IoStats{};
    if (fan_out) index.TakeThreadIoDelta();
    const Rect cell = grid.CellRect(c.col, c.row);
    const Rect window = cell.Expanded(l / 2);
    const auto objects = index.RangeQuery(window, q_t);
    out.objects = static_cast<int64_t>(objects.size());
    std::vector<Vec2> positions;
    positions.reserve(objects.size());
    for (const auto& [id, state] : objects) {
      (void)id;
      const Vec2 p = state.PositionAt(q_t);
      if (grid.InDomain(p)) positions.push_back(p);
    }
    out.rects = SweepCell(cell, positions, l, n_min, &out.sweep, control);
    FlightRecorder::Record(
        FrEvent::kCellEnd, FlightRecorder::Pack(c.col, c.row),
        FlightRecorder::Pack(out.objects, out.sweep.dense_rects));
    if (cell_span.active()) {
      const IoStats cell_io = fan_out ? index.TakeThreadIoDelta()
                                      : index.io_stats() - cell_io_before;
      cell_span.SetAttr("col", c.col);
      cell_span.SetAttr("row", c.row);
      cell_span.SetAttr("objects", out.objects);
      cell_span.SetAttr("dense_rects", out.sweep.dense_rects);
      cell_span.SetAttr("io_reads", cell_io.physical_reads);
      cell_span.SetAttr("io_logical", cell_io.logical_reads);
    }
  };

  if (fan_out) {
    index.BeginConcurrentReads();
    try {
      pool->ParallelFor(static_cast<int64_t>(candidates.size()), refine_cell,
                        control);
    } catch (...) {
      index.EndConcurrentReads();
      throw;
    }
    index.EndConcurrentReads();
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(candidates.size()); ++i) {
      refine_cell(i);
    }
  }

  // --- deterministic merge -------------------------------------------------
  Region region;
  size_t next_candidate = 0;
  for (int row = 0; row < m; ++row) {
    for (int col = 0; col < m; ++col) {
      const CellClass cls = filter.At(col, row);
      if (cls == CellClass::kAccept) {
        region.Add(grid.CellRect(col, row));
      } else if (cls == CellClass::kCandidate) {
        const CellOut& out = outs[next_candidate++];
        for (const Rect& r : out.rects) region.Add(r);
        result.objects_fetched += out.objects;
        result.sweep += out.sweep;
      }
    }
  }
  result.region = region.Coalesced();
  result.refine_ms = refine_timer.ElapsedMillis();
  FlightRecorder::Record(FrEvent::kQueryEnd, result.objects_fetched,
                         result.sweep.dense_rects);

  result.cost.cpu_ms = timer.ElapsedMillis();
  result.cost.io = index.io_stats() - io_before;
  result.cost.io_ms = result.cost.io.ReadCostMs(io_ms);

  FrMetrics& metrics = FrMetrics::Get();
  metrics.queries.Increment();
  metrics.cells_accepted.Add(filter.accepted);
  metrics.cells_rejected.Add(filter.rejected);
  metrics.cells_candidate.Add(filter.candidates);
  metrics.objects_fetched.Add(result.objects_fetched);
  metrics.query_ms.Observe(result.cost.TotalMs());
  metrics.refine_objects.Observe(
      static_cast<double>(result.objects_fetched));

  span.SetAttr("cpu_ms", result.cost.cpu_ms);
  span.SetAttr("io_ms", result.cost.io_ms);
  span.SetAttr("io_reads", result.cost.io.physical_reads);
  span.SetAttr("io_logical", result.cost.io.logical_reads);
  span.SetAttr("io_writebacks", result.cost.io.writebacks);
  span.SetAttr("accepted", result.accepted_cells);
  span.SetAttr("rejected", result.rejected_cells);
  span.SetAttr("candidates", result.candidate_cells);
  span.SetAttr("objects_fetched", result.objects_fetched);
  span.SetAttr("dense_rects", result.sweep.dense_rects);
  return result;
}

FrEngine::QueryResult FrEngine::QueryInterval(Tick q_lo, Tick q_hi,
                                              double rho, double l,
                                              const QueryControl& ctl) {
  ValidateQt(q_lo);
  ValidateQt(q_hi);
  TraceSpan span("fr.query_interval");
  span.SetAttr("q_lo", static_cast<int64_t>(q_lo));
  span.SetAttr("q_hi", static_cast<int64_t>(q_hi));
  QueryResult total;
  Region all;
  for (Tick t = q_lo; t <= q_hi; ++t) {
    QueryResult snap = Query(t, rho, l, /*cold_cache=*/false, ctl);
    all.Add(snap.region);
    total.cost += snap.cost;
    total.accepted_cells += snap.accepted_cells;
    total.rejected_cells += snap.rejected_cells;
    total.candidate_cells += snap.candidate_cells;
    total.objects_fetched += snap.objects_fetched;
    total.sweep += snap.sweep;
  }
  total.region = all.Coalesced();
  span.SetAttr("io_reads", total.cost.io.physical_reads);
  span.SetAttr("cpu_ms", total.cost.cpu_ms);
  return total;
}

FrEngine::DhResult FrEngine::DhOnlyQuery(Tick q_t, double rho, double l,
                                         bool optimistic) {
  ValidateQt(q_t);
  TraceSpan span("fr.dh_query");
  Timer timer;
  DhResult result;
  result.filter = FilterCells(histogram_, q_t, rho, l);
  result.region =
      CellsAsRegion(result.filter, histogram_.grid(), optimistic);
  result.cpu_ms = timer.ElapsedMillis();
  span.SetAttr("cpu_ms", result.cpu_ms);
  return result;
}

}  // namespace pdr
