// Continuous PDR monitoring.
//
// The paper evaluates one-shot snapshot queries; its motivating
// applications (traffic control, resource scheduling) actually watch a
// *standing* query — "always show the regions that will be dense W ticks
// from now" — as updates stream in. PdrMonitor keeps the previous answer
// and reports constructive deltas per tick:
//
//   appeared = current \ previous   (congestion forming: act on these)
//   vanished = previous \ current   (congestion dissolving)
//
// so downstream consumers (alerting, dispatch) handle O(change) instead
// of re-reading the full answer. This is the natural extension toward the
// continuous density queries of the follow-up literature.

#ifndef PDR_CORE_MONITOR_H_
#define PDR_CORE_MONITOR_H_

#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/core/fr_engine.h"

namespace pdr {

class PdrMonitor {
 public:
  struct Options {
    double rho = 0.0;    ///< density threshold
    double l = 30.0;     ///< neighborhood edge
    Tick lookahead = 0;  ///< q_t = now + lookahead (<= W for completeness)
  };

  /// The change in the standing answer at one tick.
  struct Delta {
    Tick now = 0;
    Tick q_t = 0;
    Region current;   ///< full answer at q_t
    Region appeared;  ///< dense now, not dense at the previous evaluation
    Region vanished;  ///< dense at the previous evaluation, not now
    CostBreakdown cost;

    bool Changed() const {
      return !appeared.IsEmpty() || !vanished.IsEmpty();
    }
  };

  /// The monitor evaluates through `engine` (not owned); the caller keeps
  /// feeding the engine its update stream.
  PdrMonitor(FrEngine* engine, const Options& options)
      : engine_(engine), options_(options) {}

  const Options& options() const { return options_; }

  /// Evaluates the standing query at `now` (engine must be advanced to
  /// `now` and fed all updates up to it) and returns the delta against
  /// the previous evaluation.
  Delta OnTick(Tick now);

  /// Forgets the previous answer (the next delta reports everything as
  /// appeared).
  void Reset() { has_previous_ = false; }

 private:
  FrEngine* engine_;
  Options options_;
  Region previous_;
  bool has_previous_ = false;
};

}  // namespace pdr

#endif  // PDR_CORE_MONITOR_H_
