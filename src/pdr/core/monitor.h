// Continuous PDR monitoring.
//
// The paper evaluates one-shot snapshot queries; its motivating
// applications (traffic control, resource scheduling) actually watch a
// *standing* query — "always show the regions that will be dense W ticks
// from now" — as updates stream in. PdrMonitor keeps the previous answer
// and reports constructive deltas per tick:
//
//   appeared = current \ previous   (congestion forming: act on these)
//   vanished = previous \ current   (congestion dissolving)
//
// so downstream consumers (alerting, dispatch) handle O(change) instead
// of re-reading the full answer. This is the natural extension toward the
// continuous density queries of the follow-up literature.
//
// The monitor runs over either engine: FR-primary (exact answers; the
// original mode) or PA-primary (fast approximate answers). In PA-primary
// mode a ShadowAuditor can be attached — each tick's answer is then
// offered to the sampler, and ~sample_rate of them are replayed through
// exact FR and scored; the verdict rides along on the Delta. In
// FR-primary mode an attached CostCalibrator predicts each query's cost
// before it runs and scores the prediction against actuals.

#ifndef PDR_CORE_MONITOR_H_
#define PDR_CORE_MONITOR_H_

#include <functional>
#include <memory>
#include <optional>

#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/obs/audit.h"
#include "pdr/parallel/exec_policy.h"
#include "pdr/parallel/thread_pool.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/executor.h"

namespace pdr {

class FftDensityEngine;
class SloMonitor;
class WorkloadRecorder;

class PdrMonitor {
 public:
  struct Options {
    double rho = 0.0;    ///< density threshold
    double l = 30.0;     ///< neighborhood edge
    Tick lookahead = 0;  ///< q_t = now + lookahead (<= W for completeness)
    /// Deadline / admission-control / degradation policy. Inactive by
    /// default. A per-tick deadline or degradation ladder requires the
    /// FR-primary mode (the ladder's rungs are FR exact -> FFT field ->
    /// PA approximate -> FR histogram); OnTick throws std::logic_error
    /// otherwise.
    ResilienceOptions resilience;
  };

  /// The change in the standing answer at one tick.
  struct Delta {
    Tick now = 0;
    Tick q_t = 0;
    Region current;   ///< full answer at q_t
    Region appeared;  ///< dense now, not dense at the previous evaluation
    Region vanished;  ///< dense at the previous evaluation, not now
    CostBreakdown cost;
    /// Present when this tick's answer was shadow-audited: PA-primary with
    /// an attached auditor (sampled in), or FR-primary when a degraded
    /// (non-exact) tier answered and an auditor is attached.
    std::optional<AuditVerdict> audit;
    /// What the answer is worth this tick. kExact unless the resilience
    /// ladder downgraded (kFft / kApprox / kHistogram) or admission
    /// control shed
    /// the tick outright (kShed: `current` repeats the previous answer and
    /// appeared/vanished are empty).
    AnswerTier tier = AnswerTier::kExact;
    /// Why the answer is below kExact (kNone at full quality; kShed when
    /// the tick never ran).
    DowngradeReason downgrade_reason = DowngradeReason::kNone;
    /// Per-query provenance: which tier answered, what each stage spent,
    /// cells filtered, pages touched, audit verdict when sampled. Always
    /// populated (a shed tick gets a stub naming the shed).
    ExplainRecord explain;
    bool shed = false;        ///< true iff admission control refused the tick
    double elapsed_ms = 0.0;  ///< wall time spent evaluating this tick
    double budget_ms = 0.0;   ///< configured deadline (0 = unbounded)
    /// MVCC epoch the answer was read at: 0 for live/serialized OnTick
    /// evaluation, the pinned epoch for RunSnapshotQuery answers. A
    /// snapshot delta is an *absolute* answer — appeared/vanished stay
    /// empty, because concurrent readers hold no shared standing state
    /// (delta semantics require serialized evaluation order).
    uint64_t epoch = 0;
    /// kHistogram/kFft tiers only: the optimistic superset
    /// (accepts+candidates); everything dense is inside it. Empty at other
    /// tiers.
    Region maybe_region;

    bool Changed() const {
      return !appeared.IsEmpty() || !vanished.IsEmpty();
    }
  };

  /// FR-primary: the monitor evaluates through `engine` (not owned); the
  /// caller keeps feeding the engine its update stream.
  PdrMonitor(FrEngine* engine, const Options& options)
      : engine_(engine), options_(options) {}

  /// PA-primary: evaluates through the approximate engine (not owned).
  /// `options.l` must match the engine's fixed l.
  PdrMonitor(PaEngine* primary, const Options& options)
      : pa_(primary), options_(options) {}

  /// Attaches a shadow auditor (PA-primary mode; not owned). The auditor's
  /// FR engine must be fed the same update stream as the PA engine.
  void SetAuditor(ShadowAuditor* auditor) { auditor_ = auditor; }

  /// Attaches a cost calibrator (FR-primary mode; not owned): each tick's
  /// query is predicted before it runs and the prediction scored.
  void SetCalibrator(CostCalibrator* calibrator) { calibrator_ = calibrator; }

  /// FR-primary only: the approximate engine the degradation ladder falls
  /// back to when the exact query overruns its deadline (not owned; must be
  /// fed the same update stream, with matching l). Without one the ladder
  /// skips straight to the histogram tier.
  void SetFallback(PaEngine* fallback) {
    fallback_ = fallback;
    executor_.reset();  // rebuilt lazily with the new fallback
  }

  /// FR-primary only: attaches the FFT whole-plane density engine as the
  /// ladder's middle rung (exact -> fft -> approx -> histogram; not owned;
  /// must be fed the same update stream as the FR engine). Also enables
  /// QueryBatch amortization: queries on the same q_t share one cached
  /// transform.
  void SetFftRung(FftDensityEngine* fft) {
    fft_ = fft;
    executor_.reset();  // rebuilt lazily with the new rung
  }

  /// Shares an admission controller across monitors/threads (not owned).
  /// When unset and `resilience.max_inflight > 0`, the monitor lazily
  /// creates a private one.
  void SetAdmissionController(AdmissionController* admission) {
    admission_ = admission;
  }

  /// Attaches an SLO monitor (not owned): every tick's latency/tier/shed
  /// outcome — and every sampled audit verdict — is fed to it, so burn-rate
  /// alerting and admission backoff track this standing query.
  void SetSloMonitor(SloMonitor* slo) { slo_ = slo; }

  /// Attaches a workload recorder (not owned): every tick's delta — shed
  /// or evaluated — is appended to the workload log with its result
  /// digests, so the run can be replayed bit-exactly offline.
  void SetRecorder(WorkloadRecorder* recorder) { recorder_ = recorder; }

  ~PdrMonitor();

  /// With a parallel policy, a sampled-in shadow audit runs off the query
  /// thread, overlapping the appeared/vanished delta computation; the tick
  /// joins it before returning, and the sampling dice stay on the query
  /// thread, so which ticks get audited — and every verdict — is identical
  /// to serial execution.
  void SetExecPolicy(const ExecPolicy& exec);
  const ExecPolicy& exec_policy() const { return exec_; }

  const Options& options() const { return options_; }

  /// Evaluates the standing query at `now` (engine must be advanced to
  /// `now` and fed all updates up to it) and returns the delta against
  /// the previous evaluation.
  Delta OnTick(Tick now);

  /// One query of a same-tick batch: evaluate (rho, l) at q_t = now +
  /// lookahead. Unlike the standing query, batch specs are ad hoc — a
  /// dashboard refreshing many thresholds, a dispatcher scanning several
  /// neighborhood sizes — so they bypass the delta/standing state.
  struct BatchQuerySpec {
    double rho = 0.0;
    double l = 30.0;
    Tick lookahead = 0;
  };

  /// FR-primary only: answers every spec at `now` in one pass, grouped by
  /// q_t so specs sharing a target tick amortize: with an attached FFT
  /// rung (SetFftRung) the first query on each q_t builds the density
  /// field — rasterize + one forward transform — and the rest reuse the
  /// cached spectrum, paying only a kernel multiply + classification
  /// (EXPERIMENTS.md has the measured amortization curve). Results come
  /// back in spec order, each stamped with its tier/EXPLAIN provenance
  /// exactly as a single ladder query would be. Does not touch the
  /// standing answer, admission control, or the recorder.
  std::vector<TieredResult> QueryBatch(Tick now,
                                       const std::vector<BatchQuerySpec>& specs);

  /// Forgets the previous answer (the next delta reports everything as
  /// appeared).
  void Reset() { has_previous_ = false; }

  /// Durability cadence: after every `every_ticks` evaluated ticks the
  /// monitor invokes `hook` — typically FrEngine::Checkpoint on the engine
  /// it watches, so the standing query's state hits disk at a bounded
  /// recovery distance. `every_ticks <= 0` (or an empty hook) disables.
  /// Shed ticks never run the hook and never advance the cadence counter:
  /// the standing state they would checkpoint did not change.
  void SetCheckpointHook(std::function<void()> hook, Tick every_ticks) {
    checkpoint_hook_ = std::move(hook);
    checkpoint_every_ = every_ticks;
    ticks_since_checkpoint_ = 0;
  }

  /// Online-scrub cadence: `hook` runs once per evaluated tick, after the
  /// tick's query (and any checkpoint) — typically DiskPager::Scrub with
  /// a small page budget, so the whole store gets verified incrementally
  /// while the system serves. The per-tick cost bound lives in the hook's
  /// budget, not here. Empty hook disables. Shed ticks skip it (they do
  /// no storage work to amortize against).
  void SetScrubHook(std::function<void()> hook) {
    scrub_hook_ = std::move(hook);
  }

  // --- MVCC concurrent mode (DESIGN.md §14) ------------------------------
  //
  // FR-primary with the engine built over a SnapshotManager
  // (FrEngine::Options::snapshots). One writer thread drives
  // ApplyUpdates; any number of reader threads call RunSnapshotQuery
  // concurrently — the writer never blocks on them, and every answer is
  // bit-identical to serialized execution at its pinned epoch
  // (tests/mvcc_interleave_test.cc). OnTick stays available for
  // single-threaded/serialized use but must not race ApplyUpdates.

  /// Commits the engine's current state as the first epoch so readers
  /// can pin before any updates arrive. Writer thread. Returns the
  /// committed epoch. Throws std::logic_error unless FR-primary with
  /// snapshots enabled.
  uint64_t StartConcurrent();

  /// Writer-thread tick: advances the engine (and the PA fallback, when
  /// one is attached with snapshots) to `now`, applies the batch, and
  /// commits it as one epoch. Records the batch + epoch to an attached
  /// WorkloadRecorder *before* the commit publishes, so a concurrent
  /// capture always logs an epoch's updates before any query pinned to
  /// it. Returns the committed epoch.
  uint64_t ApplyUpdates(Tick now, const std::vector<UpdateEvent>& updates);

  /// Reader-thread query: pins the latest committed epoch, runs the
  /// standing query against the frozen view, and returns an absolute
  /// delta (epoch set; appeared/vanished empty — see Delta::epoch).
  /// Thread-safe against the writer and other readers; touches no
  /// standing monitor state. Records to an attached WorkloadRecorder.
  Delta RunSnapshotQuery(const QueryControl& ctl = {});

  /// Builds the Delta a snapshot (or replayed serialized) FR answer maps
  /// to: tier kExact, filter/refine stages, work counts — exactly the
  /// shape OnTick's direct-exact path produces, minus appeared/vanished.
  /// Shared by RunSnapshotQuery and the replayer's concurrent verify so
  /// recorded and re-derived digests compare one code path against
  /// itself.
  static Delta MakeSnapshotDelta(Tick now, Tick q_t, double rho, double l,
                                 uint64_t epoch,
                                 const FrEngine::QueryResult& result,
                                 double elapsed_ms);

 private:
  void RequireConcurrent(const char* op) const;  // throws std::logic_error
  uint64_t CommitEpoch();
  ThreadPool* PoolForTick();  // null when the policy is serial
  ResilientExecutor* ExecutorForTick();   // null when the ladder is inactive
  AdmissionController* AdmissionForTick();  // null when admission is off

  FrEngine* engine_ = nullptr;
  PaEngine* pa_ = nullptr;
  PaEngine* fallback_ = nullptr;
  FftDensityEngine* fft_ = nullptr;
  ShadowAuditor* auditor_ = nullptr;
  CostCalibrator* calibrator_ = nullptr;
  AdmissionController* admission_ = nullptr;  // shared, not owned
  SloMonitor* slo_ = nullptr;                 // shared, not owned
  WorkloadRecorder* recorder_ = nullptr;      // shared, not owned
  std::unique_ptr<AdmissionController> owned_admission_;
  std::unique_ptr<ResilientExecutor> executor_;
  Options options_;
  ExecPolicy exec_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first parallel tick
  Region previous_;
  bool has_previous_ = false;
  int64_t ticks_total_ = 0;      // evaluated (non-shed) ticks
  int64_t degraded_ticks_ = 0;   // evaluated ticks answered below kExact
  std::function<void()> checkpoint_hook_;
  Tick checkpoint_every_ = 0;
  Tick ticks_since_checkpoint_ = 0;
  std::function<void()> scrub_hook_;
};

}  // namespace pdr

#endif  // PDR_CORE_MONITOR_H_
