// PA: the approximate polynomial PDR engine (Section 6).
//
// A thin, cost-accounted facade over ChebGrid: maintains the per-tick
// Chebyshev density model from the update stream and answers snapshot PDR
// queries by branch-and-bound over the polynomial bounds. Incurs no I/O —
// all coefficients stay in memory (Section 7.3: "PA incurs no I/O at
// all") — so its total cost is CPU only.

#ifndef PDR_CORE_PA_ENGINE_H_
#define PDR_CORE_PA_ENGINE_H_

#include <memory>

#include "pdr/cheb/cheb_grid.h"
#include "pdr/common/errors.h"
#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/parallel/exec_policy.h"
#include "pdr/resilience/deadline.h"

namespace pdr {

class ThreadPool;
struct PaSnapshotState;

namespace mvcc {
class SnapshotManager;
class VersionedChebModel;
}  // namespace mvcc

class PaEngine {
 public:
  struct Options {
    double extent = 1000.0;
    int poly_side = 10;   ///< g: macro-cells per side (g^2 polynomials)
    int degree = 5;       ///< k
    Tick horizon = 120;   ///< H = U + W
    double l = 30.0;      ///< fixed l-square edge (Section 6 limitation)
    int eval_grid = 1000; ///< m_d: finest branch-and-bound resolution
    ExecPolicy exec;      ///< serial by default; see SetExecPolicy
    /// Non-null: the engine versions its Chebyshev cells for MVCC
    /// snapshot reads (PrepareCommit/CaptureState; DESIGN.md §14). Not
    /// owned; must outlive the engine.
    mvcc::SnapshotManager* snapshots = nullptr;
  };

  explicit PaEngine(const Options& options);
  ~PaEngine();

  /// Switches how Query fans the per-macro-cell branch-and-bound out.
  /// Results stay bit-identical to serial at any thread count (per-cell
  /// regions merge in cell order).
  void SetExecPolicy(const ExecPolicy& exec);
  const ExecPolicy& exec_policy() const { return options_.exec; }

  void AdvanceTo(Tick now) { model_.AdvanceTo(now); }
  Tick now() const { return model_.now(); }
  void Apply(const UpdateEvent& update) { model_.Apply(update); }

  struct QueryResult {
    Region region;
    CostBreakdown cost;  ///< io_ms always 0 for PA
    BnbStats bnb;
  };

  /// Approximate snapshot PDR query (rho, options().l, q_t) via
  /// branch-and-bound.
  ///
  /// Throws HorizonError when q_t lies outside [now, now + H] (the
  /// Chebyshev slices only cover the horizon window). An active `ctl` is
  /// checked at entry and at every branch-and-bound node; a cancelled
  /// query throws CancelledError within one node expansion.
  QueryResult Query(Tick q_t, double rho, const QueryControl& ctl = {});

  /// The paper's "trivial approach" (full grid scan) for the ablation.
  QueryResult QueryGridScan(Tick q_t, double rho);

  /// Interval PDR query: union of snapshot answers over [q_lo, q_hi].
  /// Both endpoints must lie inside the horizon (HorizonError otherwise).
  QueryResult QueryInterval(Tick q_lo, Tick q_hi, double rho,
                            const QueryControl& ctl = {});

  /// Approximated point density at `p`, tick `t`.
  double Density(Tick t, Vec2 p) const { return model_.Density(t, p); }

  const ChebGrid& model() const { return model_; }
  const Options& options() const { return options_; }

  // --- MVCC commit hooks (Options.snapshots non-null; writer thread) ----

  /// Publishes every Chebyshev cell dirtied since the last commit into
  /// the version store at the open epoch. Call immediately before
  /// SnapshotManager::Commit; throws std::logic_error without snapshots.
  void PrepareCommit();

  /// The frozen scalar state (clock) to hand to SnapshotManager::Commit
  /// as EpochStates::pa.
  std::shared_ptr<const PaSnapshotState> CaptureState() const;

  mvcc::SnapshotManager* snapshots() const { return options_.snapshots; }
  const mvcc::VersionedChebModel* versioned_cheb() const {
    return vcheb_.get();
  }

 private:
  ThreadPool* PoolForQuery();  // null when the policy is serial
  void ValidateQt(Tick q_t) const;  // throws HorizonError

  Options options_;
  ChebGrid model_;
  std::unique_ptr<mvcc::VersionedChebModel> vcheb_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first parallel query
};

}  // namespace pdr

#endif  // PDR_CORE_PA_ENGINE_H_
