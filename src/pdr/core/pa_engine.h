// PA: the approximate polynomial PDR engine (Section 6).
//
// A thin, cost-accounted facade over ChebGrid: maintains the per-tick
// Chebyshev density model from the update stream and answers snapshot PDR
// queries by branch-and-bound over the polynomial bounds. Incurs no I/O —
// all coefficients stay in memory (Section 7.3: "PA incurs no I/O at
// all") — so its total cost is CPU only.

#ifndef PDR_CORE_PA_ENGINE_H_
#define PDR_CORE_PA_ENGINE_H_

#include "pdr/cheb/cheb_grid.h"
#include "pdr/common/region.h"
#include "pdr/common/stats.h"

namespace pdr {

class PaEngine {
 public:
  struct Options {
    double extent = 1000.0;
    int poly_side = 10;   ///< g: macro-cells per side (g^2 polynomials)
    int degree = 5;       ///< k
    Tick horizon = 120;   ///< H = U + W
    double l = 30.0;      ///< fixed l-square edge (Section 6 limitation)
    int eval_grid = 1000; ///< m_d: finest branch-and-bound resolution
  };

  explicit PaEngine(const Options& options);

  void AdvanceTo(Tick now) { model_.AdvanceTo(now); }
  Tick now() const { return model_.now(); }
  void Apply(const UpdateEvent& update) { model_.Apply(update); }

  struct QueryResult {
    Region region;
    CostBreakdown cost;  ///< io_ms always 0 for PA
    BnbStats bnb;
  };

  /// Approximate snapshot PDR query (rho, options().l, q_t) via
  /// branch-and-bound.
  QueryResult Query(Tick q_t, double rho);

  /// The paper's "trivial approach" (full grid scan) for the ablation.
  QueryResult QueryGridScan(Tick q_t, double rho);

  /// Interval PDR query: union of snapshot answers over [q_lo, q_hi].
  QueryResult QueryInterval(Tick q_lo, Tick q_hi, double rho);

  /// Approximated point density at `p`, tick `t`.
  double Density(Tick t, Vec2 p) const { return model_.Density(t, p); }

  const ChebGrid& model() const { return model_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  ChebGrid model_;
};

}  // namespace pdr

#endif  // PDR_CORE_PA_ENGINE_H_
