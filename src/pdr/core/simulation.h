// Dataset replay plumbing shared by benches, examples, and integration
// tests: feeds a generated update stream into any set of engines in tick
// order, timing each engine's maintenance cost separately (the quantity of
// Fig. 9(b)).

#ifndef PDR_CORE_SIMULATION_H_
#define PDR_CORE_SIMULATION_H_

#include <tuple>
#include <vector>

#include "pdr/common/stats.h"
#include "pdr/mobility/generator.h"

namespace pdr {

/// Anything that consumes the update stream tick by tick. FrEngine,
/// PaEngine, Oracle, and the raw substrates all satisfy this shape; the
/// adapter below erases the concrete type.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  virtual void AdvanceTo(Tick now) = 0;
  virtual void Apply(const UpdateEvent& update) = 0;
};

/// Wraps any object with AdvanceTo/Apply members as an UpdateSink.
template <typename T>
class SinkAdapter final : public UpdateSink {
 public:
  explicit SinkAdapter(T* target) : target_(target) {}
  void AdvanceTo(Tick now) override { target_->AdvanceTo(now); }
  void Apply(const UpdateEvent& update) override { target_->Apply(update); }

 private:
  T* target_;
};

/// Per-sink maintenance cost over a replay.
struct SinkTiming {
  double total_ms = 0.0;
  size_t updates = 0;

  double MsPerUpdate() const {
    return updates > 0 ? total_ms / static_cast<double>(updates) : 0.0;
  }
  double UsPerUpdate() const { return MsPerUpdate() * 1e3; }
};

/// Replays `dataset` ticks [0, upto] (or all when upto < 0) into every
/// sink, returning each sink's accumulated maintenance time.
std::vector<SinkTiming> Replay(const Dataset& dataset,
                               const std::vector<UpdateSink*>& sinks,
                               Tick upto = -1);

/// Convenience: replay into concrete engines (any mix of pointers that
/// have AdvanceTo/Apply). Example:
///   ReplayInto(ds, fr, pa, oracle);
template <typename... Engines>
std::vector<SinkTiming> ReplayInto(const Dataset& dataset, Tick upto,
                                   Engines*... engines) {
  std::vector<SinkTiming> timings;
  // Build adapters with automatic storage; Replay only uses them inside.
  std::tuple<SinkAdapter<Engines>...> adapters{SinkAdapter<Engines>(
      engines)...};
  std::vector<UpdateSink*> sinks;
  std::apply([&](auto&... a) { (sinks.push_back(&a), ...); }, adapters);
  return Replay(dataset, sinks, upto);
}

}  // namespace pdr

#endif  // PDR_CORE_SIMULATION_H_
