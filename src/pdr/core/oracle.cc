#include "pdr/core/oracle.h"

#include "pdr/histogram/filter.h"
#include "pdr/sweep/plane_sweep.h"

namespace pdr {

std::vector<Vec2> Oracle::InDomainPositions(Tick t) const {
  std::vector<Vec2> positions = table_.PositionsAt(t);
  std::vector<Vec2> in_domain;
  in_domain.reserve(positions.size());
  for (const Vec2& p : positions) {
    if (p.x >= 0 && p.x <= extent_ && p.y >= 0 && p.y <= extent_) {
      in_domain.push_back(p);
    }
  }
  return in_domain;
}

int64_t Oracle::CountInSquare(Tick t, Vec2 c, double l) const {
  const Rect square = Rect::CenteredSquare(c, l);
  int64_t count = 0;
  for (const Vec2& p : InDomainPositions(t)) {
    if (square.ContainsLSquare(p)) ++count;
  }
  return count;
}

Region Oracle::DenseRegions(Tick t, double rho, double l) const {
  const Rect domain(0, 0, extent_, extent_);
  const int64_t n_min = MinObjectsForDensity(rho, l);
  const std::vector<Rect> rects =
      SweepCell(domain, InDomainPositions(t), l, n_min);
  return Region(rects).Coalesced();
}

Region Oracle::DenseRegionsInterval(Tick t_lo, Tick t_hi, double rho,
                                    double l) const {
  Region all;
  for (Tick t = t_lo; t <= t_hi; ++t) all.Add(DenseRegions(t, rho, l));
  return all.Coalesced();
}

}  // namespace pdr
