// Brute-force ground-truth oracle.
//
// Maintains every live object's reported motion in a flat table and
// answers PDR queries exactly by sweeping the *whole domain* as a single
// candidate cell (reusing the plane-sweep refinement). Quadratic-ish and
// index-free, so it is the reference implementation the exact FR engine is
// validated against in tests; it also provides direct point-density
// evaluation (Definition 2) for pointwise property tests.

#ifndef PDR_CORE_ORACLE_H_
#define PDR_CORE_ORACLE_H_

#include <vector>

#include "pdr/common/geometry.h"
#include "pdr/common/region.h"
#include "pdr/mobility/object.h"

namespace pdr {

class Oracle {
 public:
  explicit Oracle(double extent) : extent_(extent) {}

  void AdvanceTo(Tick now) { now_ = now; }
  Tick now() const { return now_; }
  void Apply(const UpdateEvent& update) { table_.Apply(update); }

  double extent() const { return extent_; }
  size_t size() const { return table_.size(); }

  /// Predicted positions of all live objects at tick t that fall inside
  /// the closed domain (the counting convention shared by every engine).
  std::vector<Vec2> InDomainPositions(Tick t) const;

  /// Exact number of objects inside the half-open l-square centered at `c`
  /// (Definition 1 edge semantics) at tick t.
  int64_t CountInSquare(Tick t, Vec2 c, double l) const;

  /// Exact point density d_t(p) (Definition 2).
  double PointDensity(Tick t, Vec2 p, double l) const {
    return static_cast<double>(CountInSquare(t, p, l)) / (l * l);
  }

  /// Exact union of all rho-dense regions at tick t (snapshot PDR query,
  /// Definition 4), as coalesced half-open rectangles.
  Region DenseRegions(Tick t, double rho, double l) const;

  /// Exact interval PDR query (Definition 5): union of the snapshot
  /// answers over q_t in [t_lo, t_hi].
  Region DenseRegionsInterval(Tick t_lo, Tick t_hi, double rho,
                              double l) const;

 private:
  double extent_;
  Tick now_ = 0;
  ObjectTable table_;
};

}  // namespace pdr

#endif  // PDR_CORE_ORACLE_H_
