// FR: the exact filtering-refinement PDR engine (Section 5).
//
// Maintains the density histogram (filter) and a TPR-tree (refinement)
// from the same update stream. A snapshot query (rho, l, q_t):
//
//   1. Filter: classify every histogram cell as accept / reject /
//      candidate from the conservative and expansive neighborhood counts
//      (Algorithm 1). Accepted cells enter the answer whole; rejected
//      cells are discarded.
//   2. Refine: for each candidate cell, run a spatio-temporal range query
//      over the TPR-tree with the cell expanded by l/2 (the square S of
//      Section 5.3), then the two-level plane sweep (Algorithms 2-3)
//      produces the exact dense rectangles inside the cell.
//
// Cost accounting follows the paper: CPU is measured wall time, I/O is
// the TPR-tree's physical page reads charged at io_ms each (the histogram
// itself is pinned in memory and charged no I/O). Queries may optionally
// run cold (buffer pool dropped first), matching the paper's per-query
// averages over a workload.
//
// The engine also exposes the two DH-only approximations used as
// comparison points in Fig. 8 (optimistic = accepts + candidates,
// pessimistic = accepts only).

#ifndef PDR_CORE_FR_ENGINE_H_
#define PDR_CORE_FR_ENGINE_H_

#include <memory>
#include <string>

#include "pdr/common/errors.h"
#include "pdr/common/region.h"
#include "pdr/common/stats.h"
#include "pdr/histogram/density_histogram.h"
#include "pdr/histogram/filter.h"
#include "pdr/index/object_index.h"
#include "pdr/parallel/exec_policy.h"
#include "pdr/resilience/deadline.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/sweep/plane_sweep.h"

namespace pdr {

class ThreadPool;
struct FrSnapshotState;

namespace mvcc {
class SnapshotManager;
class VersionedPager;
class VersionedHistogram;
}  // namespace mvcc

/// Which predictive index backs the refinement step (Section 4: "Several
/// indexing methods have been proposed for linear movement, which we can
/// adopt in our framework").
enum class IndexKind {
  kTprTree,  ///< the paper's choice (time-parameterized R-tree)
  kBxTree,   ///< B+-tree over Z-order keys with query enlargement
};

class FrEngine {
 public:
  struct Options {
    double extent = 1000.0;
    int histogram_side = 100;  ///< m
    Tick horizon = 120;        ///< H = U + W
    size_t buffer_pages = 256; ///< index buffer pool
    double io_ms = 10.0;       ///< charge per physical page read
    IndexKind index = IndexKind::kTprTree;
    Tick max_update_interval = 60;  ///< U (B^x-tree phase sizing)
    ExecPolicy exec;           ///< serial by default; see SetExecPolicy
    /// Non-empty: durable storage — the index lives on a DiskPager in this
    /// directory (WAL + checkpoints; see storage/disk_pager.h), and
    /// construction recovers any existing store, restoring the index, the
    /// histogram, and both clocks to the last checkpoint. Empty: in-memory.
    std::string storage_dir;
    /// Crash-fault injection for the durable store (tests only; not owned).
    FaultInjector* fault_injector = nullptr;
    /// Non-null: the engine participates in MVCC snapshot reads — the
    /// index runs over a copy-on-write VersionedPager, the histogram
    /// records dirty rows, and PrepareCommit()/CaptureState() publish a
    /// consistent frozen view per SnapshotManager::Commit (DESIGN.md
    /// §14). Mutually exclusive with storage_dir (std::invalid_argument).
    /// Not owned; must outlive the engine.
    mvcc::SnapshotManager* snapshots = nullptr;
  };

  explicit FrEngine(const Options& options);
  ~FrEngine();

  /// Switches how refinement fans out. Per-candidate-cell results merge in
  /// row-major cell order, so the answer (and every counter derived from
  /// it) is bit-identical to serial execution at any thread count.
  void SetExecPolicy(const ExecPolicy& exec);
  const ExecPolicy& exec_policy() const { return options_.exec; }

  void AdvanceTo(Tick now);
  Tick now() const { return histogram_.now(); }

  /// Applies one update to both the histogram and the TPR-tree.
  void Apply(const UpdateEvent& update);

  struct QueryResult {
    Region region;        ///< exact dense regions (coalesced)
    CostBreakdown cost;
    int64_t accepted_cells = 0;
    int64_t rejected_cells = 0;
    int64_t candidate_cells = 0;
    int64_t objects_fetched = 0;  ///< leaf entries returned by range queries
    SweepStats sweep;
    double filter_ms = 0.0;  ///< CPU spent in the filtering step
    double refine_ms = 0.0;  ///< CPU spent in refinement (fan-out + merge)
    /// Flight-recorder correlation key for this query's micro-events (0
    /// when the recorder is disabled).
    uint32_t query_id = 0;
  };

  /// Exact snapshot PDR query (Definition 4).
  /// `cold_cache` drops the TPR buffer pool first so the I/O charge
  /// reflects an isolated query (the paper's per-query reporting).
  ///
  /// Throws HorizonError when q_t lies outside [now, now + H]: the
  /// histogram and the index hold per-tick state for the horizon window
  /// only, so answers past it would be silent extrapolation.
  ///
  /// An active `ctl` (deadline and/or cancel token) is checked at entry,
  /// before each candidate cell's refinement, per plane-sweep strip at
  /// both sweep levels, and by ParallelFor runners between cells; a
  /// cancelled query throws CancelledError within one work quantum. The
  /// default (inactive) control leaves the query path bit-identical to
  /// uncontrolled execution.
  QueryResult Query(Tick q_t, double rho, double l, bool cold_cache = false,
                    const QueryControl& ctl = {});

  /// Interval PDR query (Definition 5): union over [q_lo, q_hi]. Both
  /// endpoints must lie inside the horizon (HorizonError otherwise).
  QueryResult QueryInterval(Tick q_lo, Tick q_hi, double rho, double l,
                            const QueryControl& ctl = {});

  /// Filter step alone, timed — the "DH" method of Fig. 8/9. Validates
  /// q_t against the horizon like Query.
  struct DhResult {
    Region region;
    double cpu_ms = 0.0;
    FilterResult filter;
  };
  DhResult DhOnlyQuery(Tick q_t, double rho, double l, bool optimistic);

  const DensityHistogram& histogram() const { return histogram_; }
  ObjectIndex& index() { return *index_; }
  const ObjectIndex& index() const { return *index_; }
  const Options& options() const { return options_; }

  /// Durability: makes the whole engine state (index pages + tree metadata
  /// + histogram + clocks) durable as one atomic checkpoint. No-op when
  /// `storage_dir` is empty. Throws CrashError under fault injection; the
  /// engine must then be discarded (as a killed process would be).
  void Checkpoint();

  /// True when the engine writes durable storage.
  bool durable() const { return index_->durable(); }

  /// True when construction recovered a pre-existing store (queries then
  /// answer exactly as the engine that wrote the last checkpoint did).
  bool recovered() const { return index_->recovered(); }

  // --- MVCC commit hooks (Options.snapshots non-null; writer thread) ----

  /// Publishes every block dirtied since the last commit (flushes the
  /// index's buffer pool, then copies dirty pages and histogram rows into
  /// their version stores at the open epoch). Call immediately before
  /// SnapshotManager::Commit; throws std::logic_error without snapshots.
  void PrepareCommit();

  /// The frozen scalar state (clock, index root, read-view) to hand to
  /// SnapshotManager::Commit as EpochStates::fr.
  std::shared_ptr<const FrSnapshotState> CaptureState() const;

  mvcc::SnapshotManager* snapshots() const { return options_.snapshots; }
  const mvcc::VersionedPager* versioned_pager() const {
    return versioned_pager_.get();
  }
  const mvcc::VersionedHistogram* versioned_histogram() const {
    return vhist_.get();
  }

 private:
  ThreadPool* PoolForQuery();  // null when the policy is serial
  void ValidateQt(Tick q_t) const;  // throws HorizonError

  Options options_;
  DensityHistogram histogram_;
  // Declared before index_: the index's buffer pool writes through this
  // pager, so it must be constructed first and destroyed last.
  std::unique_ptr<mvcc::VersionedPager> versioned_pager_;
  std::unique_ptr<ObjectIndex> index_;
  std::unique_ptr<mvcc::VersionedHistogram> vhist_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first parallel query
};

/// The filter + refine + merge body of FrEngine::Query against explicit
/// inputs: a counter slice (live Slice(q_t) or an MVCC materialization)
/// and an index view (the live index or a SnapshotIndexView over frozen
/// pages). Both callers run the exact same code path, which is what makes
/// snapshot answers bit-identical to serialized execution.
FrEngine::QueryResult FrQueryCore(
    const Grid& grid, const std::vector<DensityHistogram::Counter>& slice,
    ObjectIndex& index, ThreadPool* pool, double io_ms, Tick q_t, double rho,
    double l, bool cold_cache, const QueryControl& ctl);

}  // namespace pdr

#endif  // PDR_CORE_FR_ENGINE_H_
