#include "pdr/core/pa_engine.h"

namespace pdr {

PaEngine::PaEngine(const Options& options)
    : options_(options),
      model_({options.extent, options.poly_side, options.degree,
              options.horizon, options.l}) {}

PaEngine::QueryResult PaEngine::Query(Tick q_t, double rho) {
  Timer timer;
  QueryResult result;
  result.region = model_.QueryDense(q_t, rho, options_.eval_grid, &result.bnb);
  result.cost.cpu_ms = timer.ElapsedMillis();
  return result;
}

PaEngine::QueryResult PaEngine::QueryGridScan(Tick q_t, double rho) {
  Timer timer;
  QueryResult result;
  result.region =
      model_.QueryDenseGridScan(q_t, rho, options_.eval_grid, &result.bnb);
  result.cost.cpu_ms = timer.ElapsedMillis();
  return result;
}

PaEngine::QueryResult PaEngine::QueryInterval(Tick q_lo, Tick q_hi,
                                              double rho) {
  QueryResult total;
  Region all;
  for (Tick t = q_lo; t <= q_hi; ++t) {
    QueryResult snap = Query(t, rho);
    all.Add(snap.region);
    total.cost += snap.cost;
    total.bnb.nodes_visited += snap.bnb.nodes_visited;
    total.bnb.accepted_boxes += snap.bnb.accepted_boxes;
    total.bnb.pruned_boxes += snap.bnb.pruned_boxes;
    total.bnb.point_evals += snap.bnb.point_evals;
  }
  total.region = all.Coalesced();
  return total;
}

}  // namespace pdr
