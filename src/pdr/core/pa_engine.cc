#include "pdr/core/pa_engine.h"

#include <stdexcept>

#include "pdr/core/fr_snapshot_state.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/versioned_cheb.h"
#include "pdr/obs/obs.h"
#include "pdr/parallel/thread_pool.h"

namespace pdr {
namespace {

void FinishPaSpan(TraceSpan* span, const PaEngine::QueryResult& result) {
  if (!span->active()) return;
  span->SetAttr("cpu_ms", result.cost.cpu_ms);
  span->SetAttr("nodes_visited", result.bnb.nodes_visited);
  span->SetAttr("accepted_boxes", result.bnb.accepted_boxes);
  span->SetAttr("pruned_boxes", result.bnb.pruned_boxes);
  span->SetAttr("point_evals", result.bnb.point_evals);
}

}  // namespace

PaEngine::PaEngine(const Options& options)
    : options_(options),
      model_({options.extent, options.poly_side, options.degree,
              options.horizon, options.l}) {
  if (options_.snapshots != nullptr) {
    model_.EnableDirtyTracking();
    vcheb_ = std::make_unique<mvcc::VersionedChebModel>(&model_,
                                                        options_.snapshots);
  }
}

PaEngine::~PaEngine() = default;

void PaEngine::PrepareCommit() {
  if (vcheb_ == nullptr) {
    throw std::logic_error("PaEngine::PrepareCommit: snapshots not enabled");
  }
  vcheb_->PublishDirty();
}

std::shared_ptr<const PaSnapshotState> PaEngine::CaptureState() const {
  auto state = std::make_shared<PaSnapshotState>();
  state->now = model_.now();
  return state;
}

void PaEngine::SetExecPolicy(const ExecPolicy& exec) {
  options_.exec = exec;
  pool_.reset();  // rebuilt lazily at the new width
}

ThreadPool* PaEngine::PoolForQuery() {
  if (!options_.exec.IsParallel()) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.exec.threads);
  }
  return pool_.get();
}

void PaEngine::ValidateQt(Tick q_t) const {
  ValidateHorizon("pa", q_t, model_.now(), options_.horizon);
}

PaEngine::QueryResult PaEngine::Query(Tick q_t, double rho,
                                      const QueryControl& ctl) {
  ValidateQt(q_t);
  // Entry cancellation point (see FrEngine::Query).
  if (ctl.active()) ctl.Check();
  TraceSpan span("pa.query");
  span.SetAttr("q_t", static_cast<int64_t>(q_t));
  span.SetAttr("rho", rho);
  Timer timer;
  QueryResult result;
  result.region =
      model_.QueryDense(q_t, rho, options_.eval_grid, &result.bnb,
                        PoolForQuery(), ctl.active() ? &ctl : nullptr);
  result.cost.cpu_ms = timer.ElapsedMillis();

  static Counter& queries =
      MetricsRegistry::Global().GetCounter("pdr.pa.queries");
  static Histogram& query_ms =
      MetricsRegistry::Global().GetHistogram("pdr.pa.query_ms");
  queries.Increment();
  query_ms.Observe(result.cost.cpu_ms);
  FinishPaSpan(&span, result);
  return result;
}

PaEngine::QueryResult PaEngine::QueryGridScan(Tick q_t, double rho) {
  ValidateQt(q_t);
  TraceSpan span("pa.query_grid_scan");
  Timer timer;
  QueryResult result;
  result.region =
      model_.QueryDenseGridScan(q_t, rho, options_.eval_grid, &result.bnb);
  result.cost.cpu_ms = timer.ElapsedMillis();
  FinishPaSpan(&span, result);
  return result;
}

PaEngine::QueryResult PaEngine::QueryInterval(Tick q_lo, Tick q_hi,
                                              double rho,
                                              const QueryControl& ctl) {
  ValidateQt(q_lo);
  ValidateQt(q_hi);
  TraceSpan span("pa.query_interval");
  span.SetAttr("q_lo", static_cast<int64_t>(q_lo));
  span.SetAttr("q_hi", static_cast<int64_t>(q_hi));
  QueryResult total;
  Region all;
  for (Tick t = q_lo; t <= q_hi; ++t) {
    QueryResult snap = Query(t, rho, ctl);
    all.Add(snap.region);
    total.cost += snap.cost;
    total.bnb += snap.bnb;
  }
  total.region = all.Coalesced();
  FinishPaSpan(&span, total);
  return total;
}

}  // namespace pdr
