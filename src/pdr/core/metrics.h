// Accuracy metrics of Section 7.2.
//
// With D the true union of dense regions and D' the regions a method
// reports:
//   r_fp = area(D' \ D) / area(D)   — can exceed 100%
//   r_fn = area(D \ D') / area(D)   — in [0, 100%]
// (Both are normalized by the *true* area; the paper's remark that r_fp
// may exceed 100% while r_fn cannot pins down this reading of the garbled
// formulas.)

#ifndef PDR_CORE_METRICS_H_
#define PDR_CORE_METRICS_H_

#include "pdr/common/region.h"

namespace pdr {

struct AccuracyMetrics {
  double false_positive_ratio = 0.0;  ///< r_fp
  double false_negative_ratio = 0.0;  ///< r_fn
  double truth_area = 0.0;            ///< area(D)
  double reported_area = 0.0;         ///< area(D')
  double overlap_area = 0.0;          ///< area(D ∩ D')

  /// Jaccard index of the two regions (extra diagnostic, not in paper).
  double Jaccard() const {
    const double uni = truth_area + reported_area - overlap_area;
    return uni > 0 ? overlap_area / uni : 1.0;
  }
};

/// Computes r_fp / r_fn of `reported` against ground truth `truth`.
/// When the truth is empty, r_fn = 0 and r_fp is reported as
/// area(D') / domain_area if `domain_area` > 0 (else 0): a method that
/// reports anything when nothing is dense is penalized but finitely.
AccuracyMetrics CompareRegions(const Region& truth, const Region& reported,
                               double domain_area = 0.0);

}  // namespace pdr

#endif  // PDR_CORE_METRICS_H_
