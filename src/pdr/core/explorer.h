// Density exploration on top of exact PDR queries.
//
// The paper's query model takes a threshold rho and returns all rho-dense
// regions. Its motivating applications often ask the inverse question:
// "how dense does it get, and where?" Because the PDR answer is monotone
// in rho (raising the threshold only shrinks the answer — every point's
// density is a fixed number), the largest achieved density can be found
// by binary search over the integer object count n = rho * l^2, each
// probe being one exact FR query. The same monotonicity yields a full
// density profile (answers at a ladder of thresholds) usable for
// choropleth-style displays.

#ifndef PDR_CORE_EXPLORER_H_
#define PDR_CORE_EXPLORER_H_

#include <vector>

#include "pdr/common/region.h"
#include "pdr/core/fr_engine.h"

namespace pdr {

/// The maximum point density at one timestamp and where it is attained.
struct PeakDensity {
  int64_t count = 0;   ///< max objects in any l-square neighborhood
  double rho = 0.0;    ///< count / l^2
  Region region;       ///< the count-dense region (peak neighborhood(s))
  int probes = 0;      ///< FR queries spent by the search
};

/// Finds the largest integer n such that some point has >= n objects in
/// its l-square at q_t, by exponential + binary search (O(log n_max)
/// exact FR queries). `count` is 0 and `region` empty when no objects are
/// in the domain.
PeakDensity FindPeakDensity(FrEngine& engine, Tick q_t, double l);

/// One rung of a density profile ladder.
struct DensityBand {
  int64_t min_count = 0;  ///< threshold in objects per l-square
  double rho = 0.0;
  Region region;          ///< where density >= min_count
};

/// Exact dense regions at `levels` thresholds (expressed in objects per
/// l-square). Bands are nested: band[i+1].region is a subset of
/// band[i].region when levels are increasing.
std::vector<DensityBand> DensityProfile(FrEngine& engine, Tick q_t,
                                        double l,
                                        const std::vector<int64_t>& levels);

}  // namespace pdr

#endif  // PDR_CORE_EXPLORER_H_
