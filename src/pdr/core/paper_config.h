// Experimental setup of the paper (Table 1), reconstructed.
//
// The available paper text is an OCR-style dump that dropped leading
// digits from most numbers in Table 1. DESIGN.md documents the
// reconstruction evidence (quoted memory footprints, the stated rho range
// for CH500K, values used by the companion papers); this header is the
// single point of truth for the chosen values so every bench/test derives
// from one place and alternative interpretations are one edit away.

#ifndef PDR_CORE_PAPER_CONFIG_H_
#define PDR_CORE_PAPER_CONFIG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "pdr/common/geometry.h"

namespace pdr {

struct PaperConfig {
  // --- domain & motion -----------------------------------------------------
  double extent = 1000.0;          ///< 1,000 x 1,000 mile plane
  Tick max_update_interval = 60;   ///< U ("maximum update interval")
  Tick prediction_window = 60;     ///< W ("prediction window length")
  Tick horizon() const { return max_update_interval + prediction_window; }

  // --- storage cost model ---------------------------------------------------
  size_t page_size = 4096;        ///< "Page size 4K"
  double buffer_fraction = 0.10;  ///< "Buffer size 10% of dataset size"
  double io_ms = 10.0;            ///< "Random disk access time 10 ms"

  // --- query parameters -----------------------------------------------------
  std::vector<double> l_values{30.0, 60.0};       ///< edge of the l-square
  double default_l = 30.0;
  std::vector<int> rel_thresholds{1, 2, 3, 4, 5}; ///< varrho
  int default_rel_threshold = 1;

  // --- datasets --------------------------------------------------------------
  std::vector<int> object_counts{10'000, 100'000, 500'000};  ///< CH10K..CH500K
  int default_objects = 100'000;                             ///< CH100K

  // --- density histogram (DH / FR filter) ------------------------------------
  std::vector<int> histogram_cells{10'000, 40'000, 62'500};  ///< m^2
  int default_histogram_side = 100;                          ///< m = 100

  // --- polynomial approximation (PA) -----------------------------------------
  std::vector<int> polynomial_counts{100, 1'600};  ///< g^2
  int default_poly_side = 10;                      ///< g = 10
  std::vector<int> degrees{3, 4, 5};
  int default_degree = 5;
  int eval_grid = 1000;  ///< m_d (value missing from the text; see DESIGN.md)

  /// Absolute density threshold: rho = N * varrho / 10^6 (Section 7:
  /// "Given N objects in the region of area 10^6 square miles").
  double RhoFor(int num_objects, int rel_threshold) const {
    return static_cast<double>(num_objects) * rel_threshold /
           (extent * extent);
  }

  /// TPR-tree buffer pool pages for a dataset of `num_objects` (10% of the
  /// dataset's leaf-entry footprint, minimum 16 pages).
  size_t BufferPagesFor(int num_objects) const;

  /// Human-readable dump used by bench_table1_setup.
  std::string ToString() const;
};

/// Scale factor for bench workloads: PDR_BENCH_SCALE env var (default 0.1)
/// multiplies the paper's object counts so the default `ctest`/bench run
/// stays laptop-quick; --full / PDR_BENCH_SCALE=1 reproduces paper scale.
double BenchScaleFromEnv();

}  // namespace pdr

#endif  // PDR_CORE_PAPER_CONFIG_H_
