#include "pdr/core/simulation.h"

#include <algorithm>

namespace pdr {

std::vector<SinkTiming> Replay(const Dataset& dataset,
                               const std::vector<UpdateSink*>& sinks,
                               Tick upto) {
  const Tick last = upto < 0 ? dataset.duration()
                             : std::min(upto, dataset.duration());
  std::vector<SinkTiming> timings(sinks.size());
  for (Tick t = 0; t <= last; ++t) {
    const auto& batch = dataset.ticks[t];
    for (size_t s = 0; s < sinks.size(); ++s) {
      Timer timer;
      sinks[s]->AdvanceTo(t);
      for (const UpdateEvent& update : batch) sinks[s]->Apply(update);
      timings[s].total_ms += timer.ElapsedMillis();
      timings[s].updates += batch.size();
    }
  }
  return timings;
}

}  // namespace pdr
