#include "pdr/core/monitor.h"

namespace pdr {

PdrMonitor::Delta PdrMonitor::OnTick(Tick now) {
  Delta delta;
  delta.now = now;
  delta.q_t = now + options_.lookahead;
  auto result = engine_->Query(delta.q_t, options_.rho, options_.l);
  delta.cost = result.cost;
  delta.current = std::move(result.region);
  if (has_previous_) {
    delta.appeared = RegionDifference(delta.current, previous_);
    delta.vanished = RegionDifference(previous_, delta.current);
  } else {
    delta.appeared = delta.current.Coalesced();
  }
  previous_ = delta.current;
  has_previous_ = true;
  return delta;
}

}  // namespace pdr
