#include "pdr/core/monitor.h"

#include <future>
#include <map>
#include <stdexcept>
#include <utility>

#include "pdr/fft/fft_engine.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/snapshot_query.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/obs/slo.h"
#include "pdr/obs/workload_log.h"
#include "pdr/parallel/thread_pool.h"

namespace pdr {

PdrMonitor::~PdrMonitor() = default;

ResilientExecutor* PdrMonitor::ExecutorForTick() {
  const ResilienceOptions& r = options_.resilience;
  const bool ladder_active = r.deadline_ms > 0.0 || !r.enable_exact;
  if (!ladder_active) return nullptr;
  if (pa_ != nullptr) {
    throw std::logic_error(
        "PdrMonitor: the degradation ladder requires FR-primary mode "
        "(its rungs are FR exact -> FFT field -> PA approximate -> "
        "FR histogram)");
  }
  if (executor_ == nullptr) {
    executor_ =
        std::make_unique<ResilientExecutor>(engine_, fallback_, r, fft_);
  }
  return executor_.get();
}

AdmissionController* PdrMonitor::AdmissionForTick() {
  if (admission_ != nullptr) return admission_;
  if (options_.resilience.max_inflight <= 0) return nullptr;
  if (owned_admission_ == nullptr) {
    owned_admission_ = std::make_unique<AdmissionController>(
        AdmissionController::Options{options_.resilience.max_inflight});
  }
  return owned_admission_.get();
}

void PdrMonitor::SetExecPolicy(const ExecPolicy& exec) {
  exec_ = exec;
  pool_.reset();  // rebuilt lazily at the new width
}

ThreadPool* PdrMonitor::PoolForTick() {
  if (!exec_.IsParallel()) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(exec_.threads);
  }
  return pool_.get();
}

PdrMonitor::Delta PdrMonitor::OnTick(Tick now) {
  TraceSpan span("monitor.tick");
  Timer timer;
  Delta delta;
  delta.now = now;
  delta.q_t = now + options_.lookahead;
  delta.budget_ms = options_.resilience.deadline_ms;

  // Admission control first: when too many evaluations are already in
  // flight (shared controller across monitors/threads), shed this tick
  // outright — repeat the previous answer, leave the standing state (and
  // previous_) untouched, and report tier kShed.
  AdmissionController::Permit permit;
  if (AdmissionController* admission = AdmissionForTick()) {
    permit = admission->TryAdmit();
    if (!permit.ok()) {
      delta.shed = true;
      delta.tier = AnswerTier::kShed;
      delta.downgrade_reason = DowngradeReason::kShed;
      if (has_previous_) delta.current = previous_;
      delta.elapsed_ms = timer.ElapsedMillis();
      delta.explain.q_t = delta.q_t;
      delta.explain.rho = options_.rho;
      delta.explain.l = options_.l;
      delta.explain.tier = delta.tier;
      delta.explain.downgrade_reason = delta.downgrade_reason;
      delta.explain.budget_ms = delta.budget_ms;
      delta.explain.elapsed_ms = delta.elapsed_ms;
      FlightRecorder::Record(FrEvent::kShed, static_cast<int64_t>(now));
      static Counter& shed_ticks =
          MetricsRegistry::Global().GetCounter("pdr.monitor.shed_ticks");
      shed_ticks.Increment();
      static Counter& reason_shed = MetricsRegistry::Global().GetCounter(
          WithLabel("pdr.resilience.downgrade_reason", "reason", "shed"));
      reason_shed.Increment();
      if (slo_ != nullptr) {
        slo_->OnSample(delta.elapsed_ms, delta.tier, /*shed=*/true);
      }
      if (span.active()) {
        span.SetAttr("now", static_cast<int64_t>(now));
        span.SetAttr("tier", static_cast<int64_t>(delta.tier));
      }
      if (recorder_ != nullptr) recorder_->RecordTick(delta);
      return delta;
    }
  }

  ResilientExecutor* ladder = ExecutorForTick();
  delta.explain.q_t = delta.q_t;
  delta.explain.rho = options_.rho;
  delta.explain.l = options_.l;
  delta.explain.budget_ms = delta.budget_ms;
  if (pa_ != nullptr) {
    Timer pa_timer;
    auto result = pa_->Query(delta.q_t, options_.rho);
    const double pa_elapsed = pa_timer.ElapsedMillis();
    if (PdrObs::Enabled()) {
      static Histogram& pa_ms =
          MetricsRegistry::Global().GetHistogram("pdr.monitor.pa_query_ms");
      pa_ms.Observe(pa_elapsed);
    }
    delta.cost = result.cost;
    delta.current = std::move(result.region);
    delta.explain.tier = AnswerTier::kApprox;
    delta.explain.stages.push_back({"approx", pa_elapsed, true});
    delta.explain.bnb_nodes = result.bnb.nodes_visited;
    delta.explain.bnb_pruned = result.bnb.pruned_boxes;
  } else if (ladder != nullptr) {
    auto result = ladder->Query(delta.q_t, options_.rho, options_.l);
    delta.cost = result.cost;
    delta.current = std::move(result.region);
    delta.maybe_region = std::move(result.maybe_region);
    delta.tier = result.tier;
    delta.downgrade_reason = result.downgrade_reason;
    delta.explain = std::move(result.explain);
  } else {
    std::optional<CostPrediction> predicted;
    if (calibrator_ != nullptr && PdrObs::Enabled()) {
      predicted = calibrator_->Predict(delta.q_t, options_.rho, options_.l);
    }
    auto result = engine_->Query(delta.q_t, options_.rho, options_.l);
    if (predicted) calibrator_->Observe(*predicted, result);
    delta.cost = result.cost;
    delta.current = std::move(result.region);
    delta.explain.query_id = result.query_id;
    delta.explain.tier = AnswerTier::kExact;
    delta.explain.stages.push_back({"filter", result.filter_ms, true});
    delta.explain.stages.push_back({"refine", result.refine_ms, true});
    delta.explain.accepted_cells = result.accepted_cells;
    delta.explain.rejected_cells = result.rejected_cells;
    delta.explain.candidate_cells = result.candidate_cells;
    delta.explain.objects_fetched = result.objects_fetched;
    delta.explain.dense_rects = result.sweep.dense_rects;
    delta.explain.pages_read_physical = result.cost.io.physical_reads;
    delta.explain.pages_read_logical = result.cost.io.logical_reads;
  }

  // Shadow audit (PA-primary only). The sampling roll stays on this thread
  // — the RNG stream, and therefore which ticks get audited, must not
  // depend on scheduling. With a pool, the audit's exact FR replay runs
  // concurrently with the delta computation below (both only read
  // delta.current); the previous_ update waits for the join.
  std::future<void> audit_done;
  ThreadPool* pool = pa_ != nullptr ? PoolForTick() : nullptr;
  if (pa_ != nullptr && auditor_ != nullptr) {
    if (pool != nullptr) {
      if (auditor_->ShouldSample()) {
        audit_done = pool->Submit([this, &delta] {
          delta.audit =
              auditor_->Audit(delta.q_t, options_.rho, delta.current);
        });
      }
    } else {
      delta.audit =
          auditor_->MaybeAudit(delta.q_t, options_.rho, delta.current);
    }
  }
  // Degraded answers are the ones whose quality is in question: in
  // FR-primary mode with an auditor attached, offer every below-exact tick
  // to the sampler so the shadow audit tracks what degradation costs.
  if (pa_ == nullptr && auditor_ != nullptr &&
      delta.tier != AnswerTier::kExact) {
    delta.audit =
        auditor_->MaybeAudit(delta.q_t, options_.rho, delta.current);
  }

  if (has_previous_) {
    delta.appeared = RegionDifference(delta.current, previous_);
    delta.vanished = RegionDifference(previous_, delta.current);
  } else {
    delta.appeared = delta.current.Coalesced();
  }
  if (audit_done.valid()) pool->Wait(audit_done);
  previous_ = delta.current;
  has_previous_ = true;

  static Counter& ticks =
      MetricsRegistry::Global().GetCounter("pdr.monitor.ticks");
  static Counter& changed =
      MetricsRegistry::Global().GetCounter("pdr.monitor.changed_ticks");
  static Histogram& tick_ms =
      MetricsRegistry::Global().GetHistogram("pdr.monitor.tick_ms");
  ticks.Increment();
  if (delta.Changed()) changed.Increment();
  delta.elapsed_ms = timer.ElapsedMillis();
  tick_ms.Observe(delta.elapsed_ms);

  // The ladder stamps its own (query-level) elapsed; the direct paths get
  // the tick's. The audit verdict rides into the provenance record so an
  // EXPLAIN of a sampled tick shows what the answer was worth.
  if (ladder == nullptr) delta.explain.elapsed_ms = delta.elapsed_ms;
  delta.explain.downgrade_reason = delta.downgrade_reason;
  if (delta.audit) {
    delta.explain.audited = true;
    delta.explain.audit_precision = delta.audit->precision;
    delta.explain.audit_recall = delta.audit->recall;
  }
  if (slo_ != nullptr) {
    slo_->OnSample(delta.elapsed_ms, delta.tier, /*shed=*/false);
    if (delta.audit) {
      slo_->OnAudit(delta.audit->precision, delta.audit->recall);
    }
  }

  ++ticks_total_;
  if (delta.tier != AnswerTier::kExact) {
    ++degraded_ticks_;
    static Counter& degraded =
        MetricsRegistry::Global().GetCounter("pdr.monitor.degraded_ticks");
    degraded.Increment();
  }
  static Gauge& downgrade_rate =
      MetricsRegistry::Global().GetGauge("pdr.monitor.downgrade_rate");
  downgrade_rate.Set(static_cast<double>(degraded_ticks_) /
                     static_cast<double>(ticks_total_));

  if (checkpoint_hook_ && checkpoint_every_ > 0 &&
      ++ticks_since_checkpoint_ >= checkpoint_every_) {
    ticks_since_checkpoint_ = 0;
    checkpoint_hook_();
  }
  if (scrub_hook_) scrub_hook_();

  if (span.active()) {
    span.SetAttr("now", static_cast<int64_t>(now));
    span.SetAttr("q_t", static_cast<int64_t>(delta.q_t));
    span.SetAttr("current_area", delta.current.Area());
    span.SetAttr("appeared_area", delta.appeared.Area());
    span.SetAttr("vanished_area", delta.vanished.Area());
    span.SetAttr("io_reads", delta.cost.io.physical_reads);
    span.SetAttr("tier", static_cast<int64_t>(delta.tier));
    span.SetAttr("elapsed_ms", delta.elapsed_ms);
    if (delta.audit) {
      span.SetAttr("audit_precision", delta.audit->precision);
      span.SetAttr("audit_recall", delta.audit->recall);
    }
  }
  if (recorder_ != nullptr) recorder_->RecordTick(delta);
  return delta;
}

std::vector<TieredResult> PdrMonitor::QueryBatch(
    Tick now, const std::vector<BatchQuerySpec>& specs) {
  if (pa_ != nullptr) {
    throw std::logic_error(
        "PdrMonitor::QueryBatch requires FR-primary mode");
  }
  TraceSpan span("monitor.batch");
  Timer timer;
  std::vector<TieredResult> out(specs.size());
  // Evaluate in q_t groups so every spec sharing a target tick runs
  // back-to-back: with an FFT rung attached, the group's first query
  // rasterizes + transforms and the rest hit the cached field, so each
  // distinct q_t pays for exactly one transform.
  std::map<Tick, std::vector<size_t>> by_qt;
  for (size_t i = 0; i < specs.size(); ++i) {
    by_qt[now + specs[i].lookahead].push_back(i);
  }
  ResilientExecutor* ladder = ExecutorForTick();
  for (const auto& [q_t, indices] : by_qt) {
    for (size_t i : indices) {
      const BatchQuerySpec& s = specs[i];
      if (ladder != nullptr) {
        out[i] = ladder->Query(q_t, s.rho, s.l);
        continue;
      }
      // No ladder configured: answer exactly through the FR engine, but
      // stamp the result in ladder shape so batch callers always consume
      // TieredResults.
      Timer query_timer;
      FrEngine::QueryResult r = engine_->Query(q_t, s.rho, s.l);
      TieredResult& t = out[i];
      t.region = std::move(r.region);
      t.cost = r.cost;
      t.tier = AnswerTier::kExact;
      t.elapsed_ms = query_timer.ElapsedMillis();
      t.explain.query_id = r.query_id;
      t.explain.q_t = q_t;
      t.explain.rho = s.rho;
      t.explain.l = s.l;
      t.explain.tier = AnswerTier::kExact;
      t.explain.elapsed_ms = t.elapsed_ms;
      t.explain.stages.push_back({"filter", r.filter_ms, true});
      t.explain.stages.push_back({"refine", r.refine_ms, true});
      t.explain.accepted_cells = r.accepted_cells;
      t.explain.rejected_cells = r.rejected_cells;
      t.explain.candidate_cells = r.candidate_cells;
      t.explain.objects_fetched = r.objects_fetched;
      t.explain.dense_rects = r.sweep.dense_rects;
      t.explain.pages_read_physical = r.cost.io.physical_reads;
      t.explain.pages_read_logical = r.cost.io.logical_reads;
    }
  }
  static Counter& batches =
      MetricsRegistry::Global().GetCounter("pdr.monitor.batches");
  static Counter& batch_queries =
      MetricsRegistry::Global().GetCounter("pdr.monitor.batch_queries");
  batches.Increment();
  batch_queries.Add(static_cast<int64_t>(specs.size()));
  if (span.active()) {
    span.SetAttr("now", static_cast<int64_t>(now));
    span.SetAttr("queries", static_cast<int64_t>(specs.size()));
    span.SetAttr("q_t_groups", static_cast<int64_t>(by_qt.size()));
    span.SetAttr("elapsed_ms", timer.ElapsedMillis());
  }
  return out;
}

void PdrMonitor::RequireConcurrent(const char* op) const {
  if (engine_ == nullptr || engine_->snapshots() == nullptr) {
    throw std::logic_error(std::string("PdrMonitor::") + op +
                           ": concurrent mode requires FR-primary with "
                           "FrEngine::Options::snapshots set");
  }
}

uint64_t PdrMonitor::CommitEpoch() {
  mvcc::EpochStates states;
  engine_->PrepareCommit();
  states.fr = engine_->CaptureState();
  if (fallback_ != nullptr &&
      fallback_->snapshots() == engine_->snapshots()) {
    fallback_->PrepareCommit();
    states.pa = fallback_->CaptureState();
  }
  return engine_->snapshots()->Commit(std::move(states));
}

uint64_t PdrMonitor::StartConcurrent() {
  RequireConcurrent("StartConcurrent");
  // Log the (empty) initial commit too: the replayer re-derives one
  // reference answer per epoch from its updates record, and a reader may
  // pin the initial epoch before the first ApplyUpdates.
  if (recorder_ != nullptr) {
    recorder_->OnCommit(engine_->now(), {},
                        engine_->snapshots()->open_epoch());
  }
  return CommitEpoch();
}

uint64_t PdrMonitor::ApplyUpdates(Tick now,
                                  const std::vector<UpdateEvent>& updates) {
  RequireConcurrent("ApplyUpdates");
  engine_->AdvanceTo(now);
  for (const UpdateEvent& u : updates) engine_->Apply(u);
  if (fallback_ != nullptr &&
      fallback_->snapshots() == engine_->snapshots()) {
    fallback_->AdvanceTo(now);
    for (const UpdateEvent& u : updates) fallback_->Apply(u);
  }
  // Log the batch *before* Commit publishes its epoch: a reader can pin
  // epoch E and record its answer the instant Commit returns, and the
  // replayer requires every epoch's updates record to precede every tick
  // record pinned to it.
  if (recorder_ != nullptr) {
    recorder_->OnCommit(now, updates, engine_->snapshots()->open_epoch());
  }
  return CommitEpoch();
}

PdrMonitor::Delta PdrMonitor::MakeSnapshotDelta(
    Tick now, Tick q_t, double rho, double l, uint64_t epoch,
    const FrEngine::QueryResult& result, double elapsed_ms) {
  Delta delta;
  delta.now = now;
  delta.q_t = q_t;
  delta.epoch = epoch;
  delta.cost = result.cost;
  delta.current = result.region;
  delta.elapsed_ms = elapsed_ms;
  delta.explain.query_id = result.query_id;
  delta.explain.q_t = q_t;
  delta.explain.rho = rho;
  delta.explain.l = l;
  delta.explain.tier = AnswerTier::kExact;
  delta.explain.epoch = epoch;
  delta.explain.elapsed_ms = elapsed_ms;
  delta.explain.stages.push_back({"filter", result.filter_ms, true});
  delta.explain.stages.push_back({"refine", result.refine_ms, true});
  delta.explain.accepted_cells = result.accepted_cells;
  delta.explain.rejected_cells = result.rejected_cells;
  delta.explain.candidate_cells = result.candidate_cells;
  delta.explain.objects_fetched = result.objects_fetched;
  delta.explain.dense_rects = result.sweep.dense_rects;
  delta.explain.pages_read_physical = result.cost.io.physical_reads;
  delta.explain.pages_read_logical = result.cost.io.logical_reads;
  return delta;
}

PdrMonitor::Delta PdrMonitor::RunSnapshotQuery(const QueryControl& ctl) {
  RequireConcurrent("RunSnapshotQuery");
  Timer timer;
  mvcc::Snapshot snap = engine_->snapshots()->Pin();
  const Tick now = mvcc::SnapshotFrNow(snap);
  const Tick q_t = now + options_.lookahead;
  const uint64_t epoch = snap.epoch();
  FrEngine::QueryResult result =
      mvcc::SnapshotFrQuery(*engine_, snap, q_t, options_.rho, options_.l,
                            ctl);
  snap.Release();
  Delta delta = MakeSnapshotDelta(now, q_t, options_.rho, options_.l, epoch,
                                  result, timer.ElapsedMillis());
  static Counter& snapshot_queries = MetricsRegistry::Global().GetCounter(
      "pdr.monitor.snapshot_queries");
  snapshot_queries.Increment();
  if (recorder_ != nullptr) recorder_->RecordTick(delta);
  return delta;
}

}  // namespace pdr
