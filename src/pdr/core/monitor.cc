#include "pdr/core/monitor.h"

#include <future>
#include <stdexcept>
#include <utility>

#include "pdr/obs/obs.h"
#include "pdr/parallel/thread_pool.h"

namespace pdr {

PdrMonitor::~PdrMonitor() = default;

ResilientExecutor* PdrMonitor::ExecutorForTick() {
  const ResilienceOptions& r = options_.resilience;
  const bool ladder_active = r.deadline_ms > 0.0 || !r.enable_exact;
  if (!ladder_active) return nullptr;
  if (pa_ != nullptr) {
    throw std::logic_error(
        "PdrMonitor: the degradation ladder requires FR-primary mode "
        "(its rungs are FR exact -> PA approximate -> FR histogram)");
  }
  if (executor_ == nullptr) {
    executor_ =
        std::make_unique<ResilientExecutor>(engine_, fallback_, r);
  }
  return executor_.get();
}

AdmissionController* PdrMonitor::AdmissionForTick() {
  if (admission_ != nullptr) return admission_;
  if (options_.resilience.max_inflight <= 0) return nullptr;
  if (owned_admission_ == nullptr) {
    owned_admission_ = std::make_unique<AdmissionController>(
        AdmissionController::Options{options_.resilience.max_inflight});
  }
  return owned_admission_.get();
}

void PdrMonitor::SetExecPolicy(const ExecPolicy& exec) {
  exec_ = exec;
  pool_.reset();  // rebuilt lazily at the new width
}

ThreadPool* PdrMonitor::PoolForTick() {
  if (!exec_.IsParallel()) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(exec_.threads);
  }
  return pool_.get();
}

PdrMonitor::Delta PdrMonitor::OnTick(Tick now) {
  TraceSpan span("monitor.tick");
  Timer timer;
  Delta delta;
  delta.now = now;
  delta.q_t = now + options_.lookahead;
  delta.budget_ms = options_.resilience.deadline_ms;

  // Admission control first: when too many evaluations are already in
  // flight (shared controller across monitors/threads), shed this tick
  // outright — repeat the previous answer, leave the standing state (and
  // previous_) untouched, and report tier kShed.
  AdmissionController::Permit permit;
  if (AdmissionController* admission = AdmissionForTick()) {
    permit = admission->TryAdmit();
    if (!permit.ok()) {
      delta.shed = true;
      delta.tier = AnswerTier::kShed;
      if (has_previous_) delta.current = previous_;
      delta.elapsed_ms = timer.ElapsedMillis();
      static Counter& shed_ticks =
          MetricsRegistry::Global().GetCounter("pdr.monitor.shed_ticks");
      shed_ticks.Increment();
      if (span.active()) {
        span.SetAttr("now", static_cast<int64_t>(now));
        span.SetAttr("tier", static_cast<int64_t>(delta.tier));
      }
      return delta;
    }
  }

  ResilientExecutor* ladder = ExecutorForTick();
  if (pa_ != nullptr) {
    Timer pa_timer;
    auto result = pa_->Query(delta.q_t, options_.rho);
    if (PdrObs::Enabled()) {
      static Histogram& pa_ms =
          MetricsRegistry::Global().GetHistogram("pdr.monitor.pa_query_ms");
      pa_ms.Observe(pa_timer.ElapsedMillis());
    }
    delta.cost = result.cost;
    delta.current = std::move(result.region);
  } else if (ladder != nullptr) {
    auto result = ladder->Query(delta.q_t, options_.rho, options_.l);
    delta.cost = result.cost;
    delta.current = std::move(result.region);
    delta.maybe_region = std::move(result.maybe_region);
    delta.tier = result.tier;
  } else {
    std::optional<CostPrediction> predicted;
    if (calibrator_ != nullptr && PdrObs::Enabled()) {
      predicted = calibrator_->Predict(delta.q_t, options_.rho, options_.l);
    }
    auto result = engine_->Query(delta.q_t, options_.rho, options_.l);
    if (predicted) calibrator_->Observe(*predicted, result);
    delta.cost = result.cost;
    delta.current = std::move(result.region);
  }

  // Shadow audit (PA-primary only). The sampling roll stays on this thread
  // — the RNG stream, and therefore which ticks get audited, must not
  // depend on scheduling. With a pool, the audit's exact FR replay runs
  // concurrently with the delta computation below (both only read
  // delta.current); the previous_ update waits for the join.
  std::future<void> audit_done;
  ThreadPool* pool = pa_ != nullptr ? PoolForTick() : nullptr;
  if (pa_ != nullptr && auditor_ != nullptr) {
    if (pool != nullptr) {
      if (auditor_->ShouldSample()) {
        audit_done = pool->Submit([this, &delta] {
          delta.audit =
              auditor_->Audit(delta.q_t, options_.rho, delta.current);
        });
      }
    } else {
      delta.audit =
          auditor_->MaybeAudit(delta.q_t, options_.rho, delta.current);
    }
  }
  // Degraded answers are the ones whose quality is in question: in
  // FR-primary mode with an auditor attached, offer every below-exact tick
  // to the sampler so the shadow audit tracks what degradation costs.
  if (pa_ == nullptr && auditor_ != nullptr &&
      delta.tier != AnswerTier::kExact) {
    delta.audit =
        auditor_->MaybeAudit(delta.q_t, options_.rho, delta.current);
  }

  if (has_previous_) {
    delta.appeared = RegionDifference(delta.current, previous_);
    delta.vanished = RegionDifference(previous_, delta.current);
  } else {
    delta.appeared = delta.current.Coalesced();
  }
  if (audit_done.valid()) pool->Wait(audit_done);
  previous_ = delta.current;
  has_previous_ = true;

  static Counter& ticks =
      MetricsRegistry::Global().GetCounter("pdr.monitor.ticks");
  static Counter& changed =
      MetricsRegistry::Global().GetCounter("pdr.monitor.changed_ticks");
  static Histogram& tick_ms =
      MetricsRegistry::Global().GetHistogram("pdr.monitor.tick_ms");
  ticks.Increment();
  if (delta.Changed()) changed.Increment();
  delta.elapsed_ms = timer.ElapsedMillis();
  tick_ms.Observe(delta.elapsed_ms);

  ++ticks_total_;
  if (delta.tier != AnswerTier::kExact) {
    ++degraded_ticks_;
    static Counter& degraded =
        MetricsRegistry::Global().GetCounter("pdr.monitor.degraded_ticks");
    degraded.Increment();
  }
  static Gauge& downgrade_rate =
      MetricsRegistry::Global().GetGauge("pdr.monitor.downgrade_rate");
  downgrade_rate.Set(static_cast<double>(degraded_ticks_) /
                     static_cast<double>(ticks_total_));

  if (checkpoint_hook_ && checkpoint_every_ > 0 &&
      ++ticks_since_checkpoint_ >= checkpoint_every_) {
    ticks_since_checkpoint_ = 0;
    checkpoint_hook_();
  }

  if (span.active()) {
    span.SetAttr("now", static_cast<int64_t>(now));
    span.SetAttr("q_t", static_cast<int64_t>(delta.q_t));
    span.SetAttr("current_area", delta.current.Area());
    span.SetAttr("appeared_area", delta.appeared.Area());
    span.SetAttr("vanished_area", delta.vanished.Area());
    span.SetAttr("io_reads", delta.cost.io.physical_reads);
    span.SetAttr("tier", static_cast<int64_t>(delta.tier));
    span.SetAttr("elapsed_ms", delta.elapsed_ms);
    if (delta.audit) {
      span.SetAttr("audit_precision", delta.audit->precision);
      span.SetAttr("audit_recall", delta.audit->recall);
    }
  }
  return delta;
}

}  // namespace pdr
