#include "pdr/core/metrics.h"

namespace pdr {

AccuracyMetrics CompareRegions(const Region& truth, const Region& reported,
                               double domain_area) {
  AccuracyMetrics m;
  m.truth_area = truth.Area();
  m.reported_area = reported.Area();
  m.overlap_area = IntersectionArea(truth, reported);
  if (m.truth_area > 0) {
    m.false_positive_ratio = (m.reported_area - m.overlap_area) / m.truth_area;
    m.false_negative_ratio = (m.truth_area - m.overlap_area) / m.truth_area;
  } else {
    m.false_negative_ratio = 0.0;
    m.false_positive_ratio =
        domain_area > 0 ? m.reported_area / domain_area : 0.0;
  }
  return m;
}

}  // namespace pdr
