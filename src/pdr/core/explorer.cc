#include "pdr/core/explorer.h"

namespace pdr {
namespace {

/// One exact probe: is any point (n / l^2)-dense at q_t?
bool AnyRegionAtCount(FrEngine& engine, Tick q_t, double l, int64_t n,
                      Region* region_out) {
  const double rho = static_cast<double>(n) / (l * l);
  auto result = engine.Query(q_t, rho, l);
  const bool dense = !result.region.IsEmpty();
  if (dense && region_out != nullptr) *region_out = std::move(result.region);
  return dense;
}

}  // namespace

PeakDensity FindPeakDensity(FrEngine& engine, Tick q_t, double l) {
  PeakDensity peak;
  Region at_best;
  // Exponential ascent: double n while the answer stays non-empty.
  int64_t lo = 0;  // highest n known dense
  int64_t hi = 1;  // candidate
  while (true) {
    ++peak.probes;
    Region region;
    if (AnyRegionAtCount(engine, q_t, l, hi, &region)) {
      lo = hi;
      at_best = std::move(region);
      hi *= 2;
    } else {
      break;
    }
  }
  if (lo == 0) return peak;  // empty domain
  // Binary search in (lo, hi).
  int64_t sparse = hi;  // lowest n known not dense
  while (lo + 1 < sparse) {
    const int64_t mid = lo + (sparse - lo) / 2;
    ++peak.probes;
    Region region;
    if (AnyRegionAtCount(engine, q_t, l, mid, &region)) {
      lo = mid;
      at_best = std::move(region);
    } else {
      sparse = mid;
    }
  }
  peak.count = lo;
  peak.rho = static_cast<double>(lo) / (l * l);
  peak.region = std::move(at_best);
  return peak;
}

std::vector<DensityBand> DensityProfile(
    FrEngine& engine, Tick q_t, double l,
    const std::vector<int64_t>& levels) {
  std::vector<DensityBand> bands;
  bands.reserve(levels.size());
  for (int64_t level : levels) {
    DensityBand band;
    band.min_count = level;
    band.rho = static_cast<double>(level) / (l * l);
    band.region = engine.Query(q_t, band.rho, l).region;
    bands.push_back(std::move(band));
  }
  return bands;
}

}  // namespace pdr
