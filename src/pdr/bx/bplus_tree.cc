#include "pdr/bx/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pdr {

struct BPlusTree::NodeHeader {
  uint8_t is_leaf = 0;
  uint8_t pad = 0;
  uint16_t count = 0;
  PageId next_leaf = kInvalidPageId;  // leaves only
};

struct BPlusTree::InternalEntry {
  uint64_t min_key;  // minimum key reachable through `child`
  PageId child;
  uint32_t pad;
};

namespace {

constexpr size_t kHeaderSize = 8;

}  // namespace

static constexpr size_t kBPlusLeafCapacity =
    (kPageSize - kHeaderSize) / sizeof(BPlusRecord);
static constexpr size_t kBPlusInternalCapacity =
    (kPageSize - kHeaderSize) / sizeof(BPlusTree::InternalEntry);

namespace {

struct LeafLayout {
  BPlusTree::NodeHeader header;
  BPlusRecord records[kBPlusLeafCapacity];
};
struct InternalLayout {
  BPlusTree::NodeHeader header;
  BPlusTree::InternalEntry entries[kBPlusInternalCapacity];
};
static_assert(sizeof(LeafLayout) <= kPageSize);
static_assert(sizeof(InternalLayout) <= kPageSize);

/// Index of the child to descend into: the last entry with min_key <= key
/// (entry 0 acts as catch-all for smaller keys).
int ChildIndexFor(const InternalLayout* node, uint64_t key) {
  int lo = 0, hi = node->header.count - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (node->entries[mid].min_key <= key) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Position of the first record with key >= `key`.
int LowerBound(const LeafLayout* leaf, uint64_t key) {
  int lo = 0, hi = leaf->header.count;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (leaf->records[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool) : pool_(pool) {
  auto root = pool_->Create(&root_);
  auto* node = root->As<LeafLayout>();
  node->header = NodeHeader{1, 0, 0, kInvalidPageId};
  first_leaf_ = root_;
  node_count_ = 1;
}

PageId BPlusTree::FindLeaf(uint64_t key, std::vector<PageId>* path) const {
  return FindLeafFrom(*pool_, root_, key, path);
}

PageId BPlusTree::FindLeafFrom(BufferPool& pool, PageId root, uint64_t key,
                               std::vector<PageId>* path) {
  PageId page = root;
  while (true) {
    auto ref = pool.Fetch(page);
    const NodeHeader* header = ref->As<NodeHeader>();
    if (header->is_leaf) return page;
    if (path != nullptr) path->push_back(page);
    const auto* node = ref->As<InternalLayout>();
    page = node->entries[ChildIndexFor(node, key)].child;
  }
}

void BPlusTree::Insert(const BPlusRecord& record) {
  std::vector<PageId> path;
  const PageId leaf_id = FindLeaf(record.key, &path);
  auto ref = pool_->FetchMut(leaf_id);
  auto* leaf = ref->As<LeafLayout>();
  const int pos = LowerBound(leaf, record.key);
  assert((pos == leaf->header.count || leaf->records[pos].key != record.key) &&
         "duplicate key");

  if (leaf->header.count < kBPlusLeafCapacity) {
    std::move_backward(leaf->records + pos,
                       leaf->records + leaf->header.count,
                       leaf->records + leaf->header.count + 1);
    leaf->records[pos] = record;
    ++leaf->header.count;
    ++size_;
    return;
  }

  // Split: keep the lower half here, move the upper half to a new leaf.
  PageId sibling_id = kInvalidPageId;
  auto sibling_ref = pool_->Create(&sibling_id);
  auto* sibling = sibling_ref->As<LeafLayout>();
  const int split = static_cast<int>(kBPlusLeafCapacity) / 2;
  sibling->header = NodeHeader{1, 0,
                               static_cast<uint16_t>(leaf->header.count -
                                                     split),
                               leaf->header.next_leaf};
  std::copy(leaf->records + split, leaf->records + leaf->header.count,
            sibling->records);
  leaf->header.count = static_cast<uint16_t>(split);
  leaf->header.next_leaf = sibling_id;
  ++node_count_;

  // Insert the record into the proper half.
  LeafLayout* target = record.key < sibling->records[0].key ? leaf : sibling;
  const int tpos = LowerBound(target, record.key);
  std::move_backward(target->records + tpos,
                     target->records + target->header.count,
                     target->records + target->header.count + 1);
  target->records[tpos] = record;
  ++target->header.count;
  ++size_;

  const uint64_t sibling_min = sibling->records[0].key;
  sibling_ref.Reset();
  ref.Reset();
  InsertIntoParent(std::move(path), sibling_min, sibling_id);
}

void BPlusTree::InsertIntoParent(std::vector<PageId> path, uint64_t key,
                                 PageId child) {
  if (path.empty()) {
    // Grow a new root above the old one.
    const PageId old_root = root_;
    uint64_t old_min = 0;
    {
      auto ref = pool_->Fetch(old_root);
      const NodeHeader* header = ref->As<NodeHeader>();
      old_min = header->is_leaf ? ref->As<LeafLayout>()->records[0].key
                                : ref->As<InternalLayout>()->entries[0].min_key;
    }
    PageId new_root = kInvalidPageId;
    auto root_ref = pool_->Create(&new_root);
    auto* node = root_ref->As<InternalLayout>();
    node->header = NodeHeader{0, 0, 2, kInvalidPageId};
    node->entries[0] = {old_min, old_root, 0};
    node->entries[1] = {key, child, 0};
    root_ = new_root;
    ++height_;
    ++node_count_;
    return;
  }

  const PageId parent_id = path.back();
  path.pop_back();
  auto ref = pool_->FetchMut(parent_id);
  auto* node = ref->As<InternalLayout>();
  // Position: after the last entry with min_key <= key.
  int pos = ChildIndexFor(node, key) + 1;
  if (node->header.count < kBPlusInternalCapacity) {
    std::move_backward(node->entries + pos,
                       node->entries + node->header.count,
                       node->entries + node->header.count + 1);
    node->entries[pos] = {key, child, 0};
    ++node->header.count;
    return;
  }

  // Split the internal node.
  PageId sibling_id = kInvalidPageId;
  auto sibling_ref = pool_->Create(&sibling_id);
  auto* sibling = sibling_ref->As<InternalLayout>();
  const int split = static_cast<int>(kBPlusInternalCapacity) / 2;
  sibling->header = NodeHeader{0, 0,
                               static_cast<uint16_t>(node->header.count -
                                                     split),
                               kInvalidPageId};
  std::copy(node->entries + split, node->entries + node->header.count,
            sibling->entries);
  node->header.count = static_cast<uint16_t>(split);
  ++node_count_;

  InternalLayout* target =
      key < sibling->entries[0].min_key ? node : sibling;
  pos = ChildIndexFor(target, key) + 1;
  std::move_backward(target->entries + pos,
                     target->entries + target->header.count,
                     target->entries + target->header.count + 1);
  target->entries[pos] = {key, child, 0};
  ++target->header.count;

  const uint64_t sibling_min = sibling->entries[0].min_key;
  sibling_ref.Reset();
  ref.Reset();
  InsertIntoParent(std::move(path), sibling_min, sibling_id);
}

bool BPlusTree::Delete(uint64_t key) {
  const PageId leaf_id = FindLeaf(key, nullptr);
  auto ref = pool_->FetchMut(leaf_id);
  auto* leaf = ref->As<LeafLayout>();
  const int pos = LowerBound(leaf, key);
  if (pos == leaf->header.count || leaf->records[pos].key != key) {
    return false;
  }
  std::move(leaf->records + pos + 1, leaf->records + leaf->header.count,
            leaf->records + pos);
  --leaf->header.count;
  --size_;
  return true;
}

bool BPlusTree::Find(uint64_t key, BPlusRecord* out) {
  const PageId leaf_id = FindLeaf(key, nullptr);
  auto ref = pool_->Fetch(leaf_id);
  const auto* leaf = ref->As<LeafLayout>();
  const int pos = LowerBound(leaf, key);
  if (pos == leaf->header.count || leaf->records[pos].key != key) {
    return false;
  }
  if (out != nullptr) *out = leaf->records[pos];
  return true;
}

void BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<bool(const BPlusRecord&)>& visit) const {
  ScanRangeFrom(*pool_, root_, lo, hi, visit);
}

void BPlusTree::ScanRangeFrom(
    BufferPool& pool, PageId root, uint64_t lo, uint64_t hi,
    const std::function<bool(const BPlusRecord&)>& visit) {
  PageId page = FindLeafFrom(pool, root, lo, nullptr);
  while (page != kInvalidPageId) {
    auto ref = pool.Fetch(page);
    const auto* leaf = ref->As<LeafLayout>();
    for (int i = LowerBound(leaf, lo); i < leaf->header.count; ++i) {
      if (leaf->records[i].key > hi) return;
      if (!visit(leaf->records[i])) return;
    }
    page = leaf->header.next_leaf;
  }
}

void BPlusTree::CheckInvariants() {
  // Walk the leaf chain: keys strictly increasing, total count matches.
  size_t seen = 0;
  uint64_t prev = 0;
  bool first = true;
  PageId page = first_leaf_;
  while (page != kInvalidPageId) {
    auto ref = pool_->Fetch(page);
    const auto* leaf = ref->As<LeafLayout>();
    if (!leaf->header.is_leaf) throw std::logic_error("non-leaf in chain");
    for (int i = 0; i < leaf->header.count; ++i) {
      if (!first && leaf->records[i].key <= prev) {
        throw std::logic_error("keys not strictly increasing");
      }
      prev = leaf->records[i].key;
      first = false;
      ++seen;
    }
    page = leaf->header.next_leaf;
  }
  if (seen != size_) throw std::logic_error("leaf chain count mismatch");

  // Every key must be findable from the root.
  page = first_leaf_;
  while (page != kInvalidPageId) {
    PageId next;
    std::vector<uint64_t> keys;
    {
      auto ref = pool_->Fetch(page);
      const auto* leaf = ref->As<LeafLayout>();
      for (int i = 0; i < leaf->header.count; ++i) {
        keys.push_back(leaf->records[i].key);
      }
      next = leaf->header.next_leaf;
    }
    for (uint64_t key : keys) {
      if (FindLeaf(key, nullptr) != page) {
        throw std::logic_error("root descent does not reach the leaf");
      }
    }
    page = next;
  }
}

void BPlusTree::SerializeMeta(std::string* out) const {
  PutPod(out, root_);
  PutPod(out, first_leaf_);
  PutPod(out, static_cast<int32_t>(height_));
  PutPod(out, static_cast<uint64_t>(size_));
  PutPod(out, static_cast<uint64_t>(node_count_));
}

void BPlusTree::RestoreMeta(ByteReader* reader) {
  root_ = reader->Get<PageId>();
  first_leaf_ = reader->Get<PageId>();
  height_ = reader->Get<int32_t>();
  size_ = reader->Get<uint64_t>();
  node_count_ = reader->Get<uint64_t>();
}

}  // namespace pdr
