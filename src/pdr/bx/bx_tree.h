// B^x-tree: B+-tree-based indexing of moving objects
// (Jensen, Lin, Ooi — VLDB 2004; the paper's reference [6]).
//
// Each object is mapped to a single 64-bit key:
//
//     key = (partition mod 8) << 48  |  Z(cell at label time) << 24  |  oid
//
// where the *partition* is the object's reference tick divided by the
// phase span (half the maximum update interval), the *label time* is the
// end of that partition, and Z is the Morton code of the object's
// predicted position at the label time on a 2^12 x 2^12 grid. Keys are
// unique because the object id is embedded (oid < 2^24).
//
// A range query at tick t visits every partition that can hold live
// entries, *enlarges* the query window per axis by the maximum observed
// speed times |t - label|, decomposes the enlarged window into Z-value
// intervals, range-scans the B+-tree, and filters candidates by their
// exact predicted position. Maximum speeds are tracked monotonically
// (a conservative stand-in for the original's velocity histogram).
//
// Implements ObjectIndex, so FrEngine can run its refinement step on
// either this or the TPR-tree (bench_ablation_index compares them).

#ifndef PDR_BX_BX_TREE_H_
#define PDR_BX_BX_TREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "pdr/bx/bplus_tree.h"
#include "pdr/bx/zcurve.h"
#include "pdr/index/object_index.h"
#include "pdr/storage/fault_injector.h"

namespace pdr {

class DiskPager;

class BxTree : public ObjectIndex {
 public:
  struct Options {
    size_t buffer_pages = 256;     ///< LRU buffer pool capacity
    double extent = 1000.0;        ///< domain edge
    Tick max_update_interval = 60; ///< U; the phase span is U/2
    int max_scan_intervals = 256;  ///< Z-decomposition budget per query
    /// Non-empty: back the tree with a durable DiskPager in this directory
    /// (recovering any existing store). Empty: in-memory MemPager.
    std::string storage_dir;
    /// Crash-fault injection for the durable store (tests only; not owned).
    FaultInjector* fault_injector = nullptr;
    /// Non-null: the tree runs over this caller-owned pager instead of
    /// creating its own (the MVCC copy-on-write seam). Mutually exclusive
    /// with storage_dir (std::invalid_argument otherwise).
    Pager* external_pager = nullptr;
  };

  explicit BxTree(const Options& options);

  void Insert(ObjectId id, const MotionState& state) override;
  bool Delete(ObjectId id) override;
  void Apply(const UpdateEvent& update) override;
  void AdvanceTo(Tick now) override;
  std::vector<std::pair<ObjectId, MotionState>> RangeQuery(
      const Rect& window, Tick t) const override;

  size_t size() const override { return tree_.size(); }
  size_t node_count() const override { return tree_.node_count(); }
  IoStats io_stats() const override { return pool_.stats(); }
  void ResetIoStats() override { pool_.ResetStats(); }
  void DropCaches() override { pool_.Clear(); }
  void BeginConcurrentReads() override { pool_.BeginReadPhase(); }
  void EndConcurrentReads() override { pool_.EndReadPhase(); }
  IoStats TakeThreadIoDelta() override { return pool_.TakeThreadIoDelta(); }

  Tick now() const { return now_; }
  Tick phase_span() const { return phase_span_; }
  BPlusTree& btree() { return tree_; }
  void FlushBufferPool() override { pool_.FlushAll(); }

  /// Everything the range-query traversal reads besides pages: the scalar
  /// state an MVCC commit freezes alongside the page versions, so a
  /// snapshot query can run RangeQueryFrom against a frozen pager view
  /// while the live tree keeps moving.
  struct ReadView {
    Tick now = 0;
    Tick phase_span = 1;
    Tick max_update_interval = 60;
    double extent = 1000.0;
    int max_scan_intervals = 256;
    double max_speed_x = 0.0;
    double max_speed_y = 0.0;
    PageId root = kInvalidPageId;
    uint64_t size = 0;
  };
  ReadView read_view() const {
    return {now_,          phase_span_,  options_.max_update_interval,
            options_.extent, options_.max_scan_intervals,
            max_speed_x_,  max_speed_y_, tree_.root(),
            static_cast<uint64_t>(tree_.size())};
  }

  /// The range query against an explicit (view, pool) pair — the exact
  /// instance-method traversal, decoupled from live state. `scanned_total`
  /// (optional) receives the records-visited tally.
  static std::vector<std::pair<ObjectId, MotionState>> RangeQueryFrom(
      const ReadView& view, BufferPool& pool, const Rect& window, Tick t,
      std::atomic<int64_t>* scanned_total = nullptr);

  // Durability (ObjectIndex hooks): flushes the pool and checkpoints the
  // DiskPager with the B^x metadata (clock, max speeds, object->key map,
  // B+-tree roots) + `app_meta` as one atomic unit.
  bool durable() const override { return disk_ != nullptr; }
  void Checkpoint(const std::string& app_meta) override;
  bool recovered() const override;
  const std::string& recovered_app_meta() const override {
    return recovered_app_meta_;
  }

  /// The durable store behind the tree (null when in-memory).
  DiskPager* disk() const override { return disk_; }

  /// Records visited by range scans since construction (the enlargement
  /// overhead: scanned minus returned candidates were false positives).
  int64_t scanned_records() const {
    return scanned_records_.load(std::memory_order_relaxed);
  }

  /// The key an object state maps to (exposed for tests).
  uint64_t KeyFor(ObjectId id, const MotionState& state) const;

 private:
  int64_t PartitionOf(Tick t_ref) const {
    return static_cast<int64_t>(t_ref) / phase_span_;
  }
  Tick LabelTime(int64_t partition) const {
    return static_cast<Tick>((partition + 1) * phase_span_);
  }
  uint32_t CellCoord(double v) const;
  static uint32_t CellCoordFor(double extent, double v);
  std::string SerializeMeta(const std::string& app_meta) const;
  void RestoreMeta(const std::string& blob);

  Options options_;
  Tick phase_span_;
  std::unique_ptr<Pager> pager_;
  DiskPager* disk_ = nullptr;  // pager_ downcast when durable, else null
  mutable BufferPool pool_;
  BPlusTree tree_;
  Tick now_ = 0;
  double max_speed_x_ = 0.0;  // monotone max |vx| over all inserts
  double max_speed_y_ = 0.0;
  // Key of each live object (deletes re-derive the record to remove; the
  // TPR-tree keeps the analogous object->leaf map).
  std::unordered_map<ObjectId, uint64_t> key_of_;
  // Concurrent const RangeQuery calls all bump the scan tally.
  mutable std::atomic<int64_t> scanned_records_{0};
  std::string recovered_app_meta_;
};

/// Bits per axis of the B^x cell grid (coarser than the full Z curve so
/// window decompositions stay small; candidates are filtered exactly).
inline constexpr int kBxZBits = 12;
inline constexpr uint32_t kBxMaxCell = (1u << kBxZBits) - 1;

}  // namespace pdr

#endif  // PDR_BX_BX_TREE_H_
