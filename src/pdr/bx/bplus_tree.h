// Paged B+-tree with unique 64-bit keys and moving-object payloads.
//
// The B^x-tree's backing structure: leaves hold (key, object id, reported
// motion) records sorted by key and are chained for range scans; internal
// nodes hold (minimum key of subtree, child page) fences. Nodes live on
// 4 KB pages behind the shared LRU BufferPool so every access is charged
// like the TPR-tree's.
//
// Simplifications, documented: deletions never merge or rebalance nodes —
// a leaf that empties stays linked and keeps routing its key range, so
// later inserts in that range refill it (the B^x workload deletes and
// reinserts continuously, which keeps occupancy healthy); keys are unique
// by construction (the B^x key embeds the object id).

#ifndef PDR_BX_BPLUS_TREE_H_
#define PDR_BX_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pdr/mobility/object.h"
#include "pdr/storage/buffer_pool.h"
#include "pdr/storage/pager.h"
#include "pdr/storage/serde.h"

namespace pdr {

/// One indexed record.
struct BPlusRecord {
  uint64_t key = 0;
  double x = 0, y = 0, vx = 0, vy = 0;
  Tick t_ref = 0;
  ObjectId oid = 0;

  MotionState ToState() const { return {{x, y}, {vx, vy}, t_ref}; }
  static BPlusRecord From(uint64_t key, ObjectId oid,
                          const MotionState& s) {
    return {key, s.pos.x, s.pos.y, s.vel.x, s.vel.y, s.t_ref, oid};
  }
};

class BPlusTree {
 public:
  /// The tree does not own the pool; the B^x-tree shares one pool across
  /// its structures.
  explicit BPlusTree(BufferPool* pool);

  /// Inserts a record; `record.key` must not already be present.
  void Insert(const BPlusRecord& record);

  /// Removes the record with `key`; returns false when absent.
  bool Delete(uint64_t key);

  /// Looks up one key; returns false when absent.
  bool Find(uint64_t key, BPlusRecord* out);

  /// Visits every record with lo <= key <= hi in key order. The visitor
  /// returns false to stop early. Read-only; concurrent scans are safe
  /// when the shared pool is in its read-mostly phase.
  void ScanRange(uint64_t lo, uint64_t hi,
                 const std::function<bool(const BPlusRecord&)>& visit) const;

  /// ScanRange against an explicit (pool, root) pair: the traversal needs
  /// nothing else, so an MVCC snapshot query can run it over a frozen
  /// page view (src/pdr/mvcc/) with the exact instance-method code path.
  static void ScanRangeFrom(
      BufferPool& pool, PageId root, uint64_t lo, uint64_t hi,
      const std::function<bool(const BPlusRecord&)>& visit);

  PageId root() const { return root_; }

  size_t size() const { return size_; }
  size_t node_count() const { return node_count_; }
  int height() const { return height_; }

  /// Structural self-check (sorted keys, fence correctness, leaf chain,
  /// record count); throws std::logic_error on violation. For tests.
  void CheckInvariants();

  /// Durability: the tree's off-page state (roots, height, counts) —
  /// appended to / restored from a checkpoint metadata byte string. The
  /// pages themselves persist through the shared pool's pager.
  void SerializeMeta(std::string* out) const;
  void RestoreMeta(ByteReader* reader);

  // On-page layout structs; defined in the .cc, incomplete for callers.
  struct NodeHeader;
  struct InternalEntry;

 private:
  /// Descends to the leaf whose range covers `key`, collecting the path
  /// of internal pages when `path` is non-null.
  PageId FindLeaf(uint64_t key, std::vector<PageId>* path) const;
  static PageId FindLeafFrom(BufferPool& pool, PageId root, uint64_t key,
                             std::vector<PageId>* path);

  void InsertIntoParent(std::vector<PageId> path, uint64_t key,
                        PageId child);

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  int height_ = 1;
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace pdr

#endif  // PDR_BX_BPLUS_TREE_H_
