#include "pdr/bx/bx_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "pdr/obs/obs.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/serde.h"

namespace pdr {
namespace {

constexpr uint64_t kOidBits = 24;
constexpr uint64_t kOidMask = (1ull << kOidBits) - 1;
constexpr uint64_t kZShift = kOidBits;              // z occupies bits 24..47
constexpr uint64_t kPartitionShift = kZShift + 24;  // partition bits 48..50
constexpr int64_t kPartitionSlots = 8;
constexpr uint32_t kBxMetaMagic = 0x4d585842u;  // "BXXM"

std::unique_ptr<Pager> MakeTreePager(const BxTree::Options& options) {
  if (options.external_pager != nullptr) {
    if (!options.storage_dir.empty()) {
      throw std::invalid_argument(
          "BxTree: external_pager and storage_dir are mutually exclusive");
    }
    return nullptr;  // caller-owned store
  }
  if (options.storage_dir.empty()) return std::make_unique<MemPager>();
  return std::make_unique<DiskPager>(options.storage_dir,
                                     options.fault_injector);
}

}  // namespace

BxTree::BxTree(const Options& options)
    : options_(options),
      phase_span_(std::max<Tick>(1, options.max_update_interval / 2)),
      pager_(MakeTreePager(options)),
      pool_(options.external_pager != nullptr ? options.external_pager
                                              : pager_.get(),
            options.buffer_pages),
      tree_(&pool_) {
  disk_ = dynamic_cast<DiskPager*>(pager_.get());
  if (disk_ != nullptr && disk_->recovered()) {
    RestoreMeta(disk_->recovered_meta());
  }
}

bool BxTree::recovered() const {
  return disk_ != nullptr && disk_->recovered();
}

std::string BxTree::SerializeMeta(const std::string& app_meta) const {
  std::string out;
  PutPod(&out, kBxMetaMagic);
  PutPod(&out, now_);
  PutPod(&out, max_speed_x_);
  PutPod(&out, max_speed_y_);
  PutPod(&out, scanned_records_.load(std::memory_order_relaxed));
  // Sorted by object id so the checkpoint bytes are a pure function of the
  // logical tree state, not of hash-map iteration order.
  std::vector<std::pair<ObjectId, uint64_t>> entries(key_of_.begin(),
                                                     key_of_.end());
  std::sort(entries.begin(), entries.end());
  PutPod(&out, static_cast<uint64_t>(entries.size()));
  for (const auto& [id, key] : entries) {
    PutPod(&out, id);
    PutPod(&out, key);
  }
  tree_.SerializeMeta(&out);
  PutBlob(&out, app_meta);
  return out;
}

void BxTree::RestoreMeta(const std::string& blob) {
  ByteReader reader(blob);
  if (reader.Get<uint32_t>() != kBxMetaMagic) {
    throw std::runtime_error(
        "recovered store does not hold a B^x-tree (index kind mismatch?)");
  }
  now_ = reader.Get<Tick>();
  max_speed_x_ = reader.Get<double>();
  max_speed_y_ = reader.Get<double>();
  scanned_records_.store(reader.Get<int64_t>(), std::memory_order_relaxed);
  const uint64_t objects = reader.Get<uint64_t>();
  key_of_.clear();
  key_of_.reserve(objects);
  for (uint64_t i = 0; i < objects; ++i) {
    const ObjectId id = reader.Get<ObjectId>();
    const uint64_t key = reader.Get<uint64_t>();
    key_of_.emplace(id, key);
  }
  tree_.RestoreMeta(&reader);
  recovered_app_meta_ = std::string(reader.GetBlob());
}

void BxTree::Checkpoint(const std::string& app_meta) {
  if (disk_ == nullptr) return;
  pool_.FlushAll();  // drain the dirty-page table into the store
  disk_->Checkpoint(SerializeMeta(app_meta));
}

uint32_t BxTree::CellCoord(double v) const {
  return CellCoordFor(options_.extent, v);
}

uint32_t BxTree::CellCoordFor(double extent, double v) {
  const double cell = extent / (1u << kBxZBits);
  const double clamped = Clamp(v, 0.0, extent);
  return std::min(kBxMaxCell,
                  static_cast<uint32_t>(std::floor(clamped / cell)));
}

uint64_t BxTree::KeyFor(ObjectId id, const MotionState& state) const {
  assert(id <= kOidMask && "object id exceeds the 24-bit key field");
  const int64_t partition = PartitionOf(state.t_ref);
  const Vec2 at_label = state.PositionAt(LabelTime(partition));
  const uint64_t z = ZEncode(CellCoord(at_label.x), CellCoord(at_label.y));
  return (static_cast<uint64_t>(partition % kPartitionSlots)
          << kPartitionShift) |
         (z << kZShift) | (static_cast<uint64_t>(id) & kOidMask);
}

void BxTree::Insert(ObjectId id, const MotionState& state) {
  assert(key_of_.find(id) == key_of_.end() && "duplicate insert");
  const uint64_t key = KeyFor(id, state);
  tree_.Insert(BPlusRecord::From(key, id, state));
  key_of_[id] = key;
  max_speed_x_ = std::max(max_speed_x_, std::fabs(state.vel.x));
  max_speed_y_ = std::max(max_speed_y_, std::fabs(state.vel.y));
}

bool BxTree::Delete(ObjectId id) {
  auto it = key_of_.find(id);
  if (it == key_of_.end()) return false;
  const bool removed = tree_.Delete(it->second);
  assert(removed && "key map out of sync with B+-tree");
  key_of_.erase(it);
  return removed;
}

void BxTree::Apply(const UpdateEvent& update) {
  if (update.old_state) {
    const bool removed = Delete(update.id);
    assert(removed && "update deletes an object that is not indexed");
    (void)removed;
  }
  if (update.new_state) Insert(update.id, *update.new_state);
}

void BxTree::AdvanceTo(Tick now) {
  assert(now >= now_);
  now_ = now;
}

std::vector<std::pair<ObjectId, MotionState>> BxTree::RangeQuery(
    const Rect& window, Tick t) const {
  return RangeQueryFrom(read_view(), pool_, window, t, &scanned_records_);
}

std::vector<std::pair<ObjectId, MotionState>> BxTree::RangeQueryFrom(
    const ReadView& view, BufferPool& pool, const Rect& window, Tick t,
    std::atomic<int64_t>* scanned_total) {
  TraceSpan span("bx.range_query");
  // Inside a concurrent-reads phase, pool-wide stats mix in other threads'
  // I/O; attribute this query's span from the calling thread's delta.
  const bool phased = pool.in_read_phase();
  const IoStats io_before =
      span.active() ? (phased ? pool.PeekThreadIoDelta() : pool.stats())
                    : IoStats{};
  int64_t scanned = 0;  // local tally, folded into the atomic once at exit
  static Counter& queries =
      MetricsRegistry::Global().GetCounter("pdr.bx.range_queries");
  static Counter& scanned_counter =
      MetricsRegistry::Global().GetCounter("pdr.bx.scanned_records");
  queries.Increment();

  const auto partition_of = [&view](Tick t_ref) {
    return static_cast<int64_t>(t_ref) / view.phase_span;
  };

  std::vector<std::pair<ObjectId, MotionState>> out;
  if (view.size == 0) return out;

  // Partitions that can hold live entries: reference ticks in
  // [now - U, now].
  const int64_t p_lo =
      partition_of(std::max<Tick>(0, view.now - view.max_update_interval));
  const int64_t p_hi = partition_of(view.now);

  for (int64_t partition = p_lo; partition <= p_hi; ++partition) {
    const Tick label = static_cast<Tick>((partition + 1) * view.phase_span);
    // Enlarge the query window back (or forward) to the label time using
    // the maximum observed speeds, then clamp to the domain: every object
    // whose position at t is in `window` has its label-time position in
    // the enlarged window (see DESIGN.md for the clamping argument).
    const double dt = std::fabs(static_cast<double>(t) - label);
    const Rect enlarged(window.x_lo - view.max_speed_x * dt,
                        window.y_lo - view.max_speed_y * dt,
                        window.x_hi + view.max_speed_x * dt,
                        window.y_hi + view.max_speed_y * dt);
    // CellCoord clamps into the domain monotonically, so the cell range
    // below covers the clamped label position of every candidate — even
    // objects whose predicted positions leave the domain.
    const uint32_t cx_lo = CellCoordFor(view.extent, enlarged.x_lo);
    const uint32_t cy_lo = CellCoordFor(view.extent, enlarged.y_lo);
    const uint32_t cx_hi = CellCoordFor(view.extent, enlarged.x_hi);
    const uint32_t cy_hi = CellCoordFor(view.extent, enlarged.y_hi);

    const uint64_t partition_bits =
        static_cast<uint64_t>(partition % kPartitionSlots) << kPartitionShift;
    for (const ZInterval& iv :
         ZDecomposeWindow(cx_lo, cy_lo, cx_hi, cy_hi,
                          view.max_scan_intervals)) {
      const uint64_t lo = partition_bits | (iv.lo << kZShift);
      const uint64_t hi = partition_bits | (iv.hi << kZShift) | kOidMask;
      BPlusTree::ScanRangeFrom(
          pool, view.root, lo, hi, [&](const BPlusRecord& record) {
            ++scanned;
            // Entries from other (old) partitions cannot appear: partition
            // bits differ for all live generations. Filter exactly.
            const MotionState state = record.ToState();
            if (partition_of(state.t_ref) == partition &&
                window.ContainsClosed(state.PositionAt(t))) {
              out.emplace_back(record.oid, state);
            }
            return true;
          });
    }
  }
  if (scanned_total != nullptr) {
    scanned_total->fetch_add(scanned, std::memory_order_relaxed);
  }
  scanned_counter.Add(scanned);
  if (span.active()) {
    const IoStats delta =
        (phased ? pool.PeekThreadIoDelta() : pool.stats()) - io_before;
    span.SetAttr("partitions", p_hi - p_lo + 1);
    span.SetAttr("scanned", scanned);
    span.SetAttr("results", static_cast<int64_t>(out.size()));
    span.SetAttr("io_reads", delta.physical_reads);
    span.SetAttr("io_logical", delta.logical_reads);
  }
  return out;
}

}  // namespace pdr
