// Z-order (Morton) space-filling curve over a 2^kZBits x 2^kZBits grid.
//
// The B^x-tree linearizes positions with a space-filling curve so that a
// B+-tree can index them. This module provides bit-interleaved encoding
// and the decomposition of an axis-aligned cell window into a small set of
// Z-value intervals (by recursive quadrant descent with an interval
// budget; intervals may conservatively cover extra cells, which the
// exact-position filter removes later).

#ifndef PDR_BX_ZCURVE_H_
#define PDR_BX_ZCURVE_H_

#include <cstdint>
#include <vector>

namespace pdr {

/// Bits per axis; Z values use 2 * kZBits = 40 bits.
inline constexpr int kZBits = 20;
inline constexpr uint32_t kZMaxCoord = (1u << kZBits) - 1;

/// Interleaves the low kZBits of x (even positions) and y (odd positions).
uint64_t ZEncode(uint32_t x, uint32_t y);

/// Inverse of ZEncode.
void ZDecode(uint64_t z, uint32_t* x, uint32_t* y);

/// An inclusive Z-value interval [lo, hi].
struct ZInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Decomposes the inclusive cell window [x_lo, x_hi] x [y_lo, y_hi] into
/// at most `max_intervals` disjoint, sorted Z intervals that together
/// cover the window (possibly covering extra cells when the budget stops
/// the quadrant recursion early).
std::vector<ZInterval> ZDecomposeWindow(uint32_t x_lo, uint32_t y_lo,
                                        uint32_t x_hi, uint32_t y_hi,
                                        int max_intervals = 64);

}  // namespace pdr

#endif  // PDR_BX_ZCURVE_H_
