#include "pdr/bx/zcurve.h"

#include <cassert>

namespace pdr {
namespace {

/// Spreads the low 32 bits of v so bit i lands at position 2i.
uint64_t SpreadBits(uint64_t v) {
  v &= 0xFFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Inverse of SpreadBits.
uint32_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(v);
}

struct Window {
  uint32_t x_lo, y_lo, x_hi, y_hi;
};

void Recurse(uint32_t x0, uint32_t y0, uint32_t size, const Window& w,
             int max_intervals, std::vector<ZInterval>* out) {
  const uint32_t x1 = x0 + size - 1;
  const uint32_t y1 = y0 + size - 1;
  if (x1 < w.x_lo || x0 > w.x_hi || y1 < w.y_lo || y0 > w.y_hi) return;
  const bool fully_inside = x0 >= w.x_lo && x1 <= w.x_hi && y0 >= w.y_lo &&
                            y1 <= w.y_hi;
  if (fully_inside || size == 1 ||
      static_cast<int>(out->size()) >= max_intervals) {
    // An axis-aligned, Z-aligned square of side `size` covers a contiguous
    // Z range of size^2 values. When emitted due to the interval budget
    // the range conservatively covers cells outside the window; callers
    // filter exact positions afterwards.
    const uint64_t z0 = ZEncode(x0, y0);
    out->push_back(
        {z0, z0 + static_cast<uint64_t>(size) * size - 1});
    return;
  }
  const uint32_t half = size / 2;
  // Children in increasing Z order (x is the low interleaved bit).
  Recurse(x0, y0, half, w, max_intervals, out);
  Recurse(x0 + half, y0, half, w, max_intervals, out);
  Recurse(x0, y0 + half, half, w, max_intervals, out);
  Recurse(x0 + half, y0 + half, half, w, max_intervals, out);
}

}  // namespace

uint64_t ZEncode(uint32_t x, uint32_t y) {
  assert(x <= kZMaxCoord && y <= kZMaxCoord);
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void ZDecode(uint64_t z, uint32_t* x, uint32_t* y) {
  *x = CompactBits(z);
  *y = CompactBits(z >> 1);
}

std::vector<ZInterval> ZDecomposeWindow(uint32_t x_lo, uint32_t y_lo,
                                        uint32_t x_hi, uint32_t y_hi,
                                        int max_intervals) {
  assert(x_lo <= x_hi && y_lo <= y_hi);
  x_hi = std::min(x_hi, kZMaxCoord);
  y_hi = std::min(y_hi, kZMaxCoord);
  std::vector<ZInterval> out;
  Recurse(0, 0, 1u << kZBits, {x_lo, y_lo, x_hi, y_hi}, max_intervals, &out);
  // The recursion emits intervals in increasing Z order; merge touching
  // neighbors.
  std::vector<ZInterval> merged;
  merged.reserve(out.size());
  for (const ZInterval& iv : out) {
    if (!merged.empty() && merged.back().hi + 1 >= iv.lo) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace pdr
