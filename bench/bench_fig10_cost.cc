// Reproduces Fig. 10(a) and 10(b): total query cost (CPU + simulated I/O
// at 10 ms per random page read).
//
//  * 10(a): total cost vs varrho on CH100K for PA and FR, l in {30, 60}.
//    Expected shape: PA an order of magnitude (or more) below FR — FR
//    pays TPR-tree range-query I/O plus plane-sweep CPU per candidate
//    cell; PA evaluates in-memory polynomials only.
//  * 10(b): total cost vs dataset size (CH10K/CH100K/CH500K) at l = 30,
//    varrho = 1. Expected shape: FR cost grows roughly linearly with N,
//    PA cost is nearly flat (it depends on coefficient count, not N).

#include <cstdio>
#include <memory>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fig10_cost",
                "Fig. 10(a) cost vs varrho, Fig. 10(b) cost vs dataset size");

  // ---- Fig. 10(a): CH100K, cost vs varrho ------------------------------
  {
    const int objects = env.ScaledObjects(100000);
    std::printf("dataset: CH100K-scaled = %d objects\n", objects);
    const bench::SteadyWorkload workload =
        bench::MakeSteadyWorkload(env, objects);
    FrEngine fr(bench::FrOptionsFor(env, objects));
    PaEngine pa30(bench::PaOptionsFor(env, 30.0));
    PaEngine pa60(bench::PaOptionsFor(env, 60.0));
    ReplayInto(workload.dataset, -1, &fr, &pa30, &pa60);

    const std::vector<Tick> ticks = workload.QueryTicks(env.paper, 3);
    bench::SeriesPrinter cost(
        "fig10a_total_cost",
        {"l", "varrho", "PA_ms", "FR_ms", "FR_cpu_ms", "FR_io_ms"});
    for (double l : env.paper.l_values) {
      PaEngine& pa = l == 30.0 ? pa30 : pa60;
      for (int varrho : env.paper.rel_thresholds) {
        const double rho = env.Rho(objects, varrho);
        CostBreakdown fr_cost, pa_cost;
        for (Tick q_t : ticks) {
          fr_cost += fr.Query(q_t, rho, l, /*cold_cache=*/true).cost;
          pa_cost += pa.Query(q_t, rho).cost;
        }
        const double n = ticks.size();
        cost.Row({l, static_cast<double>(varrho), pa_cost.TotalMs() / n,
                  fr_cost.TotalMs() / n, fr_cost.cpu_ms / n,
                  fr_cost.io_ms / n});
      }
    }
  }

  // ---- Fig. 10(b): cost vs dataset size --------------------------------
  {
    bench::SeriesPrinter scaling(
        "fig10b_cost_vs_dataset",
        {"objects", "PA_ms", "FR_ms", "FR_io_reads"});
    const double l = 30.0;
    for (int paper_n : env.paper.object_counts) {
      const int objects = env.ScaledObjects(paper_n);
      const bench::SteadyWorkload workload =
          bench::MakeSteadyWorkload(env, objects);
      FrEngine fr(bench::FrOptionsFor(env, objects));
      PaEngine pa(bench::PaOptionsFor(env, l));
      ReplayInto(workload.dataset, -1, &fr, &pa);
      const double rho = env.Rho(objects, 1);
      const std::vector<Tick> ticks = workload.QueryTicks(env.paper, 3);
      CostBreakdown fr_cost, pa_cost;
      for (Tick q_t : ticks) {
        fr_cost += fr.Query(q_t, rho, l, /*cold_cache=*/true).cost;
        pa_cost += pa.Query(q_t, rho).cost;
      }
      const double n = ticks.size();
      scaling.Row({static_cast<double>(objects), pa_cost.TotalMs() / n,
                   fr_cost.TotalMs() / n,
                   static_cast<double>(fr_cost.io_reads()) / n});
    }
  }
  std::printf(
      "\nExpected shape: PA orders of magnitude cheaper than FR; FR grows "
      "~linearly with N while PA stays nearly flat.\n");
  return 0;
}
