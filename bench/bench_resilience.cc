// Extension bench: deadline-aware execution under load (DESIGN.md §11).
// Prices the resilience stack's two knobs on a steady workload:
//
//   resilience_load      p99 latency, shed rate, and answer-tier mix as
//                        the offered load (client threads against a fixed
//                        admission bound) grows — the overload story;
//   resilience_deadline  tier mix and p99 as the per-query budget shrinks
//                        at fixed load — the degradation-ladder story.
//
// Expected shapes: under overload the shed rate absorbs the excess while
// p99 of *admitted* queries stays flat (shedding, not queueing); as the
// budget shrinks the mix slides exact -> approx -> histogram and p99
// tracks the budget plus one bounded work quantum.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace pdr;

struct LoadResult {
  int64_t answered = 0;
  int64_t shed = 0;
  double p99_ms = 0.0;
  int64_t tiers[3] = {0, 0, 0};  // exact, approx, histogram

  double ShedRate() const {
    const int64_t offered = answered + shed;
    return offered > 0 ? static_cast<double>(shed) / offered : 0.0;
  }
  double TierPct(int t) const {
    return answered > 0 ? 100.0 * tiers[t] / answered : 0.0;
  }
};

// `threads` clients each fire `per_client` deadline-bounded queries at its
// own engine replica through one shared admission controller.
LoadResult RunLoad(std::vector<std::unique_ptr<FrEngine>>* frs,
                   std::vector<std::unique_ptr<PaEngine>>* pas,
                   const std::vector<Tick>& query_ticks, double rho, double l,
                   int threads, int per_client, int max_inflight,
                   const ResilienceOptions& opts) {
  AdmissionController admission({.max_inflight = max_inflight});
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> tiers[3] = {{0}, {0}, {0}};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      ResilientExecutor exec((*frs)[static_cast<size_t>(t)].get(),
                             (*pas)[static_cast<size_t>(t)].get(), opts);
      auto& mine = latencies[static_cast<size_t>(t)];
      mine.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        AdmissionController::Permit permit = admission.TryAdmit();
        if (!permit.ok()) {
          shed.fetch_add(1);
          std::this_thread::yield();
          continue;
        }
        const Tick q_t = query_ticks[static_cast<size_t>(i) %
                                     query_ticks.size()];
        const auto start = std::chrono::steady_clock::now();
        const TieredResult result = exec.Query(q_t, rho, l);
        mine.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        tiers[static_cast<int>(result.tier)].fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();

  LoadResult out;
  out.answered = answered.load();
  out.shed = shed.load();
  for (int i = 0; i < 3; ++i) out.tiers[i] = tiers[i].load();
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    out.p99_ms = all[static_cast<size_t>(0.99 * (all.size() - 1))];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_resilience",
                "extension: deadline-aware execution under load");

  const int objects = env.ScaledObjects(100000);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  const double rho = env.Rho(objects, 1);
  const double l = 30.0;
  const int kMaxClients = 8;
  const int kPerClient = env.full ? 120 : 40;
  const int kMaxInflight = 2;
  std::printf("dataset: CH100K-scaled = %d objects, clients x %d queries "
              "through %d admission slots\n",
              objects, kPerClient, kMaxInflight);

  // One engine replica per client thread, fed the identical stream; built
  // once and reused across every load point.
  std::vector<std::unique_ptr<FrEngine>> frs;
  std::vector<std::unique_ptr<PaEngine>> pas;
  for (int t = 0; t < kMaxClients; ++t) {
    auto fr_opts = bench::FrOptionsFor(env, objects);
    frs.push_back(std::make_unique<FrEngine>(fr_opts));
    pas.push_back(
        std::make_unique<PaEngine>(bench::PaOptionsFor(env, l)));
    ReplayInto(workload.dataset, -1, frs.back().get());
    ReplayInto(workload.dataset, -1, pas.back().get());
  }
  const std::vector<Tick> query_ticks =
      workload.QueryTicks(env.paper, 16);

  {
    bench::SeriesPrinter table(
        "resilience_load",
        {"clients", "offered", "answered", "shed_rate", "p99_ms",
         "exact_pct", "approx_pct", "hist_pct"});
    const double deadline_ms = 250.0;
    for (const int clients : {1, 2, 4, 8}) {
      const LoadResult r =
          RunLoad(&frs, &pas, query_ticks, rho, l, clients, kPerClient,
                  kMaxInflight, {.deadline_ms = deadline_ms});
      table.Row({static_cast<double>(clients),
                 static_cast<double>(r.answered + r.shed),
                 static_cast<double>(r.answered), r.ShedRate(), r.p99_ms,
                 r.TierPct(0), r.TierPct(1), r.TierPct(2)});
    }
    table.Note("fixed 250 ms budget; excess load sheds instead of queueing");
  }

  {
    bench::SeriesPrinter table(
        "resilience_deadline",
        {"deadline_ms", "answered", "shed_rate", "p99_ms", "exact_pct",
         "approx_pct", "hist_pct"});
    const int clients = 4;
    for (const double deadline_ms : {1e9, 50.0, 5.0, 0.5, 0.01}) {
      const LoadResult r =
          RunLoad(&frs, &pas, query_ticks, rho, l, clients, kPerClient,
                  kMaxInflight, {.deadline_ms = deadline_ms});
      table.Row({deadline_ms, static_cast<double>(r.answered), r.ShedRate(),
                 r.p99_ms, r.TierPct(0), r.TierPct(1), r.TierPct(2)});
    }
    table.Note(
        "4 clients; shrinking budgets slide the mix down the ladder "
        "(exact -> approx -> histogram)");
  }

  {
    // Per-rung cost, each tier pinned via the rung toggles: what one
    // answer costs at each quality level. (The ladder itself spends the
    // whole budget on the exact rung before falling back, so the cheaper
    // rungs only surface under pressure; this series prices them alone.)
    bench::SeriesPrinter table("resilience_tiers",
                               {"tier", "answered", "p99_ms"});
    const ResilienceOptions by_tier[3] = {
        {.deadline_ms = 1e9},
        {.deadline_ms = 1e9, .enable_exact = false},
        {.deadline_ms = 1e9, .enable_exact = false, .enable_approx = false},
    };
    for (int tier = 0; tier < 3; ++tier) {
      const LoadResult r = RunLoad(&frs, &pas, query_ticks, rho, l,
                                   /*threads=*/2, kPerClient, kMaxInflight,
                                   by_tier[tier]);
      table.Row({static_cast<double>(tier), static_cast<double>(r.answered),
                 r.p99_ms});
    }
    table.Note("0=exact, 1=approx, 2=histogram; generous budget, 2 clients");
  }

  std::printf(
      "\nExpected: growing offered load raises the shed rate while the p99 "
      "of admitted queries stays near the single-client figure (admission "
      "control sheds rather than queues); shrinking budgets move answers "
      "down the tier ladder while p99 stays bounded by the budget plus one "
      "histogram-floor work quantum.\n");
  return 0;
}
