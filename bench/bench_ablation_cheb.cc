// Ablation: Chebyshev model capacity (Section 6.4's design choices).
// Sweeps the macro-grid side g and polynomial degree k and reports
// accuracy (vs exact FR), query CPU, and per-update maintenance CPU, so
// the accuracy/CPU/memory trade the paper discusses is visible in one
// table.

#include <cstdio>
#include <memory>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_ablation_cheb",
                "ablation: PA grid side g x degree k (Sec. 6.4)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const int varrho = 2;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g, varrho=%d\n",
              objects, l, varrho);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);

  FrEngine fr(bench::FrOptionsFor(env, objects));
  {
    SinkAdapter<FrEngine> sink(&fr);
    Replay(workload.dataset, {&sink});
  }
  const double rho = env.Rho(objects, varrho);
  const std::vector<Tick> ticks = workload.QueryTicks(env.paper, 3);
  std::vector<Region> truths;
  for (Tick q_t : ticks) truths.push_back(fr.Query(q_t, rho, l).region);

  bench::SeriesPrinter table(
      "ablation_cheb",
      {"g", "k", "mem_MB", "update_us", "query_ms", "rfp_pct", "rfn_pct"});
  const double domain_area = env.paper.extent * env.paper.extent;

  for (int g : {5, 10, 20, 40}) {
    for (int k : {3, 5, 7}) {
      PaEngine pa(bench::PaOptionsFor(env, l, g, k));
      SinkAdapter<PaEngine> sink(&pa);
      const auto timings = Replay(workload.dataset, {&sink});
      double rfp = 0, rfn = 0, query_ms = 0;
      for (size_t q = 0; q < ticks.size(); ++q) {
        const auto result = pa.Query(ticks[q], rho);
        query_ms += result.cost.cpu_ms;
        const AccuracyMetrics m =
            CompareRegions(truths[q], result.region, domain_area);
        rfp += m.false_positive_ratio;
        rfn += m.false_negative_ratio;
      }
      const double n = ticks.size();
      table.Row({static_cast<double>(g), static_cast<double>(k),
                 static_cast<double>(pa.model().ModelBytes()) / 1e6,
                 timings[0].UsPerUpdate(), query_ms / n, 100 * rfp / n,
                 100 * rfn / n});
    }
  }
  std::printf(
      "\nExpected: error falls with g and k; update cost grows with k (and "
      "with g only through multi-cell squares); memory grows with g^2.\n");
  return 0;
}
