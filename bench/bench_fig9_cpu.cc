// Reproduces Fig. 9(a) and 9(b): CPU costs (dataset CH100K).
//
//  * 9(a): per-query CPU of PA (branch-and-bound) and DH (the filter step
//    evaluated over every cell) versus varrho, l in {30, 60}. Expected
//    shape: DH is flat in varrho (it always scans all cells); PA cost
//    falls as varrho rises (bounds prune more) and drops below DH.
//  * 9(b): maintenance CPU per location update for the density histogram
//    versus the polynomial coefficients. Expected shape: PA costs about
//    an order of magnitude more per update than DH (arccos/sin work).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fig9_cpu",
                "Fig. 9(a) query CPU vs varrho, Fig. 9(b) build CPU");

  const int objects = env.ScaledObjects(100000);
  std::printf("dataset: CH100K-scaled = %d objects\n", objects);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);

  // ---- Fig. 9(b): maintenance cost per update --------------------------
  // Feed the raw substrates separately so each is timed alone.
  DensityHistogram dh({env.paper.extent, env.paper.default_histogram_side,
                       env.paper.horizon()});
  ChebGrid pa30_model({env.paper.extent, env.paper.default_poly_side,
                       env.paper.default_degree, env.paper.horizon(), 30.0});
  ChebGrid pa60_model({env.paper.extent, env.paper.default_poly_side,
                       env.paper.default_degree, env.paper.horizon(), 60.0});
  SinkAdapter<DensityHistogram> dh_sink(&dh);
  SinkAdapter<ChebGrid> pa30_sink(&pa30_model);
  SinkAdapter<ChebGrid> pa60_sink(&pa60_model);
  const std::vector<SinkTiming> timings =
      Replay(workload.dataset, {&dh_sink, &pa30_sink, &pa60_sink});

  bench::SeriesPrinter build("fig9b_build_cpu_per_update",
                             {"method", "l", "us_per_update"});
  // method code: 0 = DH, 1 = PA.
  build.Row({0, 0, timings[0].UsPerUpdate()});
  build.Row({1, 30, timings[1].UsPerUpdate()});
  build.Row({1, 60, timings[2].UsPerUpdate()});
  std::printf("   PA/DH update-cost ratio (l=30): %.1fx\n",
              timings[1].UsPerUpdate() /
                  std::max(1e-9, timings[0].UsPerUpdate()));

  // ---- Fig. 9(a): query CPU vs varrho ----------------------------------
  FrEngine fr(bench::FrOptionsFor(env, objects));
  PaEngine pa30(bench::PaOptionsFor(env, 30.0));
  PaEngine pa60(bench::PaOptionsFor(env, 60.0));
  ReplayInto(workload.dataset, -1, &fr, &pa30, &pa60);

  const std::vector<Tick> query_ticks = workload.QueryTicks(env.paper, 5);
  bench::SeriesPrinter query(
      "fig9a_query_cpu",
      {"l", "varrho", "PA_ms", "DH_ms", "DH_naive_ms"});
  for (double l : env.paper.l_values) {
    PaEngine& pa = l == 30.0 ? pa30 : pa60;
    for (int varrho : env.paper.rel_thresholds) {
      const double rho = env.Rho(objects, varrho);
      double pa_ms = 0, dh_ms = 0, naive_ms = 0;
      for (Tick q_t : query_ticks) {
        pa_ms += pa.Query(q_t, rho).cost.cpu_ms;
        dh_ms += fr.DhOnlyQuery(q_t, rho, l, true).cpu_ms;
        // The paper-faithful per-cell summation (no prefix sums), for an
        // honest comparison with the paper's Fig. 9(a) DH curve.
        Timer timer;
        (void)FilterCellsNaive(fr.histogram(), q_t, rho, l);
        naive_ms += timer.ElapsedMillis();
      }
      query.Row({l, static_cast<double>(varrho),
                 pa_ms / query_ticks.size(), dh_ms / query_ticks.size(),
                 naive_ms / query_ticks.size()});
    }
  }
  std::printf(
      "\nExpected shape: DH flat in varrho; PA falls with varrho and beats "
      "DH at high thresholds; PA updates ~10x DH updates. DH_ms is our "
      "prefix-sum filter; DH_naive_ms is the paper's per-cell summation.\n");
  return 0;
}
