// Extension bench: the FFT whole-plane density engine (DESIGN.md §15).
// Prices the engine's two headline claims on a steady paper workload:
//
//   fft_field_build          cost of one whole-plane answer as the raster
//                            resolution m grows: rasterize + forward
//                            transform (field_ms), spectral block sums +
//                            classification (classify_ms), and the cost of
//                            a second query against the cached field. The
//                            transform is O(M^2 log M) with M = 2^ceil(log2
//                            2m), so doubling m should roughly quadruple
//                            field_ms while the cached query stays flat.
//   fft_batch_amortization   per-query cost of answering N (rho, l) pairs
//                            against one tick's field via QueryBatch: one
//                            transform regardless of N, so per-query cost
//                            should fall toward the pure classification
//                            cost as N grows. fields_built counts the
//                            transforms actually run (always 1 per row).
//
// Expected shapes: field_ms grows ~4x per grid doubling; cached_ms and
// per_query_ms sit well under the fresh-field cost; fields_built == 1 in
// every amortization row.

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace pdr;

Counter& FieldsBuilt() {
  return MetricsRegistry::Global().GetCounter("pdr.fft.fields_built");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fft",
                "FFT whole-plane density engine: field build cost and "
                "batch amortization (§15)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const double rho = env.Rho(objects, 2);
  const bench::SteadyWorkload w = bench::MakeSteadyWorkload(env, objects);
  const Tick q_t = w.now + env.paper.prediction_window / 2;
  const Tick horizon = 2 * env.paper.max_update_interval;
  std::printf("dataset: %d objects, q_t=%d, rho=%.3g, l=%g\n", objects, q_t,
              rho, l);

  bench::SeriesPrinter build(
      "fft_field_build",
      {"grid", "field_ms", "classify_ms", "cached_ms", "accepted_cells"});
  for (const int grid : {64, 128, 256, 512}) {
    FftDensityEngine fft(
        {.extent = env.paper.extent, .grid = grid, .horizon = horizon});
    ReplayInto(w.dataset, -1, &fft);
    const auto first = fft.Query(q_t, rho, l);
    Timer cached_timer;
    const auto second = fft.Query(q_t, rho, l);
    const double cached_ms = cached_timer.ElapsedMillis();
    build.Row({static_cast<double>(grid), first.field_ms, first.classify_ms,
               cached_ms, static_cast<double>(second.accepted_cells)});
  }
  build.Flush();

  bench::SeriesPrinter amortized(
      "fft_batch_amortization",
      {"queries", "fields_built", "total_ms", "per_query_ms"});
  for (const int n : {1, 8, 64}) {
    FftDensityEngine fft(
        {.extent = env.paper.extent, .grid = 128, .horizon = horizon});
    ReplayInto(w.dataset, -1, &fft);
    // N standing queries against the same tick, thresholds spread around
    // the paper's rho so classification outcomes differ per query.
    std::vector<FftDensityEngine::BatchQuery> batch;
    for (int i = 0; i < n; ++i) {
      batch.push_back({rho * (0.5 + 1.5 * i / std::max(1, n - 1)), l});
    }
    if (n == 1) batch[0] = {rho, l};
    const int64_t built_before = FieldsBuilt().value();
    Timer timer;
    const auto results = fft.QueryBatch(q_t, batch);
    const double total_ms = timer.ElapsedMillis();
    const int64_t built =
        FieldsBuilt().value() - built_before;
    amortized.Row({static_cast<double>(results.size()),
                   static_cast<double>(built), total_ms, total_ms / n});
  }
  amortized.Flush();

  std::printf(
      "\nExpected: field_ms grows ~4x per grid doubling while cached_ms "
      "stays flat; every amortization row builds exactly one field, so "
      "per_query_ms falls toward the classification floor as N grows.\n");
  return 0;
}
