// Ablation: density-histogram granularity (the filter step's m, Sec. 5.2).
// Finer grids classify more cells decisively (fewer candidates => fewer
// TPR range queries and less plane-sweep work) at the price of histogram
// memory and filter CPU. Reports the accept/reject/candidate mix and the
// end-to-end FR query cost per m.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_ablation_filter",
                "ablation: filter grid m (Sec. 5.2)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const int varrho = 2;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g, varrho=%d\n",
              objects, l, varrho);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  const double rho = env.Rho(objects, varrho);

  bench::SeriesPrinter table(
      "ablation_filter",
      {"m", "mem_MB", "accept_pct", "reject_pct", "cand_pct", "update_us",
       "query_ms", "io_reads"});

  for (int m : {50, 100, 200, 250}) {
    FrEngine fr(bench::FrOptionsFor(env, objects, m));
    SinkAdapter<FrEngine> sink(&fr);
    const auto timings = Replay(workload.dataset, {&sink});
    const std::vector<Tick> ticks = workload.QueryTicks(env.paper, 3);
    double accept = 0, reject = 0, cand = 0, query_ms = 0, io_reads = 0;
    for (Tick q_t : ticks) {
      const auto result = fr.Query(q_t, rho, l, /*cold_cache=*/true);
      const double cells = static_cast<double>(m) * m;
      accept += 100.0 * result.accepted_cells / cells;
      reject += 100.0 * result.rejected_cells / cells;
      cand += 100.0 * result.candidate_cells / cells;
      query_ms += result.cost.TotalMs();
      io_reads += result.cost.io_reads();
    }
    const double n = ticks.size();
    table.Row({static_cast<double>(m),
               static_cast<double>(fr.histogram().MemoryBytes()) / 1e6,
               accept / n, reject / n, cand / n, timings[0].UsPerUpdate(),
               query_ms / n, io_reads / n});
  }
  std::printf(
      "\nExpected: candidate fraction shrinks as m grows; query cost falls "
      "until filter CPU (O(m^2)) dominates; update cost is ~flat (one cell "
      "per tick regardless of m).\n"
      "Note: m=50 gives l_c = %g > l/2, violating Algorithm 1's "
      "requirement — the conservative accept test is then vacuous "
      "(accept_pct = 0) though rejects stay sound; m=200 aligns perfectly "
      "(l/l_c integral) while m=250 wastes half a cell per side, which is "
      "why it can regress.\n",
      env.paper.extent / 50);
  return 0;
}
