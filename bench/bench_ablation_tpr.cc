// Ablation: the TPR-tree substrate. Compares the refinement step's I/O
// when candidate-cell range queries go through the TPR-tree against the
// page count a heap-file scan of the whole object table would read, and
// shows how candidate selectivity drives the advantage across varrho.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_ablation_tpr",
                "ablation: TPR-tree vs heap-scan refinement I/O");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g\n", objects, l);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  FrEngine fr(bench::FrOptionsFor(env, objects));
  {
    SinkAdapter<FrEngine> sink(&fr);
    Replay(workload.dataset, {&sink});
  }
  const Tick q_t = workload.now + env.paper.prediction_window / 2;

  // A heap file of 40-byte entries; an index-free refinement would scan it
  // once per candidate-cell range query.
  const double heap_pages =
      std::ceil(static_cast<double>(objects) * 40 / kPageSize);

  bench::SeriesPrinter table(
      "ablation_tpr",
      {"varrho", "candidates", "tpr_reads", "reads_per_cand",
       "scan_per_cand", "shared_scan"});
  for (int varrho : env.paper.rel_thresholds) {
    const double rho = env.Rho(objects, varrho);
    const auto result = fr.Query(q_t, rho, l, /*cold_cache=*/true);
    const double cands =
        std::max<double>(1.0, result.candidate_cells);
    table.Row({static_cast<double>(varrho),
               static_cast<double>(result.candidate_cells),
               static_cast<double>(result.cost.io_reads()),
               result.cost.io_reads() / cands, heap_pages * cands,
               heap_pages});
  }
  std::printf(
      "\nExpected: TPR reads a handful of pages per candidate range query "
      "(vs a full heap scan per candidate). When candidates are numerous a "
      "single shared scan would win — the filter's job is to keep them "
      "few.\n");
  return 0;
}
