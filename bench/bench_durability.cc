// Extension bench: durability cost (WAL + checkpoint/recovery; DESIGN.md
// §10). The paper's engines are memory-resident; this bench prices the
// durable variant's two knobs on a steady workload: what a checkpoint
// costs at a given cadence (latency, pages logged, WAL volume, fsyncs)
// and what a post-crash recovery costs (redo records, wall time). The
// final checkpoint of every run is crashed just after its commit fsync,
// so recovery always has a full batch of redo work — the worst case the
// protocol allows.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_durability",
                "extension: WAL + checkpoint/recovery cost");

  const int objects = env.ScaledObjects(100000);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  const Tick duration = workload.dataset.duration();
  std::printf("dataset: CH100K-scaled = %d objects, %d ticks\n", objects,
              static_cast<int>(duration) + 1);

  bench::SeriesPrinter table(
      "durability", {"cadence", "ckpts", "ckpt_ms_avg", "pages_logged",
                     "wal_mb", "fsyncs", "recover_ms", "redo_records"});

  for (const Tick cadence : {Tick{4}, Tick{8}, Tick{16}, Tick{32}}) {
    auto replay = [&](FrEngine* fr) {
      // Returns total checkpoint wall time; checkpoints after every
      // `cadence` ticks and once more at the end of the replay.
      double ckpt_ms = 0.0;
      for (Tick now = 0; now <= duration; ++now) {
        fr->AdvanceTo(now);
        for (const UpdateEvent& e : workload.dataset.ticks[now]) {
          fr->Apply(e);
        }
        if (now == duration || (now + 1) % cadence == 0) {
          const auto start = std::chrono::steady_clock::now();
          fr->Checkpoint();
          ckpt_ms += MsSince(start);
        }
      }
      return ckpt_ms;
    };
    auto make_dir = [] {
      char tmpl[] = "/tmp/pdr_bench_durability_XXXXXX";
      const char* dir = mkdtemp(tmpl);
      if (dir == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        std::exit(1);
      }
      return std::string(dir);
    };
    auto opts = bench::FrOptionsFor(env, objects);

    // Fault-free rehearsal: the checkpoint-cost numbers, plus the op log
    // that locates the final checkpoint's commit fsync (the last wal.sync
    // is the post-publication WAL reset, the one before it is the
    // commit; see storage/disk_pager.h).
    const std::string rehearse_dir = make_dir();
    FaultInjector counter(env.seed);
    opts.storage_dir = rehearse_dir;
    opts.fault_injector = &counter;
    double ckpt_ms = 0.0;
    int64_t checkpoints = 0;
    int64_t pages_logged = 0;
    int64_t wal_bytes = 0;
    int64_t fsyncs = 0;
    {
      FrEngine fr(opts);
      ckpt_ms = replay(&fr);
      const DiskPager* disk = fr.index().disk();
      checkpoints = disk->checkpoint_stats().checkpoints;
      pages_logged = disk->checkpoint_stats().pages_logged;
      wal_bytes = disk->wal_stats().bytes_appended;
      fsyncs = disk->wal_stats().fsyncs;
    }
    std::system(("rm -rf '" + rehearse_dir + "'").c_str());
    int64_t commit_sync = -1;
    for (int64_t i = counter.ops_seen() - 1, seen = 0; i >= 0; --i) {
      if (counter.op_log()[i] == "wal.sync" && ++seen == 2) {
        commit_sync = i;
        break;
      }
    }
    if (commit_sync < 0) {
      std::fprintf(stderr, "no commit fsync in the rehearsal op log\n");
      return 1;
    }

    // The same run again, crashed just after that fsync: the final batch
    // is durable but unconverged, so recovery has a full batch of redo.
    const std::string crash_dir = make_dir();
    FaultInjector inject(env.seed);
    inject.Arm(commit_sync + 1, CrashMode::kClean);
    opts.storage_dir = crash_dir;
    opts.fault_injector = &inject;
    bool crashed = false;
    try {
      FrEngine fr(opts);
      replay(&fr);
    } catch (const CrashError&) {
      crashed = true;
    }
    if (!crashed) {
      std::fprintf(stderr, "armed crash never fired\n");
      return 1;
    }

    const auto start = std::chrono::steady_clock::now();
    opts.fault_injector = nullptr;
    FrEngine recovered(opts);
    const double recover_wall_ms = MsSince(start);
    const RecoveryStats& rec = recovered.index().disk()->recovery_stats();
    table.Row({static_cast<double>(cadence), static_cast<double>(checkpoints),
               ckpt_ms / static_cast<double>(checkpoints),
               static_cast<double>(pages_logged),
               static_cast<double>(wal_bytes) / (1024.0 * 1024.0),
               static_cast<double>(fsyncs), recover_wall_ms,
               static_cast<double>(rec.redo_records)});

    std::system(("rm -rf '" + crash_dir + "'").c_str());
  }

  std::printf(
      "\nExpected: WAL volume and fsyncs grow with checkpoint frequency "
      "(every checkpoint logs its dirty pages); per-checkpoint latency "
      "grows with cadence (more dirty pages accumulate between "
      "checkpoints); recovery stays bounded by one batch of redo — the "
      "protocol never replays more than the last unconverged "
      "checkpoint.\n");

  // Online-scrub overhead (DESIGN.md §16): the same steady replay with
  // DiskPager::Scrub(budget) after every tick — the exact work the
  // monitor's scrub hook schedules. Prices the verification tax a serving
  // system pays to find at-rest damage before a query trips on it.
  bench::SeriesPrinter scrub_table(
      "scrub_overhead", {"budget", "ticks", "scrub_ms_total",
                         "scrub_us_per_tick", "pages_scanned", "repaired"});
  for (const int64_t budget : {int64_t{0}, int64_t{8}, int64_t{64}}) {
    char tmpl[] = "/tmp/pdr_bench_durability_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    if (dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    auto opts = bench::FrOptionsFor(env, objects);
    opts.storage_dir = dir;
    opts.fault_injector = nullptr;
    double scrub_ms = 0.0;
    int64_t ticks = 0;
    {
      FrEngine fr(opts);
      DiskPager* disk = fr.index().disk();
      for (Tick now = 0; now <= duration; ++now) {
        fr.AdvanceTo(now);
        for (const UpdateEvent& e : workload.dataset.ticks[now]) fr.Apply(e);
        if (now == duration || (now + 1) % 8 == 0) fr.Checkpoint();
        if (budget > 0) {
          const auto start = std::chrono::steady_clock::now();
          disk->Scrub(budget);
          scrub_ms += MsSince(start);
        }
        ++ticks;
      }
      const ScrubStats& stats = disk->scrub_stats();
      if (stats.pages_unrepairable != 0) {
        std::fprintf(stderr, "scrub found damage on a healthy store\n");
        return 1;
      }
      scrub_table.Row({static_cast<double>(budget),
                       static_cast<double>(ticks), scrub_ms,
                       1000.0 * scrub_ms / static_cast<double>(ticks),
                       static_cast<double>(stats.pages_scanned),
                       static_cast<double>(stats.pages_repaired)});
    }
    std::system(("rm -rf '" + std::string(dir) + "'").c_str());
  }
  std::printf(
      "\nExpected: scrub cost scales linearly with the page budget and is "
      "dwarfed by the tick's own update/checkpoint work at small budgets — "
      "budget 8 verifies the whole store every few ticks for microseconds "
      "per tick.\n");
  return 0;
}
