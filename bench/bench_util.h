// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary:
//  * honors PDR_BENCH_SCALE (default 0.1) and the --full flag (scale 1.0),
//    which multiply the paper's dataset sizes so the default `for b in
//    build/bench/*` loop stays laptop-quick;
//  * prints the series it reproduces both as an aligned text table and as
//    CSV lines prefixed with "csv," for machine consumption;
//  * reproduces *shapes* (who wins, by what factor, where crossovers are),
//    not the paper's absolute 2007-era numbers.

#ifndef PDR_BENCH_BENCH_UTIL_H_
#define PDR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "pdr/pdr.h"

namespace pdr::bench {

struct BenchEnv {
  PaperConfig paper;
  double scale = 0.1;       ///< dataset-size multiplier
  bool full = false;        ///< --full: paper scale
  uint64_t seed = 20070415; ///< ICDE 2007 vintage
  int threads = 1;          ///< --threads=N query parallelism (0 = hardware)
  std::string jsonl_path;   ///< --jsonl=FILE / PDR_BENCH_JSONL: JSONL sink

  /// The execution policy the engines get: serial unless --threads was set.
  ExecPolicy Exec() const {
    return threads == 1 ? ExecPolicy::Serial() : ExecPolicy::Parallel(threads);
  }

  /// Paper object count scaled down (never below 2000).
  int ScaledObjects(int paper_objects) const;

  /// Absolute density threshold for a scaled dataset: the paper's rho
  /// formula applied to the *scaled* N keeps the same relative threshold.
  double Rho(int scaled_objects, int rel_threshold) const {
    return paper.RhoFor(scaled_objects, rel_threshold);
  }
};

/// Parses --full / --scale=X / --seed=N / --threads=N / --jsonl=FILE (also
/// the PDR_BENCH_JSONL environment variable); everything else is ignored.
BenchEnv ParseArgs(int argc, char** argv);

/// The steady-state workload every figure bench queries: a paper-config
/// dataset replayed for U + 10 ticks so that every object has re-reported
/// at least once and reference ticks are spread over the update interval.
struct SteadyWorkload {
  Dataset dataset;
  Tick now = 0;  ///< dataset.duration(); engines should be advanced here

  /// Query timestamps uniformly spread over the prediction window
  /// [now, now + W].
  std::vector<Tick> QueryTicks(const PaperConfig& paper, int count) const;
};

SteadyWorkload MakeSteadyWorkload(const BenchEnv& env, int scaled_objects);

/// Builds an FrEngine with the paper's defaults for `objects`.
FrEngine::Options FrOptionsFor(const BenchEnv& env, int objects,
                               int histogram_side = -1);

/// Builds a PaEngine with the paper's defaults.
PaEngine::Options PaOptionsFor(const BenchEnv& env, double l,
                               int poly_side = -1, int degree = -1);

// ---------------------------------------------------------------------------
// Output helpers

/// Aligned text table. Rows are buffered so that several series can be
/// filled concurrently; Flush() (or destruction) prints the whole table,
/// each row also echoed as "csv,<name>,v1,v2,...".
class SeriesPrinter {
 public:
  SeriesPrinter(std::string name, std::vector<std::string> columns);
  ~SeriesPrinter() { Flush(); }

  void Row(const std::vector<double>& values);
  void Note(const std::string& text);
  void Flush();

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::string> notes_;
  bool flushed_ = false;
};

/// Prints the standard bench banner (name, scale, seed). When the env
/// carries a JSONL path, this also opens the machine-readable sink: every
/// SeriesPrinter row is then mirrored as a {"type":"series",...} line and
/// a full metrics-registry snapshot is appended at process exit.
void Banner(const BenchEnv& env, const std::string& bench,
            const std::string& reproduces);

/// The process-wide bench JSONL writer opened by Banner (null when none).
JsonlWriter* BenchJsonl();

}  // namespace pdr::bench

#endif  // PDR_BENCH_BENCH_UTIL_H_
