// Reproduces Fig. 8(a) and 8(b): accuracy of the PA method versus the
// DH-only baselines (optimistic DH for the false-positive ratio,
// pessimistic DH for the false-negative ratio) as a function of the
// relative density threshold varrho, for l in {30, 60}.
//
// Ground truth D is the exact FR answer. Expected shape (paper): PA error
// stays below ~10%, DH errors reach tens-to-hundreds of percent, and all
// error ratios grow as varrho increases (the dense area shrinks).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fig8_accuracy",
                "Fig. 8(a) r_fp vs varrho, Fig. 8(b) r_fn vs varrho");

  const int objects = env.ScaledObjects(100000);  // CH100K
  std::printf("dataset: CH100K-scaled = %d objects\n", objects);
  const bench::SteadyWorkload workload = bench::MakeSteadyWorkload(env, objects);

  FrEngine fr(bench::FrOptionsFor(env, objects));
  PaEngine pa30(bench::PaOptionsFor(env, 30.0));
  PaEngine pa60(bench::PaOptionsFor(env, 60.0));
  ReplayInto(workload.dataset, -1, &fr, &pa30, &pa60);

  const std::vector<Tick> query_ticks = workload.QueryTicks(env.paper, 3);
  const double domain_area = env.paper.extent * env.paper.extent;

  bench::SeriesPrinter fp("fig8a_false_positive_ratio",
                          {"l", "varrho", "PA_rfp", "optDH_rfp",
                           "truth_area"});
  bench::SeriesPrinter fn("fig8b_false_negative_ratio",
                          {"l", "varrho", "PA_rfn", "pessDH_rfn",
                           "truth_area"});

  for (double l : env.paper.l_values) {
    PaEngine& pa = l == 30.0 ? pa30 : pa60;
    for (int varrho : env.paper.rel_thresholds) {
      const double rho = env.Rho(objects, varrho);
      double pa_fp = 0, pa_fn = 0, opt_fp = 0, pess_fn = 0, truth_area = 0;
      for (Tick q_t : query_ticks) {
        const Region truth = fr.Query(q_t, rho, l).region;
        const AccuracyMetrics pa_m =
            CompareRegions(truth, pa.Query(q_t, rho).region, domain_area);
        const AccuracyMetrics opt_m = CompareRegions(
            truth, fr.DhOnlyQuery(q_t, rho, l, true).region, domain_area);
        const AccuracyMetrics pess_m = CompareRegions(
            truth, fr.DhOnlyQuery(q_t, rho, l, false).region, domain_area);
        pa_fp += pa_m.false_positive_ratio;
        pa_fn += pa_m.false_negative_ratio;
        opt_fp += opt_m.false_positive_ratio;
        pess_fn += pess_m.false_negative_ratio;
        truth_area += truth.Area();
      }
      const double n = query_ticks.size();
      fp.Row({l, static_cast<double>(varrho), 100 * pa_fp / n,
              100 * opt_fp / n, truth_area / n});
      fn.Row({l, static_cast<double>(varrho), 100 * pa_fn / n,
              100 * pess_fn / n, truth_area / n});
    }
  }
  std::printf(
      "\nExpected shape: PA errors well below DH errors; errors grow with "
      "varrho as the true dense area shrinks.\n");
  return 0;
}
