// Micro-benchmarks of the hot primitives (google-benchmark): histogram
// and Chebyshev-grid update paths, TPR-tree operations, the plane sweep,
// region algebra, and polynomial evaluation/bounding. These back the
// per-operation numbers quoted in EXPERIMENTS.md.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace pdr {
namespace {

constexpr double kExtent = 1000.0;
constexpr Tick kHorizon = 120;

std::vector<UpdateEvent> SomeInserts(int n, uint64_t seed = 7) {
  return MakeUniformInserts(n, kExtent, 1.5, seed);
}

void BM_HistogramApplyInsert(benchmark::State& state) {
  DensityHistogram dh({kExtent, 100, kHorizon});
  const auto events = SomeInserts(10000);
  size_t i = 0;
  ObjectId next_id = 100000;
  for (auto _ : state) {
    UpdateEvent e = events[i++ % events.size()];
    e.id = next_id++;
    dh.Apply(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramApplyInsert);

void BM_ChebGridApplyInsert(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  ChebGrid grid({kExtent, 10, degree, kHorizon, 30.0});
  const auto events = SomeInserts(10000);
  size_t i = 0;
  ObjectId next_id = 100000;
  for (auto _ : state) {
    UpdateEvent e = events[i++ % events.size()];
    e.id = next_id++;
    grid.Apply(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChebGridApplyInsert)->Arg(3)->Arg(5)->Arg(7);

void BM_TprInsert(benchmark::State& state) {
  TprTree tree({.buffer_pages = 4096, .horizon = kHorizon});
  const auto events = SomeInserts(50000);
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = events[i % events.size()];
    tree.Insert(static_cast<ObjectId>(i), *e.new_state);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TprInsert);

void BM_TprRangeQuery(benchmark::State& state) {
  TprTree tree({.buffer_pages = 4096, .horizon = kHorizon});
  for (const auto& e : SomeInserts(50000)) tree.Apply(e);
  Rng rng(3);
  for (auto _ : state) {
    const double x = rng.Uniform(0, kExtent - 50);
    const double y = rng.Uniform(0, kExtent - 50);
    benchmark::DoNotOptimize(
        tree.RangeQuery(Rect(x, y, x + 50, y + 50), 30));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TprRangeQuery);

void BM_TprUpdate(benchmark::State& state) {
  TprTree tree({.buffer_pages = 4096, .horizon = kHorizon});
  auto events = SomeInserts(50000);
  for (const auto& e : events) tree.Apply(e);
  Rng rng(4);
  for (auto _ : state) {
    const size_t idx = rng.UniformInt(0, events.size() - 1);
    const MotionState old_state = *events[idx].new_state;
    const MotionState fresh{{rng.Uniform(0, kExtent), rng.Uniform(0, kExtent)},
                            {rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                            old_state.t_ref};
    tree.Apply({old_state.t_ref, events[idx].id, old_state, fresh});
    events[idx].new_state = fresh;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TprUpdate);

void BM_SweepCell(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (int i = 0; i < n; ++i) {
    positions.push_back({rng.Uniform(-15, 25), rng.Uniform(-15, 25)});
  }
  const Rect cell(0, 0, 10, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SweepCell(cell, positions, 30.0, n / 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SweepCell)->Arg(64)->Arg(512)->Arg(4096);

void BM_Cheb2DEval(benchmark::State& state) {
  Cheb2D poly(5);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    poly.AddIndicator(rng.Uniform(-1, 0), rng.Uniform(0, 1),
                      rng.Uniform(-1, 0), rng.Uniform(0, 1), 1.0);
  }
  double x = -1.0;
  for (auto _ : state) {
    x += 1e-4;
    if (x > 1) x = -1;
    benchmark::DoNotOptimize(poly.Eval(x, -x));
  }
}
BENCHMARK(BM_Cheb2DEval);

void BM_Cheb2DBound(benchmark::State& state) {
  Cheb2D poly(5);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    poly.AddIndicator(rng.Uniform(-1, 0), rng.Uniform(0, 1),
                      rng.Uniform(-1, 0), rng.Uniform(0, 1), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Bound(-0.5, 0.25, -0.1, 0.9));
  }
}
BENCHMARK(BM_Cheb2DBound);

void BM_Cheb2DAddIndicator(benchmark::State& state) {
  Cheb2D poly(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    poly.AddIndicator(-0.4, 0.3, -0.2, 0.6, 1.0);
  }
}
BENCHMARK(BM_Cheb2DAddIndicator)->Arg(3)->Arg(5)->Arg(7);

void BM_RegionCoalesce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  Region region;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 900);
    const double y = rng.Uniform(0, 900);
    region.Add(Rect(x, y, x + rng.Uniform(5, 60), y + rng.Uniform(5, 60)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.Coalesced());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RegionCoalesce)->Arg(100)->Arg(1000);

void BM_IntersectionArea(benchmark::State& state) {
  Rng rng(9);
  Region a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    a.Add(Rect(x, y, x + 40, y + 40));
    x = rng.Uniform(0, 900);
    y = rng.Uniform(0, 900);
    b.Add(Rect(x, y, x + 40, y + 40));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectionArea(a, b));
  }
}
BENCHMARK(BM_IntersectionArea);

void BM_FilterCells(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  DensityHistogram dh({kExtent, m, 4});
  for (const auto& e : SomeInserts(50000)) dh.Apply(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterCells(dh, 0, 0.05, 30.0));
  }
}
BENCHMARK(BM_FilterCells)->Arg(100)->Arg(250);

// One recorder event: the cost every instrumented call site pays. With
// the recorder disabled (the default) this is a relaxed load and a
// branch; with PDR_FLIGHT_RECORDER=1 it is four relaxed stores into the
// calling thread's ring. Run the binary both ways to see the two costs.
void BM_RecorderRecord(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    FlightRecorder::Record(FrEvent::kTaskRun, ++i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderRecord);

// End-to-end FR query on a pre-built engine: the probe behind the CI
// recorder-overhead gate (scripts/check_overhead.sh). The query path
// crosses every instrumented subsystem — filter, per-cell refinement,
// plane sweep, buffer pool — so the off-vs-on delta of this bench bounds
// what always-on recording costs a serving process.
void RunFrQuery(benchmark::State& state, bool recorder_on) {
  const bool was_enabled = FlightRecorder::Enabled();
  FlightRecorder::SetEnabled(recorder_on);
  FrEngine fr({.extent = kExtent,
               .histogram_side = 50,
               .horizon = kHorizon,
               .buffer_pages = 256});
  for (const auto& e : SomeInserts(20000)) fr.Apply(e);
  const double rho = 3.0 * 20000 / (kExtent * kExtent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fr.Query(/*q_t=*/5, rho, /*l=*/30.0));
  }
  state.SetItemsProcessed(state.iterations());
  FlightRecorder::SetEnabled(was_enabled);
}

void BM_FrQuery(benchmark::State& state) { RunFrQuery(state, false); }
BENCHMARK(BM_FrQuery);

// The same query with recording forced on. The off/on pair is the CI
// overhead gate's probe: run both in ONE process with
// --benchmark_enable_random_interleaving so the repetitions alternate,
// and thermal/scheduler drift hits both sides equally instead of biasing
// whichever side ran second.
void BM_FrQueryRecorderOn(benchmark::State& state) { RunFrQuery(state, true); }
BENCHMARK(BM_FrQueryRecorderOn);

// End-to-end monitor tick with and without the workload recorder: the
// probe behind the CI recording-overhead gate (scripts/check_replay.sh).
// Each tick runs the full FR query plus the delta computation; the
// recorded variant additionally digests the answer (raw-bits transcript +
// EXPLAIN signature hash) and appends one framed record to the log, so
// the off/on delta bounds what always-on capture costs a serving process.
// The workload is deliberately small (~1.5 ms/tick): a gate comparing two
// minima needs hundreds of iterations per repetition for the per-rep
// means to be stable, and the 20k-object query probe above fits only ~20
// — at that count scheduler noise alone read as >8% phantom overhead.
// The density is tuned so the answer is non-empty (a few hundred rects),
// making the digest hash real answer bytes rather than an empty region.
void RunMonitorTick(benchmark::State& state, bool recorded) {
  constexpr double kTickExtent = 500.0;
  constexpr int kTickObjects = 800;
  FrEngine fr({.extent = kTickExtent,
               .histogram_side = 25,
               .horizon = kHorizon,
               .buffer_pages = 256});
  for (const auto& e : MakeUniformInserts(kTickObjects, kTickExtent, 1.5, 7))
    fr.Apply(e);
  const double rho = 3.0 * kTickObjects / (kTickExtent * kTickExtent);
  PdrMonitor monitor(&fr, {.rho = rho, .l = 25.0, .lookahead = 5});
  std::unique_ptr<WorkloadRecorder> recorder;
  std::string path;
  if (recorded) {
    path = "/tmp/pdr_bench_monitor_tick_" +
           std::to_string(static_cast<long long>(::getpid())) + ".wlog";
    recorder = std::make_unique<WorkloadRecorder>(path, WorkloadLogHeader{});
    monitor.SetRecorder(recorder.get());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.OnTick(0));
  }
  state.SetItemsProcessed(state.iterations());
  recorder.reset();
  if (!path.empty()) std::remove(path.c_str());
}

void BM_MonitorTick(benchmark::State& state) { RunMonitorTick(state, false); }
BENCHMARK(BM_MonitorTick);

void BM_MonitorTickRecorded(benchmark::State& state) {
  RunMonitorTick(state, true);
}
BENCHMARK(BM_MonitorTickRecorded);

}  // namespace
}  // namespace pdr

BENCHMARK_MAIN();
