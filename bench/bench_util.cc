#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace pdr::bench {
namespace {

// Opened by Banner, deliberately leaked: the atexit hook below writes the
// final metrics snapshot through it after main() returns.
JsonlWriter* g_jsonl = nullptr;
std::string g_bench_name;

void WriteMetricsAtExit() {
  if (g_jsonl == nullptr) return;
  WriteMetricsJsonl(g_jsonl, MetricsRegistry::Global().TakeSnapshot());
  g_jsonl->Flush();
}

}  // namespace

JsonlWriter* BenchJsonl() { return g_jsonl; }

int BenchEnv::ScaledObjects(int paper_objects) const {
  const int scaled = static_cast<int>(paper_objects * scale);
  return std::max(scaled, 2000);
}

BenchEnv ParseArgs(int argc, char** argv) {
  BenchEnv env;
  env.scale = BenchScaleFromEnv();
  if (const char* path = std::getenv("PDR_BENCH_JSONL");
      path != nullptr && path[0] != '\0') {
    env.jsonl_path = path;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      env.full = true;
      env.scale = 1.0;
    } else if (arg.rfind("--scale=", 0) == 0) {
      env.scale = std::max(0.001, std::atof(arg.c_str() + 8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      env.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      env.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--jsonl=", 0) == 0) {
      env.jsonl_path = arg.substr(8);
    }
  }
  return env;
}

std::vector<Tick> SteadyWorkload::QueryTicks(const PaperConfig& paper,
                                             int count) const {
  std::vector<Tick> ticks;
  ticks.reserve(count);
  for (int i = 0; i < count; ++i) {
    ticks.push_back(now + static_cast<Tick>(
                              paper.prediction_window *
                              static_cast<double>(i) / std::max(1, count - 1)));
  }
  return ticks;
}

SteadyWorkload MakeSteadyWorkload(const BenchEnv& env, int scaled_objects) {
  WorkloadConfig config;
  config.WithExtent(env.paper.extent);
  config.num_objects = scaled_objects;
  config.max_update_interval = env.paper.max_update_interval;
  config.seed = env.seed;
  config.network.seed = env.seed ^ 0x9E37;
  const Tick duration = env.paper.max_update_interval + 10;
  SteadyWorkload workload{GenerateDataset(config, duration), duration};
  return workload;
}

FrEngine::Options FrOptionsFor(const BenchEnv& env, int objects,
                               int histogram_side) {
  FrEngine::Options options;
  options.extent = env.paper.extent;
  options.histogram_side = histogram_side > 0
                               ? histogram_side
                               : env.paper.default_histogram_side;
  options.horizon = env.paper.horizon();
  options.buffer_pages = env.paper.BufferPagesFor(objects);
  options.io_ms = env.paper.io_ms;
  options.exec = env.Exec();
  return options;
}

PaEngine::Options PaOptionsFor(const BenchEnv& env, double l, int poly_side,
                               int degree) {
  PaEngine::Options options;
  options.extent = env.paper.extent;
  options.poly_side =
      poly_side > 0 ? poly_side : env.paper.default_poly_side;
  options.degree = degree > 0 ? degree : env.paper.default_degree;
  options.horizon = env.paper.horizon();
  options.l = l;
  options.eval_grid = env.paper.eval_grid;
  options.exec = env.Exec();
  return options;
}

SeriesPrinter::SeriesPrinter(std::string name,
                             std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

void SeriesPrinter::Row(const std::vector<double>& values) {
  rows_.push_back(values);
}

void SeriesPrinter::Note(const std::string& text) { notes_.push_back(text); }

void SeriesPrinter::Flush() {
  if (flushed_) return;
  flushed_ = true;
  std::printf("\n== %s ==\n", name_.c_str());
  for (const std::string& c : columns_) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& row : rows_) {
    for (double v : row) std::printf("%14.5g", v);
    std::printf("\n");
  }
  for (const auto& row : rows_) {
    std::printf("csv,%s", name_.c_str());
    for (double v : row) std::printf(",%.6g", v);
    std::printf("\n");
  }
  for (const std::string& n : notes_) std::printf("   %s\n", n.c_str());

  // Mirror each row into the machine-readable sink, one object per stage.
  if (g_jsonl != nullptr) {
    for (const auto& row : rows_) {
      std::string line = "{\"type\":\"series\",\"bench\":\"";
      line += JsonEscape(g_bench_name);
      line += "\",\"series\":\"";
      line += JsonEscape(name_);
      line += "\",\"values\":{";
      char buf[64];
      const size_t n = std::min(columns_.size(), row.size());
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) line += ',';
        line += '"';
        line += JsonEscape(columns_[i]);
        line += "\":";
        std::snprintf(buf, sizeof(buf), "%.9g", row[i]);
        line += buf;
      }
      line += "}}";
      g_jsonl->WriteLine(line);
    }
    g_jsonl->Flush();
  }
}

void Banner(const BenchEnv& env, const std::string& bench,
            const std::string& reproduces) {
  std::printf("=======================================================\n");
  std::printf("%s — reproduces %s\n", bench.c_str(), reproduces.c_str());
  std::printf("scale=%.3g (PDR_BENCH_SCALE or --full), seed=%llu, threads=%d\n",
              env.scale, static_cast<unsigned long long>(env.seed),
              env.threads);
  std::printf("=======================================================\n");

  g_bench_name = bench;
  if (!env.jsonl_path.empty() && g_jsonl == nullptr) {
    auto* writer = new JsonlWriter(env.jsonl_path);  // leaked; see atexit
    if (!writer->ok()) {
      std::fprintf(stderr, "warning: cannot open JSONL sink %s\n",
                   env.jsonl_path.c_str());
      delete writer;
    } else {
      g_jsonl = writer;
      std::printf("jsonl sink: %s\n", env.jsonl_path.c_str());
      std::atexit(WriteMetricsAtExit);
    }
  }
}

}  // namespace pdr::bench
