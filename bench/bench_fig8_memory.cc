// Reproduces Fig. 8(c) and 8(d): accuracy versus memory footprint at
// l = 30, varrho = 1 (dataset CH100K).
//
//  * DH points: m^2 in {10000, 40000, 62500}; model bytes use the paper's
//    16-bit counters. Optimistic DH gives the r_fp curve (8c), pessimistic
//    the r_fn curve (8d).
//  * PA points: (g^2, k) in {100, 1600} x {3, 4, 5}; model bytes use
//    float32 coefficients.
//
// Expected shape: both methods improve with memory, and PA reaches far
// lower error than DH even when DH is given several times more memory.

#include <cstdio>
#include <memory>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fig8_memory",
                "Fig. 8(c) r_fp vs memory, Fig. 8(d) r_fn vs memory");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const int varrho = 1;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g, varrho=%d\n",
              objects, l, varrho);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  const Tick horizon = env.paper.horizon();

  // Reference engine (for exact ground truth) plus DH variants.
  const std::vector<int> dh_sides = {100, 200, 250};
  std::vector<std::unique_ptr<FrEngine>> fr_variants;
  for (int m : dh_sides) {
    fr_variants.push_back(
        std::make_unique<FrEngine>(bench::FrOptionsFor(env, objects, m)));
  }
  // PA variants: (g, k).
  struct PaVariant {
    int g;
    int k;
    std::unique_ptr<PaEngine> engine;
  };
  std::vector<PaVariant> pa_variants;
  for (int g : {10, 40}) {
    for (int k : {3, 4, 5}) {
      pa_variants.push_back(
          {g, k,
           std::make_unique<PaEngine>(bench::PaOptionsFor(env, l, g, k))});
    }
  }

  // One pass over the update stream feeds every variant.
  {
    std::vector<UpdateSink*> sinks;
    std::vector<std::unique_ptr<UpdateSink>> adapters;
    for (auto& fr : fr_variants) {
      adapters.push_back(std::make_unique<SinkAdapter<FrEngine>>(fr.get()));
    }
    for (auto& pv : pa_variants) {
      adapters.push_back(
          std::make_unique<SinkAdapter<PaEngine>>(pv.engine.get()));
    }
    for (auto& a : adapters) sinks.push_back(a.get());
    Replay(workload.dataset, sinks);
  }

  const double rho = env.Rho(objects, varrho);
  const std::vector<Tick> query_ticks = workload.QueryTicks(env.paper, 3);
  const double domain_area = env.paper.extent * env.paper.extent;

  // Exact truth from the finest FR variant.
  std::vector<Region> truths;
  for (Tick q_t : query_ticks) {
    truths.push_back(fr_variants.back()->Query(q_t, rho, l).region);
  }

  bench::SeriesPrinter fp("fig8c_rfp_vs_memory",
                          {"method", "m_or_g", "k", "mem_MB", "r_fp_pct"});
  bench::SeriesPrinter fn("fig8d_rfn_vs_memory",
                          {"method", "m_or_g", "k", "mem_MB", "r_fn_pct"});
  // method code: 0 = DH (m_or_g = m, k unused), 1 = PA (m_or_g = g).

  for (size_t v = 0; v < fr_variants.size(); ++v) {
    const double mb = static_cast<double>(dh_sides[v]) * dh_sides[v] *
                      (horizon + 1) * 2 / 1e6;
    double rfp = 0, rfn = 0;
    for (size_t q = 0; q < query_ticks.size(); ++q) {
      rfp += CompareRegions(truths[q],
                            fr_variants[v]
                                ->DhOnlyQuery(query_ticks[q], rho, l, true)
                                .region,
                            domain_area)
                 .false_positive_ratio;
      rfn += CompareRegions(truths[q],
                            fr_variants[v]
                                ->DhOnlyQuery(query_ticks[q], rho, l, false)
                                .region,
                            domain_area)
                 .false_negative_ratio;
    }
    fp.Row({0, static_cast<double>(dh_sides[v]), 0, mb,
            100 * rfp / query_ticks.size()});
    fn.Row({0, static_cast<double>(dh_sides[v]), 0, mb,
            100 * rfn / query_ticks.size()});
  }

  for (const PaVariant& pv : pa_variants) {
    const double mb =
        static_cast<double>(pv.engine->model().ModelBytes()) / 1e6;
    double rfp = 0, rfn = 0;
    for (size_t q = 0; q < query_ticks.size(); ++q) {
      const AccuracyMetrics m = CompareRegions(
          truths[q], pv.engine->Query(query_ticks[q], rho).region,
          domain_area);
      rfp += m.false_positive_ratio;
      rfn += m.false_negative_ratio;
    }
    fp.Row({1, static_cast<double>(pv.g), static_cast<double>(pv.k), mb,
            100 * rfp / query_ticks.size()});
    fn.Row({1, static_cast<double>(pv.g), static_cast<double>(pv.k), mb,
            100 * rfn / query_ticks.size()});
  }
  fp.Flush();
  fn.Flush();

  std::printf(
      "\nExpected shape: errors fall with memory; PA (method=1) beats DH "
      "(method=0) even at a fraction of the memory.\n");
  return 0;
}
