// Ablation: branch-and-bound versus the paper's "trivial approach"
// (Section 6.3): evaluating the polynomial on a full m_d x m_d lattice.
// Reports CPU and work counters versus varrho — the paper's explanation
// for Fig. 9(a)'s falling PA curve is that higher thresholds let the
// interval bounds prune more of the plane.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_ablation_bnb",
                "ablation: branch-and-bound vs grid scan (Sec. 6.3)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g\n", objects, l);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  PaEngine pa(bench::PaOptionsFor(env, l));
  {
    SinkAdapter<PaEngine> sink(&pa);
    Replay(workload.dataset, {&sink});
  }
  const Tick q_t = workload.now + env.paper.prediction_window / 2;

  bench::SeriesPrinter table("ablation_bnb",
                             {"varrho", "bnb_ms", "scan_ms", "bnb_evals",
                              "scan_evals", "bnb_nodes", "pruned"});
  for (int varrho : env.paper.rel_thresholds) {
    const double rho = env.Rho(objects, varrho);
    const auto bnb = pa.Query(q_t, rho);
    const auto scan = pa.QueryGridScan(q_t, rho);
    table.Row({static_cast<double>(varrho), bnb.cost.cpu_ms,
               scan.cost.cpu_ms, static_cast<double>(bnb.bnb.point_evals),
               static_cast<double>(scan.bnb.point_evals),
               static_cast<double>(bnb.bnb.nodes_visited),
               static_cast<double>(bnb.bnb.pruned_boxes)});
  }
  std::printf(
      "\nExpected: scan cost flat in varrho; B&B cost falls with varrho as "
      "pruning strengthens, staying well below the scan.\n");
  return 0;
}
