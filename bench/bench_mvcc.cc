// Extension bench: MVCC snapshot reads (DESIGN.md §14). Prices the
// claim "writers never block readers" in both directions on a steady
// workload:
//
//   mvcc_throughput   sustained commit rate (updates/sec) and the
//                     snapshot-query latency percentiles as the reader
//                     count grows. Row readers=-1 is the serialized
//                     baseline — the same queries run inline on the
//                     writer thread between commits, so its commit rate
//                     shows what reader load costs a writer that must
//                     serialize; rows 0..N pay only CPU sharing.
//   mvcc_memory       live/retired version counts and the reclaim floor
//                     at the end of each run — what holding snapshots
//                     costs in memory.
//
// Expected shapes: commit rate for readers>=1 stays near the readers=0
// row (on a single core the drop is CPU contention, not blocking — no
// row should fall toward the serialized baseline's); snapshot p99 stays
// in the same decade as the serialized inline latency.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace pdr;

struct RunResult {
  int64_t commits = 0;
  int64_t updates = 0;
  double wall_s = 0.0;
  int64_t queries = 0;
  double q_p50_ms = 0.0;
  double q_p99_ms = 0.0;
  int64_t live_versions = 0;
  int64_t retired_versions = 0;

  double CommitsPerSec() const { return commits / wall_s; }
  double UpdatesPerSec() const { return updates / wall_s; }
};

double PercentileOf(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  return (*v)[static_cast<size_t>(p * (v->size() - 1))];
}

// Drives the full dataset through one writer; `readers` threads run
// snapshot queries flat-out meanwhile. readers == -1: serialized
// baseline, one inline query per tick on the writer thread.
RunResult RunMvcc(const Dataset& ds, const bench::BenchEnv& env,
                  double rho, double l, int readers) {
  mvcc::SnapshotManager snapshots;
  FrEngine fr(bench::FrOptionsFor(env, ds.config.num_objects));
  // Rebuild with snapshots attached (FrOptionsFor has no MVCC knob).
  FrEngine::Options opts = fr.options();
  opts.snapshots = &snapshots;
  FrEngine engine(opts);

  const Tick lookahead = env.paper.prediction_window / 2;
  std::atomic<bool> done{false};
  std::atomic<int64_t> queries{0};
  std::mutex lat_mu;
  std::vector<double> latencies;

  auto reader_loop = [&] {
    std::vector<double> local;
    while (!done.load(std::memory_order_acquire)) {
      mvcc::Snapshot snap;
      try {
        snap = snapshots.Pin();
      } catch (const std::logic_error&) {
        continue;
      }
      const Tick q_t = mvcc::SnapshotFrNow(snap) + lookahead;
      const auto t0 = std::chrono::steady_clock::now();
      (void)mvcc::SnapshotFrQuery(engine, snap, q_t, rho, l);
      const auto t1 = std::chrono::steady_clock::now();
      snap.Release();
      local.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      queries.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(lat_mu);
    latencies.insert(latencies.end(), local.begin(), local.end());
  };

  RunResult out;
  std::vector<std::thread> pool;
  const auto start = std::chrono::steady_clock::now();
  for (Tick now = 0; now <= ds.duration(); ++now) {
    engine.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) engine.Apply(e);
    engine.PrepareCommit();
    snapshots.Commit({engine.CaptureState(), nullptr});
    out.commits += 1;
    out.updates += static_cast<int64_t>(ds.ticks[now].size());
    if (readers < 0) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)engine.Query(now + lookahead, rho, l);
      const auto t1 = std::chrono::steady_clock::now();
      latencies.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      queries.fetch_add(1, std::memory_order_relaxed);
    } else if (now == 0) {
      for (int r = 0; r < readers; ++r) pool.emplace_back(reader_loop);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.queries = queries.load();
  out.q_p50_ms = PercentileOf(&latencies, 0.50);
  out.q_p99_ms = PercentileOf(&latencies, 0.99);
  out.live_versions = snapshots.live_versions();
  out.retired_versions = snapshots.retired_versions();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_mvcc",
                "MVCC snapshot reads: commit rate vs reader load (§14)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const double rho = env.Rho(objects, 2);
  const Tick duration =
      static_cast<Tick>(env.paper.max_update_interval) + 20;
  WorkloadConfig config;
  config.WithExtent(env.paper.extent);
  config.num_objects = objects;
  config.max_update_interval = env.paper.max_update_interval;
  config.seed = env.seed;
  const Dataset ds = GenerateDataset(config, duration);
  std::printf("dataset: %d objects, %lld ticks, rho=%.3g, l=%g\n", objects,
              static_cast<long long>(duration), rho, l);

  bench::SeriesPrinter table(
      "mvcc_throughput",
      {"readers", "commits_per_s", "updates_per_s", "queries", "q_p50_ms",
       "q_p99_ms", "live_versions", "retired_versions"});
  for (const int readers : {-1, 0, 1, 2, 4}) {
    const RunResult r = RunMvcc(ds, env, rho, l, readers);
    table.Row({static_cast<double>(readers), r.CommitsPerSec(),
               r.UpdatesPerSec(), static_cast<double>(r.queries),
               r.q_p50_ms, r.q_p99_ms,
               static_cast<double>(r.live_versions),
               static_cast<double>(r.retired_versions)});
  }
  table.Flush();
  std::printf(
      "\nExpected: readers>=1 rows commit near the readers=0 rate (CPU "
      "sharing only, never blocking); the readers=-1 serialized baseline "
      "pays every query on the commit path.\n");
  return 0;
}
