// Reproduces Table 1: the experimental setup, as reconstructed in
// DESIGN.md, plus the derived memory budgets the paper quotes in the text
// (DH ~2.4 MB with 16-bit counters; PA ~1.0 MB with float32 coefficients
// in the default setting).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_table1_setup", "Table 1 (experimental setup)");

  std::printf("%s\n", env.paper.ToString().c_str());

  const Tick horizon = env.paper.horizon();
  std::printf("Derived memory budgets (paper representations):\n");
  for (int cells : env.paper.histogram_cells) {
    const double mb = static_cast<double>(cells) * (horizon + 1) * 2 / 1e6;
    std::printf("  DH, m^2 = %6d cells      : %5.2f MB (16-bit counters)\n",
                cells, mb);
  }
  for (int polys : env.paper.polynomial_counts) {
    for (int k : env.paper.degrees) {
      const int coeffs_per_poly = (k + 1) * (k + 2) / 2;
      const double mb = static_cast<double>(polys) * coeffs_per_poly *
                        (horizon + 1) * 4 / 1e6;
      std::printf(
          "  PA, g^2 = %5d polys, k=%d : %5.2f MB (float32 coefficients)\n",
          polys, k, mb);
    }
  }

  std::printf("\nScaled dataset sizes for this run (scale=%.3g):\n",
              env.scale);
  for (int n : env.paper.object_counts) {
    std::printf("  CH%-4dK -> %d objects, rho(varrho=1) = %.4g /sq-mile\n",
                n / 1000, env.ScaledObjects(n),
                env.Rho(env.ScaledObjects(n), 1));
  }
  std::printf("\nTPR buffer pool: %zu pages for CH100K-scaled\n",
              env.paper.BufferPagesFor(env.ScaledObjects(100000)));
  return 0;
}
