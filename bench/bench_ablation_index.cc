// Ablation: the refinement index. Section 4 notes the framework can adopt
// any predictive moving-object index; this bench runs the same FR queries
// on the TPR-tree and on the B^x-tree and compares maintenance cost,
// query I/O, candidates fetched, and total cost.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_ablation_index",
                "ablation: TPR-tree vs B^x-tree refinement backend");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g\n", objects, l);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);

  FrEngine::Options tpr_options = bench::FrOptionsFor(env, objects);
  FrEngine::Options bx_options = tpr_options;
  bx_options.index = IndexKind::kBxTree;
  bx_options.max_update_interval = env.paper.max_update_interval;

  FrEngine fr_tpr(tpr_options);
  FrEngine fr_bx(bx_options);
  SinkAdapter<FrEngine> tpr_sink(&fr_tpr);
  SinkAdapter<FrEngine> bx_sink(&fr_bx);
  const auto timings = Replay(workload.dataset, {&tpr_sink, &bx_sink});
  std::printf("maintenance (histogram + index): TPR %.1f us/update, "
              "Bx %.1f us/update\n",
              timings[0].UsPerUpdate(), timings[1].UsPerUpdate());
  std::printf("index pages: TPR %zu, Bx %zu\n", fr_tpr.index().node_count(),
              fr_bx.index().node_count());

  const Tick q_t = workload.now + env.paper.prediction_window / 2;
  auto* bx = dynamic_cast<BxTree*>(&fr_bx.index());
  bench::SeriesPrinter table(
      "ablation_index",
      {"varrho", "tpr_io", "bx_io", "returned", "bx_scanned",
       "tpr_total_ms", "bx_total_ms", "answer_diff"});
  for (int varrho : env.paper.rel_thresholds) {
    const double rho = env.Rho(objects, varrho);
    const int64_t scanned_before = bx->scanned_records();
    const auto a = fr_tpr.Query(q_t, rho, l, /*cold_cache=*/true);
    const auto b = fr_bx.Query(q_t, rho, l, /*cold_cache=*/true);
    table.Row({static_cast<double>(varrho),
               static_cast<double>(a.cost.io_reads()),
               static_cast<double>(b.cost.io_reads()),
               static_cast<double>(a.objects_fetched),
               static_cast<double>(bx->scanned_records() - scanned_before),
               a.cost.TotalMs(), b.cost.TotalMs(),
               SymmetricDifferenceArea(a.region, b.region)});
  }
  std::printf(
      "\nExpected: answer_diff ~ 0 (both indexes yield the same exact PDR "
      "answer). The B^x-tree's query enlargement scans many records per "
      "candidate cell (bx_scanned >> returned) and re-reads leaves across "
      "the per-cell queries, so the TPR-tree is the better refinement "
      "backend at the paper's buffer sizes — matching the paper's choice. "
      "B^x updates are cheaper (B+-tree vs R-tree maintenance).\n");
  return 0;
}
