// Extension bench: interval PDR queries (Definition 5) — the union of
// snapshot answers over [q_t1, q_t2]. The paper defines them but
// evaluates snapshots only; this bench characterizes how both engines
// scale with the interval length (both evaluate one snapshot per tick,
// so cost is ~linear in the window — the honest baseline any future
// incremental algorithm would have to beat), plus the answer growth.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_interval",
                "extension: interval PDR query (Definition 5)");

  const int objects = env.ScaledObjects(100000);
  const double l = 30.0;
  const int varrho = 2;
  std::printf("dataset: CH100K-scaled = %d objects, l=%g, varrho=%d\n",
              objects, l, varrho);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);
  FrEngine fr(bench::FrOptionsFor(env, objects));
  PaEngine pa(bench::PaOptionsFor(env, l));
  ReplayInto(workload.dataset, -1, &fr, &pa);

  const double rho = env.Rho(objects, varrho);
  const Tick start = workload.now;
  const double snapshot_area = fr.Query(start, rho, l).region.Area();

  bench::SeriesPrinter table("interval_query",
                             {"window", "FR_ms", "PA_ms", "area",
                              "area_vs_snapshot"});
  for (Tick window : {0, 5, 10, 20, 40}) {
    const auto fr_result = fr.QueryInterval(start, start + window, rho, l);
    const auto pa_result = pa.QueryInterval(start, start + window, rho);
    table.Row({static_cast<double>(window), fr_result.cost.TotalMs(),
               pa_result.cost.TotalMs(), fr_result.region.Area(),
               fr_result.region.Area() / std::max(1.0, snapshot_area)});
  }
  std::printf(
      "\nExpected: cost ~linear in the window for both engines (one "
      "snapshot per tick); the union area grows sub-linearly because "
      "consecutive snapshots overlap heavily.\n");
  return 0;
}
