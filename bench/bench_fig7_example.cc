// Reproduces Fig. 7: the qualitative example on CH10K — a snapshot of the
// objects (7a), the dense regions found by the exact FR algorithm (7b),
// and by the approximate PA method (7c).
//
// Emits the raw data as CSV rows (csv,fig7_objects,... / csv,fig7_fr,... /
// csv,fig7_pa,...) so the figure can be re-plotted, plus agreement
// statistics: the paper's claim is that both answers have arbitrary shape
// and size and that PA matches FR "very well".

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pdr;
  const bench::BenchEnv env = bench::ParseArgs(argc, argv);
  bench::Banner(env, "bench_fig7_example",
                "Fig. 7 (example snapshot: objects, FR regions, PA regions)");

  const int objects = env.ScaledObjects(10000);  // CH10K
  std::printf("dataset: CH10K-scaled = %d objects\n", objects);
  const bench::SteadyWorkload workload =
      bench::MakeSteadyWorkload(env, objects);

  FrEngine fr(bench::FrOptionsFor(env, objects));
  PaEngine pa(bench::PaOptionsFor(env, 30.0));
  Oracle oracle(env.paper.extent);
  ReplayInto(workload.dataset, -1, &fr, &pa, &oracle);

  const Tick q_t = workload.now + env.paper.prediction_window / 2;
  // CH10K is sparse; a low threshold shows interesting regions, as in the
  // paper's example plot.
  const double rho = env.Rho(objects, 2);
  const double l = 30.0;

  // 7(a): object snapshot (subsampled to <= 2000 rows for the CSV).
  const std::vector<Vec2> positions = oracle.InDomainPositions(q_t);
  const size_t stride = std::max<size_t>(1, positions.size() / 2000);
  std::printf("\n== fig7a_objects (every %zu-th of %zu) ==\n", stride,
              positions.size());
  for (size_t i = 0; i < positions.size(); i += stride) {
    std::printf("csv,fig7_objects,%.3f,%.3f\n", positions[i].x,
                positions[i].y);
  }

  // 7(b): FR dense regions.
  const auto fr_result = fr.Query(q_t, rho, l);
  std::printf("\n== fig7b_fr_regions (%zu rects) ==\n",
              fr_result.region.size());
  for (const Rect& r : fr_result.region.rects()) {
    std::printf("csv,fig7_fr,%.3f,%.3f,%.3f,%.3f\n", r.x_lo, r.y_lo, r.x_hi,
                r.y_hi);
  }

  // 7(c): PA dense regions.
  const auto pa_result = pa.Query(q_t, rho);
  std::printf("\n== fig7c_pa_regions (%zu rects) ==\n",
              pa_result.region.size());
  for (const Rect& r : pa_result.region.rects()) {
    std::printf("csv,fig7_pa,%.3f,%.3f,%.3f,%.3f\n", r.x_lo, r.y_lo, r.x_hi,
                r.y_hi);
  }

  const AccuracyMetrics m =
      CompareRegions(fr_result.region, pa_result.region,
                     env.paper.extent * env.paper.extent);
  std::printf("\nAgreement FR vs PA: r_fp=%.1f%% r_fn=%.1f%% Jaccard=%.2f\n",
              100 * m.false_positive_ratio, 100 * m.false_negative_ratio,
              m.Jaccard());
  std::printf("FR area=%.0f sq-miles in %zu rects; PA area=%.0f in %zu\n",
              fr_result.region.Area(), fr_result.region.size(),
              pa_result.region.Area(), pa_result.region.size());
  std::printf(
      "Arbitrary shape/size: FR bounding box area %.0f vs region area %.0f "
      "(ratio %.2f)\n",
      fr_result.region.BoundingBox().Area(), fr_result.region.Area(),
      fr_result.region.Area() /
          std::max(1.0, fr_result.region.BoundingBox().Area()));
  return 0;
}
