// pdr_tool — command-line workbench over the full library API.
//
//   pdr_tool gen  --out city.pdrd [--objects N] [--extent E]
//                 [--duration T] [--seed S] [--interval U]
//   pdr_tool info --in city.pdrd
//   pdr_tool query --in city.pdrd --varrho R --l L [--qt T]
//                  [--engine fr|pa|both] [--index tpr|bx] [--threads N]
//                  [--trace FILE] [--deadline-ms D] [--degrade 0|1]
//   pdr_tool monitor --in city.pdrd --varrho R --l L [--lookahead W]
//                    [--every K] [--threads N] [--trace FILE]
//                    [--audit-rate R] [--report FILE] [--interval S]
//                    [--degree K] [--fail-on-drift] [--deadline-ms D]
//                    [--max-inflight M] [--degrade 0|1]
//   pdr_tool explain --in city.pdrd --varrho R --l L [--qt T]
//                    [--deadline-ms D] [--degrade 0|1] [--threads N]
//                    [--format text|json] [--flight-dir DIR]
//   pdr_tool stats --in city.pdrd --varrho R --l L [--qt T]
//                  [--engine fr|pa|both] [--index tpr|bx] [--queries N]
//                  [--json FILE] [--format text|prometheus]
//   pdr_tool save --in city.pdrd --wal-dir DIR [--index tpr|bx]
//                 [--checkpoint-every K]
//   pdr_tool recover --in city.pdrd --wal-dir DIR [--index tpr|bx]
//                    [--varrho R] [--l L] [--qt T]
//   pdr_tool fsck --wal-dir DIR [--repair] [--json]
//   pdr_tool record --in city.pdrd --log run.wlog --varrho R --l L
//                   [--lookahead W] [--every K] [--threads N]
//                   [--deadline-ms D] [--max-inflight M] [--degrade 0|1]
//                   [--degree K] [--bundle-dir DIR] [--flight-dir DIR]
//   pdr_tool replay (--log run.wlog | --bundle DIR) [--verify | --bench]
//                   [--threads N] [--digests] [--jsonl FILE]
//
// `gen` synthesizes and saves a dataset; `query` replays it and answers a
// snapshot PDR query with the chosen engine(s); `monitor` replays while a
// standing query reports appeared/vanished dense regions; `stats` runs a
// small query workload and dumps the metrics registry (human-readable to
// stdout, JSONL with --json).
//
// `monitor --audit-rate=R` switches the standing query to the fast PA
// engine and shadow-audits a fraction R of the answers against exact FR
// on the same snapshot (plus cost-model calibration of every replay).
// `--report FILE` streams one audit_window JSONL line per `--interval S`
// ticks ("-" for stdout; per-tick human output then moves to stderr) and
// prints a human-readable end-of-run report with percentile tables.
// `--fail-on-drift` exits 3 when the EWMA drift detector flagged any
// signal (PA recall/precision, predicted-vs-actual I/O ratio).
//
// `--threads N` (query, monitor) fans the parallel query stages out over
// N threads (0 = hardware concurrency); answers are bit-identical to the
// default serial execution, only wall-clock changes.
//
// `--trace FILE` (query, monitor) records the per-query span trees — and a
// final metrics snapshot — as JSONL ("-" for stdout). See EXPERIMENTS.md
// for a walkthrough of reading a trace.
//
// `--deadline-ms D` (query, monitor) bounds each query's wall time: on
// overrun the degradation ladder (DESIGN.md §11) downgrades exact FR to PA
// approximate, then to the histogram-only conservative answer; every
// result is stamped with the achieved tier. `--degrade 0` fails the query
// instead of degrading. `--max-inflight M` (monitor) sheds ticks when more
// than M evaluations are already in flight. Unknown flags and commands are
// errors (exit 2), not silently ignored.
//
// `explain` runs one query through the degradation ladder and prints its
// per-query provenance record: which tier answered and why, what every
// stage spent against the budget, candidate/accepted/rejected histogram
// cells, objects fetched, pages touched. `--format=json` emits the same
// record as one JSON line for scripting.
//
// `--flight-dir DIR` (query, explain, monitor) arms the flight recorder:
// per-thread rings record compact micro-events (cell visits, filter
// verdicts, page faults, WAL appends, tier transitions...) at ~ns cost,
// and any deadline miss / drift alert / crash / SLO alert snapshots them
// into DIR as JSONL plus a Chrome trace-event file (load it in Perfetto
// or chrome://tracing). `--slo-ms D` (monitor) tracks multi-window burn
// rates of the D-ms latency SLO — plus tier mix, shed rate, and audit
// quality — and on sustained burn raises an alert, dumps the recorder,
// and halves the admission bound until the long window recovers.
//
// `stats --format=prometheus` renders the same registry snapshot in the
// Prometheus text exposition format (names sanitized, labels preserved,
// histograms as quantile summaries) for scrape-style ingestion.
//
// `record` replays a dataset through the standing monitor while a
// checksummed workload log captures every update batch and per-tick
// result digest (DESIGN.md §13). `--bundle-dir DIR` additionally turns
// every flight-recorder incident dump into a self-contained repro bundle
// under DIR. `replay` re-drives a recorded log: the default `--verify`
// mode recomputes every digest and exits 3 on any divergence (at any
// `--threads` width — captures are thread-invariant); `--bench` re-drives
// as fast as possible and reports p50/p95/p99 per-tick latency plus the
// answer-tier mix (`--jsonl FILE` emits the same numbers as one JSONL
// series row for scripts/check_replay.sh). `--bundle DIR` replays the
// workload log inside a repro bundle instead of a bare log file.
//
// `save` replays a dataset into a *durable* FR engine (WAL + checkpoints
// in --wal-dir; see DESIGN.md §10), checkpointing every K ticks and once
// at the end. `recover` reopens that directory — recovering from the WAL
// if the last run died mid-checkpoint — and answers a query from the
// recovered state alone, without replaying the dataset (--in supplies
// only the workload configuration, which must match the save run).
//
// `fsck` verifies a durable store offline against the per-page integrity
// trailers (DESIGN.md §16) without constructing a pager: every damaged
// slot is reported (page, offset, expected/actual checksum, whether a
// committed WAL image covers it) instead of stopping at the first.
// `--repair` rewrites WAL-covered slots in place; `--json` emits the
// report as one JSON object. Exit 0 = clean or fully repairable/repaired,
// 3 = unrepairable damage (or untrusted store metadata). `monitor
// --wal-dir DIR` runs the standing query durably over DIR and, with
// `--scrub-budget P`, verifies P pages of the store per evaluated tick
// from the monitor's scrub hook, healing silent damage online.

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pdr/mobility/dataset_io.h"
#include "pdr/pdr.h"

namespace {

using namespace pdr;

// Scoped `--trace FILE` plumbing: installs a JSONL trace sink for the
// lifetime of the object, then appends a metrics snapshot and reports.
class TraceOutput {
 public:
  explicit TraceOutput(const std::string& path) {
    if (path.empty()) return;
    writer_ = std::make_unique<JsonlWriter>(path);
    if (!writer_->ok()) {
      std::fprintf(stderr, "error: cannot open trace file %s\n",
                   path.c_str());
      writer_.reset();
      return;
    }
    sink_ = std::make_unique<JsonlTraceSink>(writer_.get());
    PdrObs::SetEnabled(true);
    PdrObs::SetTraceSink(sink_.get());
  }

  ~TraceOutput() {
    if (sink_ == nullptr) return;
    PdrObs::SetTraceSink(nullptr);
    WriteMetricsJsonl(writer_.get(), MetricsRegistry::Global().TakeSnapshot());
    std::fprintf(stderr, "trace: wrote %lld JSONL lines to %s\n",
                 static_cast<long long>(writer_->lines_written()),
                 writer_->path().c_str());
  }

 private:
  std::unique_ptr<JsonlWriter> writer_;
  std::unique_ptr<JsonlTraceSink> sink_;
};

// Per-command flag vocabulary: anything else is a typo the tool must
// refuse (a silently ignored --deadline-ms would run unbounded).
const std::map<std::string, std::set<std::string>>& CommandFlags() {
  static const std::map<std::string, std::set<std::string>> kFlags = {
      {"gen", {"out", "objects", "extent", "duration", "seed", "interval"}},
      {"info", {"in"}},
      {"query",
       {"in", "varrho", "l", "qt", "engine", "index", "threads", "trace",
        "deadline-ms", "degrade", "flight-dir", "fft-grid"}},
      {"explain",
       {"in", "varrho", "l", "qt", "deadline-ms", "degrade", "threads",
        "format", "flight-dir"}},
      {"monitor",
       {"in", "varrho", "l", "lookahead", "every", "threads", "trace",
        "audit-rate", "report", "interval", "degree", "fail-on-drift",
        "deadline-ms", "max-inflight", "degrade", "flight-dir", "slo-ms",
        "concurrent", "wal-dir", "scrub-budget", "checkpoint-every"}},
      {"stats",
       {"in", "varrho", "l", "qt", "engine", "index", "queries", "json",
        "format"}},
      {"save", {"in", "wal-dir", "index", "checkpoint-every"}},
      {"recover", {"in", "wal-dir", "index", "varrho", "l", "qt"}},
      {"fsck", {"wal-dir", "repair", "json"}},
      {"record",
       {"in", "log", "varrho", "l", "lookahead", "every", "threads",
        "deadline-ms", "max-inflight", "degrade", "degree", "bundle-dir",
        "flight-dir", "concurrent", "fft-grid"}},
      {"replay", {"log", "bundle", "verify", "bench", "threads", "digests",
                  "jsonl"}},
  };
  return kFlags;
}

// Strict flag parsing: unknown flags and stray positional arguments are
// errors (returns false), so misspellings fail loudly instead of running
// with defaults.
bool ParseFlags(int argc, char** argv, const std::set<std::string>& allowed,
                std::map<std::string, std::string>* flags) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string key =
        eq == std::string::npos ? body : body.substr(0, eq);
    if (allowed.count(key) == 0) {
      std::fprintf(stderr, "error: unknown flag --%s for '%s'\n", key.c_str(),
                   argv[1]);
      return false;
    }
    if (eq != std::string::npos) {
      (*flags)[key] = body.substr(eq + 1);
    } else if (i + 1 < argc &&
               (argv[i + 1][0] != '-' || argv[i + 1][1] == '\0')) {
      // A lone "-" is a value (stdout), not a flag.
      (*flags)[key] = argv[++i];
    } else {
      (*flags)[key] = "1";
    }
  }
  return true;
}

// File-argument flags have no sensible default; a missing one is a usage
// error, reported before any work starts.
bool HasRequired(const std::map<std::string, std::string>& flags,
                 const char* command,
                 std::initializer_list<const char*> required) {
  for (const char* name : required) {
    if (flags.count(name) == 0 || flags.at(name).empty()) {
      std::fprintf(stderr, "error: '%s' requires --%s\n", command, name);
      return false;
    }
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// --threads=N -> ExecPolicy (1/absent = serial, 0 = hardware concurrency).
ExecPolicy ExecFromFlags(const std::map<std::string, std::string>& flags) {
  const int threads = std::stoi(FlagOr(flags, "threads", "1"));
  return threads == 1 ? ExecPolicy::Serial() : ExecPolicy::Parallel(threads);
}

// --flight-dir=DIR arms the flight recorder with every dump trigger
// pointing at DIR. Returns false (after reporting) when the directory
// cannot be created.
bool ArmFlightRecorder(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "flight-dir", "");
  if (dir.empty()) return true;
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", dir.c_str(),
                 std::strerror(errno));
    return false;
  }
  FlightRecorder::Options options;
  options.dump_dir = dir;
  options.triggers = FlightRecorder::kAllTriggers;
  FlightRecorder::Global().Configure(options);
  FlightRecorder::SetEnabled(true);
  return true;
}

// End-of-run recorder summary (stderr, like the trace summary).
void ReportFlightDumps(const std::map<std::string, std::string>& flags) {
  if (FlagOr(flags, "flight-dir", "").empty()) return;
  std::fprintf(stderr, "flight recorder: %lld dump(s) in %s\n",
               static_cast<long long>(
                   FlightRecorder::Global().dumps_written()),
               FlagOr(flags, "flight-dir", "").c_str());
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pdr_tool <gen|info|query|explain|monitor|stats|save|recover> "
      "[--flag value]...\n"
      "  gen:     --out FILE [--objects N] [--extent E] "
      "[--duration T] [--seed S] [--interval U]\n"
      "  info:    --in FILE\n"
      "  query:   --in FILE --varrho R --l L [--qt T] "
      "[--engine fr|pa|fft|both] [--index tpr|bx] [--threads N] "
      "[--trace FILE]\n"
      "           [--deadline-ms D] [--degrade 0|1] [--flight-dir DIR] "
      "[--fft-grid M]\n"
      "  explain: --in FILE --varrho R --l L [--qt T] [--deadline-ms D] "
      "[--degrade 0|1] [--threads N]\n"
      "           [--format text|json] [--flight-dir DIR]\n"
      "  monitor: --in FILE --varrho R --l L [--lookahead W] "
      "[--every K] [--threads N] [--trace FILE]\n"
      "           [--audit-rate R] [--report FILE] [--interval S] "
      "[--degree K] [--fail-on-drift]\n"
      "           [--deadline-ms D] [--max-inflight M] [--degrade 0|1] "
      "[--flight-dir DIR] [--slo-ms D]\n"
      "           [--concurrent N]  (MVCC mode: N snapshot-reader "
      "threads run against the update stream)\n"
      "           [--wal-dir DIR] [--checkpoint-every K] "
      "[--scrub-budget P]  (durable standing query; scrub P pages per "
      "evaluated tick)\n"
      "  stats:   --in FILE --varrho R --l L [--qt T] "
      "[--engine fr|pa|both] [--index tpr|bx] [--queries N] [--json FILE]\n"
      "           [--format text|prometheus]\n"
      "  save:    --in FILE --wal-dir DIR [--index tpr|bx] "
      "[--checkpoint-every K]\n"
      "  recover: --in FILE --wal-dir DIR [--index tpr|bx] "
      "[--varrho R] [--l L] [--qt T]\n"
      "  fsck:    --wal-dir DIR [--repair] [--json]  (offline store "
      "verify/repair; exit 3 when unrepairable)\n"
      "  record:  --in FILE --log FILE --varrho R --l L [--lookahead W] "
      "[--every K] [--threads N]\n"
      "           [--deadline-ms D] [--max-inflight M] [--degrade 0|1] "
      "[--degree K] [--bundle-dir DIR]\n"
      "           [--flight-dir DIR] [--concurrent Q]  (capture an MVCC "
      "schedule, Q snapshot queries per evaluated tick)\n"
      "           [--fft-grid M]  (attach the FFT whole-plane rung at "
      "raster resolution M)\n"
      "  replay:  (--log FILE | --bundle DIR) [--verify | --bench] "
      "[--threads N] [--digests]\n"
      "           [--jsonl FILE]\n");
  return 2;
}

int RunGen(const std::map<std::string, std::string>& flags) {
  WorkloadConfig config;
  config.WithExtent(std::stod(FlagOr(flags, "extent", "1000")));
  config.num_objects = std::stoi(FlagOr(flags, "objects", "10000"));
  config.max_update_interval =
      std::stoi(FlagOr(flags, "interval", "60"));
  config.seed = std::stoull(FlagOr(flags, "seed", "42"));
  const Tick duration = std::stoi(FlagOr(flags, "duration", "70"));
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Usage();

  std::printf("generating %d objects over %d ticks (U=%d, extent=%g)...\n",
              config.num_objects, duration, config.max_update_interval,
              config.extent);
  const Dataset ds = GenerateDataset(config, duration);
  SaveDataset(ds, out);
  std::printf("wrote %s: %zu updates\n", out.c_str(), ds.TotalUpdates());
  return 0;
}

int RunInfo(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  std::printf("objects   : %d\n", ds.config.num_objects);
  std::printf("extent    : %g x %g miles\n", ds.config.extent,
              ds.config.extent);
  std::printf("U         : %d ticks\n", ds.config.max_update_interval);
  std::printf("duration  : %d ticks\n", ds.duration());
  std::printf("updates   : %zu total (%.1f%% of objects per tick)\n",
              ds.TotalUpdates(),
              ds.duration() > 0
                  ? 100.0 *
                        (static_cast<double>(ds.TotalUpdates()) -
                         ds.config.num_objects) /
                        ds.duration() / ds.config.num_objects
                  : 0.0);
  std::printf("seed      : %llu\n",
              static_cast<unsigned long long>(ds.config.seed));
  return 0;
}

int RunQuery(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const double extent = ds.config.extent;
  const double rho =
      varrho * ds.config.num_objects / (extent * extent);
  const Tick now = ds.duration();
  const Tick q_t = std::stoi(FlagOr(
      flags, "qt",
      std::to_string(now + ds.config.max_update_interval / 2)));
  const std::string engine = FlagOr(flags, "engine", "both");
  const std::string index_name = FlagOr(flags, "index", "tpr");
  TraceOutput trace(FlagOr(flags, "trace", ""));
  if (!ArmFlightRecorder(flags)) return 1;

  std::printf("query: rho=%.4g (varrho=%g), l=%g, q_t=%d (now=%d)\n", rho,
              varrho, l, q_t, now);

  const Tick horizon = 2 * ds.config.max_update_interval;

  const double deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  if (deadline_ms > 0.0) {
    // Deadline-bounded query: exact FR first; on overrun the degradation
    // ladder falls back to PA approximate, then to the histogram floor
    // (--degrade=0 fails the query instead of degrading).
    FrEngine fr({.extent = extent,
                 .histogram_side = 100,
                 .horizon = horizon,
                 .buffer_pages = PaperConfig().BufferPagesFor(
                     ds.config.num_objects),
                 .io_ms = 10.0,
                 .index = index_name == "bx" ? IndexKind::kBxTree
                                             : IndexKind::kTprTree,
                 .max_update_interval = ds.config.max_update_interval,
                 .exec = ExecFromFlags(flags)});
    PaEngine pa({.extent = extent,
                 .poly_side = 10,
                 .degree = 5,
                 .horizon = horizon,
                 .l = l,
                 .eval_grid = 1000,
                 .exec = ExecFromFlags(flags)});
    ReplayInto(ds, -1, &fr);
    ReplayInto(ds, -1, &pa);
    ResilienceOptions opts;
    opts.deadline_ms = deadline_ms;
    opts.degrade = FlagOr(flags, "degrade", "1") != "0";
    ResilientExecutor exec(&fr, &pa, opts);
    const TieredResult result = exec.Query(q_t, rho, l);
    std::printf(
        "tier=%s%s: %zu rects, %.1f sq-miles | %.1f of %.1f ms budget\n",
        AnswerTierName(result.tier), result.timed_out ? " (timed out)" : "",
        result.region.size(), result.region.Area(), result.elapsed_ms,
        result.budget_ms);
    if (result.tier == AnswerTier::kHistogram) {
      std::printf("  certainly dense %.1f sq-miles, possibly dense %.1f\n",
                  result.region.Area(), result.maybe_region.Area());
    }
    for (size_t i = 0; i < result.region.size() && i < 10; ++i) {
      std::printf("  %s\n", result.region.rects()[i].ToString().c_str());
    }
    ReportFlightDumps(flags);
    return 0;
  }

  if (engine == "fft") {
    // FFT whole-plane rung: one transform answers the query with a
    // conservative subset + optimistic superset sandwich around exact.
    // Pinned via the ladder (enable_exact=false) so the answer carries
    // the same TieredResult provenance a degraded server would emit.
    FrEngine fr({.extent = extent,
                 .histogram_side = 100,
                 .horizon = horizon,
                 .buffer_pages = PaperConfig().BufferPagesFor(
                     ds.config.num_objects),
                 .io_ms = 10.0,
                 .index = index_name == "bx" ? IndexKind::kBxTree
                                             : IndexKind::kTprTree,
                 .max_update_interval = ds.config.max_update_interval,
                 .exec = ExecFromFlags(flags)});
    FftDensityEngine fft(
        {.extent = extent,
         .grid = std::stoi(FlagOr(flags, "fft-grid", "128")),
         .horizon = horizon});
    ReplayInto(ds, -1, &fr);
    ReplayInto(ds, -1, &fft);
    ResilienceOptions opts;
    opts.enable_exact = false;
    ResilientExecutor exec(&fr, nullptr, opts, &fft);
    const TieredResult result = exec.Query(q_t, rho, l);
    std::printf(
        "tier=%s (grid %dx%d): %zu rects, %.1f sq-miles certainly dense, "
        "%.1f possibly | %.1f ms\n",
        AnswerTierName(result.tier), fft.options().grid, fft.options().grid,
        result.region.size(), result.region.Area(),
        result.maybe_region.Area(), result.elapsed_ms);
    for (size_t i = 0; i < result.region.size() && i < 10; ++i) {
      std::printf("  %s\n", result.region.rects()[i].ToString().c_str());
    }
    ReportFlightDumps(flags);
    return 0;
  }

  if (engine == "fr" || engine == "both") {
    FrEngine fr({.extent = extent,
                 .histogram_side = 100,
                 .horizon = horizon,
                 .buffer_pages = PaperConfig().BufferPagesFor(
                     ds.config.num_objects),
                 .io_ms = 10.0,
                 .index = index_name == "bx" ? IndexKind::kBxTree
                                             : IndexKind::kTprTree,
                 .max_update_interval = ds.config.max_update_interval,
                 .exec = ExecFromFlags(flags)});
    ReplayInto(ds, -1, &fr);
    const auto result = fr.Query(q_t, rho, l, /*cold_cache=*/true);
    std::printf(
        "FR (%s): %zu rects, %.1f sq-miles | %.1f ms CPU + %.0f ms I/O "
        "(%lld reads) | cells a/c/r = %lld/%lld/%lld\n",
        index_name.c_str(), result.region.size(), result.region.Area(),
        result.cost.cpu_ms, result.cost.io_ms,
        static_cast<long long>(result.cost.io_reads()),
        static_cast<long long>(result.accepted_cells),
        static_cast<long long>(result.candidate_cells),
        static_cast<long long>(result.rejected_cells));
    for (size_t i = 0; i < result.region.size() && i < 10; ++i) {
      std::printf("  %s\n", result.region.rects()[i].ToString().c_str());
    }
  }
  if (engine == "pa" || engine == "both") {
    PaEngine pa({.extent = extent,
                 .poly_side = 10,
                 .degree = 5,
                 .horizon = horizon,
                 .l = l,
                 .eval_grid = 1000,
                 .exec = ExecFromFlags(flags)});
    ReplayInto(ds, -1, &pa);
    const auto result = pa.Query(q_t, rho);
    std::printf("PA: %zu rects, %.1f sq-miles | %.1f ms CPU, no I/O\n",
                result.region.size(), result.region.Area(),
                result.cost.cpu_ms);
  }
  ReportFlightDumps(flags);
  return 0;
}

int RunExplain(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const double extent = ds.config.extent;
  const double rho = varrho * ds.config.num_objects / (extent * extent);
  const Tick now = ds.duration();
  const Tick q_t = std::stoi(FlagOr(
      flags, "qt",
      std::to_string(now + ds.config.max_update_interval / 2)));
  const std::string format = FlagOr(flags, "format", "text");
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "error: --format must be text or json\n");
    return 2;
  }
  if (!ArmFlightRecorder(flags)) return 1;

  const Tick horizon = 2 * ds.config.max_update_interval;
  FrEngine fr({.extent = extent,
               .histogram_side = 100,
               .horizon = horizon,
               .buffer_pages =
                   PaperConfig().BufferPagesFor(ds.config.num_objects),
               .io_ms = 10.0,
               .max_update_interval = ds.config.max_update_interval,
               .exec = ExecFromFlags(flags)});
  PaEngine pa({.extent = extent,
               .poly_side = 10,
               .degree = 5,
               .horizon = horizon,
               .l = l,
               .eval_grid = 1000,
               .exec = ExecFromFlags(flags)});
  ReplayInto(ds, -1, &fr);
  ReplayInto(ds, -1, &pa);

  ResilienceOptions opts;
  opts.deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  opts.degrade = FlagOr(flags, "degrade", "1") != "0";
  ResilientExecutor exec(&fr, &pa, opts);
  const TieredResult result = exec.Query(q_t, rho, l);
  if (format == "json") {
    std::printf("%s\n", result.explain.ToJson().c_str());
  } else {
    std::printf("%s", result.explain.ToText().c_str());
    std::printf("answer: %zu rects, %.1f sq-miles\n", result.region.size(),
                result.region.Area());
  }
  ReportFlightDumps(flags);
  return 0;
}

// `monitor --concurrent N`: the MVCC demonstration. One writer thread
// (this one) commits the update stream epoch by epoch at full rate while
// N reader threads hammer RunSnapshotQuery; no reader ever blocks the
// writer. Readers cross-check each other: all answers pinned to the same
// epoch must carry the same transcript digest.
int RunMonitorConcurrent(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const Tick lookahead = std::stoi(FlagOr(flags, "lookahead", "10"));
  const int readers =
      std::max(1, std::stoi(FlagOr(flags, "concurrent", "1")));
  const double extent = ds.config.extent;
  const double rho = varrho * ds.config.num_objects / (extent * extent);

  mvcc::SnapshotManager snapshots;
  FrEngine fr({.extent = extent,
               .histogram_side = 100,
               .horizon = 2 * ds.config.max_update_interval,
               .buffer_pages =
                   PaperConfig().BufferPagesFor(ds.config.num_objects),
               .io_ms = 10.0,
               .max_update_interval = ds.config.max_update_interval,
               .snapshots = &snapshots});
  PdrMonitor monitor(&fr, {.rho = rho, .l = l, .lookahead = lookahead});
  monitor.StartConcurrent();

  std::atomic<bool> done{false};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> inconsistent{0};
  std::mutex check_mu;
  std::map<uint64_t, uint64_t> epoch_digest;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const PdrMonitor::Delta delta = monitor.RunSnapshotQuery();
        const uint64_t digest = TickDigest(delta);
        {
          std::lock_guard<std::mutex> lock(check_mu);
          auto [it, inserted] = epoch_digest.emplace(delta.epoch, digest);
          if (!inserted && it->second != digest) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Timer timer;
  int64_t updates = 0;
  uint64_t last_epoch = 0;
  for (Tick now = 0; now <= ds.duration(); ++now) {
    last_epoch = monitor.ApplyUpdates(now, ds.ticks[now]);
    updates += static_cast<int64_t>(ds.ticks[now].size());
  }
  const double writer_ms = timer.ElapsedMillis();
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  const double total_ms = timer.ElapsedMillis();

  const int64_t q = queries.load();
  std::printf("concurrent monitor: %llu epochs committed, %lld updates in "
              "%.1f ms (%.0f commits/s)\n",
              static_cast<unsigned long long>(last_epoch),
              static_cast<long long>(updates), writer_ms,
              1000.0 * static_cast<double>(last_epoch) /
                  std::max(writer_ms, 1e-9));
  std::printf("readers  : %d thread(s), %lld snapshot queries over %zu "
              "distinct epochs (%.0f queries/s)\n",
              readers, static_cast<long long>(q), epoch_digest.size(),
              1000.0 * static_cast<double>(q) / std::max(total_ms, 1e-9));
  std::printf("mvcc     : %lld live / %lld retired versions, floor epoch "
              "%llu\n",
              static_cast<long long>(snapshots.live_versions()),
              static_cast<long long>(snapshots.retired_versions()),
              static_cast<unsigned long long>(snapshots.reclaim_floor()));
  const int64_t bad = inconsistent.load();
  std::printf("identity : cross-reader per-epoch digests %s\n",
              bad == 0 ? "consistent" : "INCONSISTENT");
  return bad == 0 ? 0 : 3;
}

int RunMonitor(const std::map<std::string, std::string>& flags) {
  if (flags.count("concurrent") > 0) return RunMonitorConcurrent(flags);
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const Tick lookahead = std::stoi(FlagOr(flags, "lookahead", "10"));
  const Tick every = std::max(1, std::stoi(FlagOr(flags, "every", "5")));
  const double audit_rate = std::stod(FlagOr(flags, "audit-rate", "0"));
  const std::string report_path = FlagOr(flags, "report", "");
  const Tick interval = std::max(1, std::stoi(FlagOr(flags, "interval", "10")));
  const int degree = std::stoi(FlagOr(flags, "degree", "5"));
  const bool fail_on_drift = flags.count("fail-on-drift") > 0;
  const bool audit = audit_rate > 0.0;
  const double deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  const int max_inflight = std::stoi(FlagOr(flags, "max-inflight", "0"));
  const bool degrade = FlagOr(flags, "degrade", "1") != "0";
  if (deadline_ms > 0.0 && audit) {
    std::fprintf(stderr,
                 "error: --deadline-ms needs the FR-primary monitor "
                 "(the ladder degrades exact FR answers); drop "
                 "--audit-rate\n");
    return 2;
  }
  const double slo_ms = std::stod(FlagOr(flags, "slo-ms", "0"));
  // --wal-dir: the standing query runs durably (WAL + checkpoints in the
  // directory); --scrub-budget then verifies that many store pages per
  // evaluated tick from the monitor's scrub hook (DESIGN.md §16).
  const std::string wal_dir = FlagOr(flags, "wal-dir", "");
  const long long scrub_budget =
      std::stoll(FlagOr(flags, "scrub-budget", "0"));
  const Tick ckpt_every = std::stoi(FlagOr(flags, "checkpoint-every", "1"));
  if (!wal_dir.empty()) {
    if (mkdir(wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "error: cannot create %s: %s\n", wal_dir.c_str(),
                   std::strerror(errno));
      return 1;
    }
    struct stat st;
    if (stat((wal_dir + "/checkpoint.pdr").c_str(), &st) == 0 ||
        stat((wal_dir + "/data.pdr").c_str(), &st) == 0) {
      std::fprintf(stderr,
                   "error: %s already holds a store; delete it first\n",
                   wal_dir.c_str());
      return 1;
    }
  } else if (scrub_budget > 0) {
    std::fprintf(stderr, "error: --scrub-budget needs --wal-dir\n");
    return 2;
  }
  TraceOutput trace(FlagOr(flags, "trace", ""));
  if (!ArmFlightRecorder(flags)) return 1;
  const double extent = ds.config.extent;
  const double rho =
      varrho * ds.config.num_objects / (extent * extent);

  // Per-tick human lines move to stderr when the JSONL report claims
  // stdout.
  std::FILE* human = report_path == "-" ? stderr : stdout;

  std::unique_ptr<JsonlWriter> report;
  if (!report_path.empty()) {
    report = std::make_unique<JsonlWriter>(report_path);
    if (!report->ok()) {
      std::fprintf(stderr, "error: cannot open report file %s\n",
                   report_path.c_str());
      return 1;
    }
  }

  // The report mode and the auditor both read the metrics registry, so a
  // monitoring run always observes (and starts from a clean registry).
  if (audit || report != nullptr) {
    PdrObs::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }

  const Tick horizon = 2 * ds.config.max_update_interval;
  FrEngine fr({.extent = extent,
               .histogram_side = 100,
               .horizon = horizon,
               .buffer_pages =
                   PaperConfig().BufferPagesFor(ds.config.num_objects),
               .io_ms = 10.0,
               .max_update_interval = ds.config.max_update_interval,
               .exec = ExecFromFlags(flags),
               .storage_dir = wal_dir});
  CostCalibrator calibrator(&fr);

  // Audit mode runs the standing query on PA and shadow-audits against
  // FR; both engines (and the probe oracle) consume the update stream.
  std::unique_ptr<PaEngine> pa;
  std::unique_ptr<Oracle> oracle;
  std::unique_ptr<ShadowAuditor> auditor;
  std::unique_ptr<PdrMonitor> monitor;
  if (audit) {
    pa = std::make_unique<PaEngine>(
        PaEngine::Options{.extent = extent,
                          .poly_side = 10,
                          .degree = degree,
                          .horizon = horizon,
                          .l = l,
                          .eval_grid = 1000,
                          .exec = ExecFromFlags(flags)});
    oracle = std::make_unique<Oracle>(extent);
    ShadowAuditor::Options audit_options;
    audit_options.sample_rate = audit_rate;
    audit_options.l = l;
    auditor = std::make_unique<ShadowAuditor>(&fr, oracle.get(),
                                              audit_options);
    auditor->SetCalibrator(&calibrator);
    auditor->SetApproxDensityProbe(
        [&pa](Tick t, Vec2 p) { return pa->Density(t, p); });
    PdrMonitor::Options mopts{.rho = rho, .l = l, .lookahead = lookahead};
    mopts.resilience.max_inflight = max_inflight;
    monitor = std::make_unique<PdrMonitor>(pa.get(), mopts);
    monitor->SetAuditor(auditor.get());
    monitor->SetExecPolicy(ExecFromFlags(flags));
  } else {
    PdrMonitor::Options mopts{.rho = rho, .l = l, .lookahead = lookahead};
    mopts.resilience.deadline_ms = deadline_ms;
    mopts.resilience.max_inflight = max_inflight;
    mopts.resilience.degrade = degrade;
    monitor = std::make_unique<PdrMonitor>(&fr, mopts);
    monitor->SetCalibrator(&calibrator);
    if (deadline_ms > 0.0) {
      // The ladder's approximate rung: a PA model fed the same stream.
      pa = std::make_unique<PaEngine>(
          PaEngine::Options{.extent = extent,
                            .poly_side = 10,
                            .degree = degree,
                            .horizon = horizon,
                            .l = l,
                            .eval_grid = 1000,
                            .exec = ExecFromFlags(flags)});
      monitor->SetFallback(pa.get());
    }
  }
  DiskPager* disk = fr.index().disk();
  if (disk != nullptr) {
    // Durable standing query: checkpoint on a tick cadence so recovery
    // distance stays bounded, and (optionally) scrub a page budget per
    // evaluated tick so at-rest damage is found while the system serves.
    monitor->SetCheckpointHook([&fr] { fr.Checkpoint(); },
                               std::max<Tick>(1, ckpt_every));
    if (scrub_budget > 0) {
      monitor->SetScrubHook(
          [disk, scrub_budget] { disk->Scrub(scrub_budget); });
    }
  }

  // --slo-ms: burn-rate alerting over the tick stream. The admission
  // controller is created here (instead of the monitor's lazy private one)
  // so the SLO monitor can tighten its bound while alerting.
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<SloMonitor> slo;
  if (slo_ms > 0.0) {
    SloMonitor::Options slo_options;
    slo_options.latency_slo_ms = slo_ms;
    // Both windows must fill before a signal can alert; scale them to the
    // replay length so short runs can still demonstrate an alert.
    const int samples =
        static_cast<int>(ds.duration() / every) + 1;
    slo_options.short_window =
        std::max(4, std::min(slo_options.short_window, samples / 8));
    slo_options.long_window = std::max(
        slo_options.short_window, std::min(slo_options.long_window,
                                           samples / 2));
    slo = std::make_unique<SloMonitor>(slo_options);
    if (max_inflight > 0) {
      admission = std::make_unique<AdmissionController>(
          AdmissionController::Options{max_inflight});
      monitor->SetAdmissionController(admission.get());
      slo->SetAdmission(admission.get());
    }
    slo->SetAlertHook([human](const SloMonitor::Alert& alert) {
      std::fprintf(human,
                   "SLO ALERT: %s burning %.1fx budget (short) / %.1fx "
                   "(long) at sample %lld\n",
                   alert.signal.c_str(), alert.burn_short, alert.burn_long,
                   static_cast<long long>(alert.sample));
    });
    monitor->SetSloMonitor(slo.get());
  }

  MonitorReporter::Options report_options;
  report_options.interval = interval;
  MonitorReporter reporter(report.get(), report_options);
  Tick last_window = 0;

  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    if (pa != nullptr) pa->AdvanceTo(now);
    if (oracle != nullptr) oracle->AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) {
      fr.Apply(e);
      if (pa != nullptr) pa->Apply(e);
      if (oracle != nullptr) oracle->Apply(e);
    }
    if (now % every == 0) {
      const auto delta = monitor->OnTick(now);
      std::fprintf(human,
                   "t=%-4d dense %8.1f sq-mi | +%8.1f appeared, -%8.1f "
                   "vanished | %.0f ms",
                   now, delta.current.Area(), delta.appeared.Area(),
                   delta.vanished.Area(), delta.cost.TotalMs());
      if (delta.audit) {
        std::fprintf(human, " | audit P=%.3f R=%.3f io=%lld",
                     delta.audit->precision, delta.audit->recall,
                     static_cast<long long>(delta.audit->fr_io_reads));
      }
      if (delta.tier != AnswerTier::kExact) {
        std::fprintf(human, " | tier=%s", AnswerTierName(delta.tier));
      }
      std::fprintf(human, "\n");
    }
    if ((audit || report != nullptr) && now > 0 && now % interval == 0) {
      reporter.EmitWindow(now);
      last_window = now;
    }
  }

  if (audit || report != nullptr) {
    if (ds.duration() > last_window) reporter.EmitWindow(ds.duration());
    if (report != nullptr) {
      WriteMetricsJsonl(report.get(),
                        MetricsRegistry::Global().TakeSnapshot());
    }
    reporter.WriteFinalReport(human);
    if (fail_on_drift && reporter.drift_seen()) {
      std::fprintf(stderr, "drift detected: failing (--fail-on-drift)\n");
      return 3;
    }
  }
  if (slo != nullptr) {
    std::fprintf(human, "slo: %zu alert(s) over %lld samples%s\n",
                 slo->alerts().size(),
                 static_cast<long long>(slo->samples()),
                 slo->alerting() ? " (still alerting)" : "");
  }
  if (disk != nullptr) {
    fr.Checkpoint();  // final durable point: the full replayed stream
    std::fprintf(human, "durable : epoch %llu in %s\n",
                 static_cast<unsigned long long>(disk->epoch()),
                 wal_dir.c_str());
    if (scrub_budget > 0) {
      const ScrubStats& ss = disk->scrub_stats();
      std::fprintf(human,
                   "scrub   : %lld pages verified, %lld repaired, "
                   "%lld unrepairable (budget %lld/tick)\n",
                   static_cast<long long>(ss.pages_scanned),
                   static_cast<long long>(ss.pages_repaired),
                   static_cast<long long>(ss.pages_unrepairable),
                   scrub_budget);
    }
  }
  ReportFlightDumps(flags);
  return 0;
}

int RunStats(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const double extent = ds.config.extent;
  const double rho = varrho * ds.config.num_objects / (extent * extent);
  const Tick now = ds.duration();
  const int queries = std::max(1, std::stoi(FlagOr(flags, "queries", "5")));
  const std::string engine = FlagOr(flags, "engine", "both");
  const std::string index_name = FlagOr(flags, "index", "tpr");

  PdrObs::SetEnabled(true);
  MetricsRegistry::Global().ResetAll();

  const Tick horizon = 2 * ds.config.max_update_interval;
  // Query ticks spread over the prediction window [now, now + U/2].
  std::vector<Tick> ticks;
  for (int i = 0; i < queries; ++i) {
    ticks.push_back(now + ds.config.max_update_interval * i /
                              (2 * std::max(1, queries - 1) ));
  }

  if (engine == "fr" || engine == "both") {
    FrEngine fr({.extent = extent,
                 .histogram_side = 100,
                 .horizon = horizon,
                 .buffer_pages = PaperConfig().BufferPagesFor(
                     ds.config.num_objects),
                 .io_ms = 10.0,
                 .index = index_name == "bx" ? IndexKind::kBxTree
                                             : IndexKind::kTprTree,
                 .max_update_interval = ds.config.max_update_interval});
    ReplayInto(ds, -1, &fr);
    for (const Tick q_t : ticks) {
      fr.Query(q_t, rho, l, /*cold_cache=*/true);
    }
  }
  if (engine == "pa" || engine == "both") {
    PaEngine pa({.extent = extent,
                 .poly_side = 10,
                 .degree = 5,
                 .horizon = horizon,
                 .l = l,
                 .eval_grid = 1000});
    ReplayInto(ds, -1, &pa);
    for (const Tick q_t : ticks) pa.Query(q_t, rho);
  }

  const MetricsRegistry::Snapshot snap =
      MetricsRegistry::Global().TakeSnapshot();
  const std::string format = FlagOr(flags, "format", "text");
  if (format == "prometheus") {
    // Scrape-style output only: no banner, so the stream is ingestible
    // as-is by promtool / a Prometheus textfile collector.
    WriteMetricsPrometheus(stdout, snap);
  } else if (format == "text") {
    std::printf("metrics after %d %s quer%s (rho=%.4g, l=%g):\n", queries,
                engine.c_str(), queries == 1 ? "y" : "ies", rho, l);
    DumpMetrics(stdout, snap);
  } else {
    std::fprintf(stderr, "error: --format must be text or prometheus\n");
    return 2;
  }

  const std::string json_path = FlagOr(flags, "json", "");
  if (!json_path.empty()) {
    JsonlWriter writer(json_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "error: cannot open %s\n", json_path.c_str());
      return 1;
    }
    WriteMetricsJsonl(&writer, snap);
    std::printf("wrote %lld metric lines to %s\n",
                static_cast<long long>(writer.lines_written()),
                json_path.c_str());
  }
  return 0;
}

// Shared FR options for the durable subcommands: save and recover must
// construct the engine identically (extent, histogram, horizon, index) or
// the recovered metadata will refuse to attach.
FrEngine::Options DurableOptions(const Dataset& ds,
                                 const std::string& index_name,
                                 const std::string& dir) {
  return {.extent = ds.config.extent,
          .histogram_side = 100,
          .horizon = 2 * ds.config.max_update_interval,
          .buffer_pages =
              PaperConfig().BufferPagesFor(ds.config.num_objects),
          .io_ms = 10.0,
          .index = index_name == "bx" ? IndexKind::kBxTree
                                      : IndexKind::kTprTree,
          .max_update_interval = ds.config.max_update_interval,
          .storage_dir = dir};
}

int RunSave(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const std::string dir = FlagOr(flags, "wal-dir", "");
  if (dir.empty()) return Usage();
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  struct stat st;
  if (stat((dir + "/checkpoint.pdr").c_str(), &st) == 0 ||
      stat((dir + "/data.pdr").c_str(), &st) == 0) {
    std::fprintf(stderr,
                 "error: %s already holds a store; delete it first\n",
                 dir.c_str());
    return 1;
  }
  const std::string index_name = FlagOr(flags, "index", "tpr");
  const Tick every = std::stoi(FlagOr(flags, "checkpoint-every", "0"));

  FrEngine fr(DurableOptions(ds, index_name, dir));
  Timer timer;
  Tick since_checkpoint = 0;
  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
    if (every > 0 && ++since_checkpoint >= every) {
      since_checkpoint = 0;
      fr.Checkpoint();
    }
  }
  fr.Checkpoint();
  const double total_ms = timer.ElapsedMillis();

  const DiskPager* disk = fr.index().disk();
  const CheckpointStats& cs = disk->checkpoint_stats();
  const WalStats& ws = disk->wal_stats();
  std::printf("saved %s store to %s (%zu objects, %d ticks, %.0f ms)\n",
              index_name.c_str(), dir.c_str(), fr.index().size(),
              ds.duration(), total_ms);
  std::printf("checkpoints : %lld (%lld page images, last %.2f ms)\n",
              static_cast<long long>(cs.checkpoints),
              static_cast<long long>(cs.pages_logged), cs.last_ms);
  std::printf("wal         : %lld records, %lld commits, %lld bytes, "
              "%lld fsyncs\n",
              static_cast<long long>(ws.records),
              static_cast<long long>(ws.commits),
              static_cast<long long>(ws.bytes_appended),
              static_cast<long long>(ws.fsyncs));
  std::printf("pages       : %zu allocated, %zu live\n",
              disk->allocated_pages(), disk->live_pages());
  return 0;
}

int RunRecover(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const std::string dir = FlagOr(flags, "wal-dir", "");
  if (dir.empty()) return Usage();

  FrEngine fr(DurableOptions(ds, FlagOr(flags, "index", "tpr"), dir));
  if (!fr.recovered()) {
    std::fprintf(stderr, "error: no durable store in %s\n", dir.c_str());
    return 1;
  }
  const DiskPager* disk = fr.index().disk();
  const RecoveryStats& rs = disk->recovery_stats();
  std::printf("recovered store in %s: %zu objects at tick %d "
              "(epoch %llu, %.2f ms)\n",
              dir.c_str(), fr.index().size(), fr.now(),
              static_cast<unsigned long long>(disk->epoch()),
              rs.recovery_ms);
  std::printf("wal redo    : %lld committed batches, %lld page images "
              "applied, %lld record%s discarded%s%s\n",
              static_cast<long long>(rs.batches_applied),
              static_cast<long long>(rs.redo_records),
              static_cast<long long>(rs.discarded_records),
              rs.discarded_records == 1 ? "" : "s",
              rs.torn_tail ? " (torn tail)" : "",
              rs.interior_corruption ? " (WAL INTERIOR CORRUPTION)" : "");
  if (rs.pages_repaired > 0) {
    std::printf("repair      : %lld damaged page slot%s healed by redo\n",
                static_cast<long long>(rs.pages_repaired),
                rs.pages_repaired == 1 ? "" : "s");
  }

  if (flags.count("varrho") > 0) {
    const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
    const double l = std::stod(FlagOr(flags, "l", "30"));
    const double extent = ds.config.extent;
    const double rho = varrho * ds.config.num_objects / (extent * extent);
    const Tick q_t = std::stoi(FlagOr(
        flags, "qt",
        std::to_string(fr.now() + ds.config.max_update_interval / 2)));
    const auto result = fr.Query(q_t, rho, l, /*cold_cache=*/true);
    std::printf("FR: %zu rects, %.1f sq-miles | %.1f ms CPU + %.0f ms I/O "
                "(%lld reads)\n",
                result.region.size(), result.region.Area(),
                result.cost.cpu_ms, result.cost.io_ms,
                static_cast<long long>(result.cost.io_reads()));
    for (size_t i = 0; i < result.region.size() && i < 10; ++i) {
      std::printf("  %s\n", result.region.rects()[i].ToString().c_str());
    }
  }
  return 0;
}

int RunFsckCmd(const std::map<std::string, std::string>& flags) {
  FsckOptions options;
  options.repair = flags.count("repair") > 0;
  const FsckReport report = RunFsck(FlagOr(flags, "wal-dir", ""), options);
  if (flags.count("json") > 0) {
    std::printf("%s\n", report.ToJson().c_str());
    return report.exit_code();
  }
  if (!report.error.empty()) {
    std::fprintf(stderr, "fsck: %s\n", report.error.c_str());
    return report.exit_code();
  }
  std::printf("fsck %s: epoch %llu, checkpoint %s, data header %s\n",
              report.dir.c_str(),
              static_cast<unsigned long long>(report.epoch),
              report.checkpoint_ok ? "ok" : "superseded by WAL",
              report.data_header_ok ? "ok" : "BAD");
  std::printf("wal   : %lld committed batch(es), %lld record(s) "
              "discarded%s%s\n",
              static_cast<long long>(report.wal_batches),
              static_cast<long long>(report.wal_records_discarded),
              report.wal_torn_tail ? ", torn tail" : "",
              report.wal_interior_corruption ? ", INTERIOR CORRUPTION"
                                             : "");
  std::printf("pages : %lld total, %lld free, %lld ok, %lld repairable, "
              "%lld repaired, %lld unrepairable\n",
              static_cast<long long>(report.pages_total),
              static_cast<long long>(report.pages_free),
              static_cast<long long>(report.pages_ok),
              static_cast<long long>(report.pages_repairable),
              static_cast<long long>(report.pages_repaired),
              static_cast<long long>(report.pages_unrepairable));
  for (const FsckDamagedPage& d : report.damaged) {
    std::printf("  page %u at offset %llu: expected %016llx actual %016llx "
                "(%s)\n",
                d.id, static_cast<unsigned long long>(d.offset),
                static_cast<unsigned long long>(d.expected),
                static_cast<unsigned long long>(d.actual),
                d.repaired ? "repaired"
                           : d.redo_covered ? "repairable from WAL"
                                            : "UNREPAIRABLE");
  }
  return report.exit_code();
}

int RunRecord(const std::map<std::string, std::string>& flags) {
  const Dataset ds = LoadDataset(FlagOr(flags, "in", ""));
  const std::string log_path = FlagOr(flags, "log", "");
  const double varrho = std::stod(FlagOr(flags, "varrho", "1"));
  const double l = std::stod(FlagOr(flags, "l", "30"));
  const double extent = ds.config.extent;
  const double rho = varrho * ds.config.num_objects / (extent * extent);
  const double deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  if (!ArmFlightRecorder(flags)) return 1;

  // The header mirrors how RunMonitor builds its engines, so a recorded
  // monitor run and a replay construct identical pipelines.
  WorkloadLogHeader header;
  header.rho = rho;
  header.l = l;
  header.lookahead = std::stoi(FlagOr(flags, "lookahead", "10"));
  header.every = std::max(1, std::stoi(FlagOr(flags, "every", "5")));
  header.deadline_ms = deadline_ms;
  header.max_inflight = std::stoi(FlagOr(flags, "max-inflight", "0"));
  header.degrade = FlagOr(flags, "degrade", "1") != "0" ? 1 : 0;
  header.has_fallback = deadline_ms > 0.0 ? 1 : 0;
  header.threads = std::stoi(FlagOr(flags, "threads", "1"));
  header.histogram_side = 100;
  header.horizon = 2 * ds.config.max_update_interval;
  header.buffer_pages = PaperConfig().BufferPagesFor(ds.config.num_objects);
  header.io_ms = 10.0;
  header.index = static_cast<uint8_t>(IndexKind::kTprTree);
  header.poly_side = 10;
  header.degree = std::stoi(FlagOr(flags, "degree", "5"));
  header.eval_grid = 1000;
  const std::string fft_grid = FlagOr(flags, "fft-grid", "");
  if (!fft_grid.empty()) {
    header.has_fft = 1;
    header.fft_grid = std::stoi(fft_grid);
    // Pin the FFT rung so the capture's tier stamps are deterministic
    // (deadline-free ladders would otherwise answer exact every tick).
    header.enable_exact = 0;
  }

  const bool concurrent = flags.count("concurrent") > 0;
  const WorkloadRecorder::Stats stats =
      concurrent
          ? RecordConcurrentDataset(
                ds, log_path, header,
                std::max(1, std::stoi(FlagOr(flags, "concurrent", "1"))))
          : RecordDataset(ds, log_path, header,
                          FlagOr(flags, "bundle-dir", ""));
  std::printf("recorded %s%s: %lld ticks, %lld updates in %lld batches, "
              "%lld bytes\n",
              log_path.c_str(), concurrent ? " (concurrent)" : "",
              static_cast<long long>(stats.ticks),
              static_cast<long long>(stats.updates),
              static_cast<long long>(stats.update_batches),
              static_cast<long long>(stats.bytes));
  if (stats.bundles > 0) {
    std::printf("bundles  : %lld repro bundle(s) in %s\n",
                static_cast<long long>(stats.bundles),
                FlagOr(flags, "bundle-dir", "").c_str());
  }
  ReportFlightDumps(flags);
  return 0;
}

int RunReplay(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string bundle = FlagOr(flags, "bundle", "");
  if (flags.count("verify") > 0 && flags.count("bench") > 0) {
    std::fprintf(stderr, "error: --verify and --bench are exclusive\n");
    return 2;
  }
  const Replayer replayer = bundle.empty() ? Replayer::FromFile(log_path)
                                           : Replayer::FromBundle(bundle);
  ReplayOptions options;
  options.mode = flags.count("bench") > 0 ? ReplayOptions::Mode::kBench
                                          : ReplayOptions::Mode::kVerify;
  options.threads = std::stoi(FlagOr(flags, "threads", "-1"));
  const ReplayResult result = replayer.Run(options);

  std::printf("replayed %s: %lld ticks, %lld updates (threads=%d%s)\n",
              bundle.empty() ? log_path.c_str() : bundle.c_str(),
              static_cast<long long>(result.ticks),
              static_cast<long long>(result.updates), result.threads,
              replayer.log().torn_tail ? ", torn tail" : "");
  std::printf("tiers    : exact=%lld fft=%lld approx=%lld histogram=%lld "
              "shed=%lld\n",
              static_cast<long long>(result.tier_counts[0]),
              static_cast<long long>(result.tier_counts[4]),
              static_cast<long long>(result.tier_counts[1]),
              static_cast<long long>(result.tier_counts[2]),
              static_cast<long long>(result.tier_counts[3]));
  std::printf("latency  : p50=%.3f ms p95=%.3f ms p99=%.3f ms "
              "(%.1f ms total)\n",
              result.p50_ms, result.p95_ms, result.p99_ms, result.total_ms);
  std::printf("cpu      : p50=%.3f ms p95=%.3f ms p99=%.3f ms "
              "(%.1f ms total)\n",
              result.p50_cpu_ms, result.p95_cpu_ms, result.p99_cpu_ms,
              result.total_cpu_ms);

  if (flags.count("digests") > 0) {
    for (const WorkloadTickRecord& rec : result.replayed) {
      std::printf("digest t=%-4d tier=%u %016llx sig=%016llx\n", rec.now,
                  static_cast<unsigned>(rec.tier),
                  static_cast<unsigned long long>(rec.digest),
                  static_cast<unsigned long long>(rec.sig_hash));
    }
  }

  const std::string jsonl_path = FlagOr(flags, "jsonl", "");
  if (!jsonl_path.empty()) {
    std::FILE* out = jsonl_path == "-" ? stdout
                                       : std::fopen(jsonl_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", jsonl_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\"type\":\"series\",\"series\":\"replay_bench\",\"values\":{"
        "\"ticks\":%lld,\"updates\":%lld,\"threads\":%d,"
        "\"p50_ms\":%.6f,\"p95_ms\":%.6f,\"p99_ms\":%.6f,"
        "\"total_ms\":%.3f,"
        "\"p50_cpu_ms\":%.6f,\"p95_cpu_ms\":%.6f,\"p99_cpu_ms\":%.6f,"
        "\"total_cpu_ms\":%.3f,\"exact\":%lld,\"fft\":%lld,\"approx\":%lld,"
        "\"histogram\":%lld,\"shed\":%lld,\"mismatches\":%lld}}\n",
        static_cast<long long>(result.ticks),
        static_cast<long long>(result.updates), result.threads, result.p50_ms,
        result.p95_ms, result.p99_ms, result.total_ms, result.p50_cpu_ms,
        result.p95_cpu_ms, result.p99_cpu_ms, result.total_cpu_ms,
        static_cast<long long>(result.tier_counts[0]),
        static_cast<long long>(result.tier_counts[4]),
        static_cast<long long>(result.tier_counts[1]),
        static_cast<long long>(result.tier_counts[2]),
        static_cast<long long>(result.tier_counts[3]),
        static_cast<long long>(result.mismatch_count));
    if (out != stdout) std::fclose(out);
  }

  if (options.mode == ReplayOptions::Mode::kVerify) {
    if (!result.ok()) {
      std::fprintf(stderr, "verify: %lld of %lld ticks DIVERGED\n",
                   static_cast<long long>(result.mismatch_count),
                   static_cast<long long>(result.ticks));
      for (const ReplayMismatch& m : result.mismatches) {
        std::fprintf(stderr,
                     "  t=%-4d want digest=%016llx sig=%016llx tier=%u | "
                     "got digest=%016llx sig=%016llx tier=%u\n",
                     m.now, static_cast<unsigned long long>(m.want_digest),
                     static_cast<unsigned long long>(m.want_sig),
                     static_cast<unsigned>(m.want_tier),
                     static_cast<unsigned long long>(m.got_digest),
                     static_cast<unsigned long long>(m.got_sig),
                     static_cast<unsigned>(m.got_tier));
      }
      return 3;
    }
    std::printf("verify   : OK — %lld/%lld ticks bit-identical\n",
                static_cast<long long>(result.ticks),
                static_cast<long long>(result.ticks));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto it = CommandFlags().find(command);
  if (it == CommandFlags().end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
    return Usage();
  }
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, it->second, &flags)) return Usage();
  if (command == "gen") {
    if (!HasRequired(flags, "gen", {"out"})) return Usage();
  } else if (command == "replay") {
    // Replay rebuilds everything from the log/bundle; exactly one source.
    const bool has_log = flags.count("log") > 0 && !flags.at("log").empty();
    const bool has_bundle =
        flags.count("bundle") > 0 && !flags.at("bundle").empty();
    if (has_log == has_bundle) {
      std::fprintf(stderr,
                   "error: 'replay' requires exactly one of --log/--bundle\n");
      return Usage();
    }
  } else if (command != "fsck") {
    if (!HasRequired(flags, command.c_str(), {"in"})) return Usage();
  }
  if (command == "save" || command == "recover" || command == "fsck") {
    if (!HasRequired(flags, command.c_str(), {"wal-dir"})) return Usage();
  }
  if (command == "record" &&
      !HasRequired(flags, "record", {"log"})) {
    return Usage();
  }
  try {
    if (command == "gen") return RunGen(flags);
    if (command == "info") return RunInfo(flags);
    if (command == "query") return RunQuery(flags);
    if (command == "explain") return RunExplain(flags);
    if (command == "monitor") return RunMonitor(flags);
    if (command == "stats") return RunStats(flags);
    if (command == "save") return RunSave(flags);
    if (command == "recover") return RunRecover(flags);
    if (command == "fsck") return RunFsckCmd(flags);
    if (command == "record") return RunRecord(flags);
    if (command == "replay") return RunReplay(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
