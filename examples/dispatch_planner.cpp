// Resource-scheduling scenario (the paper's second motivating
// application): a ride-hailing operator staging supply ahead of demand.
//
// Taxis stream location updates; the planner runs an *interval* PDR query
// (Definition 5) — "which regions will be demand-dense at any time within
// the next half hour?" — then places staging depots at the centers of the
// largest dense regions. The approximate PA engine answers the same
// question cheaply for a what-if sweep across thresholds.
//
// Build & run:  ./build/examples/dispatch_planner

#include <algorithm>
#include <cstdio>
#include <vector>

#include "pdr/pdr.h"

int main() {
  using namespace pdr;

  WorkloadConfig workload;
  workload.WithExtent(300.0);
  workload.num_objects = 8000;
  workload.max_update_interval = 30;
  workload.network.num_hotspots = 10;
  workload.network.hotspot_zipf = 1.0;  // strongly skewed demand
  workload.seed = 7;

  const Tick horizon = 60;
  const Tick kNow = 35;
  const Dataset dataset = GenerateDataset(workload, kNow);

  FrEngine fr({.extent = 300.0,
               .histogram_side = 30,
               .horizon = horizon,
               .buffer_pages = 256,
               .io_ms = 10.0});
  PaEngine pa({.extent = 300.0,
               .poly_side = 10,
               .degree = 5,
               .horizon = horizon,
               .l = 15.0,
               .eval_grid = 600});
  ReplayInto(dataset, -1, &fr, &pa);

  const double l = 15.0;
  const double rho = 16.0 / (l * l);  // >= 16 cabs per 15x15-mile square

  // ---- exact interval query over the next 15 minutes --------------------
  const auto interval = fr.QueryInterval(kNow, kNow + 15, rho, l);
  std::printf("demand-dense at some point in the next 15 min: %.1f sq-miles "
              "(%zu rects)\n",
              interval.region.Area(), interval.region.size());
  std::printf("query cost: %.1f ms CPU + %.0f ms I/O over 16 snapshots\n\n",
              interval.cost.cpu_ms, interval.cost.io_ms);

  // ---- place depots at the 5 largest dense rectangles -------------------
  std::vector<Rect> rects = interval.region.rects();
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return a.Area() > b.Area();
  });
  std::printf("staging depots (largest persistent dense areas):\n");
  for (size_t i = 0; i < rects.size() && i < 5; ++i) {
    const Vec2 c = rects[i].Center();
    std::printf("  depot %zu at (%.1f, %.1f) covering %.1f sq-miles\n",
                i + 1, c.x, c.y, rects[i].Area());
  }

  // ---- cheap what-if sweep with PA: how does coverage vary with the
  //      threshold? --------------------------------------------------------
  std::printf("\nwhat-if sweep (PA, single snapshot at t=%d):\n", kNow + 15);
  for (double cabs : {8.0, 12.0, 16.0, 24.0, 32.0}) {
    const auto result = pa.Query(kNow + 15, cabs / (l * l));
    std::printf("  >= %3.0f cabs/square: %8.1f sq-miles dense (%.2f ms)\n",
                cabs, result.region.Area(), result.cost.cpu_ms);
  }

  // ---- sanity: the exact snapshot confirms the PA picture ----------------
  const auto exact = fr.Query(kNow + 15, rho, l);
  const auto approx = pa.Query(kNow + 15, rho);
  const AccuracyMetrics m =
      CompareRegions(exact.region, approx.region, 300.0 * 300.0);
  std::printf("\nPA vs exact at the dispatch threshold: r_fp=%.1f%% "
              "r_fn=%.1f%%\n",
              100 * m.false_positive_ratio, 100 * m.false_negative_ratio);
  return 0;
}
