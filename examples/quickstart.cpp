// Quickstart: the smallest end-to-end use of the PDR library.
//
//  1. Generate a synthetic moving-object workload (road network + trips).
//  2. Feed the update stream into the exact FR engine and the approximate
//     PA engine.
//  3. Ask both engines for the rho-dense regions at a future timestamp
//     and print what they found.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "pdr/pdr.h"

int main() {
  using namespace pdr;

  // --- 1. a small city: 5,000 vehicles on a 200 x 200 mile area ---------
  WorkloadConfig workload;
  workload.WithExtent(200.0);
  workload.num_objects = 5000;
  workload.max_update_interval = 30;  // every vehicle reports within 30 min
  workload.seed = 1;

  const Tick kSimulatedMinutes = 40;
  const Dataset dataset = GenerateDataset(workload, kSimulatedMinutes);
  std::printf("generated %zu updates over %d ticks\n",
              dataset.TotalUpdates(), kSimulatedMinutes);

  // --- 2. engines --------------------------------------------------------
  const Tick horizon = 60;  // U + W: 30 min updates + 30 min predictions
  FrEngine fr({.extent = 200.0,
               .histogram_side = 40,
               .horizon = horizon,
               .buffer_pages = 128,
               .io_ms = 10.0});
  PaEngine pa({.extent = 200.0,
               .poly_side = 8,
               .degree = 5,
               .horizon = horizon,
               .l = 10.0,
               .eval_grid = 400});
  ReplayInto(dataset, /*upto=*/-1, &fr, &pa);

  // --- 3. query: where will >= 12 vehicles per 10x10-mile square be,
  //        fifteen minutes from now? ---------------------------------------
  const double l = 10.0;
  const double rho = 12.0 / (l * l);
  const Tick q_t = kSimulatedMinutes + 15;

  const auto exact = fr.Query(q_t, rho, l);
  std::printf("\nFR (exact): %zu dense rectangles, %.1f sq-miles total\n",
              exact.region.size(), exact.region.Area());
  std::printf("    cost: %.2f ms CPU + %.1f ms simulated I/O (%lld reads)\n",
              exact.cost.cpu_ms, exact.cost.io_ms,
              static_cast<long long>(exact.cost.io_reads()));
  int shown = 0;
  for (const Rect& r : exact.region.rects()) {
    std::printf("    dense: %s\n", r.ToString().c_str());
    if (++shown == 5) break;
  }
  if (exact.region.size() > 5) {
    std::printf("    ... and %zu more\n", exact.region.size() - 5);
  }

  const auto approx = pa.Query(q_t, rho);
  const AccuracyMetrics m =
      CompareRegions(exact.region, approx.region, 200.0 * 200.0);
  std::printf("\nPA (approximate): %zu rectangles in %.2f ms, no I/O\n",
              approx.region.size(), approx.cost.cpu_ms);
  std::printf("    vs exact: r_fp=%.1f%%, r_fn=%.1f%%, Jaccard=%.2f\n",
              100 * m.false_positive_ratio, 100 * m.false_negative_ratio,
              m.Jaccard());

  // Point densities are first-class too (Definition 2):
  if (!exact.region.IsEmpty()) {
    const Vec2 p = exact.region.rects().front().Center();
    std::printf("\npoint density at %s: approx %.3f (threshold %.3f)\n",
                p.ToString().c_str(), pa.Density(q_t, p), rho);
  }
  return 0;
}
