// Density contours (Section 6 of the paper): the Chebyshev model gives a
// smooth, closed-form view of the density field, so iso-density contour
// lines can be extracted directly — useful for dashboards that show *how*
// concentrated traffic is, not just where it crosses one threshold.
//
// This example renders an ASCII density map of the metro area with
// marching-squares contour lines at three levels, plus the dense-region
// answer at the highest level for comparison.
//
// Build & run:  ./build/examples/density_contours

#include <cstdio>
#include <string>
#include <vector>

#include "pdr/pdr.h"

int main() {
  using namespace pdr;

  WorkloadConfig workload;
  workload.WithExtent(240.0);
  workload.num_objects = 15000;
  workload.max_update_interval = 30;
  workload.network.num_hotspots = 5;
  workload.seed = 4;

  PaEngine pa({.extent = 240.0,
               .poly_side = 8,
               .degree = 6,
               .horizon = 60,
               .l = 12.0,
               .eval_grid = 480});
  const Dataset dataset = GenerateDataset(workload, 35);
  ReplayInto(dataset, -1, &pa);

  const Tick q_t = 45;
  const double l = 12.0;

  // ---- ASCII density map -------------------------------------------------
  const int kW = 72, kH = 36;
  const char* shades = " .:-=+*#%@";
  double peak = 0;
  std::vector<std::vector<double>> field(kH, std::vector<double>(kW));
  for (int r = 0; r < kH; ++r) {
    for (int c = 0; c < kW; ++c) {
      const Vec2 p{(c + 0.5) * 240.0 / kW, (r + 0.5) * 240.0 / kH};
      field[r][c] = std::max(0.0, pa.Density(q_t, p));
      peak = std::max(peak, field[r][c]);
    }
  }
  std::printf("density map at t=%d (peak %.1f vehicles per %g x %g sq):\n\n",
              q_t, peak * l * l, l, l);
  for (int r = kH - 1; r >= 0; --r) {  // north up
    std::string line;
    for (int c = 0; c < kW; ++c) {
      // Square-root scaling keeps low densities visible next to the peak.
      const double norm = peak > 0 ? std::sqrt(field[r][c] / peak) : 0.0;
      const int shade = static_cast<int>(9.999 * norm);
      line += shades[std::min(9, std::max(0, shade))];
    }
    std::printf("|%s|\n", line.c_str());
  }

  // ---- contour lines ------------------------------------------------------
  std::printf("\niso-density contours (vehicles per square):\n");
  for (double vehicles : {10.0, 25.0, 50.0}) {
    const double level = vehicles / (l * l);
    const auto contours = ExtractDensityContours(pa.model(), q_t, level, 160);
    size_t points = 0;
    size_t loops = 0;
    for (const Contour& c : contours) {
      points += c.points.size();
      loops += c.closed;
    }
    std::printf("  level %4.0f: %2zu contour lines (%zu closed), %4zu "
                "vertices\n",
                vehicles, contours.size(), loops, points);
  }

  // ---- dense regions at the top level -------------------------------------
  const double rho = 50.0 / (l * l);
  const auto dense = pa.Query(q_t, rho);
  std::printf("\nregions above 50 vehicles/square: %.1f sq-miles in %zu "
              "rects (%.2f ms)\n",
              dense.region.Area(), dense.region.size(), dense.cost.cpu_ms);
  return 0;
}
