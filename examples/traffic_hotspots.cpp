// Traffic management scenario (the paper's motivating application):
// predict where congestion will develop so commuters can be rerouted
// before it forms.
//
// A live stream of vehicle updates feeds the FR engine. Every 10 minutes
// the operator asks: "which regions will exceed the congestion density 20
// minutes from now?" — a predictive snapshot PDR query. The example also
// shows why the two prior methods fall short on the same data:
// dense-cell queries lose regions straddling cell borders, and effective
// density queries give strategy-dependent answers.
//
// Build & run:  ./build/examples/traffic_hotspots

#include <cstdio>

#include "pdr/pdr.h"

namespace {

void PrintRegionSummary(const char* label, const pdr::Region& region) {
  std::printf("  %-18s %3zu rects, %8.1f sq-miles", label, region.size(),
              region.Area());
  if (!region.IsEmpty()) {
    const pdr::Rect box = region.BoundingBox();
    std::printf(", spread over %s", box.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pdr;

  // Metro area: 500 x 500 miles, 40,000 vehicles, hotspots downtown.
  WorkloadConfig workload;
  workload.WithExtent(500.0);
  workload.num_objects = 40000;
  workload.max_update_interval = 30;
  workload.network.grid_nodes = 20;
  workload.network.num_hotspots = 8;
  workload.seed = 99;

  const Tick horizon = 60;
  FrEngine fr({.extent = 500.0,
               .histogram_side = 50,
               .horizon = horizon,
               .buffer_pages = 512,
               .io_ms = 10.0});

  TripSimulator sim(workload);
  for (const UpdateEvent& e : sim.Bootstrap()) fr.Apply(e);

  // Congestion: more than 35 vehicles in any 10 x 10 mile neighborhood.
  const double l = 10.0;
  const double rho = 35.0 / (l * l);

  std::printf("monitoring %d vehicles; congestion threshold: %.0f per "
              "%g x %g miles\n\n",
              workload.num_objects, rho * l * l, l, l);

  size_t updates = 0;
  for (Tick now = 1; now <= 30; ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : sim.Advance(now)) {
      fr.Apply(e);
      ++updates;
    }
    if (now % 10 != 0) continue;

    const Tick q_t = now + 20;  // look 20 minutes ahead
    const auto result = fr.Query(q_t, rho, l);
    std::printf("t=%d (after %zu updates): predicted hotspots at t=%d\n",
                now, updates, q_t);
    PrintRegionSummary("PDR (exact):", result.region);
    std::printf(
        "    filter: %lld accepted / %lld candidate / %lld rejected cells; "
        "%.1f ms CPU + %.0f ms I/O\n",
        static_cast<long long>(result.accepted_cells),
        static_cast<long long>(result.candidate_cells),
        static_cast<long long>(result.rejected_cells), result.cost.cpu_ms,
        result.cost.io_ms);

    // What the prior methods would have told the operator:
    const Region cells = DenseCellQuery(fr.histogram(), q_t, rho);
    PrintRegionSummary("dense cells [4]:", cells);
    const EdqResult edq_a = EffectiveDensityQuery(fr.histogram(), q_t, rho,
                                                  l, EdqStrategy::kDensestFirst);
    const EdqResult edq_b = EffectiveDensityQuery(fr.histogram(), q_t, rho,
                                                  l, EdqStrategy::kScanOrder);
    PrintRegionSummary("EDQ [7] (densest):", edq_a.region);
    if (SymmetricDifferenceArea(edq_a.region, edq_b.region) > 1e-6) {
      std::printf("    note: EDQ's two reporting strategies disagree here "
                  "(ambiguity) — PDR's answer is unique\n");
    }
    const double missed = DifferenceArea(result.region, cells);
    if (missed > 1.0) {
      std::printf("    note: dense-cell query misses %.1f sq-miles of "
                  "congestion (answer loss)\n",
                  missed);
    }
    std::printf("\n");
  }

  // How bad does it get? Peak density via binary search over exact
  // queries (explorer.h).
  const PeakDensity peak = FindPeakDensity(fr, 50, l);
  std::printf("worst congestion predicted for t=50: %lld vehicles per "
              "%g x %g miles",
              static_cast<long long>(peak.count), l, l);
  if (!peak.region.IsEmpty()) {
    const Vec2 where = peak.region.BoundingBox().Center();
    std::printf(" around (%.0f, %.0f)", where.x, where.y);
  }
  std::printf(" [%d exact queries]\n", peak.probes);
  return 0;
}
