# Empty compiler generated dependencies file for traffic_hotspots.
# This may be replaced when dependencies are built.
