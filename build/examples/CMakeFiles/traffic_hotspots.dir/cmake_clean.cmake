file(REMOVE_RECURSE
  "CMakeFiles/traffic_hotspots.dir/traffic_hotspots.cpp.o"
  "CMakeFiles/traffic_hotspots.dir/traffic_hotspots.cpp.o.d"
  "traffic_hotspots"
  "traffic_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
