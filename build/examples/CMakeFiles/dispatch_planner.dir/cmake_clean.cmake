file(REMOVE_RECURSE
  "CMakeFiles/dispatch_planner.dir/dispatch_planner.cpp.o"
  "CMakeFiles/dispatch_planner.dir/dispatch_planner.cpp.o.d"
  "dispatch_planner"
  "dispatch_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
