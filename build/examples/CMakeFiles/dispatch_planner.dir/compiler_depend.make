# Empty compiler generated dependencies file for dispatch_planner.
# This may be replaced when dependencies are built.
