file(REMOVE_RECURSE
  "CMakeFiles/pdr_tool.dir/pdr_tool.cpp.o"
  "CMakeFiles/pdr_tool.dir/pdr_tool.cpp.o.d"
  "pdr_tool"
  "pdr_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
