# Empty compiler generated dependencies file for pdr_tool.
# This may be replaced when dependencies are built.
