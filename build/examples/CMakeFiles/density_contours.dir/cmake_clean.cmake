file(REMOVE_RECURSE
  "CMakeFiles/density_contours.dir/density_contours.cpp.o"
  "CMakeFiles/density_contours.dir/density_contours.cpp.o.d"
  "density_contours"
  "density_contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
