# Empty dependencies file for density_contours.
# This may be replaced when dependencies are built.
