# Empty dependencies file for dataset_io_test.
# This may be replaced when dependencies are built.
