file(REMOVE_RECURSE
  "CMakeFiles/dataset_io_test.dir/dataset_io_test.cc.o"
  "CMakeFiles/dataset_io_test.dir/dataset_io_test.cc.o.d"
  "dataset_io_test"
  "dataset_io_test.pdb"
  "dataset_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
