# Empty compiler generated dependencies file for bplus_tree_test.
# This may be replaced when dependencies are built.
