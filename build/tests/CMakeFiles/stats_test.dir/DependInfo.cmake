
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/stats_test.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_tpr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_bx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_cheb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
