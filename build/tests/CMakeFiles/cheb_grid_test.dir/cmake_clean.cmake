file(REMOVE_RECURSE
  "CMakeFiles/cheb_grid_test.dir/cheb_grid_test.cc.o"
  "CMakeFiles/cheb_grid_test.dir/cheb_grid_test.cc.o.d"
  "cheb_grid_test"
  "cheb_grid_test.pdb"
  "cheb_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheb_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
