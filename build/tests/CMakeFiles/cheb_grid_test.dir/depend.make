# Empty dependencies file for cheb_grid_test.
# This may be replaced when dependencies are built.
