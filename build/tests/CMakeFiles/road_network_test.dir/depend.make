# Empty dependencies file for road_network_test.
# This may be replaced when dependencies are built.
