file(REMOVE_RECURSE
  "CMakeFiles/road_network_test.dir/road_network_test.cc.o"
  "CMakeFiles/road_network_test.dir/road_network_test.cc.o.d"
  "road_network_test"
  "road_network_test.pdb"
  "road_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
