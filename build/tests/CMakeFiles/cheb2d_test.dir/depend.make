# Empty dependencies file for cheb2d_test.
# This may be replaced when dependencies are built.
