file(REMOVE_RECURSE
  "CMakeFiles/cheb2d_test.dir/cheb2d_test.cc.o"
  "CMakeFiles/cheb2d_test.dir/cheb2d_test.cc.o.d"
  "cheb2d_test"
  "cheb2d_test.pdb"
  "cheb2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheb2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
