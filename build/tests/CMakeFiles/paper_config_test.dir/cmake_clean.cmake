file(REMOVE_RECURSE
  "CMakeFiles/paper_config_test.dir/paper_config_test.cc.o"
  "CMakeFiles/paper_config_test.dir/paper_config_test.cc.o.d"
  "paper_config_test"
  "paper_config_test.pdb"
  "paper_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
