# Empty compiler generated dependencies file for paper_config_test.
# This may be replaced when dependencies are built.
