# Empty compiler generated dependencies file for fr_engine_test.
# This may be replaced when dependencies are built.
