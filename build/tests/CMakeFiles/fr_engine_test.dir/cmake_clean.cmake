file(REMOVE_RECURSE
  "CMakeFiles/fr_engine_test.dir/fr_engine_test.cc.o"
  "CMakeFiles/fr_engine_test.dir/fr_engine_test.cc.o.d"
  "fr_engine_test"
  "fr_engine_test.pdb"
  "fr_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
