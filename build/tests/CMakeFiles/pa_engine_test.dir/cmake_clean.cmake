file(REMOVE_RECURSE
  "CMakeFiles/pa_engine_test.dir/pa_engine_test.cc.o"
  "CMakeFiles/pa_engine_test.dir/pa_engine_test.cc.o.d"
  "pa_engine_test"
  "pa_engine_test.pdb"
  "pa_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
