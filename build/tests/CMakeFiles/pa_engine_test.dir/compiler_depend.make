# Empty compiler generated dependencies file for pa_engine_test.
# This may be replaced when dependencies are built.
