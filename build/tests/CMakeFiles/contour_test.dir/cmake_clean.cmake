file(REMOVE_RECURSE
  "CMakeFiles/contour_test.dir/contour_test.cc.o"
  "CMakeFiles/contour_test.dir/contour_test.cc.o.d"
  "contour_test"
  "contour_test.pdb"
  "contour_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contour_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
