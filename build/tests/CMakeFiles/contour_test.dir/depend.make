# Empty dependencies file for contour_test.
# This may be replaced when dependencies are built.
