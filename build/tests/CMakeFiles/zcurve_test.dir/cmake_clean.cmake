file(REMOVE_RECURSE
  "CMakeFiles/zcurve_test.dir/zcurve_test.cc.o"
  "CMakeFiles/zcurve_test.dir/zcurve_test.cc.o.d"
  "zcurve_test"
  "zcurve_test.pdb"
  "zcurve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcurve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
