# Empty compiler generated dependencies file for zcurve_test.
# This may be replaced when dependencies are built.
