# Empty compiler generated dependencies file for explorer_test.
# This may be replaced when dependencies are built.
