file(REMOVE_RECURSE
  "CMakeFiles/explorer_test.dir/explorer_test.cc.o"
  "CMakeFiles/explorer_test.dir/explorer_test.cc.o.d"
  "explorer_test"
  "explorer_test.pdb"
  "explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
