# Empty compiler generated dependencies file for cheb_test.
# This may be replaced when dependencies are built.
