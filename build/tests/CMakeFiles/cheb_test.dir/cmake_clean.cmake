file(REMOVE_RECURSE
  "CMakeFiles/cheb_test.dir/cheb_test.cc.o"
  "CMakeFiles/cheb_test.dir/cheb_test.cc.o.d"
  "cheb_test"
  "cheb_test.pdb"
  "cheb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
