file(REMOVE_RECURSE
  "CMakeFiles/tpr_test.dir/tpr_test.cc.o"
  "CMakeFiles/tpr_test.dir/tpr_test.cc.o.d"
  "tpr_test"
  "tpr_test.pdb"
  "tpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
