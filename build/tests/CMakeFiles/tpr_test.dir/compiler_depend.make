# Empty compiler generated dependencies file for tpr_test.
# This may be replaced when dependencies are built.
