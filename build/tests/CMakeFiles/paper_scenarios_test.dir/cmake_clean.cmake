file(REMOVE_RECURSE
  "CMakeFiles/paper_scenarios_test.dir/paper_scenarios_test.cc.o"
  "CMakeFiles/paper_scenarios_test.dir/paper_scenarios_test.cc.o.d"
  "paper_scenarios_test"
  "paper_scenarios_test.pdb"
  "paper_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
