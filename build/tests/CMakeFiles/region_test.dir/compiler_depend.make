# Empty compiler generated dependencies file for region_test.
# This may be replaced when dependencies are built.
