file(REMOVE_RECURSE
  "CMakeFiles/bx_tree_test.dir/bx_tree_test.cc.o"
  "CMakeFiles/bx_tree_test.dir/bx_tree_test.cc.o.d"
  "bx_tree_test"
  "bx_tree_test.pdb"
  "bx_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bx_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
