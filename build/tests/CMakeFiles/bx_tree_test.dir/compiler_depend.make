# Empty compiler generated dependencies file for bx_tree_test.
# This may be replaced when dependencies are built.
