file(REMOVE_RECURSE
  "CMakeFiles/filter_test.dir/filter_test.cc.o"
  "CMakeFiles/filter_test.dir/filter_test.cc.o.d"
  "filter_test"
  "filter_test.pdb"
  "filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
