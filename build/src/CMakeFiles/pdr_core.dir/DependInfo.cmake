
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/core/explorer.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/explorer.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/explorer.cc.o.d"
  "/root/repo/src/pdr/core/fr_engine.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/fr_engine.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/fr_engine.cc.o.d"
  "/root/repo/src/pdr/core/metrics.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/metrics.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/metrics.cc.o.d"
  "/root/repo/src/pdr/core/monitor.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/monitor.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/monitor.cc.o.d"
  "/root/repo/src/pdr/core/oracle.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/oracle.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/oracle.cc.o.d"
  "/root/repo/src/pdr/core/pa_engine.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/pa_engine.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/pa_engine.cc.o.d"
  "/root/repo/src/pdr/core/paper_config.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/paper_config.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/paper_config.cc.o.d"
  "/root/repo/src/pdr/core/simulation.cc" "src/CMakeFiles/pdr_core.dir/pdr/core/simulation.cc.o" "gcc" "src/CMakeFiles/pdr_core.dir/pdr/core/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_tpr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_bx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_cheb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
