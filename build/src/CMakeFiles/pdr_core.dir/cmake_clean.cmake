file(REMOVE_RECURSE
  "CMakeFiles/pdr_core.dir/pdr/core/explorer.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/explorer.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/fr_engine.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/fr_engine.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/metrics.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/metrics.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/monitor.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/monitor.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/oracle.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/oracle.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/pa_engine.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/pa_engine.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/paper_config.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/paper_config.cc.o.d"
  "CMakeFiles/pdr_core.dir/pdr/core/simulation.cc.o"
  "CMakeFiles/pdr_core.dir/pdr/core/simulation.cc.o.d"
  "libpdr_core.a"
  "libpdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
