# Empty compiler generated dependencies file for pdr_core.
# This may be replaced when dependencies are built.
