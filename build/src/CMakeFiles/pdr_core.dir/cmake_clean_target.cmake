file(REMOVE_RECURSE
  "libpdr_core.a"
)
