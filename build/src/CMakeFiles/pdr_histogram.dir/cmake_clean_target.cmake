file(REMOVE_RECURSE
  "libpdr_histogram.a"
)
