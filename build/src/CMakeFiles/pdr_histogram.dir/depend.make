# Empty dependencies file for pdr_histogram.
# This may be replaced when dependencies are built.
