file(REMOVE_RECURSE
  "CMakeFiles/pdr_histogram.dir/pdr/histogram/density_histogram.cc.o"
  "CMakeFiles/pdr_histogram.dir/pdr/histogram/density_histogram.cc.o.d"
  "CMakeFiles/pdr_histogram.dir/pdr/histogram/filter.cc.o"
  "CMakeFiles/pdr_histogram.dir/pdr/histogram/filter.cc.o.d"
  "libpdr_histogram.a"
  "libpdr_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
