file(REMOVE_RECURSE
  "libpdr_mobility.a"
)
