# Empty dependencies file for pdr_mobility.
# This may be replaced when dependencies are built.
