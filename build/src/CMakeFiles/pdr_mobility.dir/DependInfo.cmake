
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/mobility/dataset_io.cc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/dataset_io.cc.o" "gcc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/dataset_io.cc.o.d"
  "/root/repo/src/pdr/mobility/generator.cc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/generator.cc.o" "gcc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/generator.cc.o.d"
  "/root/repo/src/pdr/mobility/object.cc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/object.cc.o" "gcc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/object.cc.o.d"
  "/root/repo/src/pdr/mobility/road_network.cc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/road_network.cc.o" "gcc" "src/CMakeFiles/pdr_mobility.dir/pdr/mobility/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
