file(REMOVE_RECURSE
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/dataset_io.cc.o"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/dataset_io.cc.o.d"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/generator.cc.o"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/generator.cc.o.d"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/object.cc.o"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/object.cc.o.d"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/road_network.cc.o"
  "CMakeFiles/pdr_mobility.dir/pdr/mobility/road_network.cc.o.d"
  "libpdr_mobility.a"
  "libpdr_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
