file(REMOVE_RECURSE
  "libpdr_sweep.a"
)
