file(REMOVE_RECURSE
  "CMakeFiles/pdr_sweep.dir/pdr/sweep/plane_sweep.cc.o"
  "CMakeFiles/pdr_sweep.dir/pdr/sweep/plane_sweep.cc.o.d"
  "libpdr_sweep.a"
  "libpdr_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
