# Empty dependencies file for pdr_sweep.
# This may be replaced when dependencies are built.
