file(REMOVE_RECURSE
  "libpdr_bx.a"
)
