file(REMOVE_RECURSE
  "CMakeFiles/pdr_bx.dir/pdr/bx/bplus_tree.cc.o"
  "CMakeFiles/pdr_bx.dir/pdr/bx/bplus_tree.cc.o.d"
  "CMakeFiles/pdr_bx.dir/pdr/bx/bx_tree.cc.o"
  "CMakeFiles/pdr_bx.dir/pdr/bx/bx_tree.cc.o.d"
  "CMakeFiles/pdr_bx.dir/pdr/bx/zcurve.cc.o"
  "CMakeFiles/pdr_bx.dir/pdr/bx/zcurve.cc.o.d"
  "libpdr_bx.a"
  "libpdr_bx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_bx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
