# Empty dependencies file for pdr_bx.
# This may be replaced when dependencies are built.
