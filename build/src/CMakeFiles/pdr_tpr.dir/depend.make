# Empty dependencies file for pdr_tpr.
# This may be replaced when dependencies are built.
