file(REMOVE_RECURSE
  "libpdr_tpr.a"
)
