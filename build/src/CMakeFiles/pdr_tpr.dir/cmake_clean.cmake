file(REMOVE_RECURSE
  "CMakeFiles/pdr_tpr.dir/pdr/tpr/tpr_tree.cc.o"
  "CMakeFiles/pdr_tpr.dir/pdr/tpr/tpr_tree.cc.o.d"
  "libpdr_tpr.a"
  "libpdr_tpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_tpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
