# Empty dependencies file for pdr_common.
# This may be replaced when dependencies are built.
