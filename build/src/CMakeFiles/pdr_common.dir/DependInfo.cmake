
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/common/geometry.cc" "src/CMakeFiles/pdr_common.dir/pdr/common/geometry.cc.o" "gcc" "src/CMakeFiles/pdr_common.dir/pdr/common/geometry.cc.o.d"
  "/root/repo/src/pdr/common/random.cc" "src/CMakeFiles/pdr_common.dir/pdr/common/random.cc.o" "gcc" "src/CMakeFiles/pdr_common.dir/pdr/common/random.cc.o.d"
  "/root/repo/src/pdr/common/region.cc" "src/CMakeFiles/pdr_common.dir/pdr/common/region.cc.o" "gcc" "src/CMakeFiles/pdr_common.dir/pdr/common/region.cc.o.d"
  "/root/repo/src/pdr/common/stats.cc" "src/CMakeFiles/pdr_common.dir/pdr/common/stats.cc.o" "gcc" "src/CMakeFiles/pdr_common.dir/pdr/common/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
