file(REMOVE_RECURSE
  "CMakeFiles/pdr_common.dir/pdr/common/geometry.cc.o"
  "CMakeFiles/pdr_common.dir/pdr/common/geometry.cc.o.d"
  "CMakeFiles/pdr_common.dir/pdr/common/random.cc.o"
  "CMakeFiles/pdr_common.dir/pdr/common/random.cc.o.d"
  "CMakeFiles/pdr_common.dir/pdr/common/region.cc.o"
  "CMakeFiles/pdr_common.dir/pdr/common/region.cc.o.d"
  "CMakeFiles/pdr_common.dir/pdr/common/stats.cc.o"
  "CMakeFiles/pdr_common.dir/pdr/common/stats.cc.o.d"
  "libpdr_common.a"
  "libpdr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
