file(REMOVE_RECURSE
  "libpdr_common.a"
)
