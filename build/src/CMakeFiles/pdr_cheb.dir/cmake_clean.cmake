file(REMOVE_RECURSE
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb2d.cc.o"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb2d.cc.o.d"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb_grid.cc.o"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb_grid.cc.o.d"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/chebyshev.cc.o"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/chebyshev.cc.o.d"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/contour.cc.o"
  "CMakeFiles/pdr_cheb.dir/pdr/cheb/contour.cc.o.d"
  "libpdr_cheb.a"
  "libpdr_cheb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_cheb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
