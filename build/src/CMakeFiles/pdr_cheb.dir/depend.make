# Empty dependencies file for pdr_cheb.
# This may be replaced when dependencies are built.
