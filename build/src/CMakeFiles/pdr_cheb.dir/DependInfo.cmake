
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/cheb/cheb2d.cc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb2d.cc.o" "gcc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb2d.cc.o.d"
  "/root/repo/src/pdr/cheb/cheb_grid.cc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb_grid.cc.o" "gcc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/cheb_grid.cc.o.d"
  "/root/repo/src/pdr/cheb/chebyshev.cc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/chebyshev.cc.o" "gcc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/chebyshev.cc.o.d"
  "/root/repo/src/pdr/cheb/contour.cc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/contour.cc.o" "gcc" "src/CMakeFiles/pdr_cheb.dir/pdr/cheb/contour.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
