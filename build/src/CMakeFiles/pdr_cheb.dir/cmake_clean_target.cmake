file(REMOVE_RECURSE
  "libpdr_cheb.a"
)
