# Empty compiler generated dependencies file for pdr_storage.
# This may be replaced when dependencies are built.
