file(REMOVE_RECURSE
  "CMakeFiles/pdr_storage.dir/pdr/storage/buffer_pool.cc.o"
  "CMakeFiles/pdr_storage.dir/pdr/storage/buffer_pool.cc.o.d"
  "CMakeFiles/pdr_storage.dir/pdr/storage/pager.cc.o"
  "CMakeFiles/pdr_storage.dir/pdr/storage/pager.cc.o.d"
  "libpdr_storage.a"
  "libpdr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
