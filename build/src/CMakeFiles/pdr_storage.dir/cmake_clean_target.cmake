file(REMOVE_RECURSE
  "libpdr_storage.a"
)
