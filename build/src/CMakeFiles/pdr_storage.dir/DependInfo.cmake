
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/storage/buffer_pool.cc" "src/CMakeFiles/pdr_storage.dir/pdr/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/pdr_storage.dir/pdr/storage/buffer_pool.cc.o.d"
  "/root/repo/src/pdr/storage/pager.cc" "src/CMakeFiles/pdr_storage.dir/pdr/storage/pager.cc.o" "gcc" "src/CMakeFiles/pdr_storage.dir/pdr/storage/pager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
