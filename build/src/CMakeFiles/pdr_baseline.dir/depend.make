# Empty dependencies file for pdr_baseline.
# This may be replaced when dependencies are built.
