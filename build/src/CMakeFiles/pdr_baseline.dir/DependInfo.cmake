
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdr/baseline/dense_cell.cc" "src/CMakeFiles/pdr_baseline.dir/pdr/baseline/dense_cell.cc.o" "gcc" "src/CMakeFiles/pdr_baseline.dir/pdr/baseline/dense_cell.cc.o.d"
  "/root/repo/src/pdr/baseline/edq.cc" "src/CMakeFiles/pdr_baseline.dir/pdr/baseline/edq.cc.o" "gcc" "src/CMakeFiles/pdr_baseline.dir/pdr/baseline/edq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdr_histogram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
