file(REMOVE_RECURSE
  "libpdr_baseline.a"
)
