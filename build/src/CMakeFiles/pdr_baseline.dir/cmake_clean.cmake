file(REMOVE_RECURSE
  "CMakeFiles/pdr_baseline.dir/pdr/baseline/dense_cell.cc.o"
  "CMakeFiles/pdr_baseline.dir/pdr/baseline/dense_cell.cc.o.d"
  "CMakeFiles/pdr_baseline.dir/pdr/baseline/edq.cc.o"
  "CMakeFiles/pdr_baseline.dir/pdr/baseline/edq.cc.o.d"
  "libpdr_baseline.a"
  "libpdr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
