file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tpr.dir/bench_ablation_tpr.cc.o"
  "CMakeFiles/bench_ablation_tpr.dir/bench_ablation_tpr.cc.o.d"
  "bench_ablation_tpr"
  "bench_ablation_tpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
