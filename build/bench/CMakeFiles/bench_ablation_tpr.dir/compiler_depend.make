# Empty compiler generated dependencies file for bench_ablation_tpr.
# This may be replaced when dependencies are built.
