# Empty dependencies file for bench_fig10_cost.
# This may be replaced when dependencies are built.
