file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_setup.dir/bench_table1_setup.cc.o"
  "CMakeFiles/bench_table1_setup.dir/bench_table1_setup.cc.o.d"
  "bench_table1_setup"
  "bench_table1_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
