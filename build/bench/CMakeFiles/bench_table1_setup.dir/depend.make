# Empty dependencies file for bench_table1_setup.
# This may be replaced when dependencies are built.
