# Empty compiler generated dependencies file for bench_ablation_cheb.
# This may be replaced when dependencies are built.
