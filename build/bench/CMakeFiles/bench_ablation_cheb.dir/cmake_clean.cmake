file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cheb.dir/bench_ablation_cheb.cc.o"
  "CMakeFiles/bench_ablation_cheb.dir/bench_ablation_cheb.cc.o.d"
  "bench_ablation_cheb"
  "bench_ablation_cheb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cheb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
