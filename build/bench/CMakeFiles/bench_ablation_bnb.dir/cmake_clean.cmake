file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bnb.dir/bench_ablation_bnb.cc.o"
  "CMakeFiles/bench_ablation_bnb.dir/bench_ablation_bnb.cc.o.d"
  "bench_ablation_bnb"
  "bench_ablation_bnb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
