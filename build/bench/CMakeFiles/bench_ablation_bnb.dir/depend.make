# Empty dependencies file for bench_ablation_bnb.
# This may be replaced when dependencies are built.
