# Empty dependencies file for bench_fig9_cpu.
# This may be replaced when dependencies are built.
