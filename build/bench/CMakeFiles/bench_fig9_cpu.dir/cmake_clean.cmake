file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cpu.dir/bench_fig9_cpu.cc.o"
  "CMakeFiles/bench_fig9_cpu.dir/bench_fig9_cpu.cc.o.d"
  "bench_fig9_cpu"
  "bench_fig9_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
