# Empty dependencies file for bench_interval.
# This may be replaced when dependencies are built.
