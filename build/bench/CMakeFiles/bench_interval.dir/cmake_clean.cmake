file(REMOVE_RECURSE
  "CMakeFiles/bench_interval.dir/bench_interval.cc.o"
  "CMakeFiles/bench_interval.dir/bench_interval.cc.o.d"
  "bench_interval"
  "bench_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
