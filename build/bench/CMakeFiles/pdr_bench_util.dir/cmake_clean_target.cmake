file(REMOVE_RECURSE
  "libpdr_bench_util.a"
)
