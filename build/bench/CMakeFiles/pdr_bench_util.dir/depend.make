# Empty dependencies file for pdr_bench_util.
# This may be replaced when dependencies are built.
