file(REMOVE_RECURSE
  "CMakeFiles/pdr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/pdr_bench_util.dir/bench_util.cc.o.d"
  "libpdr_bench_util.a"
  "libpdr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
