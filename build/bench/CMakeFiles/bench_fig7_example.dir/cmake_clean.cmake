file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_example.dir/bench_fig7_example.cc.o"
  "CMakeFiles/bench_fig7_example.dir/bench_fig7_example.cc.o.d"
  "bench_fig7_example"
  "bench_fig7_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
