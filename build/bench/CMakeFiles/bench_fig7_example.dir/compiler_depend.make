# Empty compiler generated dependencies file for bench_fig7_example.
# This may be replaced when dependencies are built.
