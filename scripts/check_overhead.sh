#!/usr/bin/env bash
# Flight-recorder overhead-regression gate.
#
# The recorder's contract is "cheap enough to leave on": a disabled
# call site is one relaxed load and a branch, and an enabled one is a
# timestamp plus four relaxed stores into a per-thread ring. This gate
# holds the end-to-end cost to that contract with bench_micro's probe
# pair — BM_FrQuery (recorder off) vs BM_FrQueryRecorderOn — a full FR
# query crossing every instrumented subsystem (filter, per-cell
# refinement, plane sweep, buffer pool). It fails if the enabled probe
# is more than PDR_OVERHEAD_GATE_PCT percent (default 3) slower.
#
# Noise handling, both layers matter on busy CI machines:
#   - the two probes run in ONE bench_micro invocation with
#     --benchmark_enable_random_interleaving, so off and on repetitions
#     alternate and clock/thermal drift hits both sides equally
#     (sequential off-then-on runs showed >10% phantom "overhead" from
#     drift alone);
#   - the gate compares the MINIMUM CPU time per side across
#     PDR_OVERHEAD_GATE_REPS repetitions — the fastest repetition is
#     the least-interfered one.
#
# Usage: scripts/check_overhead.sh [--build DIR]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build"
if [[ "${1:-}" == "--build" ]]; then
  build="$2"
fi

bench="${build}/bench/bench_micro"
if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not built (cmake --build ${build})" >&2
  exit 1
fi

gate_pct="${PDR_OVERHEAD_GATE_PCT:-3}"
reps="${PDR_OVERHEAD_GATE_REPS:-9}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

echo "==== bench_micro BM_FrQuery off/on interleaved (${reps} reps) ===="
env -u PDR_FLIGHT_RECORDER "${bench}" \
    --benchmark_filter='^BM_FrQuery(RecorderOn)?$' \
    --benchmark_repetitions="${reps}" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=false \
    --benchmark_format=json >"${tmpdir}/probe.json"

python3 - "${tmpdir}/probe.json" "${gate_pct}" <<'PY'
import json
import sys

path, gate_pct = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    doc = json.load(f)

times = {"BM_FrQuery": [], "BM_FrQueryRecorderOn": []}
for b in doc["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    name = b["name"].split("/")[0]
    if name in times:
        times[name].append(b["cpu_time"])

for name, t in times.items():
    if not t:
        sys.exit(f"no iterations for {name} in {path}")

off = min(times["BM_FrQuery"])
on = min(times["BM_FrQueryRecorderOn"])
pct = 100.0 * (on - off) / off
print(f"recorder off: {off / 1e6:.3f} ms  on: {on / 1e6:.3f} ms  "
      f"overhead: {pct:+.2f}% (gate: {gate_pct:.1f}%)")
if pct > gate_pct:
    sys.exit(f"FAIL: flight-recorder overhead {pct:.2f}% exceeds "
             f"{gate_pct:.1f}% gate")
print("overhead gate passed")
PY
